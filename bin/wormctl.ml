(* wormctl: an interactive (or scripted) console over an in-memory
   Strong WORM store. Reads commands from stdin, one per line:

     write <retention-seconds> <data...>    store a record
     twrite <tenant> <secs> <data...>       store a record sealed under a
                                            tenant's key hierarchy
     erase <tenant> [json]                  destroy the tenant's key: O(1)
                                            crypto-erasure + signed certificate
     read <sn>                              read + client-verify
     advance <seconds>                      advance the virtual clock
     expire                                 run the Retention Monitor
     hold <sn> <case-id> <timeout-seconds>  place a litigation hold
     release <sn>                           release this console's hold
     idle                                   idle-period maintenance round
     compact                                collapse deletion windows
     extend <sn> <new-retention-seconds>    lengthen a record's retention
     journal                                print the operation journal
     anchor                                 SCPU-anchor the journal
     tamper <sn>                            insider: flip a data byte
     hide <sn>                              insider: expunge the record
     rewrite-history <seq>                  insider: falsify a journal entry
     stats                                  SCPU signing, client verify-cache,
                                            codec pool and encode-memo counters
     audit [json]                           full compliance scrub (+ JSON report)
     remote-audit [fault-rate]              audit over the wire protocol; optional
                                            injected drop/garble/truncate rate
     cluster <n> [json]                     provision an n-shard mirrored router,
                                            run a mixed workload, report per-shard
                                            stats + the aggregated freshness proof
     status                                 store counters
     help                                   this text
     quit

   Example session:
     printf 'write 60 hello\nread 1\nadvance 61\nexpire\nread 1\n' | \
       dune exec bin/wormctl.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let usage =
  "commands: write <secs> <data> | twrite <tenant> <secs> <data> | read <sn> |\n\
  \          erase <tenant> [json] | advance <secs> | expire |\n\
  \          hold <sn> <case> <secs> | release <sn> | extend <sn> <secs> |\n\
  \          idle | compact | journal | anchor | audit [json] |\n\
  \          remote-audit [fault-rate] | cluster <n> [json] | status | stats |\n\
  \          tamper <sn> | hide <sn> | rewrite-history <seq> | help | quit"

let () =
  let rng = Drbg.create ~seed:"wormctl" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"wormctl-scpu" ~clock ~ca ~name:"scpu-ctl" () in
  let config = { Worm.default_config with Worm.journal = true } in
  let store = Worm.create ~config ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let authority = Authority.create ~ca ~clock ~rng ~name:"wormctl-authority" in
  let mallory = Adversary.create store in
  Printf.printf "wormctl: store %s ready (type 'help')\n%!" (Worm_util.Hex.encode (Worm.store_id store));
  let sn_of s = Serial.of_int64 (Int64.of_string s) in
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        (match String.split_on_char ' ' (String.trim line) with
        | [ "" ] | [] -> ()
        | "write" :: secs :: rest when rest <> [] ->
            let retention_ns = Clock.ns_of_sec (float_of_string secs) in
            let policy = Policy.custom ~name:"ctl" ~retention_ns ~shred_passes:3 in
            let sn = Worm.write store ~policy ~blocks:[ String.concat " " rest ] in
            Printf.printf "-> %s\n" (Serial.to_string sn)
        | "twrite" :: tenant :: secs :: rest when rest <> [] -> begin
            let retention_ns = Clock.ns_of_sec (float_of_string secs) in
            let policy = Policy.custom ~name:"ctl" ~retention_ns ~shred_passes:3 in
            match Worm.write store ~tenant ~policy ~blocks:[ String.concat " " rest ] with
            | sn -> Printf.printf "-> %s (sealed for %s)\n" (Serial.to_string sn) tenant
            | exception Invalid_argument e -> Printf.printf "-> refused: %s\n" e
          end
        | "erase" :: tenant :: rest when rest = [] || rest = [ "json" ] -> begin
            let already = Worm.tenant_is_erased store tenant in
            let records = Worm.tenant_record_count store tenant in
            match Worm.erase_tenant store ~tenant with
            | exception Invalid_argument e -> Printf.printf "-> refused: %s\n" e
            | cert ->
                let verified =
                  match Client.verify_erasure_cert client cert with Ok () -> "verified" | Error e -> "REJECTED: " ^ e
                in
                if rest = [ "json" ] then
                  Printf.printf
                    "{\"tenant\":%S,\"already_erased\":%b,\"records_covered\":%d,\"upto\":%Ld,\"erased_at_ns\":%Ld,\"signature\":%S,\"ca_verification\":%S}\n"
                    cert.Firmware.tenant already records
                    (Serial.to_int64 cert.Firmware.upto)
                    cert.Firmware.erased_at
                    (Worm_util.Hex.encode cert.Firmware.signature)
                    verified
                else
                  Printf.printf "-> %s %s: %d record(s) unreadable, certificate through %s, CA %s\n"
                    (if already then "already erased" else "erased tenant")
                    tenant records
                    (Serial.to_string cert.Firmware.upto)
                    verified
          end
        | [ "read"; s ] -> begin
            let sn = sn_of s in
            match Client.verify_read client ~sn (Worm.read store sn) with
            | Client.Valid_data { blocks; _ } -> Printf.printf "-> valid: %s\n" (String.concat " | " blocks)
            | v -> Printf.printf "-> %s\n" (Client.verdict_name v)
          end
        | [ "advance"; secs ] ->
            Clock.advance clock (Clock.ns_of_sec (float_of_string secs));
            Printf.printf "-> t = %s\n" (Format.asprintf "%a" Clock.pp_duration (Clock.now clock))
        | [ "expire" ] ->
            let outcomes = Worm.expire_due store in
            List.iter
              (fun (sn, r) ->
                match r with
                | Ok () -> Printf.printf "-> %s deleted\n" (Serial.to_string sn)
                | Error e -> Printf.printf "-> %s: %s\n" (Serial.to_string sn) (Firmware.error_to_string e))
              outcomes;
            if outcomes = [] then Printf.printf "-> nothing due\n"
        | [ "hold"; s; case; secs ] -> begin
            let timeout = Int64.add (Clock.now clock) (Clock.ns_of_sec (float_of_string secs)) in
            match Authority.place_hold authority ~store ~sn:(sn_of s) ~lit_id:case ~timeout with
            | Ok () -> Printf.printf "-> held under %s\n" case
            | Error e -> Printf.printf "-> %s\n" (Firmware.error_to_string e)
          end
        | [ "release"; s ] -> begin
            match Authority.release_hold authority ~store ~sn:(sn_of s) with
            | Ok () -> Printf.printf "-> released\n"
            | Error e -> Printf.printf "-> %s\n" (Firmware.error_to_string e)
          end
        | [ "extend"; s; secs ] -> begin
            let sn = sn_of s in
            match Vrdt.find (Worm.vrdt store) sn with
            | Some (Vrdt.Active vrd) -> begin
                match
                  Firmware.extend_retention (Worm.firmware store) ~vrd_bytes:(Vrd.to_bytes vrd)
                    ~new_retention_ns:(Clock.ns_of_sec (float_of_string secs))
                with
                | Ok vrd' ->
                    Vrdt.set_active (Worm.vrdt store) vrd';
                    Printf.printf "-> retention now %s\n"
                      (Format.asprintf "%a" Clock.pp_duration
                         vrd'.Vrd.attr.Attr.policy.Policy.retention_ns)
                | Error e -> Printf.printf "-> %s\n" (Firmware.error_to_string e)
              end
            | _ -> Printf.printf "-> no such active record\n"
          end
        | [ "journal" ] -> begin
            match Worm.journal store with
            | Some j ->
                List.iter
                  (fun e ->
                    Printf.printf "-> #%d %s\n" e.Journal.seq (Journal.op_to_string e.Journal.op))
                  (Journal.entries j);
                let ok = Journal.verify_chain ~entries:(Journal.entries j) in
                let anchors = Journal.anchors j in
                let anchored =
                  List.for_all
                    (Journal.verify_anchor
                       ~signing:(Firmware.signing_cert (Worm.firmware store)).Worm_crypto.Cert.key
                       ~store_id:(Worm.store_id store) ~entries:(Journal.entries j))
                    anchors
                in
                Printf.printf "-> chain %s, %d anchor(s) %s\n"
                  (if ok then "consistent" else "BROKEN")
                  (List.length anchors)
                  (if anchored then "verified" else "REJECTED")
            | None -> Printf.printf "-> journal disabled\n"
          end
        | [ "anchor" ] -> begin
            match Worm.journal store with
            | Some j ->
                let a = Journal.anchor j in
                Printf.printf "-> anchored through #%d\n" a.Journal.upto_seq
            | None -> Printf.printf "-> journal disabled\n"
          end
        | [ "rewrite-history"; seq ] -> begin
            match Worm.journal store with
            | Some j ->
                Printf.printf "-> %s\n"
                  (if
                     Journal.Raw.rewrite_entry j ~seq:(int_of_string seq)
                       ~op:(Journal.Op_custom "nothing happened here")
                   then "rewritten (try 'journal')"
                   else "no such entry")
            | None -> Printf.printf "-> journal disabled\n"
          end
        | [ "audit" ] | [ "audit"; "json" ] -> begin
            let scrubber = Worm_audit.Scrubber.create ~store ~client () in
            let report = Worm_audit.Scrubber.run_pass scrubber in
            match String.split_on_char ' ' (String.trim line) with
            | [ "audit"; "json" ] -> print_endline (Worm_audit.Report.to_json report)
            | _ ->
                Printf.printf "-> %s\n" (Worm_audit.Report.summary report);
                List.iter
                  (fun f -> Printf.printf "->   %s\n" (Format.asprintf "%a" Worm_audit.Finding.pp f))
                  report.Worm_audit.Report.findings
          end
        | [ "remote-audit" ] | [ "remote-audit"; _ ] -> begin
            (* Audit this store the way a remote investigator would:
               through the wire protocol, optionally behind an
               injected-fault transport, with retry waits charged to a
               virtual network ledger. *)
            let module Proto = Worm_proto in
            let rate =
              match String.split_on_char ' ' (String.trim line) with
              | [ _; r ] -> float_of_string r
              | _ -> 0.
            in
            let server = Proto.Server.create store in
            let net = Proto.Netsim.create () in
            let honest = Proto.Server.handle_bytes server in
            let faulty =
              if rate <= 0. then None
              else
                Some
                  (Proto.Faulty.create ~seed:"wormctl-faults"
                     ~charge_delay:(Proto.Netsim.charge_ns net)
                     ~faults:
                       [ Proto.Faulty.Drop rate; Proto.Faulty.Garble rate; Proto.Faulty.Truncate rate ]
                     honest)
            in
            let transport =
              Proto.Netsim.wrap net (match faulty with Some f -> Proto.Faulty.transport f | None -> honest)
            in
            match Proto.Remote_client.connect ~ca:(Rsa.public_of ca) ~clock ~netsim:net transport with
            | Error e -> Printf.printf "-> handshake failed: %s\n" e
            | Ok rc ->
                let a = Proto.Remote_client.run_remote_audit_to_completion rc in
                Printf.printf "-> scanned %d, skipped below base %Ld, %d round trip(s), %d violation(s)%s\n"
                  a.Proto.Remote_client.scanned a.Proto.Remote_client.skipped_below_base
                  a.Proto.Remote_client.round_trips
                  (List.length a.Proto.Remote_client.violations)
                  (match a.Proto.Remote_client.resume with
                  | None -> ""
                  | Some sn -> Printf.sprintf " (INCOMPLETE, resume at %s)" (Serial.to_string sn));
                List.iter
                  (fun (sn, v) -> Printf.printf "->   %s: %s\n" (Serial.to_string sn) (Client.verdict_name v))
                  a.Proto.Remote_client.violations;
                let s = Proto.Remote_client.transport_stats rc in
                Printf.printf "-> wire: %d request(s), %d attempt(s), %d retr(ies), %d fault(s), %d reverification(s)\n"
                  s.Proto.Remote_client.requests s.Proto.Remote_client.attempts s.Proto.Remote_client.retries
                  s.Proto.Remote_client.faults s.Proto.Remote_client.reverifications;
                (match faulty with
                | Some f -> Printf.printf "-> injected: %s\n" (Format.asprintf "%a" Proto.Faulty.pp_stats (Proto.Faulty.stats f))
                | None -> ());
                Printf.printf "-> virtual wire time %s (%d bytes)\n"
                  (Format.asprintf "%a" Clock.pp_duration (Proto.Netsim.elapsed_ns net))
                  (Proto.Netsim.bytes_transferred net)
          end
        | "cluster" :: n :: rest when rest = [] || rest = [ "json" ] -> begin
            (* One-shot sharded-cluster demo: provision an n-shard
               mirrored router on this console's clock and CA, stripe a
               mixed-retention workload across it, client-verify every
               routed read, and print the per-shard picture plus the
               aggregated freshness proof a cluster client would check. *)
            let module Router = Worm_cluster.Shard_router in
            let module Cluster_proof = Worm_cluster.Cluster_proof in
            match int_of_string_opt n with
            | None | Some 0 -> Printf.printf "-> cluster: shard count must be a positive integer\n"
            | Some shards when shards < 0 -> Printf.printf "-> cluster: shard count must be a positive integer\n"
            | Some shards ->
                let rconfig =
                  {
                    Router.default_config with
                    Router.shards;
                    mirrored = true;
                    device_config = Device.test_config;
                    disk_latency = Worm_simdisk.Disk.zero_latency;
                  }
                in
                let router = Router.create ~config:rconfig ~seed:"wormctl-cluster" ~ca ~clock () in
                let records = (2 * shards) + 4 in
                let written = ref 0 in
                for i = 1 to records do
                  let retention_ns = Clock.ns_of_sec (if i mod 2 = 0 then 3600. else 60.) in
                  let policy = Policy.custom ~name:"ctl-cluster" ~retention_ns ~shred_passes:1 in
                  match Router.write router ~policy ~blocks:[ Printf.sprintf "cluster-rec-%d" i ] with
                  | Ok _ -> incr written
                  | Error e -> Printf.printf "-> write %d failed: %s\n" i e
                done;
                let verifiers = Router.verifiers router in
                let verified = ref 0 in
                for i = 1 to !written do
                  let g = Serial.of_int i in
                  match Router.verify_read router verifiers g (Router.read router g) with
                  | Client.Valid_data _ -> incr verified
                  | _ -> ()
                done;
                let mets = Router.metrics router in
                let proof = Router.freshness_proof router in
                let id12 id = String.sub (Worm_util.Hex.encode id) 0 12 in
                if rest = [ "json" ] then begin
                  let shard_json (m : Router.shard_metrics) =
                    Printf.sprintf
                      "{\"shard\":%d,\"store\":\"%s\",\"state\":\"%s\",\"mirrored\":%b,\"active\":%d,\"local_current\":%Ld,\"windows\":%d}"
                      m.Router.sm_shard (id12 m.Router.sm_store_id)
                      (match m.Router.sm_state with Router.Active -> "active" | Router.Fenced -> "fenced")
                      m.Router.sm_mirrored m.Router.sm_active
                      (Serial.to_int64 m.Router.sm_local_current)
                      m.Router.sm_windows
                  in
                  let proof_json =
                    match proof with
                    | Error e -> Printf.sprintf "{\"error\":%S}" e
                    | Ok p ->
                        Printf.sprintf
                          "{\"epoch\":%d,\"fingerprint\":\"%s\",\"verified\":%b,\"global_current\":%s}"
                          p.Cluster_proof.epoch (Cluster_proof.fingerprint p)
                          (Cluster_proof.verify ~ca:(Rsa.public_of ca) ~now:(Clock.now clock) p = Ok ())
                          (match Cluster_proof.global_current p with
                          | Ok g -> Int64.to_string (Serial.to_int64 g)
                          | Error _ -> "null")
                  in
                  Printf.printf
                    "{\"shards\":%d,\"records\":%d,\"verified_reads\":%d,\"shard_stats\":[%s],\"proof\":%s}\n"
                    shards !written !verified
                    (String.concat "," (List.map shard_json mets))
                    proof_json
                end
                else begin
                  Printf.printf "-> cluster of %d mirrored shard(s): %d record(s) striped, %d/%d reads verified\n"
                    shards !written !verified !written;
                  List.iter
                    (fun (m : Router.shard_metrics) ->
                      Printf.printf "->   shard %d: store %s %s, %d active record(s), local current %s, %d window(s)\n"
                        m.Router.sm_shard (id12 m.Router.sm_store_id)
                        (match m.Router.sm_state with Router.Active -> "active" | Router.Fenced -> "FENCED")
                        m.Router.sm_active
                        (Serial.to_string m.Router.sm_local_current)
                        m.Router.sm_windows)
                    mets;
                  match proof with
                  | Error e -> Printf.printf "-> proof: %s\n" e
                  | Ok p ->
                      Printf.printf "-> proof: epoch %d, fingerprint %s, %s, global current %s\n"
                        p.Cluster_proof.epoch (Cluster_proof.fingerprint p)
                        (match Cluster_proof.verify ~ca:(Rsa.public_of ca) ~now:(Clock.now clock) p with
                        | Ok () -> "verifies against the CA"
                        | Error e -> "REJECTED: " ^ e)
                        (match Cluster_proof.global_current p with
                        | Ok g -> Serial.to_string g
                        | Error e -> "INCOHERENT: " ^ e)
                end
          end
        | [ "idle" ] ->
            Worm.idle_tick store;
            Printf.printf "-> idle maintenance done\n"
        | [ "compact" ] -> Printf.printf "-> expelled %d entries\n" (Worm.compact_windows store)
        | [ "tamper"; s ] ->
            Printf.printf "-> %s\n"
              (if Adversary.tamper_record_data mallory (sn_of s) then "tampered (try 'read')" else "no such record")
        | [ "hide"; s ] ->
            Printf.printf "-> %s\n"
              (if Adversary.hide_record mallory (sn_of s) then "hidden (try 'read')" else "no such record")
        | [ "stats" ] ->
            let d = Device.stats device in
            Printf.printf "-> scpu: %d sign call(s) (%d strong, %d weak, %d deletion), %d hash op(s)\n"
              d.Device.sign_calls d.Device.strong_signs d.Device.weak_signs d.Device.deletion_signs
              d.Device.hash_ops;
            (match Client.verify_cache_stats client with
            | Some c ->
                Printf.printf "-> client verify cache: %d hit(s), %d miss(es), %d entr(ies)\n"
                  c.Client.cache_hits c.Client.cache_misses c.Client.cache_entries
            | None -> Printf.printf "-> client verify cache: disabled\n");
            let p = Worm_util.Codec.pool_stats () in
            Printf.printf "-> codec pool: %d reused, %d fresh\n" p.Worm_util.Codec.pool_reused
              p.Worm_util.Codec.pool_fresh;
            let m = Worm_proto.Server.global_memo_stats () in
            Printf.printf "-> encode memo: %d hit(s), %d miss(es)\n" m.Worm_proto.Server.memo_hits
              m.Worm_proto.Server.memo_misses
        | [ "status" ] ->
            Printf.printf "-> t=%s | %s | scpu-busy=%s\n"
              (Format.asprintf "%a" Clock.pp_duration (Clock.now clock))
              (Format.asprintf "%a" Worm.pp_metrics (Worm.metrics store))
              (Format.asprintf "%a" Clock.pp_duration (Device.busy_ns device))
        | [ "help" ] -> print_endline usage
        | [ "quit" ] | [ "exit" ] -> exit 0
        | _ -> Printf.printf "-> unrecognized (try 'help')\n");
        Printf.printf "%!";
        loop ()
  in
  try loop () with
  | Failure msg -> Printf.printf "error: %s\n" msg
  | Device.Tamper_detected -> Printf.printf "error: SCPU zeroized\n"
