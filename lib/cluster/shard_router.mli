(** The shard router: one WORM store interface over N independent
    SCPU/VRDT shards.

    Each shard is a complete Strong WORM instance — its own
    {!Worm_scpu.Device.t} (keys, serial counters, tamper envelope), its
    own {!Worm_simdisk.Disk.t}, its own {!Worm_core.Worm.t} host state,
    and optionally a mirror pair behind a {!Worm_core.Replicator.t}. The
    router owns none of their trust: it translates the cluster's global
    serial space to per-shard locals through the fixed {!Partition}
    interleave, forwards operations, and aggregates the shards'
    CA-rooted bounds into a {!Cluster_proof.t}. A client verifies
    everything end-to-end exactly as against a single store; the router
    lying about routing is caught by the client-computed partition, and
    the router lying about bounds is caught by the coherence equation.

    Failure handling (the part a single store cannot offer): when a
    shard's SCPU zeroizes — detected by {!probe}, or in-line when an
    operation trips {!Worm_scpu.Device.Tamper_detected} — the shard is
    {e fenced}: writes to its stripe are refused, reads are served from
    its lockstep mirror. {!recover} then promotes the mirror to primary
    (local serials are allocated in lockstep, so the partition
    translation survives promotion unchanged) and rebuilds a fresh
    mirror through {!Worm_core.Replicator.resync_mirror}. The rebuilt
    mirror holds the live records under {e fresh} serials, so it is a
    healing source, not a promotion candidate: a second zeroization of
    the same shard is outside the verified contract and reported as
    such (see DESIGN.md §14). *)

open Worm_core
module Device = Worm_scpu.Device
module Disk = Worm_simdisk.Disk

type config = {
  shards : int;
  mirrored : bool;  (** pair every shard with a lockstep mirror *)
  store_config : Worm.config;
  device_config : Device.config;
  disk_latency : Disk.latency_model;
  router_overhead_ns : int64;
      (** host CPU charged to the owning shard per routed request — the
          router's translate-and-forward work is not free *)
}

val default_config : config
(** 4 mirrored shards, default store/device configs, enterprise disks,
    200 ns routing overhead. *)

type t

val create : ?config:config -> seed:string -> ca:Worm_crypto.Rsa.secret -> clock:Worm_simclock.Clock.t -> unit -> t
(** Provision every shard (and mirror) deterministically from [seed].
    The CA secret is used only at provisioning time to certify the
    shard SCPUs' keys, the way the factory does for a single device. *)

val shard_count : t -> int
val clock : t -> Worm_simclock.Clock.t
val ca_public : t -> Worm_crypto.Rsa.public
val epoch : t -> int
(** The cluster deletion epoch: bumped whenever a shard's deletion
    windows are collapsed, so aggregated proofs are ordered across
    shard-local deletion activity. *)

type shard_state = Active | Fenced

val shard_state : t -> int -> shard_state

val serving_store : t -> int -> Worm.t option
(** The store currently answering for a shard: the primary while
    [Active], the lockstep mirror while [Fenced], [None] if the shard is
    fenced with no mirror to fall back on. *)

val replicator : t -> int -> Replicator.t option
(** The shard's replicator, but only while the shard is [Active] — i.e.
    while the replicator's primary is the serving store, which is what
    mirror-backed healing ({!Worm_audit.Scrubber.attach_mirror})
    requires. *)

(** {2 WORM operations (global serial space)} *)

val write :
  ?witness:Firmware.witness_mode ->
  ?tenant:string ->
  t ->
  policy:Policy.t ->
  blocks:string list ->
  (Serial.t, string) result
(** Route the next global serial's write to its owning shard (and its
    mirror). Fails without allocating if the owning shard is fenced — a
    fenced stripe is unavailable for ingest until {!recover} — or if
    [tenant] has been erased anywhere in the cluster. A non-empty
    [tenant] seals the record under the owning stores' per-tenant key
    hierarchies. A mirror dying mid-write degrades the shard to
    unmirrored; a primary dying fences the shard in-line. *)

val read : t -> Serial.t -> int * Proof.read_response
(** [(owning shard, the shard's response)]. The caller verifies with the
    owning shard's certificates — {!verify_read} packages the check. *)

val read_many : t -> Serial.t list -> (Serial.t * int * Proof.read_response) list

val register_ack : t -> shard:int -> local:Serial.t -> Serial.t
(** Translate a shard-local write acknowledgement into its global serial
    and advance the router's allocation cursor past it. This is how
    front ends that drive shard stores directly — e.g. one
    {!Worm_proto.Event_server} per shard — keep the router's global
    space in sync with batched per-shard ingest. *)

(** {2 Aggregated freshness} *)

val freshness_proof : t -> (Cluster_proof.t, string) result
(** Assemble the cluster-level proof from every shard's current serving
    store. [Error] if some shard is fenced with no mirror (the cluster
    cannot prove freshness for that stripe). *)

val verifiers : t -> Client.t option array
(** One verifying client per shard, bound to its serving store's
    certificates; [None] for a shard that is fenced with no serving
    store — it has no certificates to verify against, and
    {!verify_read} treats responses claiming to come from it as
    unverifiable ([Violation [Absence_unproven]]) rather than raising.
    Rebuild after a failover — promotion changes the serving SCPU. *)

val verify_read : t -> Client.t option array -> Serial.t -> int * Proof.read_response -> Client.verdict
(** End-to-end check of a routed read: recomputes the partition (a
    response from the wrong shard is a violation, whatever it says) and
    verifies the response under the owning shard's certificates against
    the translated local serial. *)

(** {2 Crypto-erasure (right to be forgotten)} *)

val tenant_is_erased : t -> string -> bool
(** True if any serving store holds an erasure tombstone for the
    tenant — erasure is a cluster-wide property, and a remembering
    shard is enough to refuse re-admission of the tenant. *)

val erase_tenant : t -> tenant:string -> ((int * string * Firmware.erasure_cert) list, string) result
(** Destroy the tenant's keys on {e every} shard — serving store and
    lockstep mirror alike — and return [(shard, store id, certificate)]
    per shard, in index order. O(shards), independent of the tenant's
    record count. Fails (without claiming success) if some shard has no
    serving store; per-store erasure is idempotent, so retrying after
    {!recover} completes the sweep and returns the original
    certificates. *)

val erasure_certs : t -> tenant:string -> (int * string * Firmware.erasure_cert) list
(** The certificates already issued for the tenant, one per serving
    store that has erased it; empty if the tenant was never erased. *)

(** {2 Maintenance} *)

val expire_due : t -> (int * int) list
(** Run every active shard's Retention Monitor; [(shard, deletions)]
    per shard, primary side. *)

val compact_shard : t -> int -> int
(** Collapse deletion windows on one shard (primary and mirror); bumps
    the cluster epoch if anything was expelled. Returns entries
    expelled on the serving side. *)

val compact_windows : t -> int
(** {!compact_shard} across all shards; sum of expelled entries. *)

val idle_tick : t -> unit
(** One idle round on every shard (heartbeats, strengthening, audits,
    compaction are the per-store {!Worm_core.Worm.idle_tick}); shards
    found zeroized are fenced rather than propagating the tamper
    exception. *)

val heartbeat : t -> unit

(** {2 Failure handling} *)

val probe : t -> int list
(** Indices of active shards whose serving SCPU reports zeroized. *)

val fence : t -> int -> (unit, string) result
(** Stop routing writes to a shard; reads fall back to the mirror. *)

type recovery = { resynced : int;  (** records re-replicated to the fresh mirror *) new_mirror_id : string }

val recover : t -> int -> (recovery, string) result
(** Fail the shard over: promote the lockstep mirror to primary,
    provision a fresh device + disk + store as the new mirror, rebuild
    it with {!Worm_core.Replicator.resync_mirror}, and return the shard
    to [Active]. Fails if the shard is not fenced, has no mirror, the
    mirror is itself zeroized, or the mirror is a rebuilt (non-lockstep)
    one. *)

val kill : t -> int -> unit
(** Trigger the tamper response on a shard's serving SCPU — the attack /
    failure-injection entry point for tests, smokes and the console. *)

(** {2 Introspection} *)

type shard_metrics = {
  sm_shard : int;
  sm_state : shard_state;
  sm_store_id : string;
  sm_mirrored : bool;
  sm_lockstep : bool;  (** mirror still serial-aligned with the primary *)
  sm_failovers : int;
  sm_active : int;
  sm_local_current : Serial.t;
  sm_local_base : Serial.t;
  sm_windows : int;
  sm_scpu_busy_ns : int64;
  sm_host_busy_ns : int64;
  sm_disk_busy_ns : int64;
}

val metrics : t -> shard_metrics list

val reset_busy : t -> unit
(** Zero every shard's SCPU / host / disk ledgers (benchmark harness). *)
