(** Cluster-wide compliance scrubbing.

    A cluster scrub is exactly N single-store scrubs — each shard's
    serving store is walked by its own {!Worm_audit.Scrubber} with full
    client verification under that shard's certificates — interleaved
    slice-by-slice so audit load spreads across the shards' host budgets
    the way it would across real machines, then merged into one
    {!Worm_audit.Report.t} in the {e global} serial space. Findings keep
    their per-shard identity in the detail text; scanned/slice/cost
    counters sum; the merged bounds are the cluster base/current the
    shard bounds imply. Mirrored shards get their replicator attached,
    so {!Worm_audit.Scrubber.repair_all} keeps working per shard. *)

module Report = Worm_audit.Report
module Scrubber = Worm_audit.Scrubber

type outcome = {
  merged : Report.t;  (** cluster-level report, global serial space *)
  per_shard : (int * Report.t) list;  (** each shard's own pass report *)
  skipped : int list;  (** shards with no serving store (fenced, no mirror) *)
}

val scrubbers : ?config:Scrubber.config -> ?pool:Worm_util.Pool.t -> Shard_router.t -> (int * Scrubber.t) list
(** One scrubber per scrubbable shard, bound to its serving store (with
    the mirror attached where one is live). Exposed so callers can drive
    slices on their own schedule; {!run} is the batteries-included
    driver. *)

val run : ?config:Scrubber.config -> ?pool:Worm_util.Pool.t -> Shard_router.t -> outcome
(** Round-robin budgeted slices across every scrubbable shard until each
    pass completes, then merge. [merged.pass_complete] is [false] when
    any shard had to be skipped — partial coverage must not read as a
    clean bill. *)
