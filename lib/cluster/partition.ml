open Worm_core

let check_shards n = if n < 1 then invalid_arg "Partition: shard count must be >= 1"

let check_index ~shards shard =
  check_shards shards;
  if shard < 0 || shard >= shards then invalid_arg "Partition: shard index out of range"

let shard_of ~shards g =
  check_shards shards;
  let g = Serial.to_int g in
  if g < 1 then 0 else (g - 1) mod shards

let local_of ~shards g =
  check_shards shards;
  let g = Serial.to_int g in
  if g < 1 then Serial.zero else Serial.of_int (((g - 1) / shards) + 1)

let global_of ~shards ~shard l =
  check_index ~shards shard;
  let l = Serial.to_int l in
  if l < 1 then Serial.zero else Serial.of_int (((l - 1) * shards) + shard + 1)

let locals_covered ~shards ~shard ~global_current =
  check_index ~shards shard;
  let g = Serial.to_int global_current in
  if g < 1 then Serial.zero else Serial.of_int ((g + shards - 1 - shard) / shards)
