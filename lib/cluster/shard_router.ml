open Worm_core
module Device = Worm_scpu.Device
module Disk = Worm_simdisk.Disk
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa

type config = {
  shards : int;
  mirrored : bool;
  store_config : Worm.config;
  device_config : Device.config;
  disk_latency : Disk.latency_model;
  router_overhead_ns : int64;
}

let default_config =
  {
    shards = 4;
    mirrored = true;
    store_config = Worm.default_config;
    device_config = Device.default_config;
    disk_latency = Disk.enterprise_latency;
    router_overhead_ns = 200L;
  }

type shard_state = Active | Fenced

type shard = {
  index : int;
  mutable serving : Worm.t;  (* the primary; replaced on promotion *)
  mutable repl : Replicator.t option;
  mutable state : shard_state;
  mutable failovers : int;
  mutable lockstep : bool;
}

type t = {
  config : config;
  seed : string;
  ca : Rsa.secret;
  ca_pub : Rsa.public;
  clock : Clock.t;
  shards : shard array;
  mutable next_global : Serial.t;
  mutable epoch : int;
  mutable provisioned : int;  (* distinguishes replacement-device seeds *)
}

let device_of store = Firmware.device (Worm.firmware store)

let make_store t ~name =
  let dev =
    Device.provision ~seed:(t.seed ^ "|dev|" ^ name) ~clock:t.clock ~ca:t.ca
      ~config:t.config.device_config ~name ()
  in
  let disk = Disk.create ~latency:t.config.disk_latency () in
  Worm.create ~config:t.config.store_config ~disk ~device:dev ~ca:t.ca_pub ()

let create ?(config = default_config) ~seed ~ca ~clock () =
  if config.shards < 1 then invalid_arg "Shard_router.create: shard count must be >= 1";
  let t =
    {
      config;
      seed;
      ca;
      ca_pub = Rsa.public_of ca;
      clock;
      shards = [||];
      next_global = Serial.of_int 1;
      epoch = 0;
      provisioned = 0;
    }
  in
  let shards =
    Array.init config.shards (fun i ->
        let primary = make_store t ~name:(Printf.sprintf "shard-%d" i) in
        let repl =
          if config.mirrored then
            let mirror = make_store t ~name:(Printf.sprintf "shard-%d-mirror" i) in
            Some (Replicator.create ~primary ~mirror)
          else None
        in
        { index = i; serving = primary; repl; state = Active; failovers = 0; lockstep = config.mirrored })
  in
  { t with shards }

let shard_count t = Array.length t.shards
let clock t = t.clock
let ca_public t = t.ca_pub
let epoch t = t.epoch
let shard_state t i = t.shards.(i).state

let serving_store_of s =
  match s.state with
  | Active -> Some s.serving
  | Fenced -> (
      match s.repl with
      | Some r when s.lockstep -> Some (Replicator.mirror r)
      | Some _ | None -> None)

let serving_store t i = serving_store_of t.shards.(i)

let replicator t i =
  let s = t.shards.(i) in
  match (s.state, s.repl) with Active, Some r -> Some r | _ -> None

let fence_unchecked s = if s.state = Active then s.state <- Fenced

(* A write that survives losing the mirror mid-flight: the primary's own
   serial counter decides whether the record landed before degrading the
   shard to unmirrored operation. A dead primary propagates. *)
let write_shard ?witness ?tenant s ~policy ~blocks =
  match s.repl with
  | None -> Worm.write ?witness ?tenant s.serving ~policy ~blocks
  | Some r -> (
      let before = Firmware.sn_current (Worm.firmware s.serving) in
      try fst (Replicator.write ?witness ?tenant r ~policy ~blocks)
      with Device.Tamper_detected when not (Device.is_zeroized (device_of s.serving)) ->
        s.repl <- None;
        s.lockstep <- false;
        let after = Firmware.sn_current (Worm.firmware s.serving) in
        if Serial.(after > before) then after else Worm.write ?witness ?tenant s.serving ~policy ~blocks)

(* Erasure is cluster-wide, so any shard remembering the tombstone is
   enough to refuse: the stripe interleave spreads a tenant's records
   over every shard, and re-admitting the tenant on one stripe would
   mint records no key can decrypt. *)
let tenant_is_erased t tenant =
  (not (String.equal tenant ""))
  && Array.exists
       (fun s ->
         match serving_store_of s with
         | Some store -> Worm.tenant_is_erased store tenant
         | None -> false)
       t.shards

let write ?witness ?(tenant = "") t ~policy ~blocks =
  let n = shard_count t in
  let g = t.next_global in
  let idx = Partition.shard_of ~shards:n g in
  let s = t.shards.(idx) in
  match s.state with
  | Fenced -> Error (Printf.sprintf "shard %d is fenced; stripe unavailable until recovery" idx)
  | Active when tenant_is_erased t tenant ->
      Error (Printf.sprintf "tenant %S has been erased; writes refused" tenant)
  | Active -> (
      match write_shard ?witness ~tenant s ~policy ~blocks with
      | exception Device.Tamper_detected ->
          fence_unchecked s;
          Error (Printf.sprintf "shard %d zeroized during write; shard fenced" idx)
      | local ->
          Worm.charge_host s.serving t.config.router_overhead_ns;
          let expected = Partition.local_of ~shards:n g in
          if not (Serial.equal local expected) then
            Error
              (Printf.sprintf "shard %d allocated local %d where the interleave expects %d (out-of-band writes?)"
                 idx (Serial.to_int local) (Serial.to_int expected))
          else begin
            t.next_global <- Serial.next g;
            Ok g
          end)

let read t g =
  let n = shard_count t in
  let idx = Partition.shard_of ~shards:n g in
  let s = t.shards.(idx) in
  let local = Partition.local_of ~shards:n g in
  let attempt store =
    Worm.charge_host store t.config.router_overhead_ns;
    Worm.read store local
  in
  match serving_store_of s with
  | None -> (idx, Proof.Refused (Printf.sprintf "shard %d fenced with no mirror" idx))
  | Some store -> (
      match attempt store with
      | response -> (idx, response)
      | exception Device.Tamper_detected -> (
          (* The read path only touches the SCPU for a stale-bound
             refresh, so tripping the tamper response here means the
             serving device just died: fence and fall back once. *)
          fence_unchecked s;
          match serving_store_of s with
          | Some fallback -> (idx, attempt fallback)
          | None -> (idx, Proof.Refused (Printf.sprintf "shard %d zeroized with no mirror" idx))))

let read_many t sns = List.map (fun g -> let idx, r = read t g in (g, idx, r)) sns

let register_ack t ~shard ~local =
  let g = Partition.global_of ~shards:(shard_count t) ~shard local in
  if Serial.(g >= t.next_global) then t.next_global <- Serial.next g;
  g

let freshness_proof t =
  let rec collect acc i =
    if i < 0 then Ok acc
    else
      let s = t.shards.(i) in
      match serving_store_of s with
      | None -> Error (Printf.sprintf "shard %d has no serving store; cannot prove cluster freshness" i)
      | Some store ->
          let fw = Worm.firmware store in
          (* a freshness proof built from a bound that predates recent
             writes would undercount the stripe — re-sign when the SCPU
             counter has moved past the cache (Server.refresh's rule) *)
          if Serial.((Worm.cached_current_bound store).Firmware.sn < Firmware.sn_current fw) then
            Worm.heartbeat store;
          let bound =
            {
              Cluster_proof.shard_index = i;
              store_id = Worm.store_id store;
              signing_cert = Firmware.signing_cert fw;
              deletion_cert = Firmware.deletion_cert fw;
              base = Worm.cached_base_bound store;
              current = Worm.cached_current_bound store;
            }
          in
          collect (bound :: acc) (i - 1)
  in
  Result.map (Cluster_proof.make ~epoch:t.epoch) (collect [] (shard_count t - 1))

(* A fenced shard with no mirror has no certificates to verify against;
   its slot is [None], and any response claiming to come from it is
   unverifiable by construction — never an exception on the verify
   path. *)
let verifiers t =
  Array.map
    (fun s ->
      match serving_store_of s with
      | Some store -> Some (Client.for_store ~ca:t.ca_pub ~clock:t.clock store)
      | None -> None)
    t.shards

let verify_read t clients g (idx, response) =
  let n = shard_count t in
  if idx <> Partition.shard_of ~shards:n g then Client.Violation [ Client.Wrong_serial ]
  else
    match clients.(idx) with
    | None -> Client.Violation [ Client.Absence_unproven ]
    | Some client -> Client.verify_read client ~sn:(Partition.local_of ~shards:n g) response

(* Crypto-erase one shard: the serving store destroys the tenant's
   keys, and while the shard is healthy the lockstep mirror does too —
   the key hierarchies are independent SCPU state, so erasure must
   reach every device that ever sealed for this tenant. A device dying
   mid-erase falls back once, exactly like the read path. *)
let erase_shard s ~tenant =
  let mirror_erase () =
    match (s.state, s.repl) with
    | Active, Some r -> (
        try ignore (Worm.erase_tenant (Replicator.mirror r) ~tenant : Firmware.erasure_cert)
        with Device.Tamper_detected ->
          s.repl <- None;
          s.lockstep <- false)
    | _ -> ()
  in
  match serving_store_of s with
  | None -> None
  | Some store -> (
      match Worm.erase_tenant store ~tenant with
      | cert ->
          mirror_erase ();
          Some (s.index, Worm.store_id store, cert)
      | exception Device.Tamper_detected -> (
          fence_unchecked s;
          match serving_store_of s with
          | None -> None
          | Some fallback -> (
              match Worm.erase_tenant fallback ~tenant with
              | cert -> Some (s.index, Worm.store_id fallback, cert)
              | exception Device.Tamper_detected -> None)))

(* Right to be forgotten, cluster-wide: every shard attests or the
   request fails — the stripe interleave spreads a tenant's records
   over all shards, and a tenant must not believe itself forgotten
   while one stripe still holds live keys. O(shards), independent of
   how many records the tenant wrote. Partial completion (a shard
   fencing mid-sweep) is safe to retry after {!recover}: per-store
   erasure is idempotent and returns the original certificate. *)
let erase_tenant t ~tenant =
  if String.equal tenant "" then Error "erase-tenant: empty tenant id"
  else begin
    let rec go acc i =
      if i >= shard_count t then Ok (List.rev acc)
      else
        match erase_shard t.shards.(i) ~tenant with
        | Some entry -> go (entry :: acc) (i + 1)
        | None ->
            Error
              (Printf.sprintf
                 "shard %d has no serving store; erasure incomplete (idempotent — retry after recovery)" i)
    in
    go [] 0
  end

(* The certificates already issued for a tenant, shard by shard — empty
   when no serving store has erased it. *)
let erasure_certs t ~tenant =
  Array.to_list t.shards
  |> List.filter_map (fun s ->
         match serving_store_of s with
         | None -> None
         | Some store ->
             Option.map (fun cert -> (s.index, Worm.store_id store, cert)) (Worm.erasure_cert_of store tenant))

let count_deletions outcomes = List.length (List.filter (fun (_, r) -> r = Ok ()) outcomes)

let expire_due t =
  Array.to_list t.shards
  |> List.filter_map (fun s ->
         match s.state with
         | Fenced -> None
         | Active -> (
             try
               match s.repl with
               | Some r -> Some (s.index, fst (Replicator.expire_due r))
               | None -> Some (s.index, count_deletions (Worm.expire_due s.serving))
             with Device.Tamper_detected ->
               fence_unchecked s;
               None))

let compact_shard t i =
  let s = t.shards.(i) in
  match serving_store_of s with
  | None -> 0
  | Some store -> (
      try
        let expelled = Worm.compact_windows store in
        (match s.repl with
        | Some r when s.state = Active -> ignore (Worm.compact_windows (Replicator.mirror r))
        | Some _ | None -> ());
        if expelled > 0 then t.epoch <- t.epoch + 1;
        expelled
      with Device.Tamper_detected ->
        fence_unchecked s;
        0)

let compact_windows t =
  Array.fold_left (fun acc s -> acc + compact_shard t s.index) 0 t.shards

let idle_tick t =
  Array.iter
    (fun s ->
      try
        match (s.state, s.repl) with
        | Active, Some r -> Replicator.idle_tick r
        | Active, None -> Worm.idle_tick s.serving
        | Fenced, _ -> (
            match serving_store_of s with Some store -> Worm.idle_tick store | None -> ())
      with Device.Tamper_detected -> fence_unchecked s)
    t.shards

let heartbeat t =
  Array.iter
    (fun s ->
      match serving_store_of s with
      | Some store -> ( try Worm.heartbeat store with Device.Tamper_detected -> fence_unchecked s)
      | None -> ())
    t.shards

let probe t =
  Array.to_list t.shards
  |> List.filter_map (fun s ->
         if s.state = Active && Device.is_zeroized (device_of s.serving) then Some s.index else None)

let fence t i =
  let s = t.shards.(i) in
  match s.state with
  | Fenced -> Error (Printf.sprintf "shard %d is already fenced" i)
  | Active ->
      s.state <- Fenced;
      Ok ()

type recovery = { resynced : int; new_mirror_id : string }

let recover t i =
  let s = t.shards.(i) in
  if s.state <> Fenced then Error (Printf.sprintf "shard %d is not fenced" i)
  else
    match s.repl with
    | None -> Error (Printf.sprintf "shard %d has no mirror to re-provision from" i)
    | Some _ when not s.lockstep ->
        Error
          (Printf.sprintf
             "shard %d's mirror was already rebuilt once and is not serial-aligned; a cluster-level \
              migration is required"
             i)
    | Some r ->
        let promoted = Replicator.mirror r in
        if Device.is_zeroized (device_of promoted) then
          Error (Printf.sprintf "shard %d's mirror is also zeroized" i)
        else begin
          t.provisioned <- t.provisioned + 1;
          let fresh = make_store t ~name:(Printf.sprintf "shard-%d-reprov-%d" i t.provisioned) in
          let repl = Replicator.create ~primary:promoted ~mirror:fresh in
          match Replicator.resync_mirror repl with
          | Error e -> Error ("mirror rebuild failed: " ^ e)
          | Ok resynced ->
              s.serving <- promoted;
              s.repl <- Some repl;
              s.state <- Active;
              s.failovers <- s.failovers + 1;
              (* the fresh mirror holds live records under fresh serials:
                 a healing source, never a promotion candidate *)
              s.lockstep <- false;
              Ok { resynced; new_mirror_id = Worm.store_id fresh }
        end

let kill t i =
  match serving_store_of t.shards.(i) with
  | Some store -> Device.tamper_respond (device_of store)
  | None -> ()

type shard_metrics = {
  sm_shard : int;
  sm_state : shard_state;
  sm_store_id : string;
  sm_mirrored : bool;
  sm_lockstep : bool;
  sm_failovers : int;
  sm_active : int;
  sm_local_current : Serial.t;
  sm_local_base : Serial.t;
  sm_windows : int;
  sm_scpu_busy_ns : int64;
  sm_host_busy_ns : int64;
  sm_disk_busy_ns : int64;
}

let metrics t =
  Array.to_list t.shards
  |> List.map (fun s ->
         match serving_store_of s with
         | None ->
             {
               sm_shard = s.index;
               sm_state = s.state;
               sm_store_id = "";
               sm_mirrored = false;
               sm_lockstep = s.lockstep;
               sm_failovers = s.failovers;
               sm_active = 0;
               sm_local_current = Serial.zero;
               sm_local_base = Serial.zero;
               sm_windows = 0;
               sm_scpu_busy_ns = 0L;
               sm_host_busy_ns = 0L;
               sm_disk_busy_ns = 0L;
             }
         | Some store ->
             let m = Worm.metrics store in
             {
               sm_shard = s.index;
               sm_state = s.state;
               sm_store_id = Worm.store_id store;
               sm_mirrored = s.repl <> None;
               sm_lockstep = s.lockstep;
               sm_failovers = s.failovers;
               sm_active = m.Worm.m_active;
               sm_local_current = m.Worm.m_sn_current;
               sm_local_base = m.Worm.m_sn_base;
               sm_windows = m.Worm.m_windows;
               sm_scpu_busy_ns = Device.busy_ns (device_of store);
               sm_host_busy_ns = Worm.host_busy_ns store;
               sm_disk_busy_ns = Disk.busy_ns (Worm.disk store);
             })

let reset_store_busy store =
  (try Device.reset_busy (device_of store) with Device.Tamper_detected -> ());
  Worm.reset_host_busy store;
  Disk.reset_busy (Worm.disk store)

let reset_busy t =
  Array.iter
    (fun s ->
      reset_store_busy s.serving;
      match s.repl with Some r -> reset_store_busy (Replicator.mirror r) | None -> ())
    t.shards
