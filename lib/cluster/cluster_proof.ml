open Worm_core
module Cert = Worm_crypto.Cert
module Rsa = Worm_crypto.Rsa
module Sha256 = Worm_crypto.Sha256
module Codec = Worm_util.Codec

type shard_bound = {
  shard_index : int;
  store_id : string;
  signing_cert : Cert.t;
  deletion_cert : Cert.t;
  base : Firmware.base_bound;
  current : Firmware.current_bound;
}

type t = { n_shards : int; epoch : int; shards : shard_bound list; agg_digest : string }

let encode_shard_bound enc (b : shard_bound) =
  Codec.u32 enc b.shard_index;
  Codec.bytes enc b.store_id;
  Cert.encode enc b.signing_cert;
  Cert.encode enc b.deletion_cert;
  Firmware.encode_base_bound enc b.base;
  Firmware.encode_current_bound enc b.current

let decode_shard_bound dec =
  let shard_index = Codec.read_u32 dec in
  let store_id = Codec.read_bytes dec in
  let signing_cert = Cert.decode dec in
  let deletion_cert = Cert.decode dec in
  let base = Firmware.decode_base_bound dec in
  let current = Firmware.decode_current_bound dec in
  { shard_index; store_id; signing_cert; deletion_cert; base; current }

(* The digest covers the canonical encoding of everything except itself. *)
let body_bytes ~n_shards ~epoch shards =
  Codec.encode
    (fun enc () ->
      Codec.u32 enc n_shards;
      Codec.int_as_u64 enc epoch;
      Codec.list encode_shard_bound enc shards)
    ()

let digest_of ~n_shards ~epoch shards = Sha256.digest (body_bytes ~n_shards ~epoch shards)

let make ~epoch shards =
  let n_shards = List.length shards in
  { n_shards; epoch; shards; agg_digest = digest_of ~n_shards ~epoch shards }

let fingerprint t = String.sub (Worm_util.Hex.encode t.agg_digest) 0 16

let encode enc t =
  Codec.u32 enc t.n_shards;
  Codec.int_as_u64 enc t.epoch;
  Codec.list encode_shard_bound enc t.shards;
  Codec.bytes enc t.agg_digest

let decode dec =
  let n_shards = Codec.read_u32 dec in
  let epoch = Codec.read_int_as_u64 dec in
  let shards = Codec.read_list decode_shard_bound dec in
  let agg_digest = Codec.read_bytes dec in
  if not (String.equal agg_digest (digest_of ~n_shards ~epoch shards)) then
    raise (Codec.Malformed "cluster proof digest mismatch");
  { n_shards; epoch; shards; agg_digest }

let default_max_bound_age_ns = 300_000_000_000L (* 5 min, as in Client *)

let verify_shard ~ca ~now ~max_bound_age_ns (b : shard_bound) =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "shard %d: %s" b.shard_index m)) fmt in
  if not (Cert.verify ~ca ~now b.signing_cert) then fail "signing certificate rejected"
  else if b.signing_cert.Cert.role <> Cert.Scpu_signing then fail "signing certificate has wrong role"
  else if not (Cert.verify ~ca ~now b.deletion_cert) then fail "deletion certificate rejected"
  else if b.deletion_cert.Cert.role <> Cert.Scpu_deletion then fail "deletion certificate has wrong role"
  else
    let cur_msg =
      Wire.current_bound_msg ~store_id:b.store_id ~sn:b.current.Firmware.sn
        ~timestamp:b.current.Firmware.timestamp
    in
    if not (Rsa.verify b.signing_cert.Cert.key ~msg:cur_msg ~signature:b.current.Firmware.signature)
    then fail "current-bound signature does not verify"
    else if Int64.compare (Int64.sub now b.current.Firmware.timestamp) max_bound_age_ns > 0 then
      fail "current bound is older than the freshness limit"
    else
      let base_msg =
        Wire.base_bound_msg ~store_id:b.store_id ~sn:b.base.Firmware.sn
          ~expires_at:b.base.Firmware.expires_at
      in
      if not (Rsa.verify b.signing_cert.Cert.key ~msg:base_msg ~signature:b.base.Firmware.signature)
      then fail "base-bound signature does not verify"
      else if Int64.compare now b.base.Firmware.expires_at > 0 then
        fail "base bound has expired (possible replay)"
      else if Serial.(b.current.Firmware.sn < Serial.prev b.base.Firmware.sn) then
        fail "base bound exceeds current bound"
      else Ok ()

let verify ~ca ~now ?(max_bound_age_ns = default_max_bound_age_ns) t =
  let rec distinct = function
    | [] -> true
    | id :: rest -> (not (List.mem id rest)) && distinct rest
  in
  if t.n_shards < 1 then Error "cluster proof has no shards"
  else if List.length t.shards <> t.n_shards then Error "cluster proof shard count mismatch"
  else if not (List.for_all2 (fun i b -> b.shard_index = i) (List.init t.n_shards Fun.id) t.shards)
  then Error "cluster proof shard indices out of order"
  else if not (distinct (List.map (fun b -> b.store_id) t.shards)) then
    Error "cluster proof reuses a store id across shards"
  else if not (String.equal t.agg_digest (digest_of ~n_shards:t.n_shards ~epoch:t.epoch t.shards))
  then Error "cluster proof digest mismatch"
  else
    List.fold_left
      (fun acc b -> match acc with Error _ -> acc | Ok () -> verify_shard ~ca ~now ~max_bound_age_ns b)
      (Ok ()) t.shards

(* A cluster-wide erasure is the conjunction of per-shard erasures, the
   same way the freshness proof is the conjunction of per-shard bounds:
   there is no cluster key, so the only acceptable evidence is one
   certificate per shard, each signed by that shard's own deletion key.
   A missing shard means some stripe could still decrypt the tenant —
   the whole claim fails, it does not degrade. *)
let verify_erasure ~ca ~now t ~tenant certs =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.equal tenant "" then fail "erasure claim names an empty tenant"
  else if List.length certs <> t.n_shards then
    fail "erasure claim covers %d shard(s), cluster has %d — every shard must attest"
      (List.length certs) t.n_shards
  else
    List.fold_left
      (fun acc (b, (shard, store_id, (cert : Firmware.erasure_cert))) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if shard <> b.shard_index then
              fail "erasure certificates out of shard order (%d where %d expected)" shard b.shard_index
            else if not (String.equal store_id b.store_id) then
              fail "shard %d: erasure certificate names a different store" shard
            else if not (String.equal cert.Firmware.tenant tenant) then
              fail "shard %d: certificate names tenant %S, not %S" shard cert.Firmware.tenant tenant
            else if not (Cert.verify ~ca ~now b.deletion_cert) then
              fail "shard %d: deletion certificate rejected" shard
            else if b.deletion_cert.Cert.role <> Cert.Scpu_deletion then
              fail "shard %d: deletion certificate has wrong role" shard
            else
              let msg =
                Wire.erasure_msg ~store_id:b.store_id ~tenant ~erased_at:cert.Firmware.erased_at
                  ~upto:cert.Firmware.upto
              in
              if not (Rsa.verify b.deletion_cert.Cert.key ~msg ~signature:cert.Firmware.signature)
              then fail "shard %d: erasure signature does not verify under the deletion certificate" shard
              else Ok ())
      (Ok ())
      (List.combine t.shards certs)

(* Recover G from the per-shard currents. Shard 0 always holds
   ceil(G / n) locals, so G is one of [c_0 * n - (n - 1) .. c_0 * n];
   rather than search, derive G = sum of locals and check every shard
   against the round-robin equation — any stale bound breaks it. *)
let global_current t =
  if t.n_shards < 1 then Error "cluster proof has no shards"
  else
    let total =
      List.fold_left (fun acc b -> acc + Serial.to_int b.current.Firmware.sn) 0 t.shards
    in
    let g = Serial.of_int total in
    let coherent =
      List.for_all
        (fun b ->
          Serial.equal b.current.Firmware.sn
            (Partition.locals_covered ~shards:t.n_shards ~shard:b.shard_index ~global_current:g))
        t.shards
    in
    if coherent then Ok g
    else Error "shard current bounds are incoherent with a round-robin history"

let global_base t =
  (* Global g is provably gone iff its owner's base exceeds its local
     serial; the smallest global not below its owner's base is the
     cluster base. Scan globals from 1: the first not-below-base global
     is at most (max local base) * n away. *)
  let n = t.n_shards in
  let bases = Array.make n Serial.zero in
  List.iter (fun b -> bases.(b.shard_index) <- b.base.Firmware.sn) t.shards;
  let limit = Array.fold_left (fun acc b -> max acc (Serial.to_int b)) 1 bases * n in
  let rec scan g =
    if g > limit then Serial.of_int limit
    else
      let s = Partition.shard_of ~shards:n (Serial.of_int g) in
      let l = Partition.local_of ~shards:n (Serial.of_int g) in
      if Serial.(l < bases.(s)) then scan (g + 1) else Serial.of_int g
  in
  scan 1

let pp fmt t =
  Format.fprintf fmt "@[<v>cluster proof: %d shard(s), epoch %d, digest %s@," t.n_shards t.epoch
    (fingerprint t);
  List.iter
    (fun b ->
      Format.fprintf fmt "  shard %d: store %s base=%d current=%d@," b.shard_index
        (String.sub (Worm_util.Hex.encode b.store_id) 0 12)
        (Serial.to_int b.base.Firmware.sn)
        (Serial.to_int b.current.Firmware.sn))
    t.shards;
  Format.fprintf fmt "@]"
