(** The cluster's serial-number partition: round-robin mod N.

    A cluster of [n] shards presents one global, consecutive SN space to
    clients while each shard's SCPU independently issues its own local,
    consecutive SNs. The two are related by a fixed interleave:

    - global [g] (1-based) lives on shard [(g - 1) mod n],
    - as that shard's local serial [(g - 1) / n + 1].

    The map is total (every global SN lands on exactly one shard),
    bijective per shard, and — crucially — {e client-computable}: a
    verifier derives the (shard, local) pair itself from public cluster
    parameters, so a malicious router cannot silently remap records
    between global serials. Compare the per-record routing table a host
    could offer instead: that table would itself need SCPU witnessing.

    [Serial.zero] is a reserved sentinel in both spaces; it maps to
    shard 0 / local zero so probing reads of SN 0 stay well-defined. *)

open Worm_core

val shard_of : shards:int -> Serial.t -> int
(** Which shard owns global serial [g]. @raise Invalid_argument if
    [shards < 1]. *)

val local_of : shards:int -> Serial.t -> Serial.t
(** The owning shard's local serial for global [g]. *)

val global_of : shards:int -> shard:int -> Serial.t -> Serial.t
(** Inverse: the global serial of shard [shard]'s local [l].
    @raise Invalid_argument if [shard] is outside [0, shards). *)

val locals_covered : shards:int -> shard:int -> global_current:Serial.t -> Serial.t
(** How many local serials shard [shard] holds when the cluster has
    allocated globals [1..global_current]: [(G + n - 1 - s) / n]. The
    coherence check of {!Cluster_proof.global_current} is built on
    this. *)
