(** Cluster-level freshness proofs.

    A sharded cluster has no cluster-wide SCPU, so there is nothing that
    could sign a single "cluster current bound". What a client {e can}
    verify end-to-end is the conjunction of the shards' own proofs: one
    CA-rooted (signing cert, deletion cert, base bound, current bound)
    tuple per shard, stitched together with the cluster epoch and shard
    count. This module is that aggregate: the router assembles it, the
    wire protocol ships it ({!Worm_proto.Message}), and {!verify} checks
    every signature, validity window and freshness limit against nothing
    but the CA key and the verifier's clock — the router is untrusted
    plumbing, exactly like the single-store host.

    Because the partition ({!Partition}) is deterministic, the per-shard
    current bounds are not independent claims: if the cluster has
    allocated [G] globals, shard [s] must hold exactly
    [(G + n - 1 - s) / n] locals. {!global_current} recovers [G] from
    the shard bounds and rejects any combination that no round-robin
    history could have produced — a router replaying one shard's stale
    bound breaks the coherence equation before it breaks any signature. *)

open Worm_core
module Cert = Worm_crypto.Cert

type shard_bound = {
  shard_index : int;
  store_id : string;
  signing_cert : Cert.t;
  deletion_cert : Cert.t;
  base : Firmware.base_bound;  (** S_s(SN_base) of this shard *)
  current : Firmware.current_bound;  (** S_s(SN_current) of this shard *)
}

type t = {
  n_shards : int;
  epoch : int;
      (** cluster deletion epoch: bumped whenever any shard's deletion
          windows are collapsed or a cluster-wide retention round runs,
          so verifiers can order proofs across shard-local deletions *)
  shards : shard_bound list;  (** exactly [n_shards], in index order *)
  agg_digest : string;
      (** SHA-256 over the canonical encoding of everything above; a
          tamper-evident fingerprint of the whole aggregate, not a
          signature (there is no cluster key to sign with) *)
}

val make : epoch:int -> shard_bound list -> t
(** Assemble a proof and compute its digest. The list order defines the
    shard indexing and must match the bounds' [shard_index] fields. *)

val verify :
  ca:Worm_crypto.Rsa.public -> now:int64 -> ?max_bound_age_ns:int64 -> t -> (unit, string) result
(** Full client-side check: structure (one bound per shard index,
    distinct store ids), digest integrity, every certificate against the
    CA, every base/current bound signature under its shard's signing
    key, base bounds unexpired, and current-bound timestamps at most
    [max_bound_age_ns] old (default 5 minutes, matching
    {!Worm_core.Client}). *)

val verify_erasure :
  ca:Worm_crypto.Rsa.public ->
  now:int64 ->
  t ->
  tenant:string ->
  (int * string * Firmware.erasure_cert) list ->
  (unit, string) result
(** Client-side check of a cluster-wide crypto-erasure claim
    ({!Worm_proto.Message} [Cluster_erasure_reply]): exactly one
    certificate per shard in index order, each naming [tenant] and the
    shard's store id, each signed by that shard's CA-verified deletion
    key. A shard that has not attested fails the whole claim — some
    stripe could still decrypt the tenant. *)

val global_current : t -> (Serial.t, string) result
(** The cluster-wide current bound implied by the shard bounds: the
    unique [G] with shard [s] holding [(G + n - 1 - s) / n] locals.
    [Error] if the bounds are incoherent — no round-robin write history
    could have produced them (stale or replayed shard bound). *)

val global_base : t -> Serial.t
(** A conservative cluster base: the smallest global serial not below
    every shard's base bound. Globals under it are provably deleted on
    their owning shard. *)

val fingerprint : t -> string
(** Short hex fingerprint of [agg_digest] for logs and reports. *)

val encode : Worm_util.Codec.encoder -> t -> unit
val decode : Worm_util.Codec.decoder -> t
(** @raise Worm_util.Codec.Malformed if the digest does not match the
    re-encoded body — damaged aggregates fail at the codec boundary. *)

val pp : Format.formatter -> t -> unit
