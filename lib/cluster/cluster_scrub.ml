open Worm_core
module Report = Worm_audit.Report
module Scrubber = Worm_audit.Scrubber
module Finding = Worm_audit.Finding
module Sha256 = Worm_crypto.Sha256

type outcome = { merged : Report.t; per_shard : (int * Report.t) list; skipped : int list }

let scrubbers ?config ?pool router =
  List.init (Shard_router.shard_count router) Fun.id
  |> List.filter_map (fun i ->
         match Shard_router.serving_store router i with
         | None -> None
         | Some store ->
             let client = Client.for_store ~ca:(Shard_router.ca_public router) ~clock:(Shard_router.clock router) store in
             let scrubber = Scrubber.create ?config ?pool ~store ~client () in
             (* The repair engine can heal from the mirror only while the
                replicator's primary is the store being scrubbed — i.e.
                the shard is serving its primary, not a fenced fallback;
                [Shard_router.replicator] returns [None] otherwise. *)
             Option.iter (Scrubber.attach_mirror scrubber) (Shard_router.replicator router i);
             Some (i, scrubber))

let cluster_store_id router =
  let ids =
    List.init (Shard_router.shard_count router) (fun i ->
        match Shard_router.serving_store router i with
        | Some store -> Worm.store_id store
        | None -> "")
  in
  "cluster:" ^ String.sub (Worm_util.Hex.encode (Sha256.digest (String.concat "|" ids))) 0 12

(* The first global serial not provably below its owner's base — the
   same scan {!Cluster_proof.global_base} performs, here from the live
   stores instead of a shipped proof. *)
let global_base router =
  let n = Shard_router.shard_count router in
  let base_of i =
    match Shard_router.serving_store router i with
    | Some store -> (Worm.metrics store).Worm.m_sn_base
    | None -> Serial.zero
  in
  let bases = Array.init n base_of in
  let limit = Array.fold_left (fun acc b -> max acc (Serial.to_int b)) 1 bases * n in
  let rec scan g =
    if g > limit then Serial.of_int limit
    else
      let s = Partition.shard_of ~shards:n (Serial.of_int g) in
      let l = Partition.local_of ~shards:n (Serial.of_int g) in
      if Serial.(l < bases.(s)) then scan (g + 1) else Serial.of_int g
  in
  scan 1

let global_current router =
  let n = Shard_router.shard_count router in
  let total = ref 0 in
  for i = 0 to n - 1 do
    match Shard_router.serving_store router i with
    | Some store -> total := !total + Serial.to_int (Worm.metrics store).Worm.m_sn_current
    | None -> ()
  done;
  Serial.of_int !total

let tag_findings i findings =
  List.map
    (fun (f : Finding.t) -> { f with Finding.detail = Printf.sprintf "shard %d: %s" i f.Finding.detail })
    findings

let merge router reports ~skipped =
  let skip_findings =
    List.map
      (fun i ->
        Finding.make Finding.Bounds Finding.Unreadable
          (Printf.sprintf "shard %d fenced with no serving store; stripe not scrubbed" i))
      skipped
  in
  {
    Report.store_id = cluster_store_id router;
    sn_base = global_base router;
    sn_current = global_current router;
    records_scanned = List.fold_left (fun acc (_, r) -> acc + r.Report.records_scanned) 0 reports;
    slices = List.fold_left (fun acc (_, r) -> acc + r.Report.slices) 0 reports;
    host_ns = List.fold_left (fun acc (_, r) -> Int64.add acc r.Report.host_ns) 0L reports;
    pass_complete = skipped = [] && List.for_all (fun (_, r) -> r.Report.pass_complete) reports;
    findings =
      skip_findings @ List.concat_map (fun (i, r) -> tag_findings i r.Report.findings) reports;
  }

let run ?config ?pool router =
  let scrubs = scrubbers ?config ?pool router in
  let skipped =
    List.init (Shard_router.shard_count router) Fun.id
    |> List.filter (fun i -> not (List.mem_assoc i scrubs))
  in
  (* Interleave budgeted slices round-robin until every pass completes:
     audit load lands on each shard's own host ledger a slice at a time,
     the way independent machines would schedule it. *)
  let pending = ref scrubs in
  while !pending <> [] do
    pending :=
      List.filter
        (fun (_, scrub) ->
          let stats = Scrubber.run_slice scrub in
          not stats.Scrubber.pass_completed)
        !pending
  done;
  let per_shard =
    List.map
      (fun (i, scrub) ->
        match Scrubber.last_report scrub with
        | Some r -> (i, r)
        | None -> (i, Scrubber.report scrub))
      scrubs
  in
  { merged = merge router per_shard ~skipped; per_shard; skipped }
