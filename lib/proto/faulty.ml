module Drbg = Worm_crypto.Drbg

type transport = string -> string

exception Injected of string

type fault =
  | Drop of float
  | Garble of float
  | Truncate of float
  | Duplicate of float
  | Delay of { p : float; ns : int64 }
  | Raise of float
  | Crash of { after : int; down_for : int }

type stats = {
  calls : int;
  delivered : int;
  dropped : int;
  garbled : int;
  truncated : int;
  duplicated : int;
  delayed : int;
  raised : int;
  crashed : int;
}

type t = {
  inner : transport;
  faults : fault list;
  rng : Drbg.t;
  charge_delay : int64 -> unit;
  mutable calls : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable garbled : int;
  mutable truncated : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable raised : int;
  mutable injected_delay_ns : int64;
  mutable crashed : int;
}

let create ?(seed = "faulty-transport") ?(charge_delay = fun _ -> ()) ~faults inner =
  List.iter
    (function
      | Drop p | Garble p | Truncate p | Duplicate p | Raise p | Delay { p; _ } ->
          if p < 0. || p > 1. then invalid_arg "Faulty.create: probability outside [0, 1]"
      | Crash { after; down_for } ->
          if after < 0 || down_for < 0 then invalid_arg "Faulty.create: negative crash window")
    faults;
  {
    inner;
    faults;
    rng = Drbg.create ~seed;
    charge_delay;
    calls = 0;
    delivered = 0;
    dropped = 0;
    garbled = 0;
    truncated = 0;
    duplicated = 0;
    delayed = 0;
    raised = 0;
    injected_delay_ns = 0L;
    crashed = 0;
  }

(* One uniform draw in [0, 1) from 24 fresh DRBG bits. Every
   probabilistic fault consumes a draw whether or not it fires, so the
   schedule downstream of a fault does not depend on which earlier
   faults fired — schedules stay comparable across fault lists sharing
   a seed prefix. *)
let draw t =
  let b = Drbg.generate t.rng 3 in
  let v = (Char.code b.[0] lsl 16) lor (Char.code b.[1] lsl 8) lor Char.code b.[2] in
  float_of_int v /. 16777216.

let fires t p = p > 0. && draw t < p

let flip_one_byte t reply =
  if String.length reply = 0 then reply
  else begin
    let i = Drbg.int_below t.rng (String.length reply) in
    (* A zero mask would be a no-op "garble"; force at least one bit. *)
    let mask = 1 + Drbg.int_below t.rng 255 in
    (* One copy, mutated in place; [b] never escapes, so freezing it
       with [unsafe_to_string] is sound and skips the second copy. *)
    let b = Bytes.of_string reply in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
    Bytes.unsafe_to_string b
  end

let truncate_reply t reply =
  if String.length reply = 0 then reply
  else String.sub reply 0 (Drbg.int_below t.rng (String.length reply))

(* The action the fault schedule picked for this call: the first fault
   in list order whose draw fires. *)
type action = Deliver | Do_drop | Do_garble | Do_truncate | Do_duplicate | Do_delay of int64 | Do_raise | Do_crash

let pick_action t =
  let n = t.calls in
  List.fold_left
    (fun chosen fault ->
      (* Positional crash windows don't consume randomness. *)
      let fired =
        match fault with
        | Crash { after; down_for } -> n > after && n <= after + down_for
        | Drop p | Garble p | Truncate p | Duplicate p | Raise p | Delay { p; _ } -> fires t p
      in
      match (chosen, fault, fired) with
      | Deliver, Crash _, true -> Do_crash
      | Deliver, Drop _, true -> Do_drop
      | Deliver, Garble _, true -> Do_garble
      | Deliver, Truncate _, true -> Do_truncate
      | Deliver, Duplicate _, true -> Do_duplicate
      | Deliver, Delay { ns; _ }, true -> Do_delay ns
      | Deliver, Raise _, true -> Do_raise
      | chosen, _, _ -> chosen)
    Deliver t.faults

let transport t request =
  t.calls <- t.calls + 1;
  match pick_action t with
  | Do_crash ->
      t.crashed <- t.crashed + 1;
      raise (Injected "server crashed")
  | Do_drop ->
      t.dropped <- t.dropped + 1;
      raise (Injected "request dropped")
  | Do_raise ->
      t.raised <- t.raised + 1;
      failwith "faulty transport stack"
  | Do_garble ->
      t.garbled <- t.garbled + 1;
      flip_one_byte t (t.inner request)
  | Do_truncate ->
      t.truncated <- t.truncated + 1;
      truncate_reply t (t.inner request)
  | Do_duplicate ->
      t.duplicated <- t.duplicated + 1;
      ignore (t.inner request);
      t.inner request
  | Do_delay ns ->
      t.delayed <- t.delayed + 1;
      t.injected_delay_ns <- Int64.add t.injected_delay_ns ns;
      t.charge_delay ns;
      t.delivered <- t.delivered + 1;
      t.inner request
  | Deliver ->
      t.delivered <- t.delivered + 1;
      t.inner request

let transport t = transport t

let stats t =
  {
    calls = t.calls;
    delivered = t.delivered;
    dropped = t.dropped;
    garbled = t.garbled;
    truncated = t.truncated;
    duplicated = t.duplicated;
    delayed = t.delayed;
    raised = t.raised;
    crashed = t.crashed;
  }

let injected_delay_ns t = t.injected_delay_ns

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "calls=%d delivered=%d dropped=%d garbled=%d truncated=%d duplicated=%d delayed=%d raised=%d crashed=%d"
    s.calls s.delivered s.dropped s.garbled s.truncated s.duplicated s.delayed s.raised s.crashed
