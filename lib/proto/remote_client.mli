open Worm_core

(** Client side of the WORM protocol.

    Connects over an arbitrary byte transport (request bytes in,
    response bytes out — compose a {!Server} with whatever network,
    logging, or adversarial middlebox the scenario needs), fetches and
    CA-validates the store's certificates, and verifies every reply with
    {!Worm_core.Client}. The transport is completely untrusted: byte
    tampering surfaces as a protocol error or a verification violation,
    never as wrong data accepted. *)

type transport = string -> string

type t

val connect :
  ca:Worm_crypto.Rsa.public ->
  clock:Worm_simclock.Clock.t ->
  ?max_bound_age_ns:int64 ->
  transport ->
  (t, string) result
(** Sends [Hello], validates the served certificates against the CA. *)

val store_id : t -> string

val read : t -> Serial.t -> Worm_core.Client.verdict
(** One verified remote read. Transport/protocol failures surface as
    [Violation [Absence_unproven]] — an unreachable or garbled server
    proves nothing, exactly like a refusing one. *)

val audit_sweep :
  ?pool:Worm_util.Pool.t -> t -> lo:Serial.t -> hi:Serial.t -> (Serial.t * Worm_core.Client.verdict) list
(** Batched verified reads over an inclusive serial range (the
    federal-investigator workload). With a [pool], response
    verification fans out across its domains; results are identical to
    the sequential sweep. *)

type remote_audit = {
  scanned : int;  (** serials verified by an individual proof *)
  skipped_below_base : int64;
      (** serials covered wholesale by the signed base bound (one
          representative probe verifies the whole region) *)
  round_trips : int;
  violations : (Serial.t * Client.verdict) list;
      (** every non-clean verdict, including transport failures and a
          server steering the audit cursor backwards *)
}

val run_remote_audit : ?batch:int -> ?pool:Worm_util.Pool.t -> t -> remote_audit
(** Full-store remote audit over {!Message.Audit_slice} batches
    ([batch] proofs per round trip, default 64): walk the SN space from
    the bottom, verify every served proof, fast-forward across the
    below-base region under the base bound, and finish with one probe
    above the served current bound. A dishonest server — refusing
    proofs, serving forgeries, or stalling the cursor — lands in
    [violations]; an empty list is a verified-clean store. *)

val bytes_sent : t -> int
val bytes_received : t -> int
