open Worm_core

(** Client side of the WORM protocol.

    Connects over an arbitrary byte transport (request bytes in,
    response bytes out — compose a {!Server} with whatever network,
    logging, or adversarial middlebox the scenario needs), fetches and
    CA-validates the store's certificates, and verifies every reply with
    {!Worm_core.Client}. The transport is completely untrusted: byte
    tampering surfaces as a protocol error or a verification violation,
    never as wrong data accepted — and never as an escaped exception. A
    transport may raise, drop, garble, truncate, duplicate, or delay
    (see {!Faulty}); every such misbehavior degrades to a verdict after
    a bounded retry policy has had its chance to ride out the fault. *)

type transport = string -> string

(** How hard to try before a wire failure becomes a verdict. Retry
    waits are virtual: billed to the connection's {!Netsim} (when one
    is attached) and to {!transport_stats.waited_ns}, never slept. *)
type retry = {
  attempts : int;  (** max transport attempts per roundtrip, >= 1 *)
  base_backoff_ns : int64;  (** wait before the first retry *)
  backoff_multiplier : float;  (** exponential growth per further retry *)
  jitter : float;  (** extra wait, uniform in [0, jitter * backoff], decorrelates retry storms *)
  attempt_timeout_ns : int64;  (** virtual wait billed per lost (raised) reply *)
  verify_retries : int;
      (** confirming re-reads of an SN whose verdict is a violation: a
          garbled-but-decodable reply is indistinguishable from a lying
          host, so the accusation is re-derived from fresh roundtrips
          before it is believed. Genuine violations are stable and
          survive; wire damage heals. 0 disables. *)
}

val default_retry : retry
(** 4 attempts, 1 ms base backoff doubling with 25% jitter, 5 ms
    per-attempt timeout, 2 confirming re-reads. *)

val no_retry : retry
(** One attempt, no confirming re-reads: every wire hiccup is
    immediately a verdict (the pre-retry behaviour). *)

type transport_stats = {
  requests : int;  (** logical roundtrips issued *)
  attempts : int;  (** physical transport calls (>= requests) *)
  retries : int;  (** attempts beyond the first per roundtrip *)
  faults : int;  (** transport exceptions caught *)
  decode_failures : int;  (** replies that would not decode *)
  reverifications : int;  (** confirming re-reads of violating verdicts *)
  waited_ns : int64;  (** virtual backoff + timeout wait charged *)
}

type t

val connect :
  ca:Worm_crypto.Rsa.public ->
  clock:Worm_simclock.Clock.t ->
  ?max_bound_age_ns:int64 ->
  ?retry:retry ->
  ?netsim:Netsim.t ->
  transport ->
  (t, string) result
(** Sends [Hello], validates the served certificates against the CA.
    The handshake runs under the same [retry] policy as every later
    roundtrip (default {!default_retry}) and accounts both directions
    of the exchange in {!bytes_sent}/{!bytes_received}. A raising
    transport yields [Error], never an escaped exception. [netsim]
    receives the virtual retry/backoff wait via {!Netsim.charge_ns}. *)

val store_id : t -> string

val transport_stats : t -> transport_stats
(** Cumulative wire observability for this connection: handshake
    included, every retry and fault counted. *)

val read : t -> Serial.t -> Worm_core.Client.verdict
(** One verified remote read. Transport/protocol failures surface as
    [Violation [Absence_unproven]] — an unreachable or garbled server
    proves nothing, exactly like a refusing one — after the retry
    policy's attempts and confirming re-reads are exhausted. *)

val erase_tenant : t -> string -> (Worm_core.Firmware.erasure_cert, string) result
(** Request crypto-erasure of a tenant and verify the served receipt:
    the returned certificate has been checked under the store's
    deletion certificate ({!Worm_core.Client.verify_erasure_cert}) — a
    host claiming erasure without its SCPU's signature is an error, not
    a receipt. Idempotent: re-erasing returns the original
    certificate. *)

val erasure_cert : t -> string -> (Worm_core.Firmware.erasure_cert option, string) result
(** Fetch (and verify) the erasure certificate for a tenant; [Ok None]
    when the tenant has not been erased on this store. *)

val audit_sweep :
  ?pool:Worm_util.Pool.t -> t -> lo:Serial.t -> hi:Serial.t -> (Serial.t * Worm_core.Client.verdict) list
(** Batched verified reads over an inclusive serial range (the
    federal-investigator workload). With a [pool], response
    verification fans out across its domains; results are identical to
    the sequential sweep. Reassembly is by hashtable (one pass over the
    reply list); a malicious reply answering the same SN twice is
    flagged rather than first-match-trusted, and violating rows earn a
    confirming re-read before they are reported. *)

type remote_audit = {
  scanned : int;  (** serials verified by an individual proof *)
  skipped_below_base : int64;
      (** serials covered wholesale by the signed base bound (one
          representative probe verifies the whole region) *)
  round_trips : int;  (** logical audit-slice + probe roundtrips *)
  violations : (Serial.t * Client.verdict) list;
      (** every non-clean verdict, including protocol violations and a
          server steering the audit cursor backwards *)
  resume : Serial.t option;
      (** [None]: the SN space was covered. [Some c]: the transport
          gave out mid-sweep after every retry — transient failure, not
          evidence; re-run with [~cursor:c] to continue from the last
          good cursor instead of restarting at [Serial.first]. An audit
          with [resume = Some _] is incomplete and proves nothing about
          the unvisited region. *)
}

val run_remote_audit : ?batch:int -> ?pool:Worm_util.Pool.t -> ?cursor:Serial.t -> t -> remote_audit
(** Full-store remote audit over {!Message.Audit_slice} batches
    ([batch] proofs per round trip, default 64): walk the SN space from
    [cursor] (default [Serial.first]), verify every served proof,
    fast-forward across the below-base region under the base bound, and
    finish with one probe above the served current bound. A dishonest
    server — refusing proofs, serving forgeries, or stalling the
    cursor — lands in [violations]; a transport that dies mid-sweep
    lands in [resume]; an empty [violations] with [resume = None] is a
    verified-clean store. *)

val run_remote_audit_to_completion :
  ?batch:int -> ?pool:Worm_util.Pool.t -> ?max_stalls:int -> t -> remote_audit
(** {!run_remote_audit} plus the resume discipline: keep re-running
    from the returned cursor while it advances, tolerating up to
    [max_stalls] (default 2) consecutive non-advancing resumes (each of
    which still burns a full retry budget against the outage). Counters
    and violations merge across the runs. *)

val bytes_sent : t -> int
val bytes_received : t -> int
(** Physical bytes over the transport, both directions, handshake and
    every retry included. *)
