type t = {
  rtt_ns : int64;
  bandwidth : float;
  mutable requests : int;
  mutable bytes : int;
  mutable elapsed_ns : int64;
}

let create ?(rtt_ns = 1_000_000L) ?(bandwidth_bytes_per_sec = 125e6) () =
  { rtt_ns; bandwidth = bandwidth_bytes_per_sec; requests = 0; bytes = 0; elapsed_ns = 0L }

(* Round to nearest, not toward zero: a 1-byte frame at high bandwidth
   takes a fraction of a nanosecond, and truncation would bill it 0 —
   the ledger then drifts low exactly when a workload is millions of
   small frames. *)
let transfer_ns t ~bytes = Int64.of_float (Float.round (float_of_int bytes /. t.bandwidth *. 1e9))

let one_way_ns t ~bytes = Int64.add (Int64.div t.rtt_ns 2L) (transfer_ns t ~bytes)

let charge_exchange t n =
  t.bytes <- t.bytes + n;
  t.elapsed_ns <- Int64.add t.elapsed_ns (Int64.add t.rtt_ns (transfer_ns t ~bytes:n))

let note_exchange t ~bytes ~wait_ns =
  if Int64.compare wait_ns 0L < 0 then invalid_arg "Netsim.note_exchange: negative wait";
  t.requests <- t.requests + 1;
  t.bytes <- t.bytes + bytes;
  t.elapsed_ns <- Int64.add t.elapsed_ns wait_ns

let wrap t transport request =
  t.requests <- t.requests + 1;
  match transport request with
  | response ->
      charge_exchange t (String.length request + String.length response);
      response
  | exception e ->
      (* The request still crossed the wire and the caller still waited
         a round trip for the reply that never came: bill both before
         letting the fault surface, so the virtual ledger matches wire
         reality under faults. *)
      let bt = Printexc.get_raw_backtrace () in
      charge_exchange t (String.length request);
      Printexc.raise_with_backtrace e bt

let charge_ns t ns =
  if Int64.compare ns 0L < 0 then invalid_arg "Netsim.charge_ns: negative";
  t.elapsed_ns <- Int64.add t.elapsed_ns ns

let requests t = t.requests
let bytes_transferred t = t.bytes
let elapsed_ns t = t.elapsed_ns

let reset t =
  t.requests <- 0;
  t.bytes <- 0;
  t.elapsed_ns <- 0L
