(** Event-driven, virtual-time WORM server: thousands of simulated
    concurrent clients multiplexed over one {!Worm_core.Worm} store.

    The paper sizes the SCPU for bursts of 2000–2500 records/s arriving
    from {e many} writers at once; a request/response loop that signs
    per connection never reaches that regime. This server runs a single
    deterministic event loop over virtual time instead:

    - {b reads and audits} are dispatched immediately (through the pure
      {!Server.handle}) and interleave freely between write flushes;
    - {b writes} are admitted into an open batch and witnessed when the
      batch fills or its virtual deadline lapses — one
      {!Worm_core.Firmware.write_batch} signing flush covers every
      connection's queued writes, so cross-client coalescing shows up
      directly as fewer {!Worm_scpu.Device.stats} [sign_calls];
    - {b backpressure} is tied to the deferred-strengthening debt
      ledger: past [debt_ceiling] the server sheds writes with
      {!Message.Busy} and spends the slot strengthening a chunk of the
      backlog, so shedding itself drains the debt that caused it.

    Time is fully virtual: the dispatcher is a serial resource busy for
    the SCPU + host + disk ledger deltas of each operation, and each
    client individually pays its {!Netsim.one_way_ns} delivery latency.
    Everything is deterministic — same submissions, same completions. *)

open Worm_core

type witness_policy =
  | Fixed of Firmware.witness_mode
  | Adaptive of Adaptive.t
      (** consult {!Worm_core.Adaptive.recommend} at every flush (and
          feed it each write arrival) — the §4.3 burst behavior *)

type config = {
  batch_size : int;  (** flush when this many writes are queued *)
  batch_deadline_ns : int64;  (** …or this long after the batch opened *)
  debt_ceiling : int;  (** shed writes past this deferred-ledger depth *)
  drain_chunk : int;  (** strengthenings paid per shed slot (min 1) *)
  shed_retry_ns : int64;  (** Busy retry-after hint, honored by clients *)
  retry_backoff_ns : int64;  (** client resend backoff per lost frame *)
  max_attempts : int;  (** resends before a client gives up *)
  witness : witness_policy;
}

val default_config : config
(** 32-write batches, 2 ms deadline, 4096 debt ceiling, 5 attempts,
    fixed [Strong_now] witnesses. *)

type outcome =
  | Replied of Message.response
  | Gave_up  (** every attempt was lost in flight *)

type completion = {
  client : int;
  submitted_ns : int64;  (** client's original send time *)
  delivered_ns : int64;  (** reply (or surrender) back at the client *)
  attempts : int;
  outcome : outcome;
}

type stats = {
  flushes : int;  (** write batches signed *)
  batched_writes : int;  (** writes witnessed through those flushes *)
  shed : int;  (** writes answered Busy under debt pressure *)
  gave_up : int;
  strengthened : int;  (** deferred witnesses repaid by shed slots *)
}

type t

val create : ?config:config -> ?ingress:(string -> string) -> clock:Worm_simclock.Clock.t -> net:Netsim.t -> Server.t -> t
(** [ingress] filters each arriving frame (e.g. {!Faulty.wrap}-style
    fault injection over the identity transport): raising or returning
    bytes that no longer decode counts as a frame lost in flight — the
    client backs off and resends, up to [max_attempts]. *)

val submit : t -> client:int -> at:int64 -> ?on_reply:(completion -> unit) -> Message.request -> unit
(** Queue a request sent by [client] at virtual time [at]; it reaches
    the server one {!Netsim.one_way_ns} later. [on_reply] runs at
    delivery and may {!submit} follow-ups (read-after-write chains). *)

val run : t -> unit
(** Drain the event queue to empty (including retries and follow-ups),
    advancing the shared clock monotonically. *)

val server : t -> Server.t
val stats : t -> stats

val completions : t -> completion list
(** Every finished request, in completion order. *)

val wire_minor_words : t -> float
(** Minor-heap words this loop's wire path has allocated so far:
    request encode at {!submit}, frame filter + decode at arrival, and
    response encode/framing at delivery — none of the store dispatch
    (signing, hashing, disk) and none of the [on_reply] callbacks.
    Divided by completions, this is the allocation column the serve and
    scaling bench rows report. *)
