(** Protocol front end for a sharded cluster.

    Sits where {!Server} sits for a single store, over a
    {!Worm_cluster.Shard_router}: the cluster vocabulary
    ([Cluster_hello] / [Cluster_read] / [Cluster_read_many] /
    [Cluster_proof_get]) is answered by routing through the partition,
    and plain [Write]s are striped across the shards by the router's
    allocation cursor — a cluster is a drop-in ingest target.

    Each shard also exposes an ordinary {!Server.t} over its serving
    store ({!shard_server}), which is how multiple {!Event_server} loops
    sit over one router: mount one loop per shard, let each batch its
    own stripe's writes, and translate the per-shard acks back to global
    serials with {!Worm_cluster.Shard_router.register_ack}. The
    dispatchers are cached and rebuilt when a failover changes a shard's
    serving store. *)

module Router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof

type t

val create : ?limits:Server.limits -> Router.t -> t
val router : t -> Router.t

val shard_server : t -> int -> Server.t option
(** The per-shard dispatcher over the shard's current serving store, or
    [None] while the shard is fenced (primary dead, mirror not yet
    promoted). Callers on the wire path turn [None] into a
    [Protocol_error]-style refusal — never an exception. *)

val handle : t -> Message.request -> Message.response
(** Pure dispatch of the cluster vocabulary (plus routed [Write]s).
    Single-store reads/audits are refused with [Protocol_error] — they
    belong on a {!shard_server}, where the client knows which SCPU's
    certificates it is verifying against. *)

val handle_bytes : t -> string -> string
(** Decode → refresh shard bounds → dispatch → encode; total on
    adversarial input, like {!Server.handle_bytes}. *)

val encode_response : t -> Message.response -> string
(** Encode through the cluster's encode-once caches: the aggregated
    freshness proof and the cluster hello ack are re-encoded only when
    some signed leaf inside them (a cert or a shard bound record)
    actually changed — decided by physical equality on the records the
    stores hand out, so a heartbeat or failover invalidates the cache
    automatically. Shard-served read responses share one {!Server}
    read memo across all shards. Bytes are identical to
    {!Message.encode_response}. *)
