(** Server side of the WORM protocol: an honest request dispatcher over
    a local {!Worm_core.Worm} store. Honesty is merely a default — the
    security argument never relies on it, and the tests swap in
    dishonest dispatchers freely. *)

type t

val create : Worm_core.Worm.t -> t
val store : t -> Worm_core.Worm.t

val handle : t -> Message.request -> Message.response

val handle_bytes : t -> string -> string
(** Decode, dispatch, encode; malformed requests produce an encoded
    [Protocol_error], and so does a dispatch that raises — adversarial
    bytes never crash the server. Replaying a request byte-for-byte
    re-serves the identical reply (dispatch is a pure function of the
    request and store state), so a duplicating transport is harmless. *)
