(** Server side of the WORM protocol: an honest request dispatcher over
    a local {!Worm_core.Worm} store. Honesty is merely a default — the
    security argument never relies on it, and the tests swap in
    dishonest dispatchers freely. *)

type t

type limits = {
  max_read_many : int;  (** largest SN list a {!Message.Read_many} may carry *)
  max_audit_slice : int;  (** server-side clamp on {!Message.Audit_slice} [max] *)
}
(** Per-request work caps. Without them a single adversarial frame
    (millions of SNs in one [Read_many], [max_int] in an [Audit_slice])
    monopolizes the dispatcher — fatal under the single-threaded event
    server, where every other client queues behind it. *)

val default_limits : limits
(** 256 SNs per [Read_many], 1024 per audit slice. *)

val create : ?limits:limits -> Worm_core.Worm.t -> t
val store : t -> Worm_core.Worm.t
val limits : t -> limits

val refresh : t -> unit
(** Heal bound-cache staleness: re-sign the base/current bounds if the
    base moved, the cache expired, or writes advanced the SCPU counter
    past the cached current bound. This is the {e only} place the serve
    path spends SCPU signatures; it is convergent — a second call at the
    same store state does nothing. {!handle_bytes} calls it before every
    dispatch; the event server calls it once per batch. *)

val handle : t -> Message.request -> Message.response
(** Dispatch one request. For the read/audit vocabulary this is a pure
    function of the request and store state — it reads bounds through
    {!Worm_core.Worm.peek_base_bound} / [peek_current_bound] and never
    signs, so replaying a request re-serves identical bytes (pair with
    {!refresh} for freshness). [Write] is the one mutating request:
    each dispatch allocates a fresh serial. *)

val handle_bytes : t -> string -> string
(** Decode, {!refresh}, dispatch, encode; malformed requests produce an
    encoded [Protocol_error], and so does a dispatch that raises —
    adversarial bytes never crash the server. For non-[Write] requests a
    byte-for-byte replay re-serves the identical reply, so a duplicating
    transport is harmless. *)

val encode_response : t -> Message.response -> string
(** Encode through this server's encode-once memo: epoch-stable
    artifacts (hello ack, base/current bounds, window bounds, deletion
    proofs) are encoded the first time they are served and spliced as
    cached fragments after that. Entries are keyed by physical equality
    on the record the store hands out, so a refresh that re-signs a
    bound (a fresh record) misses the cache automatically — the memo can
    never serve a stale artifact. Bytes are identical to
    {!Message.encode_response}. *)

val response_wire_length : t -> Message.response -> int
(** Wire length of {!encode_response} without materialising the string
    (the event server charges the network by length only). Populates
    the same memo. *)

type memo_stats = { memo_hits : int; memo_misses : int }

val global_memo_stats : unit -> memo_stats
(** Aggregate encode-memo counters across all server instances since
    program start (surfaced by [wormctl stats] and the wire bench). *)

(** {2 Memo plumbing for other front ends}

    The cluster server reuses the read-response memo (one shared
    instance across its shards — physical keys never collide between
    stores) and reports its own proof/hello cache traffic through the
    same counters. *)

type read_memo

val read_memo : unit -> read_memo
val memo_read_response : read_memo -> Worm_util.Codec.encoder -> Worm_core.Proof.read_response -> unit
val note_memo_hit : unit -> unit
val note_memo_miss : unit -> unit
