open Worm_core
module Clock = Worm_simclock.Clock
module Device = Worm_scpu.Device
module Disk = Worm_simdisk.Disk

type witness_policy = Fixed of Firmware.witness_mode | Adaptive of Adaptive.t

type config = {
  batch_size : int;
  batch_deadline_ns : int64;
  debt_ceiling : int;
  drain_chunk : int;
  shed_retry_ns : int64;
  retry_backoff_ns : int64;
  max_attempts : int;
  witness : witness_policy;
}

let default_config =
  {
    batch_size = 32;
    batch_deadline_ns = Clock.ns_of_ms 2.;
    debt_ceiling = 4096;
    drain_chunk = 32;
    shed_retry_ns = Clock.ns_of_ms 5.;
    retry_backoff_ns = Clock.ns_of_ms 1.;
    max_attempts = 5;
    witness = Fixed Firmware.Strong_now;
  }

type outcome = Replied of Message.response | Gave_up

type completion = { client : int; submitted_ns : int64; delivered_ns : int64; attempts : int; outcome : outcome }

(* One in-flight request: the encoded frame plus enough context to
   deliver (or retry) it. [j_submitted] is the client's original send
   time — latency is measured from there, across every retry. *)
type job = {
  j_client : int;
  j_submitted : int64;
  j_attempts : int;
  j_bytes : string;
  j_on_reply : (completion -> unit) option;
}

type pending_write = { pw_job : job; pw_policy : Policy.t; pw_tenant : string; pw_blocks : string list }

type event = Arrival of job | Flush of int

(* Deterministic priority queue: virtual time, FIFO within a tick. *)
module Pq = Map.Make (struct
  type t = int64 * int

  let compare (t1, s1) (t2, s2) =
    let c = Int64.compare t1 t2 in
    if c <> 0 then c else Int.compare s1 s2
end)

type stats = { flushes : int; batched_writes : int; shed : int; gave_up : int; strengthened : int }

type t = {
  server : Server.t;
  worm : Worm.t;
  clock : Clock.t;
  net : Netsim.t;
  config : config;
  ingress : (string -> string) option;
  mutable queue : event Pq.t;
  mutable seq : int;
  mutable free_at : int64;  (** the single dispatcher is busy until then *)
  mutable pending : pending_write list;  (** open write batch, reversed *)
  mutable pending_count : int;
  mutable batch_gen : int;  (** invalidates stale deadline events *)
  mutable completions : completion list;  (** reversed *)
  mutable stats : stats;
  mutable wire_minor_words : float;  (** minor words allocated encoding/decoding frames *)
}

let zero_stats = { flushes = 0; batched_writes = 0; shed = 0; gave_up = 0; strengthened = 0 }

let create ?(config = default_config) ?ingress ~clock ~net server =
  if config.batch_size < 1 then invalid_arg "Event_server.create: batch_size < 1";
  if config.max_attempts < 1 then invalid_arg "Event_server.create: max_attempts < 1";
  {
    server;
    worm = Server.store server;
    clock;
    net;
    config = { config with drain_chunk = Stdlib.max 1 config.drain_chunk };
    ingress;
    queue = Pq.empty;
    seq = 0;
    free_at = Clock.now clock;
    pending = [];
    pending_count = 0;
    batch_gen = 0;
    completions = [];
    stats = zero_stats;
    wire_minor_words = 0.;
  }

let server t = t.server
let stats t = t.stats
let completions t = List.rev t.completions
let wire_minor_words t = t.wire_minor_words

(* Meter exactly the wire work — request encode, frame decode, response
   encode/framing — and none of the store dispatch (signing, hashing,
   disk) or client callbacks. This is the allocation column the serve
   and scaling bench rows report per request. *)
let metered t f =
  let w0 = Worm_util.Allocmeter.minor_words () in
  let r = f () in
  t.wire_minor_words <- t.wire_minor_words +. (Worm_util.Allocmeter.minor_words () -. w0);
  r

let enqueue t ~at ev =
  t.seq <- t.seq + 1;
  t.queue <- Pq.add (at, t.seq) ev t.queue

let submit t ~client ~at ?on_reply request =
  let bytes = metered t (fun () -> Message.encode_request request) in
  let arrives = Int64.add at (Netsim.one_way_ns t.net ~bytes:(String.length bytes)) in
  enqueue t ~at:arrives
    (Arrival { j_client = client; j_submitted = at; j_attempts = 0; j_bytes = bytes; j_on_reply = on_reply })

(* Virtual service cost of whatever just ran: the sum of the SCPU, host
   CPU, and disk busy-ledger deltas around the call. *)
let busy_total t =
  let dev = Firmware.device (Worm.firmware t.worm) in
  Int64.add (Device.busy_ns dev) (Int64.add (Worm.host_busy_ns t.worm) (Disk.busy_ns (Worm.disk t.worm)))

(* Completions carry the structured response; the wire only needs its
   length (for transit time and byte accounting), so delivery never
   materialises the encoded string — a pooled length-only encode, or a
   precomputed length when [flush] frames a whole batch at once. *)
let deliver_len t job ~attempts ~finished_ns ~resp_len response =
  let delivered_ns = Int64.add finished_ns (Netsim.one_way_ns t.net ~bytes:resp_len) in
  Netsim.note_exchange t.net
    ~bytes:(String.length job.j_bytes + resp_len)
    ~wait_ns:(Int64.sub delivered_ns job.j_submitted);
  let c = { client = job.j_client; submitted_ns = job.j_submitted; delivered_ns; attempts; outcome = Replied response } in
  t.completions <- c :: t.completions;
  Option.iter (fun f -> f c) job.j_on_reply

let deliver t job ~attempts ~finished_ns response =
  let resp_len = metered t (fun () -> Server.response_wire_length t.server response) in
  deliver_len t job ~attempts ~finished_ns ~resp_len response

let give_up t job ~attempts ~now =
  t.stats <- { t.stats with gave_up = t.stats.gave_up + 1 };
  Netsim.note_exchange t.net
    ~bytes:(String.length job.j_bytes * attempts)
    ~wait_ns:(Int64.sub now job.j_submitted);
  let c = { client = job.j_client; submitted_ns = job.j_submitted; delivered_ns = now; attempts; outcome = Gave_up } in
  t.completions <- c :: t.completions;
  Option.iter (fun f -> f c) job.j_on_reply

(* Coalesce the open batch into one firmware signing flush: every
   queued write — across every connection — is witnessed through a
   single Worm.write_batch call, so the SCPU pays its per-key setup once
   per flush instead of once per client. *)
let flush t ~now =
  if t.pending_count > 0 then begin
    let batch = List.rev t.pending in
    t.pending <- [];
    t.pending_count <- 0;
    t.batch_gen <- t.batch_gen + 1;
    let start = Int64.max now t.free_at in
    Clock.advance_to t.clock start;
    (* A tenant can be erased by an interleaved request between a
       write's admission and its flush; re-check here so the batch
       never reaches the firmware with a write it would refuse — the
       refused client gets a protocol error, everyone else's batch
       proceeds. *)
    let refused, batch =
      List.partition (fun pw -> pw.pw_tenant <> "" && Worm.tenant_is_erased t.worm pw.pw_tenant) batch
    in
    List.iter
      (fun pw ->
        deliver t pw.pw_job ~attempts:(pw.pw_job.j_attempts + 1) ~finished_ns:start
          (Message.Protocol_error (Printf.sprintf "tenant %S has been erased; writes refused" pw.pw_tenant)))
      refused;
    if batch = [] then ()
    else begin
    let before = busy_total t in
    Server.refresh t.server;
    let witness =
      match t.config.witness with
      | Fixed mode -> mode
      | Adaptive a -> Adaptive.recommend a ~now:start ~deferred_backlog:(Worm.deferred_length t.worm)
    in
    let sns =
      Worm.write_attr_batch ~witness t.worm
        (List.map
           (fun pw ->
             ( Attr.make ~tenant:pw.pw_tenant ~created_at:0L (* stamped by the firmware *) ~policy:pw.pw_policy (),
               pw.pw_blocks ))
           batch)
    in
    let finished = Int64.add start (Int64.sub (busy_total t) before) in
    t.free_at <- finished;
    t.stats <- { t.stats with flushes = t.stats.flushes + 1; batched_writes = t.stats.batched_writes + List.length batch };
    (* frame every ack of the batch through one pooled buffer; per-ack
       wire lengths fall out of the encoder position deltas *)
    let ack_lens =
      metered t (fun () ->
          Worm_util.Codec.with_encoder (fun enc ->
              List.map
                (fun sn ->
                  let p0 = Worm_util.Codec.length enc in
                  Message.encode_response_into enc (Message.Write_ack { sn });
                  Worm_util.Codec.length enc - p0)
                sns))
    in
    List.iter2
      (fun pw (sn, resp_len) ->
        deliver_len t pw.pw_job ~attempts:(pw.pw_job.j_attempts + 1) ~finished_ns:finished ~resp_len
          (Message.Write_ack { sn }))
      batch
      (List.combine sns ack_lens)
    end
  end

(* Admission control: the deferred-strengthening ledger is the debt this
   store owes its own security argument — weak witnesses must be
   re-signed within their lifetime (§4.3). Over the ceiling we shed the
   write with Busy and spend the slot paying down a chunk of debt
   instead, so backpressure itself guarantees the ledger drains and a
   shed client's retry eventually lands. *)
let shed_write t job ~start =
  t.stats <- { t.stats with shed = t.stats.shed + 1 };
  let before = busy_total t in
  let repaid = Worm.strengthen_pending t.worm ~max:t.config.drain_chunk () in
  t.stats <- { t.stats with strengthened = t.stats.strengthened + repaid };
  let finished = Int64.add start (Int64.sub (busy_total t) before) in
  t.free_at <- finished;
  let busy_len =
    metered t (fun () -> Message.response_wire_length (Message.Busy { retry_after_ns = t.config.shed_retry_ns }))
  in
  let retry_at = Int64.add (Int64.add finished (Netsim.one_way_ns t.net ~bytes:busy_len)) t.config.shed_retry_ns in
  Netsim.note_exchange t.net
    ~bytes:(String.length job.j_bytes + busy_len)
    ~wait_ns:(Int64.sub retry_at job.j_submitted);
  (* the client honors retry_after; the retry is not a transport failure
     and does not count against max_attempts *)
  enqueue t ~at:retry_at (Arrival job)

let process_arrival t ~now job =
  let start = Int64.max now t.free_at in
  Clock.advance_to t.clock start;
  let attempts = job.j_attempts + 1 in
  let frame = match t.ingress with None -> Some job.j_bytes | Some filter -> ( try Some (filter job.j_bytes) with _ -> None) in
  (* submit always encodes a well-formed request, so a frame that no
     longer decodes was damaged in flight — same recovery as a lost one:
     client backoff and resend, up to max_attempts *)
  let decoded =
    metered t (fun () -> Option.bind frame (fun bytes -> Result.to_option (Message.decode_request bytes)))
  in
  match decoded with
  | None ->
      if attempts >= t.config.max_attempts then give_up t job ~attempts ~now:start
      else begin
        let backoff = Int64.mul (Int64.of_int attempts) t.config.retry_backoff_ns in
        enqueue t ~at:(Int64.add start backoff) (Arrival { job with j_attempts = attempts })
      end
  | Some (Message.Write { policy = _; tenant; blocks = _ }) when tenant <> "" && Worm.tenant_is_erased t.worm tenant ->
      (* Refuse at admission: an erased tenant's write must never enter
         a batch (it would mint a record no key can decrypt). *)
      t.free_at <- start;
      deliver t job ~attempts ~finished_ns:start
        (Message.Protocol_error (Printf.sprintf "tenant %S has been erased; writes refused" tenant))
  | Some (Message.Write { policy; tenant; blocks }) ->
      (match t.config.witness with
      | Adaptive a -> Adaptive.note_write a ~now:start
      | Fixed _ -> ());
      (* [job] keeps its pre-attempt count: the batch delivery and the
         shed retry both reconstruct attempts as [j_attempts + 1] *)
      if Worm.deferred_length t.worm > t.config.debt_ceiling then shed_write t job ~start
      else begin
        t.pending <- { pw_job = job; pw_policy = policy; pw_tenant = tenant; pw_blocks = blocks } :: t.pending;
        t.pending_count <- t.pending_count + 1;
        if t.pending_count = 1 then enqueue t ~at:(Int64.add start t.config.batch_deadline_ns) (Flush t.batch_gen);
        if t.pending_count >= t.config.batch_size then flush t ~now:start
      end
  | Some request ->
      (* reads and audits are served interleaved, never held for a batch *)
      let before = busy_total t in
      Server.refresh t.server;
      let response =
        try Server.handle t.server request
        with exn -> Message.Protocol_error ("dispatch failed: " ^ Printexc.to_string exn)
      in
      let finished = Int64.add start (Int64.sub (busy_total t) before) in
      t.free_at <- finished;
      deliver t job ~attempts ~finished_ns:finished response

let run t =
  let rec go () =
    match Pq.min_binding_opt t.queue with
    | None -> ()
    | Some (((at, _) as key), ev) ->
        t.queue <- Pq.remove key t.queue;
        (match ev with
        | Arrival job -> process_arrival t ~now:at job
        | Flush gen -> if gen = t.batch_gen && t.pending_count > 0 then flush t ~now:at);
        go ()
  in
  go ();
  (* safety net; any open batch always has a live deadline event *)
  flush t ~now:(Clock.now t.clock)
