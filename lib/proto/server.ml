open Worm_core

type limits = { max_read_many : int; max_audit_slice : int }

let default_limits = { max_read_many = 256; max_audit_slice = 1024 }

type t = { worm : Worm.t; limits : limits }

let create ?(limits = default_limits) worm = { worm; limits }
let store t = t.worm
let limits t = t.limits

(* Bound-cache maintenance, hoisted out of dispatch. An audit must cover
   every allocated serial: a cached current bound that predates recent
   writes would truncate the walk while the final above-bound probe
   still verified — so re-sign when the SCPU counter has moved past the
   cache. Keeping the mutation here (and not in [handle]) keeps dispatch
   pure: serving a request consumes no SCPU signatures, so a replaying
   or duplicating client cannot burn device time, and re-dispatching the
   same bytes re-serves the identical reply. *)
let refresh t =
  ignore (Worm.cached_base_bound t.worm : Firmware.base_bound);
  let current = Worm.cached_current_bound t.worm in
  if Serial.(current.Firmware.sn < Firmware.sn_current (Worm.firmware t.worm)) then Worm.heartbeat t.worm

let handle t = function
  | Message.Hello ->
      let fw = Worm.firmware t.worm in
      Message.Hello_ack
        {
          store_id = Worm.store_id t.worm;
          signing_cert = Firmware.signing_cert fw;
          deletion_cert = Firmware.deletion_cert fw;
        }
  | Message.Read sn -> Message.Read_reply { sn; response = Worm.read t.worm sn }
  | Message.Read_many sns ->
      (* Cap before doing any per-SN work: an adversarial frame listing
         millions of serials must not monopolize the dispatcher (or the
         event loop it runs under). *)
      let n = List.length sns in
      if n > t.limits.max_read_many then
        Message.Protocol_error (Printf.sprintf "read-many of %d sns exceeds limit %d" n t.limits.max_read_many)
      else Message.Read_many_reply (List.map (fun sn -> (sn, Worm.read t.worm sn)) sns)
  | Message.Write { policy; blocks } ->
      (* Synchronous ingest — the unbatched baseline. The event server
         never routes writes here; it coalesces them across connections
         into {!Worm_core.Worm.write_batch} flushes instead. *)
      Message.Write_ack { sn = Worm.write t.worm ~policy ~blocks }
  | Message.Audit_slice { cursor; max } ->
      let base = Worm.peek_base_bound t.worm in
      let current = Worm.peek_current_bound t.worm in
      (* Clamp, don't refuse: a truncated reply still carries the resume
         cursor, so an honest auditor asking for too much just takes one
         more round trip — while a hostile [max] cannot pin the loop. *)
      let max = Stdlib.max 1 (Stdlib.min t.limits.max_audit_slice max) in
      if Serial.(cursor < base.Firmware.sn) then
        (* The whole below-base region is covered by one signed bound;
           skip the auditor straight to the base instead of streaming
           per-SN proofs of ancient deletions. *)
        Message.Audit_slice_reply { replies = []; next = Some base.Firmware.sn; base; current }
      else begin
        let rec serve acc sn served =
          if served >= max || Serial.(sn > current.Firmware.sn) then (List.rev acc, sn)
          else serve ((sn, Worm.read t.worm sn) :: acc) (Serial.next sn) (served + 1)
        in
        let replies, stopped = serve [] cursor 0 in
        let next = if Serial.(stopped > current.Firmware.sn) then None else Some stopped in
        Message.Audit_slice_reply { replies; next; base; current }
      end
  | Message.Cluster_hello | Message.Cluster_read _ | Message.Cluster_read_many _ | Message.Cluster_proof_get ->
      (* The cluster vocabulary only makes sense against a router front
         end ({!Cluster_server}); a single store has no shards to route
         over or aggregate, and pretending to be shard 0 of 1 would hand
         clients a freshness proof with the wrong trust story. *)
      Message.Protocol_error "cluster request sent to a single-store server"

(* The server must stay total on adversarial input: nothing a client
   sends may crash the dispatcher — a fault-injecting transport (see
   {!Faulty}) replays and mangles requests freely. Bound staleness is
   healed by [refresh] before dispatch; [refresh] is convergent (a
   second call at the same store state does nothing), so replayed bytes
   still re-serve identical replies for the read/audit vocabulary. *)
let handle_bytes t bytes =
  match Message.decode_request bytes with
  | Error e -> Message.encode_response (Message.Protocol_error e)
  | Ok request -> begin
      refresh t;
      match Message.encode_response (handle t request) with
      | reply -> reply
      | exception exn ->
          Message.encode_response (Message.Protocol_error ("dispatch failed: " ^ Printexc.to_string exn))
    end
