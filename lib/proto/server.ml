open Worm_core

type t = { worm : Worm.t }

let create worm = { worm }
let store t = t.worm

let handle t = function
  | Message.Hello ->
      let fw = Worm.firmware t.worm in
      Message.Hello_ack
        {
          store_id = Worm.store_id t.worm;
          signing_cert = Firmware.signing_cert fw;
          deletion_cert = Firmware.deletion_cert fw;
        }
  | Message.Read sn -> Message.Read_reply { sn; response = Worm.read t.worm sn }
  | Message.Read_many sns ->
      Message.Read_many_reply (List.map (fun sn -> (sn, Worm.read t.worm sn)) sns)
  | Message.Audit_slice { cursor; max } ->
      let base = Worm.cached_base_bound t.worm in
      (* An audit must cover every allocated serial: a cached bound that
         predates recent writes would truncate the walk while the final
         above-bound probe still verified. Refresh when the SCPU counter
         has moved past the cache. *)
      let current = Worm.cached_current_bound t.worm in
      let current =
        if Serial.(current.Firmware.sn < Firmware.sn_current (Worm.firmware t.worm)) then begin
          Worm.heartbeat t.worm;
          Worm.cached_current_bound t.worm
        end
        else current
      in
      let max = Stdlib.max 1 max in
      if Serial.(cursor < base.Firmware.sn) then
        (* The whole below-base region is covered by one signed bound;
           skip the auditor straight to the base instead of streaming
           per-SN proofs of ancient deletions. *)
        Message.Audit_slice_reply { replies = []; next = Some base.Firmware.sn; base; current }
      else begin
        let rec serve acc sn served =
          if served >= max || Serial.(sn > current.Firmware.sn) then (List.rev acc, sn)
          else serve ((sn, Worm.read t.worm sn) :: acc) (Serial.next sn) (served + 1)
        in
        let replies, stopped = serve [] cursor 0 in
        let next = if Serial.(stopped > current.Firmware.sn) then None else Some stopped in
        Message.Audit_slice_reply { replies; next; base; current }
      end

(* The server must stay total and idempotent on adversarial input:
   [handle] is a pure function of the request and the store state
   (a replayed request re-serves the identical bytes), and nothing a
   client sends may crash the dispatcher — a fault-injecting transport
   (see {!Faulty}) replays and mangles requests freely. *)
let handle_bytes t bytes =
  match Message.decode_request bytes with
  | Error e -> Message.encode_response (Message.Protocol_error e)
  | Ok request -> begin
      match Message.encode_response (handle t request) with
      | reply -> reply
      | exception exn ->
          Message.encode_response
            (Message.Protocol_error ("dispatch failed: " ^ Printexc.to_string exn))
    end
