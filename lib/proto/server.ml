open Worm_core
module Codec = Worm_util.Codec

type limits = { max_read_many : int; max_audit_slice : int }

let default_limits = { max_read_many = 256; max_audit_slice = 1024 }

(* ---------- encode-once memo ---------- *)

(* Epoch-stable artifacts — bounds, window proofs, deletion proofs, the
   hello ack — are re-served verbatim between refreshes, so their
   canonical encodings are cached and spliced with [Codec.raw]. Every
   entry is keyed by physical equality on the record the store hands
   out: [Worm.heartbeat]/[refresh] allocates a fresh bound record when
   it re-signs, so a stale cache entry simply never matches again — the
   memo is invalidated exactly when the served artifact changes, by
   construction, with no explicit flush to forget. *)

let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0
let note_memo_hit () = Atomic.incr memo_hits
let note_memo_miss () = Atomic.incr memo_misses

type memo_stats = { memo_hits : int; memo_misses : int }

let global_memo_stats () = { memo_hits = Atomic.get memo_hits; memo_misses = Atomic.get memo_misses }

let mru_cap = 4
let deleted_cap = 4096

type memo = {
  mutable m_hello : (Worm_crypto.Cert.t * Worm_crypto.Cert.t * string) option;
  mutable m_current : (Firmware.current_bound * string) list;  (** MRU, [mru_cap] *)
  mutable m_base : (Firmware.base_bound * string) list;
  mutable m_window : (Firmware.deletion_window * string) list;
  m_deleted : (Serial.t, string * string) Hashtbl.t;  (** sn -> (proof witness, fragment) *)
}

let memo_create () = { m_hello = None; m_current = []; m_base = []; m_window = []; m_deleted = Hashtbl.create 64 }

let fragment response = Codec.encode Message.encode_read_response response

let memo_fragment ~get ~set key response =
  match List.find_opt (fun (k, _) -> k == key) (get ()) with
  | Some (_, frag) ->
      Atomic.incr memo_hits;
      frag
  | None ->
      Atomic.incr memo_misses;
      let frag = fragment response in
      set ((key, frag) :: List.filteri (fun i _ -> i < mru_cap - 1) (get ()));
      frag

(* The default encoder for anything not worth caching: [Found] carries
   the data blocks (large, and the audit walk touches each live SN
   once), [Refused] is an error path, [Erased] is cheap to re-encode
   and rare enough that caching it would only grow the memo. *)
let memo_read_response memo enc response =
  match response with
  | Proof.Proof_unallocated current ->
      Codec.raw enc
        (memo_fragment ~get:(fun () -> memo.m_current) ~set:(fun l -> memo.m_current <- l) current response)
  | Proof.Proof_below_base base ->
      Codec.raw enc (memo_fragment ~get:(fun () -> memo.m_base) ~set:(fun l -> memo.m_base <- l) base response)
  | Proof.Proof_in_window w ->
      Codec.raw enc (memo_fragment ~get:(fun () -> memo.m_window) ~set:(fun l -> memo.m_window <- l) w response)
  | Proof.Proof_deleted { sn; proof } -> begin
      match Hashtbl.find_opt memo.m_deleted sn with
      | Some (p, frag) when p == proof ->
          Atomic.incr memo_hits;
          Codec.raw enc frag
      | _ ->
          Atomic.incr memo_misses;
          let frag = fragment response in
          if Hashtbl.length memo.m_deleted >= deleted_cap then Hashtbl.reset memo.m_deleted;
          Hashtbl.replace memo.m_deleted sn (proof, frag);
          Codec.raw enc frag
    end
  | Proof.Found _ | Proof.Refused _ | Proof.Erased _ -> Message.encode_read_response enc response

(* The cluster front end shares one read memo across all its shards:
   physical keys never collide between stores, so per-shard segregation
   would buy nothing. *)
type read_memo = memo

let read_memo () = memo_create ()

type t = {
  worm : Worm.t;
  limits : limits;
  memo : memo;
  hook : Codec.encoder -> Proof.read_response -> unit;
}

let create ?(limits = default_limits) worm =
  let memo = memo_create () in
  { worm; limits; memo; hook = memo_read_response memo }

let store t = t.worm
let limits t = t.limits

let encode_response t response =
  match response with
  | Message.Hello_ack { signing_cert; deletion_cert; _ } -> begin
      match t.memo.m_hello with
      | Some (sc, dc, bytes) when sc == signing_cert && dc == deletion_cert ->
          Atomic.incr memo_hits;
          bytes
      | _ ->
          Atomic.incr memo_misses;
          let bytes = Message.encode_response response in
          t.memo.m_hello <- Some (signing_cert, deletion_cert, bytes);
          bytes
    end
  | _ -> Message.encode_response ~read_response:t.hook response

let response_wire_length t response =
  match response with
  | Message.Hello_ack _ -> String.length (encode_response t response)
  | _ -> Message.response_wire_length ~read_response:t.hook response

(* Bound-cache maintenance, hoisted out of dispatch. An audit must cover
   every allocated serial: a cached current bound that predates recent
   writes would truncate the walk while the final above-bound probe
   still verified — so re-sign when the SCPU counter has moved past the
   cache. Keeping the mutation here (and not in [handle]) keeps dispatch
   pure: serving a request consumes no SCPU signatures, so a replaying
   or duplicating client cannot burn device time, and re-dispatching the
   same bytes re-serves the identical reply. *)
let refresh t =
  ignore (Worm.cached_base_bound t.worm : Firmware.base_bound);
  let current = Worm.cached_current_bound t.worm in
  if Serial.(current.Firmware.sn < Firmware.sn_current (Worm.firmware t.worm)) then Worm.heartbeat t.worm

let handle t = function
  | Message.Hello ->
      let fw = Worm.firmware t.worm in
      Message.Hello_ack
        {
          store_id = Worm.store_id t.worm;
          signing_cert = Firmware.signing_cert fw;
          deletion_cert = Firmware.deletion_cert fw;
        }
  | Message.Read sn -> Message.Read_reply { sn; response = Worm.read t.worm sn }
  | Message.Read_many sns ->
      (* Cap before doing any per-SN work: an adversarial frame listing
         millions of serials must not monopolize the dispatcher (or the
         event loop it runs under). *)
      let n = List.length sns in
      if n > t.limits.max_read_many then
        Message.Protocol_error (Printf.sprintf "read-many of %d sns exceeds limit %d" n t.limits.max_read_many)
      else Message.Read_many_reply (List.map (fun sn -> (sn, Worm.read t.worm sn)) sns)
  | Message.Write { policy; tenant; blocks } ->
      (* Synchronous ingest — the unbatched baseline. The event server
         never routes writes here; it coalesces them across connections
         into {!Worm_core.Worm.write_batch} flushes instead. Erased
         tenants are refused at the protocol layer: admitting the write
         would mint a record no key can ever decrypt. *)
      if tenant <> "" && Worm.tenant_is_erased t.worm tenant then
        Message.Protocol_error (Printf.sprintf "tenant %S has been erased; writes refused" tenant)
      else Message.Write_ack { sn = Worm.write t.worm ~tenant ~policy ~blocks }
  | Message.Audit_slice { cursor; max } ->
      let base = Worm.peek_base_bound t.worm in
      let current = Worm.peek_current_bound t.worm in
      (* Clamp, don't refuse: a truncated reply still carries the resume
         cursor, so an honest auditor asking for too much just takes one
         more round trip — while a hostile [max] cannot pin the loop. *)
      let max = Stdlib.max 1 (Stdlib.min t.limits.max_audit_slice max) in
      if Serial.(cursor < base.Firmware.sn) then
        (* The whole below-base region is covered by one signed bound;
           skip the auditor straight to the base instead of streaming
           per-SN proofs of ancient deletions. *)
        Message.Audit_slice_reply { replies = []; next = Some base.Firmware.sn; base; current }
      else begin
        let rec serve acc sn served =
          if served >= max || Serial.(sn > current.Firmware.sn) then (List.rev acc, sn)
          else serve ((sn, Worm.read t.worm sn) :: acc) (Serial.next sn) (served + 1)
        in
        let replies, stopped = serve [] cursor 0 in
        let next = if Serial.(stopped > current.Firmware.sn) then None else Some stopped in
        Message.Audit_slice_reply { replies; next; base; current }
      end
  | Message.Erase_tenant tenant ->
      (* Right to be forgotten: one SCPU key destruction, O(1) in record
         count. Idempotent — re-erasing returns the original cert. *)
      if tenant = "" then Message.Protocol_error "erase-tenant: empty tenant id"
      else Message.Erasure_cert_reply (Some (Worm.erase_tenant t.worm ~tenant))
  | Message.Erasure_cert_get tenant ->
      if tenant = "" then Message.Protocol_error "erasure-cert-get: empty tenant id"
      else Message.Erasure_cert_reply (Worm.erasure_cert_of t.worm tenant)
  | Message.Cluster_hello | Message.Cluster_read _ | Message.Cluster_read_many _ | Message.Cluster_proof_get ->
      (* The cluster vocabulary only makes sense against a router front
         end ({!Cluster_server}); a single store has no shards to route
         over or aggregate, and pretending to be shard 0 of 1 would hand
         clients a freshness proof with the wrong trust story. *)
      Message.Protocol_error "cluster request sent to a single-store server"

(* The server must stay total on adversarial input: nothing a client
   sends may crash the dispatcher — a fault-injecting transport (see
   {!Faulty}) replays and mangles requests freely. Bound staleness is
   healed by [refresh] before dispatch; [refresh] is convergent (a
   second call at the same store state does nothing), so replayed bytes
   still re-serve identical replies for the read/audit vocabulary. *)
let handle_bytes t bytes =
  match Message.decode_request bytes with
  | Error e -> Message.encode_response (Message.Protocol_error e)
  | Ok request -> begin
      (* [refresh] sits inside the guard: it signs through the SCPU, and
         a device fault (ledger exhaustion, clock refusal) mid-refresh
         must degrade to a protocol error, not kill the dispatcher. *)
      match
        refresh t;
        encode_response t (handle t request)
      with
      | reply -> reply
      | exception exn ->
          Message.encode_response (Message.Protocol_error ("dispatch failed: " ^ Printexc.to_string exn))
    end
