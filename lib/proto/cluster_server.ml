open Worm_core
module Router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof

type t = {
  router : Router.t;
  limits : Server.limits;
  (* per-shard dispatchers, keyed by the store they wrap so a failover's
     promotion invalidates the cache entry naturally *)
  mutable servers : (Worm.t * Server.t) option array;
  read_memo : Server.read_memo;  (** shared across shards; keys are per-store records *)
  mutable m_proof : (Cluster_proof.t * string) option;
  mutable m_hello : (Message.response * string) option;
}

let create ?(limits = Server.default_limits) router =
  {
    router;
    limits;
    servers = Array.make (Router.shard_count router) None;
    read_memo = Server.read_memo ();
    m_proof = None;
    m_hello = None;
  }

let router t = t.router

(* A fenced shard (primary dead, mirror not yet promoted) yields [None]:
   the dispatcher must surface that as a protocol-level refusal, never
   an exception — [handle_bytes] is total on adversarial input and a
   request arriving mid-failover is routine, not a crash. *)
let shard_server t i =
  match Router.serving_store t.router i with
  | None -> None
  | Some store -> (
      match t.servers.(i) with
      | Some (cached_store, server) when cached_store == store -> Some server
      | Some _ | None ->
          let server = Server.create ~limits:t.limits store in
          t.servers.(i) <- Some (store, server);
          Some server)

let handle t = function
  | Message.Cluster_hello -> (
      let rec collect acc i =
        if i < 0 then Ok acc
        else
          match Router.serving_store t.router i with
          | None -> Error i
          | Some store ->
              let fw = Worm.firmware store in
              collect ((Worm.store_id store, Firmware.signing_cert fw, Firmware.deletion_cert fw) :: acc) (i - 1)
      in
      match collect [] (Router.shard_count t.router - 1) with
      | Error i -> Message.Protocol_error (Printf.sprintf "shard %d has no serving store" i)
      | Ok shards ->
          Message.Cluster_hello_ack
            { n_shards = Router.shard_count t.router; epoch = Router.epoch t.router; shards })
  | Message.Cluster_read sn ->
      let shard, response = Router.read t.router sn in
      Message.Cluster_read_reply { sn; shard; response }
  | Message.Cluster_read_many sns ->
      let n = List.length sns in
      if n > t.limits.Server.max_read_many then
        Message.Protocol_error
          (Printf.sprintf "cluster-read-many of %d sns exceeds limit %d" n t.limits.Server.max_read_many)
      else Message.Cluster_read_many_reply (Router.read_many t.router sns)
  | Message.Cluster_proof_get -> (
      match Router.freshness_proof t.router with
      | Ok proof -> Message.Cluster_proof_reply proof
      | Error e -> Message.Protocol_error e)
  | Message.Write { policy; tenant; blocks } -> (
      match Router.write t.router ~tenant ~policy ~blocks with
      | Ok sn -> Message.Write_ack { sn }
      | Error e -> Message.Protocol_error e)
  | Message.Erase_tenant tenant -> (
      if tenant = "" then Message.Protocol_error "erase-tenant: empty tenant id"
      else
        match Router.erase_tenant t.router ~tenant with
        | Ok certs -> Message.Cluster_erasure_reply certs
        | Error e -> Message.Protocol_error e)
  | Message.Erasure_cert_get tenant ->
      if tenant = "" then Message.Protocol_error "erasure-cert-get: empty tenant id"
      else Message.Cluster_erasure_reply (Router.erasure_certs t.router ~tenant)
  | Message.Hello | Message.Read _ | Message.Read_many _ | Message.Audit_slice _ ->
      Message.Protocol_error "single-store request sent to a cluster front end; use a shard server"

let refresh t =
  for i = 0 to Router.shard_count t.router - 1 do
    match shard_server t i with
    | Some server -> Server.refresh server
    | None -> ()
  done

(* Encode-once caches for the cluster's own hot artifacts. The router
   assembles a fresh proof/ack record per request, but every signed
   thing inside it (certs, base/current bounds) is the store's stable
   cached record — so "same artifact" is decidable by walking the
   structure with physical equality on the signed leaves. A heartbeat
   that re-signs any shard's bound, or a failover that swaps a cert,
   breaks the comparison and the cache re-encodes; it can never serve a
   stale aggregate. *)

let same_shard_bound (a : Cluster_proof.shard_bound) (b : Cluster_proof.shard_bound) =
  a.shard_index = b.shard_index
  && a.store_id == b.store_id
  && a.signing_cert == b.signing_cert
  && a.deletion_cert == b.deletion_cert
  && a.base == b.base
  && a.current == b.current

let same_proof (a : Cluster_proof.t) (b : Cluster_proof.t) =
  a.epoch = b.epoch && a.n_shards = b.n_shards
  && List.length a.shards = List.length b.shards
  && List.for_all2 same_shard_bound a.shards b.shards

let same_shard_cert (id, sc, dc) (id', sc', dc') = id == id' && sc == sc' && dc == dc'

let encode_response t response =
  match response with
  | Message.Cluster_proof_reply proof -> begin
      match t.m_proof with
      | Some (p, bytes) when same_proof p proof ->
          Server.note_memo_hit ();
          bytes
      | _ ->
          Server.note_memo_miss ();
          let bytes = Message.encode_response response in
          t.m_proof <- Some (proof, bytes);
          bytes
    end
  | Message.Cluster_hello_ack { n_shards; epoch; shards } -> begin
      match t.m_hello with
      | Some (Message.Cluster_hello_ack h, bytes)
        when h.n_shards = n_shards && h.epoch = epoch
             && List.length h.shards = List.length shards
             && List.for_all2 same_shard_cert h.shards shards ->
          Server.note_memo_hit ();
          bytes
      | _ ->
          Server.note_memo_miss ();
          let bytes = Message.encode_response response in
          t.m_hello <- Some (response, bytes);
          bytes
    end
  | _ -> Message.encode_response ~read_response:(Server.memo_read_response t.read_memo) response

let handle_bytes t bytes =
  match Message.decode_request bytes with
  | Error e -> Message.encode_response (Message.Protocol_error e)
  | Ok request -> begin
      (* [refresh] is inside the guard for the same reason as in
         {!Server.handle_bytes}: it signs through every shard's SCPU,
         and a device fault mid-refresh must degrade to a protocol
         error, not kill the dispatcher. *)
      match
        refresh t;
        encode_response t (handle t request)
      with
      | reply -> reply
      | exception exn ->
          Message.encode_response (Message.Protocol_error ("dispatch failed: " ^ Printexc.to_string exn))
    end
