open Worm_core
module Router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof

type t = {
  router : Router.t;
  limits : Server.limits;
  (* per-shard dispatchers, keyed by the store they wrap so a failover's
     promotion invalidates the cache entry naturally *)
  mutable servers : (Worm.t * Server.t) option array;
}

let create ?(limits = Server.default_limits) router =
  { router; limits; servers = Array.make (Router.shard_count router) None }

let router t = t.router

let shard_server t i =
  match Router.serving_store t.router i with
  | None -> failwith (Printf.sprintf "shard %d has no serving store" i)
  | Some store -> (
      match t.servers.(i) with
      | Some (cached_store, server) when cached_store == store -> server
      | Some _ | None ->
          let server = Server.create ~limits:t.limits store in
          t.servers.(i) <- Some (store, server);
          server)

let handle t = function
  | Message.Cluster_hello -> (
      let rec collect acc i =
        if i < 0 then Ok acc
        else
          match Router.serving_store t.router i with
          | None -> Error i
          | Some store ->
              let fw = Worm.firmware store in
              collect ((Worm.store_id store, Firmware.signing_cert fw, Firmware.deletion_cert fw) :: acc) (i - 1)
      in
      match collect [] (Router.shard_count t.router - 1) with
      | Error i -> Message.Protocol_error (Printf.sprintf "shard %d has no serving store" i)
      | Ok shards ->
          Message.Cluster_hello_ack
            { n_shards = Router.shard_count t.router; epoch = Router.epoch t.router; shards })
  | Message.Cluster_read sn ->
      let shard, response = Router.read t.router sn in
      Message.Cluster_read_reply { sn; shard; response }
  | Message.Cluster_read_many sns ->
      let n = List.length sns in
      if n > t.limits.Server.max_read_many then
        Message.Protocol_error
          (Printf.sprintf "cluster-read-many of %d sns exceeds limit %d" n t.limits.Server.max_read_many)
      else Message.Cluster_read_many_reply (Router.read_many t.router sns)
  | Message.Cluster_proof_get -> (
      match Router.freshness_proof t.router with
      | Ok proof -> Message.Cluster_proof_reply proof
      | Error e -> Message.Protocol_error e)
  | Message.Write { policy; blocks } -> (
      match Router.write t.router ~policy ~blocks with
      | Ok sn -> Message.Write_ack { sn }
      | Error e -> Message.Protocol_error e)
  | Message.Hello | Message.Read _ | Message.Read_many _ | Message.Audit_slice _ ->
      Message.Protocol_error "single-store request sent to a cluster front end; use a shard server"

let refresh t =
  for i = 0 to Router.shard_count t.router - 1 do
    match Router.serving_store t.router i with
    | Some _ -> Server.refresh (shard_server t i)
    | None -> ()
  done

let handle_bytes t bytes =
  match Message.decode_request bytes with
  | Error e -> Message.encode_response (Message.Protocol_error e)
  | Ok request -> begin
      refresh t;
      match Message.encode_response (handle t request) with
      | reply -> reply
      | exception exn ->
          Message.encode_response (Message.Protocol_error ("dispatch failed: " ^ Printexc.to_string exn))
    end
