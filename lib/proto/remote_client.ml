open Worm_core
module Drbg = Worm_crypto.Drbg

type transport = string -> string

type retry = {
  attempts : int;
  base_backoff_ns : int64;
  backoff_multiplier : float;
  jitter : float;
  attempt_timeout_ns : int64;
  verify_retries : int;
}

let default_retry =
  {
    attempts = 4;
    base_backoff_ns = 1_000_000L (* 1 ms *);
    backoff_multiplier = 2.0;
    jitter = 0.25;
    attempt_timeout_ns = 5_000_000L (* 5 ms waited per lost reply *);
    verify_retries = 2;
  }

let no_retry =
  {
    attempts = 1;
    base_backoff_ns = 0L;
    backoff_multiplier = 1.0;
    jitter = 0.;
    attempt_timeout_ns = 0L;
    verify_retries = 0;
  }

type transport_stats = {
  requests : int;
  attempts : int;
  retries : int;
  faults : int;
  decode_failures : int;
  reverifications : int;
  waited_ns : int64;
}

(* The wire layer under the verified client: one transport plus the
   retry policy, fault counters, and byte ledger shared by the
   handshake and every later roundtrip. *)
type wire = {
  transport : transport;
  retry : retry;
  netsim : Netsim.t option;
  jitter_rng : Drbg.t;
  mutable requests : int;
  mutable attempts : int;
  mutable retries : int;
  mutable faults : int;
  mutable decode_failures : int;
  mutable reverifications : int;
  mutable waited_ns : int64;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

type t = { wire : wire; client : Client.t; store_id : string }

let make_wire ?(retry = default_retry) ?netsim transport =
  if retry.attempts < 1 then invalid_arg "Remote_client: retry.attempts must be >= 1";
  if retry.verify_retries < 0 then invalid_arg "Remote_client: negative verify_retries";
  {
    transport;
    retry;
    netsim;
    jitter_rng = Drbg.create ~seed:"remote-client-backoff";
    requests = 0;
    attempts = 0;
    retries = 0;
    faults = 0;
    decode_failures = 0;
    reverifications = 0;
    waited_ns = 0L;
    bytes_sent = 0;
    bytes_received = 0;
  }

(* Retry waits are virtual, like every other latency in the
   reproduction: billed to the Netsim ledger (when one is attached) and
   to [waited_ns], never slept on the wall clock. *)
let charge_wait w ns =
  if Int64.compare ns 0L > 0 then begin
    w.waited_ns <- Int64.add w.waited_ns ns;
    match w.netsim with
    | Some n -> Netsim.charge_ns n ns
    | None -> ()
  end

let backoff_ns w ~failures =
  let base =
    Int64.to_float w.retry.base_backoff_ns *. (w.retry.backoff_multiplier ** float_of_int (failures - 1))
  in
  let jitter =
    if w.retry.jitter <= 0. then 0.
    else base *. w.retry.jitter *. (float_of_int (Drbg.byte w.jitter_rng) /. 255.)
  in
  Int64.of_float (base +. jitter)

(* One physical exchange. Anything the transport throws is caught here:
   a raising transport is a lost reply, indistinguishable from a
   timeout, so the per-attempt timeout is billed and the failure
   surfaces as a result — never as an exception (§3: a wire that
   misbehaves proves nothing, it must not crash the auditor). *)
let attempt_once w bytes =
  w.attempts <- w.attempts + 1;
  w.bytes_sent <- w.bytes_sent + String.length bytes;
  match w.transport bytes with
  | reply -> begin
      w.bytes_received <- w.bytes_received + String.length reply;
      match Message.decode_response reply with
      | Ok r -> Ok r
      | Error e ->
          w.decode_failures <- w.decode_failures + 1;
          Error ("reply undecodable: " ^ e)
    end
  | exception exn ->
      w.faults <- w.faults + 1;
      charge_wait w w.retry.attempt_timeout_ns;
      Error ("transport failed: " ^ Printexc.to_string exn)

(* A logical roundtrip: bounded attempts with exponential backoff and
   jitter between them. Only wire-level failures (raises and
   undecodable replies) are retried; a well-formed reply — even
   [Protocol_error] — is the server's answer and is returned as is. *)
let exchange w bytes =
  w.requests <- w.requests + 1;
  let rec go failures =
    match attempt_once w bytes with
    | Ok r -> Ok r
    | Error e ->
        let failures = failures + 1 in
        if failures >= w.retry.attempts then Error e
        else begin
          w.retries <- w.retries + 1;
          charge_wait w (backoff_ns w ~failures);
          go failures
        end
  in
  go 0

let roundtrip t request = exchange t.wire (Message.encode_request request)

let connect ~ca ~clock ?max_bound_age_ns ?retry ?netsim transport =
  let wire = make_wire ?retry ?netsim transport in
  match exchange wire (Message.encode_request Message.Hello) with
  | Error e -> Error ("handshake failed: " ^ e)
  | Ok (Message.Hello_ack { store_id; signing_cert; deletion_cert }) -> begin
      match Client.connect ~ca ~clock ?max_bound_age_ns ~signing_cert ~deletion_cert ~store_id () with
      | Ok client -> Ok { wire; client; store_id }
      | Error e -> Error e
    end
  | Ok (Message.Protocol_error e) -> Error ("server error: " ^ e)
  | Ok
      ( Message.Read_reply _ | Message.Read_many_reply _ | Message.Audit_slice_reply _ | Message.Write_ack _
      | Message.Busy _ | Message.Cluster_hello_ack _ | Message.Cluster_read_reply _
      | Message.Cluster_read_many_reply _ | Message.Cluster_proof_reply _ | Message.Erasure_cert_reply _
      | Message.Cluster_erasure_reply _ ) ->
      Error "handshake failed: unexpected response"

let store_id t = t.store_id

let transport_stats t =
  let w = t.wire in
  {
    requests = w.requests;
    attempts = w.attempts;
    retries = w.retries;
    faults = w.faults;
    decode_failures = w.decode_failures;
    reverifications = w.reverifications;
    waited_ns = w.waited_ns;
  }

(* A transport that garbles, drops, or misroutes proves nothing — treat
   any protocol-level failure as an unproven absence, the same verdict a
   refusing host earns. *)
let transport_violation = Client.Violation [ Client.Absence_unproven ]

let read_once t sn =
  match roundtrip t (Message.Read sn) with
  | Ok (Message.Read_reply { sn = reply_sn; response }) when Serial.equal reply_sn sn ->
      Client.verify_read t.client ~sn response
  | Ok _ | Error _ -> transport_violation

(* A violating verdict is re-derived from fresh roundtrips before it is
   believed: transient wire damage (a garbled signature byte that still
   decodes, a dropped slice entry) heals into the clean verdict, while a
   genuine violation — which is a stable property of what the host
   serves — survives every re-read unchanged. *)
let read t sn =
  let rec go budget verdict =
    match verdict with
    | Client.Violation _ when budget > 0 ->
        t.wire.reverifications <- t.wire.reverifications + 1;
        charge_wait t.wire (backoff_ns t.wire ~failures:1);
        go (budget - 1) (read_once t sn)
    | v -> v
  in
  go t.wire.retry.verify_retries (read_once t sn)

let confirm t sn verdict =
  match verdict with
  | Client.Violation _ when t.wire.retry.verify_retries > 0 ->
      t.wire.reverifications <- t.wire.reverifications + 1;
      read t sn
  | v -> v

(* Erasure over the wire: the request is trivial, the receipt is what
   matters. A served certificate is verified under the store's deletion
   certificate before the caller ever sees it — a host claiming "I
   forgot the tenant" without its SCPU's signature proves nothing. *)
let erase_tenant t tenant =
  match roundtrip t (Message.Erase_tenant tenant) with
  | Ok (Message.Erasure_cert_reply (Some cert)) -> (
      match Client.verify_erasure_cert t.client cert with
      | Ok () -> Ok cert
      | Error e -> Error ("erasure certificate rejected: " ^ e))
  | Ok (Message.Erasure_cert_reply None) -> Error "server did not issue an erasure certificate"
  | Ok (Message.Protocol_error e) -> Error ("server refused erasure: " ^ e)
  | Ok _ -> Error "unexpected response to erase-tenant"
  | Error e -> Error e

let erasure_cert t tenant =
  match roundtrip t (Message.Erasure_cert_get tenant) with
  | Ok (Message.Erasure_cert_reply None) -> Ok None
  | Ok (Message.Erasure_cert_reply (Some cert)) -> (
      match Client.verify_erasure_cert t.client cert with
      | Ok () -> Ok (Some cert)
      | Error e -> Error ("erasure certificate rejected: " ^ e))
  | Ok (Message.Protocol_error e) -> Error ("server error: " ^ e)
  | Ok _ -> Error "unexpected response to erasure-cert-get"
  | Error e -> Error e

let audit_sweep ?pool t ~lo ~hi =
  let sns = Serial.range lo hi in
  match roundtrip t (Message.Read_many sns) with
  | Ok (Message.Read_many_reply replies) ->
      (* Reassemble through a hashtable: one pass over the reply list
         instead of a List.assoc per requested SN, and a reply list that
         answers the same SN twice — first-match-wins under the old
         List.assoc — is flagged instead of silently trusted. *)
      let by_sn = Hashtbl.create (List.length replies * 2) in
      let duplicated = Hashtbl.create 7 in
      List.iter
        (fun (sn, response) ->
          if Hashtbl.mem by_sn sn then Hashtbl.replace duplicated sn ()
          else Hashtbl.add by_sn sn response)
        replies;
      let answered =
        List.filter_map
          (fun sn ->
            if Hashtbl.mem duplicated sn then None
            else Option.map (fun r -> (sn, r)) (Hashtbl.find_opt by_sn sn))
          sns
      in
      let verified = Hashtbl.create (List.length answered * 2) in
      List.iter (fun (sn, v) -> Hashtbl.replace verified sn v) (Client.verify_read_many ?pool t.client answered);
      (* Requested serial order; unanswered and duplicated SNs prove
         nothing. Violations get a confirming re-read each. *)
      List.map
        (fun sn ->
          let v =
            match Hashtbl.find_opt verified sn with
            | Some v -> v
            | None -> transport_violation
          in
          (sn, confirm t sn v))
        sns
  | Ok _ | Error _ -> List.map (fun sn -> (sn, confirm t sn transport_violation)) sns

type remote_audit = {
  scanned : int;
  skipped_below_base : int64;
  round_trips : int;
  violations : (Serial.t * Client.verdict) list;
  resume : Serial.t option;
}

let run_remote_audit ?(batch = 64) ?pool ?(cursor = Serial.first) t =
  let batch = Stdlib.max 1 batch in
  let rec go cursor scanned skipped trips violations =
    match roundtrip t (Message.Audit_slice { cursor; max = batch }) with
    | Ok (Message.Audit_slice_reply { replies; next; base = _; current }) -> begin
        (* Each served batch verifies across the pool; only violations
           are kept, in reply order, exactly as the sequential fold —
           after a confirming re-read weeds out wire damage. *)
        let violations =
          List.fold_left
            (fun acc (sn, verdict) ->
              match verdict with
              | Client.Violation _ -> begin
                  match confirm t sn verdict with
                  | Client.Violation _ as v -> (sn, v) :: acc
                  | _ -> acc
                end
              | _ -> acc)
            violations
            (Client.verify_read_many ?pool t.client replies)
        in
        let scanned = scanned + List.length replies in
        match next with
        | None ->
            (* The walk stopped at the served current bound; one probe
               above it verifies the open upper region wholesale. *)
            let above = Serial.next current.Firmware.sn in
            let violations =
              match Client.verify_read t.client ~sn:above (Proof.Proof_unallocated current) with
              | Client.Violation _ as v -> (above, v) :: violations
              | _ -> violations
            in
            { scanned; skipped_below_base = skipped; round_trips = trips;
              violations = List.rev violations; resume = None }
        | Some resume_sn when Serial.( <= ) resume_sn cursor ->
            (* A server steering the cursor backwards (or in place) is
               stalling the audit; that is a refusal in disguise. *)
            { scanned; skipped_below_base = skipped; round_trips = trips;
              violations = List.rev ((resume_sn, transport_violation) :: violations); resume = None }
        | Some resume_sn ->
            let violations, skipped, probe_trips =
              if replies = [] then begin
                (* Fast-forward over the below-base region: legitimate
                   only when a valid base bound covers every skipped
                   serial, which one representative probe checks. *)
                match read t cursor with
                | Client.Properly_deleted -> (violations, Int64.add skipped (Serial.distance cursor resume_sn), 1)
                | Client.Violation _ as v -> ((cursor, v) :: violations, skipped, 1)
                | _ -> ((cursor, transport_violation) :: violations, skipped, 1)
              end
              else (violations, skipped, 0)
            in
            go resume_sn scanned skipped (trips + 1 + probe_trips) violations
      end
    | Ok _ ->
        (* A well-formed but wrong-shaped answer (or a served
           [Protocol_error]) is the server refusing the audit: a
           protocol violation at the cursor, exactly as before. *)
        { scanned; skipped_below_base = skipped; round_trips = trips;
          violations = List.rev ((cursor, transport_violation) :: violations); resume = None }
    | Error _ ->
        (* The wire gave out after every retry. That is transient
           transport failure, not evidence about the store: hand the
           cursor back so the sweep resumes where it stopped instead of
           flagging the cursor SN and restarting from Serial.first. *)
        { scanned; skipped_below_base = skipped; round_trips = trips;
          violations = List.rev violations; resume = Some cursor }
  in
  go cursor 0 0L 1 []

let run_remote_audit_to_completion ?batch ?pool ?(max_stalls = 2) t =
  let merge a b =
    {
      scanned = a.scanned + b.scanned;
      skipped_below_base = Int64.add a.skipped_below_base b.skipped_below_base;
      round_trips = a.round_trips + b.round_trips;
      violations = a.violations @ b.violations;
      resume = b.resume;
    }
  in
  let rec go acc cursor stalls =
    let run = run_remote_audit ?batch ?pool ~cursor t in
    let acc = match acc with None -> run | Some a -> merge a run in
    match run.resume with
    | None -> acc
    | Some c ->
        (* Keep resuming while the outage lets the cursor advance; a
           cursor pinned in place [max_stalls] consecutive times means
           the transport is down for good — return what we have, with
           [resume] still set so the caller can try again later. *)
        let stalls = if Serial.( > ) c cursor then 0 else stalls + 1 in
        if stalls > max_stalls then acc else go (Some acc) c stalls
  in
  go None Serial.first 0

let bytes_sent t = t.wire.bytes_sent
let bytes_received t = t.wire.bytes_received
