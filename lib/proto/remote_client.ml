open Worm_core

type transport = string -> string

type t = {
  transport : transport;
  client : Client.t;
  store_id : string;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let roundtrip t request =
  let bytes = Message.encode_request request in
  t.bytes_sent <- t.bytes_sent + String.length bytes;
  let reply = t.transport bytes in
  t.bytes_received <- t.bytes_received + String.length reply;
  Message.decode_response reply

let connect ~ca ~clock ?max_bound_age_ns transport =
  let hello = Message.encode_request Message.Hello in
  match Message.decode_response (transport hello) with
  | Error e -> Error ("handshake failed: " ^ e)
  | Ok (Message.Hello_ack { store_id; signing_cert; deletion_cert }) -> begin
      match Client.connect ~ca ~clock ?max_bound_age_ns ~signing_cert ~deletion_cert ~store_id () with
      | Ok client ->
          Ok
            {
              transport;
              client;
              store_id;
              bytes_sent = String.length hello;
              bytes_received = 0;
            }
      | Error e -> Error e
    end
  | Ok (Message.Protocol_error e) -> Error ("server error: " ^ e)
  | Ok (Message.Read_reply _ | Message.Read_many_reply _ | Message.Audit_slice_reply _) ->
      Error "handshake failed: unexpected response"

let store_id t = t.store_id

(* A transport that garbles, drops, or misroutes proves nothing — treat
   any protocol-level failure as an unproven absence, the same verdict a
   refusing host earns. *)
let transport_violation = Client.Violation [ Client.Absence_unproven ]

let read t sn =
  match roundtrip t (Message.Read sn) with
  | Ok (Message.Read_reply { sn = reply_sn; response }) when Serial.equal reply_sn sn ->
      Client.verify_read t.client ~sn response
  | Ok _ | Error _ -> transport_violation

let audit_sweep ?pool t ~lo ~hi =
  let sns = Serial.range lo hi in
  match roundtrip t (Message.Read_many sns) with
  | Ok (Message.Read_many_reply replies) ->
      let answered, unanswered =
        List.partition_map
          (fun sn ->
            match List.assoc_opt sn replies with
            | Some response -> Left (sn, response)
            | None -> Right (sn, transport_violation))
          sns
      in
      let verified = Client.verify_read_many ?pool t.client answered in
      (* Reassemble in the requested serial order. *)
      List.map
        (fun sn ->
          match List.assoc_opt sn verified with
          | Some v -> (sn, v)
          | None -> (sn, List.assoc sn unanswered))
        sns
  | Ok _ | Error _ -> List.map (fun sn -> (sn, transport_violation)) sns

type remote_audit = {
  scanned : int;
  skipped_below_base : int64;
  round_trips : int;
  violations : (Serial.t * Client.verdict) list;
}

let run_remote_audit ?(batch = 64) ?pool t =
  let batch = Stdlib.max 1 batch in
  let rec go cursor scanned skipped trips violations =
    match roundtrip t (Message.Audit_slice { cursor; max = batch }) with
    | Ok (Message.Audit_slice_reply { replies; next; base = _; current }) -> begin
        (* Each served batch verifies across the pool; only violations
           are kept, in reply order, exactly as the sequential fold. *)
        let violations =
          List.fold_left
            (fun acc (sn, verdict) ->
              match verdict with
              | Client.Violation _ -> (sn, verdict) :: acc
              | _ -> acc)
            violations
            (Client.verify_read_many ?pool t.client replies)
        in
        let scanned = scanned + List.length replies in
        match next with
        | None ->
            (* The walk stopped at the served current bound; one probe
               above it verifies the open upper region wholesale. *)
            let above = Serial.next current.Firmware.sn in
            let violations =
              match Client.verify_read t.client ~sn:above (Proof.Proof_unallocated current) with
              | Client.Violation _ as v -> (above, v) :: violations
              | _ -> violations
            in
            { scanned; skipped_below_base = skipped; round_trips = trips; violations = List.rev violations }
        | Some resume when Serial.( <= ) resume cursor ->
            (* A server steering the cursor backwards (or in place) is
               stalling the audit; that is a refusal in disguise. *)
            { scanned; skipped_below_base = skipped; round_trips = trips;
              violations = List.rev ((resume, transport_violation) :: violations) }
        | Some resume ->
            let violations, skipped, probe_trips =
              if replies = [] then begin
                (* Fast-forward over the below-base region: legitimate
                   only when a valid base bound covers every skipped
                   serial, which one representative probe checks. *)
                match read t cursor with
                | Client.Properly_deleted -> (violations, Int64.add skipped (Serial.distance cursor resume), 1)
                | Client.Violation _ as v -> ((cursor, v) :: violations, skipped, 1)
                | _ -> ((cursor, transport_violation) :: violations, skipped, 1)
              end
              else (violations, skipped, 0)
            in
            go resume scanned skipped (trips + 1 + probe_trips) violations
      end
    | Ok _ | Error _ ->
        { scanned; skipped_below_base = skipped; round_trips = trips;
          violations = List.rev ((cursor, transport_violation) :: violations) }
  in
  go Serial.first 0 0L 1 []

let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received
