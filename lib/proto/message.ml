open Worm_core

module Codec = Worm_util.Codec
module Cert = Worm_crypto.Cert

type request =
  | Hello
  | Read of Serial.t
  | Read_many of Serial.t list
  | Audit_slice of { cursor : Serial.t; max : int }
  | Write of { policy : Policy.t; tenant : string; blocks : string list }
  | Cluster_hello
  | Cluster_read of Serial.t
  | Cluster_read_many of Serial.t list
  | Cluster_proof_get
  | Erase_tenant of string
  | Erasure_cert_get of string

type response =
  | Hello_ack of { store_id : string; signing_cert : Cert.t; deletion_cert : Cert.t }
  | Read_reply of { sn : Serial.t; response : Proof.read_response }
  | Read_many_reply of (Serial.t * Proof.read_response) list
  | Protocol_error of string
  | Audit_slice_reply of {
      replies : (Serial.t * Proof.read_response) list;
      next : Serial.t option;  (** where the auditor should continue; [None] = space covered *)
      base : Firmware.base_bound;
      current : Firmware.current_bound;
    }
  | Write_ack of { sn : Serial.t }
  | Busy of { retry_after_ns : int64 }
  | Cluster_hello_ack of { n_shards : int; epoch : int; shards : (string * Cert.t * Cert.t) list }
  | Cluster_read_reply of { sn : Serial.t; shard : int; response : Proof.read_response }
  | Cluster_read_many_reply of (Serial.t * int * Proof.read_response) list
  | Cluster_proof_reply of Worm_cluster.Cluster_proof.t
  | Erasure_cert_reply of Firmware.erasure_cert option
      (** [None]: the tenant has not been erased on this store *)
  | Cluster_erasure_reply of (int * string * Firmware.erasure_cert) list
      (** one (shard index, store id, cert) per shard — every shard must
          attest before a cluster-wide erasure counts *)

(* One-line renderings for fault traces and console output. *)

let describe_request = function
  | Hello -> "hello"
  | Read sn -> Printf.sprintf "read %s" (Serial.to_string sn)
  | Read_many sns -> Printf.sprintf "read-many [%d sns]" (List.length sns)
  | Audit_slice { cursor; max } -> Printf.sprintf "audit-slice %s max=%d" (Serial.to_string cursor) max
  | Write { policy; tenant; blocks } ->
      Printf.sprintf "write %s%s [%d blocks]"
        (Policy.regulation_name policy.Policy.regulation)
        (if String.equal tenant "" then "" else " tenant=" ^ tenant)
        (List.length blocks)
  | Cluster_hello -> "cluster-hello"
  | Cluster_read sn -> Printf.sprintf "cluster-read %s" (Serial.to_string sn)
  | Cluster_read_many sns -> Printf.sprintf "cluster-read-many [%d sns]" (List.length sns)
  | Cluster_proof_get -> "cluster-proof-get"
  | Erase_tenant tenant -> Printf.sprintf "erase-tenant %S" tenant
  | Erasure_cert_get tenant -> Printf.sprintf "erasure-cert-get %S" tenant

let describe_response = function
  | Hello_ack { store_id; _ } -> Printf.sprintf "hello-ack %s" (Worm_util.Hex.encode store_id)
  | Read_reply { sn; _ } -> Printf.sprintf "read-reply %s" (Serial.to_string sn)
  | Read_many_reply replies -> Printf.sprintf "read-many-reply [%d sns]" (List.length replies)
  | Protocol_error e -> Printf.sprintf "protocol-error %S" e
  | Audit_slice_reply { replies; next; _ } ->
      Printf.sprintf "audit-slice-reply [%d sns] next=%s" (List.length replies)
        (match next with None -> "done" | Some sn -> Serial.to_string sn)
  | Write_ack { sn } -> Printf.sprintf "write-ack %s" (Serial.to_string sn)
  | Busy { retry_after_ns } -> Printf.sprintf "busy retry-after=%Ldns" retry_after_ns
  | Cluster_hello_ack { n_shards; epoch; _ } -> Printf.sprintf "cluster-hello-ack %d shards epoch=%d" n_shards epoch
  | Cluster_read_reply { sn; shard; _ } -> Printf.sprintf "cluster-read-reply %s shard=%d" (Serial.to_string sn) shard
  | Cluster_read_many_reply replies -> Printf.sprintf "cluster-read-many-reply [%d sns]" (List.length replies)
  | Cluster_proof_reply proof ->
      Printf.sprintf "cluster-proof-reply %d shards epoch=%d %s" proof.Worm_cluster.Cluster_proof.n_shards
        proof.Worm_cluster.Cluster_proof.epoch
        (Worm_cluster.Cluster_proof.fingerprint proof)
  | Erasure_cert_reply None -> "erasure-cert-reply none"
  | Erasure_cert_reply (Some cert) ->
      Printf.sprintf "erasure-cert-reply %S erased_at=%Ld" cert.Firmware.tenant cert.Firmware.erased_at
  | Cluster_erasure_reply certs -> Printf.sprintf "cluster-erasure-reply [%d shards]" (List.length certs)

(* ---------- proof payloads ---------- *)

let encode_current_bound = Firmware.encode_current_bound
let decode_current_bound = Firmware.decode_current_bound
let encode_base_bound = Firmware.encode_base_bound
let decode_base_bound = Firmware.decode_base_bound
let encode_window = Firmware.encode_deletion_window
let decode_window = Firmware.decode_deletion_window

let encode_read_response enc (r : Proof.read_response) =
  match r with
  | Proof.Found { vrd; blocks } ->
      Codec.u8 enc 0;
      Vrd.encode enc vrd;
      Codec.list (fun enc b -> Codec.bytes enc b) enc blocks
  | Proof.Proof_deleted { sn; proof } ->
      Codec.u8 enc 1;
      Serial.encode enc sn;
      Codec.bytes enc proof
  | Proof.Proof_in_window w ->
      Codec.u8 enc 2;
      encode_window enc w
  | Proof.Proof_below_base b ->
      Codec.u8 enc 3;
      encode_base_bound enc b
  | Proof.Proof_unallocated c ->
      Codec.u8 enc 4;
      encode_current_bound enc c
  | Proof.Refused excuse ->
      Codec.u8 enc 5;
      Codec.bytes enc excuse
  | Proof.Erased { vrd; cert } ->
      Codec.u8 enc 6;
      Vrd.encode enc vrd;
      Firmware.encode_erasure_cert enc cert

let decode_read_response dec =
  match Codec.read_u8 dec with
  | 0 ->
      let vrd = Vrd.decode dec in
      let blocks = Codec.read_list Codec.read_bytes dec in
      Proof.Found { vrd; blocks }
  | 1 ->
      let sn = Serial.decode dec in
      let proof = Codec.read_bytes dec in
      Proof.Proof_deleted { sn; proof }
  | 2 -> Proof.Proof_in_window (decode_window dec)
  | 3 -> Proof.Proof_below_base (decode_base_bound dec)
  | 4 -> Proof.Proof_unallocated (decode_current_bound dec)
  | 5 -> Proof.Refused (Codec.read_bytes dec)
  | 6 ->
      let vrd = Vrd.decode dec in
      let cert = Firmware.decode_erasure_cert dec in
      Proof.Erased { vrd; cert }
  | n -> raise (Codec.Malformed (Printf.sprintf "bad read_response tag %d" n))

(* ---------- requests ---------- *)

let encode_request_into enc r =
  match r with
      | Hello -> Codec.u8 enc 0
      | Read sn ->
          Codec.u8 enc 1;
          Serial.encode enc sn
      | Read_many sns ->
          Codec.u8 enc 2;
          Codec.list (fun enc sn -> Serial.encode enc sn) enc sns
      | Audit_slice { cursor; max } ->
          Codec.u8 enc 3;
          Serial.encode enc cursor;
          Codec.int_as_u64 enc max
      | Write { policy; tenant; blocks } ->
          Codec.u8 enc 4;
          Policy.encode enc policy;
          Codec.bytes enc tenant;
          Codec.list (fun enc b -> Codec.bytes enc b) enc blocks
      | Cluster_hello -> Codec.u8 enc 5
      | Cluster_read sn ->
          Codec.u8 enc 6;
          Serial.encode enc sn
      | Cluster_read_many sns ->
          Codec.u8 enc 7;
          Codec.list (fun enc sn -> Serial.encode enc sn) enc sns
      | Cluster_proof_get -> Codec.u8 enc 8
      | Erase_tenant tenant ->
          Codec.u8 enc 9;
          Codec.bytes enc tenant
      | Erasure_cert_get tenant ->
          Codec.u8 enc 10;
          Codec.bytes enc tenant

let encode_request r = Codec.encode encode_request_into r

let request_wire_length r = Codec.encoded_length encode_request_into r

let decode_request s =
  Codec.decode
    (fun dec ->
      match Codec.read_u8 dec with
      | 0 -> Hello
      | 1 -> Read (Serial.decode dec)
      | 2 -> Read_many (Codec.read_list Serial.decode dec)
      | 3 ->
          let cursor = Serial.decode dec in
          let max = Codec.read_int_as_u64 dec in
          Audit_slice { cursor; max }
      | 4 ->
          let policy = Policy.decode dec in
          let tenant = Codec.read_bytes dec in
          let blocks = Codec.read_list Codec.read_bytes dec in
          Write { policy; tenant; blocks }
      | 5 -> Cluster_hello
      | 6 -> Cluster_read (Serial.decode dec)
      | 7 -> Cluster_read_many (Codec.read_list Serial.decode dec)
      | 8 -> Cluster_proof_get
      | 9 -> Erase_tenant (Codec.read_bytes dec)
      | 10 -> Erasure_cert_get (Codec.read_bytes dec)
      | n -> raise (Codec.Malformed (Printf.sprintf "bad request tag %d" n)))
    s

(* ---------- responses ---------- *)

(* [read_response] lets a server splice in memoised fragments for
   epoch-stable proofs (Server's encode-once memo) without this module
   knowing about the memo; the default is the plain encoder, and the
   bytes must be identical either way. *)
let encode_response_into ?(read_response = encode_read_response) enc r =
  match r with
  | Hello_ack { store_id; signing_cert; deletion_cert } ->
      Codec.u8 enc 0;
      Codec.bytes enc store_id;
      Cert.encode enc signing_cert;
      Cert.encode enc deletion_cert
  | Read_reply { sn; response } ->
      Codec.u8 enc 1;
      Serial.encode enc sn;
      read_response enc response
  | Read_many_reply replies ->
      Codec.u8 enc 2;
      Codec.list
        (fun enc (sn, response) ->
          Serial.encode enc sn;
          read_response enc response)
        enc replies
  | Protocol_error msg ->
      Codec.u8 enc 3;
      Codec.bytes enc msg
  | Audit_slice_reply { replies; next; base; current } ->
      Codec.u8 enc 4;
      Codec.list
        (fun enc (sn, response) ->
          Serial.encode enc sn;
          read_response enc response)
        enc replies;
      Codec.option Serial.encode enc next;
      encode_base_bound enc base;
      encode_current_bound enc current
  | Write_ack { sn } ->
      Codec.u8 enc 5;
      Serial.encode enc sn
  | Busy { retry_after_ns } ->
      Codec.u8 enc 6;
      Codec.u64 enc retry_after_ns
  | Cluster_hello_ack { n_shards; epoch; shards } ->
      Codec.u8 enc 7;
      Codec.u32 enc n_shards;
      Codec.int_as_u64 enc epoch;
      Codec.list
        (fun enc (store_id, signing_cert, deletion_cert) ->
          Codec.bytes enc store_id;
          Cert.encode enc signing_cert;
          Cert.encode enc deletion_cert)
        enc shards
  | Cluster_read_reply { sn; shard; response } ->
      Codec.u8 enc 8;
      Serial.encode enc sn;
      Codec.u32 enc shard;
      read_response enc response
  | Cluster_read_many_reply replies ->
      Codec.u8 enc 9;
      Codec.list
        (fun enc (sn, shard, response) ->
          Serial.encode enc sn;
          Codec.u32 enc shard;
          read_response enc response)
        enc replies
  | Cluster_proof_reply proof ->
      Codec.u8 enc 10;
      Worm_cluster.Cluster_proof.encode enc proof
  | Erasure_cert_reply cert ->
      Codec.u8 enc 11;
      Codec.option Firmware.encode_erasure_cert enc cert
  | Cluster_erasure_reply certs ->
      Codec.u8 enc 12;
      Codec.list
        (fun enc (shard, store_id, cert) ->
          Codec.u32 enc shard;
          Codec.bytes enc store_id;
          Firmware.encode_erasure_cert enc cert)
        enc certs

let encode_response ?read_response r =
  Codec.encode (fun enc r -> encode_response_into ?read_response enc r) r

let response_wire_length ?read_response r =
  Codec.encoded_length (fun enc r -> encode_response_into ?read_response enc r) r

let decode_response s =
  Codec.decode
    (fun dec ->
      match Codec.read_u8 dec with
      | 0 ->
          let store_id = Codec.read_bytes dec in
          let signing_cert = Cert.decode dec in
          let deletion_cert = Cert.decode dec in
          Hello_ack { store_id; signing_cert; deletion_cert }
      | 1 ->
          let sn = Serial.decode dec in
          let response = decode_read_response dec in
          Read_reply { sn; response }
      | 2 ->
          Read_many_reply
            (Codec.read_list
               (fun dec ->
                 let sn = Serial.decode dec in
                 let response = decode_read_response dec in
                 (sn, response))
               dec)
      | 3 -> Protocol_error (Codec.read_bytes dec)
      | 4 ->
          let replies =
            Codec.read_list
              (fun dec ->
                let sn = Serial.decode dec in
                let response = decode_read_response dec in
                (sn, response))
              dec
          in
          let next = Codec.read_option Serial.decode dec in
          let base = decode_base_bound dec in
          let current = decode_current_bound dec in
          Audit_slice_reply { replies; next; base; current }
      | 5 -> Write_ack { sn = Serial.decode dec }
      | 6 -> Busy { retry_after_ns = Codec.read_u64 dec }
      | 7 ->
          let n_shards = Codec.read_u32 dec in
          let epoch = Codec.read_int_as_u64 dec in
          let shards =
            Codec.read_list
              (fun dec ->
                let store_id = Codec.read_bytes dec in
                let signing_cert = Cert.decode dec in
                let deletion_cert = Cert.decode dec in
                (store_id, signing_cert, deletion_cert))
              dec
          in
          Cluster_hello_ack { n_shards; epoch; shards }
      | 8 ->
          let sn = Serial.decode dec in
          let shard = Codec.read_u32 dec in
          let response = decode_read_response dec in
          Cluster_read_reply { sn; shard; response }
      | 9 ->
          Cluster_read_many_reply
            (Codec.read_list
               (fun dec ->
                 let sn = Serial.decode dec in
                 let shard = Codec.read_u32 dec in
                 let response = decode_read_response dec in
                 (sn, shard, response))
               dec)
      | 10 -> Cluster_proof_reply (Worm_cluster.Cluster_proof.decode dec)
      | 11 -> Erasure_cert_reply (Codec.read_option Firmware.decode_erasure_cert dec)
      | 12 ->
          Cluster_erasure_reply
            (Codec.read_list
               (fun dec ->
                 let shard = Codec.read_u32 dec in
                 let store_id = Codec.read_bytes dec in
                 let cert = Firmware.decode_erasure_cert dec in
                 (shard, store_id, cert))
               dec)
      | n -> raise (Codec.Malformed (Printf.sprintf "bad response tag %d" n)))
    s
