open Worm_core

(** Wire messages of the WORM client/server protocol.

    The paper's clients (auditors, investigators) are remote: they see
    the store only through read requests and certificate fetches, and
    they verify everything locally against the CA key. This module gives
    every request and response a canonical binary encoding — including
    the full proof vocabulary (VRDs with data, deletion proofs, window
    bounds, base/current bounds) — so the trust analysis survives the
    serialization boundary: a byte-level man-in-the-middle is no
    stronger than the malicious host already considered. *)

type request =
  | Hello  (** fetch store identity and certificates *)
  | Read of Serial.t
  | Read_many of Serial.t list  (** batched audit sweep *)
  | Audit_slice of { cursor : Serial.t; max : int }
      (** one increment of a remote full-store audit: proofs for up to
          [max] serials starting at [cursor] *)
  | Write of { policy : Policy.t; tenant : string; blocks : string list }
      (** ingest a new record under [policy]; answered with {!Write_ack}
          once the SCPU has witnessed it, or {!Busy} when admission
          control sheds the request under deferred-witness debt. A
          non-empty [tenant] seals the record under the SCPU's
          per-tenant key hierarchy (crypto-erasable); writes for an
          already-erased tenant are refused with {!Protocol_error} *)
  | Cluster_hello  (** fetch cluster shape and every shard's certificates *)
  | Cluster_read of Serial.t  (** read one {e global} serial through the router *)
  | Cluster_read_many of Serial.t list
  | Cluster_proof_get  (** fetch the aggregated cluster freshness proof *)
  | Erase_tenant of string
      (** right to be forgotten: destroy the tenant's keys — O(1) in
          record count. Answered with {!Erasure_cert_reply} (single
          store) or {!Cluster_erasure_reply} (cluster: every shard and
          mirror erases) *)
  | Erasure_cert_get of string
      (** fetch the erasure certificate(s) for a previously erased
          tenant *)

type response =
  | Hello_ack of {
      store_id : string;
      signing_cert : Worm_crypto.Cert.t;
      deletion_cert : Worm_crypto.Cert.t;
    }
  | Read_reply of { sn : Serial.t; response : Proof.read_response }
  | Read_many_reply of (Serial.t * Proof.read_response) list
  | Protocol_error of string
  | Audit_slice_reply of {
      replies : (Serial.t * Proof.read_response) list;
      next : Serial.t option;
          (** resume cursor; [None] once the slice reached the current
              bound. A below-base cursor skips forward with empty
              [replies] — the signed base bound covers the region
              wholesale, which is what makes remote audits batched
              instead of per-record. *)
      base : Firmware.base_bound;
      current : Firmware.current_bound;
    }
  | Write_ack of { sn : Serial.t }
      (** the record was witnessed under this SCPU-issued serial. The ack
          deliberately carries only the SN: clients fetch the VRD through
          {!Read} and verify it against the CA like any other proof. *)
  | Busy of { retry_after_ns : int64 }
      (** admission control shed the write: the store's deferred-witness
          debt is over its ceiling, retry after the given virtual delay *)
  | Cluster_hello_ack of {
      n_shards : int;
      epoch : int;
      shards : (string * Worm_crypto.Cert.t * Worm_crypto.Cert.t) list;
          (** per shard, in index order: (store id, signing cert,
              deletion cert) — everything a client needs to compute the
              partition and verify shard-served proofs *)
    }
  | Cluster_read_reply of { sn : Serial.t; shard : int; response : Proof.read_response }
      (** [shard] is the router's routing claim; verifiers recompute the
          partition themselves and treat a mismatch as a violation *)
  | Cluster_read_many_reply of (Serial.t * int * Proof.read_response) list
  | Cluster_proof_reply of Worm_cluster.Cluster_proof.t
  | Erasure_cert_reply of Firmware.erasure_cert option
      (** [None]: the tenant has not been erased on this store *)
  | Cluster_erasure_reply of (int * string * Firmware.erasure_cert) list
      (** per shard, in index order: (shard, store id, cert). A client
          accepts a cluster-wide erasure only when {e every} shard
          attests — see {!Worm_cluster.Cluster_proof.verify_erasure} *)

val describe_request : request -> string
val describe_response : response -> string
(** One-line renderings for fault traces and console output; payloads
    are summarized, never dumped. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response :
  ?read_response:(Worm_util.Codec.encoder -> Proof.read_response -> unit) ->
  response ->
  string
(** [read_response] (default {!encode_read_response}) lets a server
    splice memoised canonical fragments for epoch-stable proofs; the
    resulting bytes must be identical to the default encoding. *)

val decode_response : string -> (response, string) result

val request_wire_length : request -> int
val response_wire_length :
  ?read_response:(Worm_util.Codec.encoder -> Proof.read_response -> unit) ->
  response ->
  int
(** Wire length without materialising the encoded string — for byte
    accounting (Netsim charges by length only). *)

(** Exposed for reuse (e.g. persisting audit evidence, streaming
    encoders). *)

val encode_request_into : Worm_util.Codec.encoder -> request -> unit
val encode_response_into :
  ?read_response:(Worm_util.Codec.encoder -> Proof.read_response -> unit) ->
  Worm_util.Codec.encoder ->
  response ->
  unit
val encode_read_response : Worm_util.Codec.encoder -> Proof.read_response -> unit
val decode_read_response : Worm_util.Codec.decoder -> Proof.read_response
