(** Fault-injecting transport wrapper.

    The trust argument (§3, §4.2.2) requires that a transport which
    garbles, drops, or misroutes proves nothing — every misbehavior of
    the wire must degrade to a verdict, never to a crash or a wrong
    acceptance. This module makes that claim testable: wrap any
    [string -> string] transport in a composable schedule of injected
    faults, driven by a seeded DRBG so every run (test, bench, demo)
    reproduces the same fault pattern byte for byte.

    Faults are applied in list order on each call; the first one whose
    draw fires wins (a dropped call is not also garbled). A [Crash]
    window is positional rather than probabilistic and models a server
    outage: calls inside the window raise, calls after it succeed
    again — exactly the shape {!Remote_client.run_remote_audit} must
    resume across. *)

type transport = string -> string

exception Injected of string
(** The exception raised by [Drop] and [Crash] faults (a lost reply is
    indistinguishable from a timeout). [Raise] faults throw [Failure]
    instead, modelling an arbitrary buggy transport stack. *)

type fault =
  | Drop of float  (** probability: request swallowed; raises {!Injected} *)
  | Garble of float  (** probability: one reply byte flipped at a random offset *)
  | Truncate of float  (** probability: reply cut to a random proper prefix *)
  | Duplicate of float
      (** probability: request delivered to the inner transport twice
          (replay); the second reply is returned — an idempotent server
          makes this invisible *)
  | Delay of { p : float; ns : int64 }
      (** probability: reply delivered intact but [ns] of virtual
          latency charged via [charge_delay] *)
  | Raise of float  (** probability: raises [Failure], not {!Injected} *)
  | Crash of { after : int; down_for : int }
      (** calls [after < n <= after + down_for] (1-based) raise
          {!Injected}; later calls go through — a bounded outage *)

type stats = {
  calls : int;  (** calls that reached the wrapper *)
  delivered : int;  (** replies returned intact *)
  dropped : int;
  garbled : int;
  truncated : int;
  duplicated : int;
  delayed : int;
  raised : int;
  crashed : int;
}

type t

val create : ?seed:string -> ?charge_delay:(int64 -> unit) -> faults:fault list -> transport -> t
(** [create ~faults inner] wraps [inner]. The DRBG is seeded from
    [seed] (default ["faulty-transport"]), so equal seeds give equal
    fault schedules. [charge_delay] receives the virtual nanoseconds of
    every [Delay] fault (e.g. {!Netsim.charge_ns}); default ignores. *)

val transport : t -> transport
(** The faulty transport. All injected behaviours, including raises,
    happen inside this closure. *)

val stats : t -> stats
val injected_delay_ns : t -> int64
(** Total virtual latency injected by [Delay] faults so far. *)

val pp_stats : Format.formatter -> stats -> unit
