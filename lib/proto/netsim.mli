(** Virtual network accounting for the WORM protocol.

    §3 dismisses third-party audit services partly for "network-limited
    bandwidth and high latency"; this wrapper makes those costs
    measurable for our SCPU-rooted alternative. It wraps a transport and
    charges one round-trip plus size/bandwidth per exchange into a
    virtual ledger (no wall-clock sleeping), so experiments can compare
    e.g. per-record reads against batched {!Remote_client.audit_sweep}. *)

type t

val create : ?rtt_ns:int64 -> ?bandwidth_bytes_per_sec:float -> unit -> t
(** Defaults: 1 ms RTT, 1 Gbit/s. *)

val wrap : t -> (string -> string) -> string -> string
(** [wrap t transport] behaves as [transport] while accounting each
    exchange. If the wrapped transport raises, the request bytes and
    one RTT are still charged (the request crossed the wire and the
    caller waited for a reply that never came) before the exception is
    re-raised. *)

val transfer_ns : t -> bytes:int -> int64
(** Wire time of [bytes] at the configured bandwidth, rounded to the
    nearest nanosecond (never truncated toward zero: small frames must
    not bill 0 ns). *)

val one_way_ns : t -> bytes:int -> int64
(** Half an RTT plus {!transfer_ns}: the per-direction delivery latency
    an event-driven server charges each client individually. *)

val note_exchange : t -> bytes:int -> wait_ns:int64 -> unit
(** Account one request/response exchange whose wait was computed by the
    caller (e.g. the event server, which knows per-client queueing):
    counts a request, [bytes] on the wire, and [wait_ns] elapsed.
    @raise Invalid_argument on a negative wait. *)

val charge_ns : t -> int64 -> unit
(** Bill extra virtual wait — retry backoff, injected latency — into
    the ledger without counting a request or bytes.
    @raise Invalid_argument on a negative amount. *)

val requests : t -> int
val bytes_transferred : t -> int
val elapsed_ns : t -> int64
(** Accumulated virtual wire time: requests x RTT + bytes / bandwidth. *)

val reset : t -> unit
