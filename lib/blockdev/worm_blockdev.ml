open Worm_core
module Codec = Worm_util.Codec

type t = { store : Worm.t; client : Client.t; block_size : int; policy : Policy.t }

let create ?(block_size = 4096) ?policy ~store ~client () =
  if block_size < 16 then invalid_arg "Worm_blockdev.create: block size too small";
  let policy =
    match policy with
    | Some p -> p
    | None -> Policy.of_regulation Policy.Sec17a4
  in
  { store; client; block_size; policy }

let block_size t = t.block_size

(* Fixed-width framing inside the block: u32 length then payload then
   NUL padding, so blocks are uniform on the medium and contents exact. *)
let frame t payload =
  let n = String.length payload in
  if n > t.block_size - 4 then invalid_arg "Worm_blockdev.append: payload exceeds block size";
  let b = Bytes.make t.block_size '\000' in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let unframe t block =
  if String.length block <> t.block_size then None
  else begin
    (* Big-endian u32 length, parsed in place (same wire format as
       [Codec.u32]) — no header substring. *)
    let n =
      (Char.code block.[0] lsl 24)
      lor (Char.code block.[1] lsl 16)
      lor (Char.code block.[2] lsl 8)
      lor Char.code block.[3]
    in
    if n <= t.block_size - 4 then Some (String.sub block 4 n) else None
  end

(* LBA <-> serial: serials start at 1, LBAs at 0. *)
let sn_of_lba lba = Serial.of_int64 (Int64.add lba 1L)

let append t payload =
  let sn = Worm.write t.store ~policy:t.policy ~blocks:[ frame t payload ] in
  Int64.sub (Serial.to_int64 sn) 1L

let capacity_used t = Serial.to_int64 (Firmware.sn_current (Worm.firmware t.store))

type read_result = Data of string | Expired | Unwritten | Compromised of string

let read t lba =
  if Int64.compare lba 0L < 0 then Unwritten
  else begin
    let sn = sn_of_lba lba in
    match Client.verify_read t.client ~sn (Worm.read t.store sn) with
    | Client.Valid_data { blocks = [ block ]; _ } -> begin
        match unframe t block with
        | Some payload -> Data payload
        | None -> Compromised "block framing invalid"
      end
    | Client.Valid_data _ -> Compromised "unexpected block shape"
    | Client.Committed_unverifiable -> Compromised "witness not yet strengthened"
    | Client.Properly_deleted -> Expired
    | Client.Properly_erased -> Expired
    | Client.Never_written -> Unwritten
    | Client.Violation vs -> Compromised (String.concat "; " (List.map Client.violation_to_string vs))
  end

let expire t = List.length (List.filter (fun (_, r) -> r = Ok ()) (Worm.expire_due t.store))
