open Worm_core
module Codec = Worm_util.Codec

type version_info = { version : int; sn : Serial.t; length : int }

type t = {
  store : Worm.t;
  (* path -> versions, newest first (host-side, untrusted) *)
  index : (string, version_info list) Hashtbl.t;
}

let create store = { store; index = Hashtbl.create 64 }
let store t = t.store

type header = { h_path : string; h_version : int; h_prev : Serial.t option; h_length : int }

let magic = "wormfs:v1"

let encode_header enc h =
  Codec.bytes enc magic;
  Codec.bytes enc h.h_path;
  Codec.u32 enc h.h_version;
  Codec.option Serial.encode enc h.h_prev;
  Codec.int_as_u64 enc h.h_length

let decode_header_raw dec =
  let m = Codec.read_bytes dec in
  if not (String.equal m magic) then raise (Codec.Malformed "not a wormfs header");
  let h_path = Codec.read_bytes dec in
  let h_version = Codec.read_u32 dec in
  let h_prev = Codec.read_option Serial.decode dec in
  let h_length = Codec.read_int_as_u64 dec in
  { h_path; h_version; h_prev; h_length }

let decode_header s = Codec.decode decode_header_raw s

let chunk_size = Worm_workload.Workload.default_block_size

let split_content data =
  let n = String.length data in
  if n = 0 then [ "" ]
  else begin
    let rec go acc off =
      if off >= n then List.rev acc
      else begin
        let len = min chunk_size (n - off) in
        go (String.sub data off len :: acc) (off + len)
      end
    in
    go [] 0
  end

let check_path path =
  if String.length path = 0 then invalid_arg "Worm_fs: empty path";
  if String.contains path '\n' then invalid_arg "Worm_fs: path contains newline"

let write_file ?witness t ~policy ~path data =
  check_path path;
  let prior = Option.value ~default:[] (Hashtbl.find_opt t.index path) in
  let h_version, h_prev =
    match prior with
    | [] -> (1, None)
    | latest :: _ -> (latest.version + 1, Some latest.sn)
  in
  let header =
    Codec.encode encode_header { h_path = path; h_version; h_prev; h_length = String.length data }
  in
  let sn = Worm.write ?witness t.store ~policy ~blocks:(header :: split_content data) in
  let info = { version = h_version; sn; length = String.length data } in
  Hashtbl.replace t.index path (info :: prior);
  info

let versions t ~path = List.rev (Option.value ~default:[] (Hashtbl.find_opt t.index path))

let stat t ~path =
  match Hashtbl.find_opt t.index path with
  | Some (latest :: _) -> Some latest
  | Some [] | None -> None

let list_files t =
  Hashtbl.fold (fun path vs acc -> if vs = [] then acc else path :: acc) t.index []
  |> List.sort String.compare

let list_under t ~prefix =
  List.filter (fun path -> String.length path >= String.length prefix && String.sub path 0 (String.length prefix) = prefix) (list_files t)

let total_bytes t =
  Hashtbl.fold
    (fun _ vs acc ->
      match vs with
      | latest :: _ -> acc + latest.length
      | [] -> acc)
    t.index 0

type read_error = No_such_file | No_such_version | Version_deleted | Store_error of string

let lookup t ?version ~path () =
  match Hashtbl.find_opt t.index path with
  | None | Some [] -> Error No_such_file
  | Some (latest :: _ as vs) -> begin
      match version with
      | None -> Ok latest
      | Some v -> begin
          match List.find_opt (fun info -> info.version = v) vs with
          | Some info -> Ok info
          | None -> Error No_such_version
        end
    end

let ( let* ) = Result.bind

let assemble info header rest =
  if header.h_length <> List.fold_left (fun acc b -> acc + String.length b) 0 rest then
    Error (Store_error "content length disagrees with signed header")
  else Ok (info, String.concat "" rest)

let read_file t ?version path =
  let* info = lookup t ?version ~path () in
  match Worm.read t.store info.sn with
  | Proof.Found { blocks = header_block :: rest; _ } -> begin
      match decode_header header_block with
      | Ok header -> assemble info header rest
      | Error e -> Error (Store_error ("bad header: " ^ e))
    end
  | Proof.Found { blocks = []; _ } -> Error (Store_error "record has no blocks")
  | Proof.Proof_deleted _ | Proof.Proof_in_window _ | Proof.Proof_below_base _ | Proof.Erased _ ->
      Error Version_deleted
  | Proof.Proof_unallocated _ -> Error (Store_error "index points at an unallocated serial")
  | Proof.Refused excuse -> Error (Store_error excuse)

let verified_read t ~client ?version path =
  match lookup t ?version ~path () with
  | Error No_such_file -> Error "no such file"
  | Error No_such_version -> Error "no such version"
  | Error Version_deleted -> Error "version deleted"
  | Error (Store_error e) -> Error e
  | Ok info -> begin
      match Client.verify_read client ~sn:info.sn (Worm.read t.store info.sn) with
      | Client.Valid_data { blocks = header_block :: rest; _ } -> begin
          match decode_header header_block with
          | Error e -> Error ("header does not decode: " ^ e)
          | Ok header ->
              (* The signed header must name exactly what was asked for. *)
              if not (String.equal header.h_path path) then
                Error
                  (Printf.sprintf "header names path %S, requested %S: substituted record" header.h_path path)
              else if header.h_version <> info.version then
                Error
                  (Printf.sprintf "header names version %d, requested %d: substituted version" header.h_version
                     info.version)
              else begin
                match assemble info header rest with
                | Ok result -> Ok result
                | Error (Store_error e) -> Error e
                | Error (No_such_file | No_such_version | Version_deleted) -> Error "unreachable"
              end
        end
      | Client.Valid_data { blocks = []; _ } -> Error "record has no blocks"
      | Client.Committed_unverifiable -> Error "committed but not yet client-verifiable (strengthening pending)"
      | Client.Properly_deleted -> Error "version deleted (proof verified)"
      | Client.Properly_erased -> Error "version crypto-erased (certificate verified)"
      | Client.Never_written -> Error "index points at an unallocated serial"
      | Client.Violation vs ->
          Error ("VIOLATION: " ^ String.concat "; " (List.map Client.violation_to_string vs))
    end

let index_magic = "wormfs-index:v1"

let save_index t =
  Codec.encode
    (fun enc () ->
      Codec.bytes enc index_magic;
      Codec.list
        (fun enc (path, vs) ->
          Codec.bytes enc path;
          Codec.list
            (fun enc info ->
              Codec.u32 enc info.version;
              Serial.encode enc info.sn;
              Codec.int_as_u64 enc info.length)
            enc vs)
        enc
        (Hashtbl.fold (fun path vs acc -> (path, vs) :: acc) t.index []))
    ()

let restore_index store ~index =
  let decode dec =
    let magic = Codec.read_bytes dec in
    if not (String.equal magic index_magic) then raise (Codec.Malformed "not a wormfs index");
    Codec.read_list
      (fun dec ->
        let path = Codec.read_bytes dec in
        let vs =
          Codec.read_list
            (fun dec ->
              let version = Codec.read_u32 dec in
              let sn = Serial.decode dec in
              let length = Codec.read_int_as_u64 dec in
              { version; sn; length })
            dec
        in
        (path, vs))
      dec
  in
  match Codec.decode decode index with
  | Error e -> Error ("index rejected: " ^ e)
  | Ok pairs ->
      let t = create store in
      List.iter (fun (path, vs) -> Hashtbl.replace t.index path vs) pairs;
      Ok t

let sync_index t =
  let pruned = ref 0 in
  let paths = Hashtbl.fold (fun path _ acc -> path :: acc) t.index [] in
  List.iter
    (fun path ->
      let vs = Option.value ~default:[] (Hashtbl.find_opt t.index path) in
      let live =
        List.filter
          (fun info ->
            match Vrdt.find (Worm.vrdt t.store) info.sn with
            | Some (Vrdt.Active _) -> true
            | Some (Vrdt.Deleted _) | None ->
                incr pruned;
                false)
          vs
      in
      if live = [] then Hashtbl.remove t.index path else Hashtbl.replace t.index path live)
    paths;
  !pruned
