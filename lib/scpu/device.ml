open Worm_crypto
module Clock = Worm_simclock.Clock

exception Tamper_detected

type config = { strong_bits : int; weak_bits : int; weak_lifetime_ns : int64; profile : Cost_model.profile }

let default_config =
  { strong_bits = 1024; weak_bits = 512; weak_lifetime_ns = Clock.ns_of_min 120.; profile = Cost_model.ibm_4764 }

let test_config = { default_config with strong_bits = 512 }

type stats = {
  strong_signs : int;
  weak_signs : int;
  deletion_signs : int;
  sign_calls : int;
  hmac_ops : int;
  hash_ops : int;
  hash_bytes : int;
  dma_bytes : int;
  weak_rotations : int;
}

let zero_stats =
  {
    strong_signs = 0;
    weak_signs = 0;
    deletion_signs = 0;
    sign_calls = 0;
    hmac_ops = 0;
    hash_ops = 0;
    hash_bytes = 0;
    dma_bytes = 0;
    weak_rotations = 0;
  }

type keys = {
  signing : Rsa.secret;
  deletion : Rsa.secret;
  hmac_key : string;
  signing_cert : Cert.t;
  deletion_cert : Cert.t;
  mutable weak : Rsa.secret;
  mutable weak_cert : Cert.t;
  mutable weak_serial : int;
  rng : Drbg.t;
}

type t = {
  name : string;
  config : config;
  clock : Clock.t;
  mutable keys : keys option; (* None after zeroization *)
  mutable busy_ns : int64;
  mutable stats : stats;
}

let issue_weak_cert t_name config clock signing serial weak_pub =
  Cert.issue ~ca:signing
    ~subject:(Printf.sprintf "%s/weak-%d" t_name serial)
    ~role:Cert.Scpu_short_term ~key:weak_pub ~not_before:(Clock.now clock)
    ~not_after:(Int64.add (Clock.now clock) config.weak_lifetime_ns)

let provision ~seed ~clock ~ca ?(config = default_config) ~name () =
  let rng = Drbg.create ~seed:("scpu-device|" ^ name ^ "|" ^ seed) in
  let signing = Rsa.generate rng ~bits:config.strong_bits in
  let deletion = Rsa.generate rng ~bits:config.strong_bits in
  let weak = Rsa.generate rng ~bits:config.weak_bits in
  let hmac_key = Drbg.generate rng 32 in
  let far_future = Int64.add (Clock.now clock) (Clock.ns_of_years 50.) in
  let signing_cert =
    Cert.issue ~ca ~subject:(name ^ "/signing") ~role:Cert.Scpu_signing ~key:(Rsa.public_of signing)
      ~not_before:(Clock.now clock) ~not_after:far_future
  in
  let deletion_cert =
    Cert.issue ~ca ~subject:(name ^ "/deletion") ~role:Cert.Scpu_deletion ~key:(Rsa.public_of deletion)
      ~not_before:(Clock.now clock) ~not_after:far_future
  in
  let weak_cert = issue_weak_cert name config clock signing 0 (Rsa.public_of weak) in
  {
    name;
    config;
    clock;
    keys = Some { signing; deletion; hmac_key; signing_cert; deletion_cert; weak; weak_cert; weak_serial = 0; rng };
    busy_ns = 0L;
    stats = zero_stats;
  }

let name t = t.name
let config t = t.config

let keys t =
  match t.keys with
  | Some k -> k
  | None -> raise Tamper_detected

let now t =
  ignore (keys t);
  Clock.now t.clock

let charge t ns = t.busy_ns <- Int64.add t.busy_ns ns

let random t n =
  let k = keys t in
  Drbg.generate k.rng n

let signing_cert t = (keys t).signing_cert
let deletion_cert t = (keys t).deletion_cert

(* Rotate the short-lived key when its certificate has lapsed. Fresh
   keys are assumed pre-generated during idle (§4.3), so rotation is
   free in the busy-time ledger. *)
let rotate_weak_if_needed t =
  let k = keys t in
  if Int64.compare (Clock.now t.clock) k.weak_cert.Cert.not_after > 0 then begin
    k.weak <- Rsa.generate k.rng ~bits:t.config.weak_bits;
    k.weak_serial <- k.weak_serial + 1;
    k.weak_cert <- issue_weak_cert t.name t.config t.clock k.signing k.weak_serial (Rsa.public_of k.weak);
    t.stats <- { t.stats with weak_rotations = t.stats.weak_rotations + 1 }
  end

let current_weak_cert t =
  rotate_weak_if_needed t;
  (keys t).weak_cert

let sign_strong t msg =
  let k = keys t in
  charge t (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.strong_bits);
  t.stats <- { t.stats with strong_signs = t.stats.strong_signs + 1; sign_calls = t.stats.sign_calls + 1 };
  Rsa.sign k.signing msg

let sign_deletion t msg =
  let k = keys t in
  charge t (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.strong_bits);
  t.stats <- { t.stats with deletion_signs = t.stats.deletion_signs + 1; sign_calls = t.stats.sign_calls + 1 };
  Rsa.sign k.deletion msg

let sign_weak t msg =
  rotate_weak_if_needed t;
  let k = keys t in
  charge t (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.weak_bits);
  t.stats <- { t.stats with weak_signs = t.stats.weak_signs + 1; sign_calls = t.stats.sign_calls + 1 };
  (k.weak_cert, Rsa.sign k.weak msg)

(* Batch variants: one trip through the key material for a whole burst.
   The ledger still charges per signature — amortization buys back the
   host-side setup, not the modular exponentiations themselves. *)

let sign_strong_batch t msgs =
  let k = keys t in
  let count = List.length msgs in
  charge t (Int64.mul (Int64.of_int count) (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.strong_bits));
  t.stats <- { t.stats with strong_signs = t.stats.strong_signs + count; sign_calls = t.stats.sign_calls + 1 };
  Rsa.sign_batch k.signing msgs

let sign_deletion_batch t msgs =
  let k = keys t in
  let count = List.length msgs in
  charge t (Int64.mul (Int64.of_int count) (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.strong_bits));
  t.stats <- { t.stats with deletion_signs = t.stats.deletion_signs + count; sign_calls = t.stats.sign_calls + 1 };
  Rsa.sign_batch k.deletion msgs

let sign_weak_batch t msgs =
  rotate_weak_if_needed t;
  let k = keys t in
  let count = List.length msgs in
  charge t (Int64.mul (Int64.of_int count) (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.weak_bits));
  t.stats <- { t.stats with weak_signs = t.stats.weak_signs + count; sign_calls = t.stats.sign_calls + 1 };
  (k.weak_cert, Rsa.sign_batch k.weak msgs)

let hmac_tag t msg =
  let k = keys t in
  charge t (Cost_model.hmac_ns t.config.profile ~bytes:(String.length msg));
  t.stats <- { t.stats with hmac_ops = t.stats.hmac_ops + 1 };
  Hmac.sha256 ~key:k.hmac_key msg

let hmac_verify t ~msg ~tag =
  let k = keys t in
  charge t (Cost_model.hmac_ns t.config.profile ~bytes:(String.length msg));
  t.stats <- { t.stats with hmac_ops = t.stats.hmac_ops + 1 };
  Hmac.verify_sha256 ~key:k.hmac_key ~msg ~mac:tag

let hash t msg =
  ignore (keys t);
  charge t (Cost_model.hash_ns t.config.profile ~bytes:(String.length msg));
  t.stats <- { t.stats with hash_ops = t.stats.hash_ops + 1; hash_bytes = t.stats.hash_bytes + String.length msg };
  Sha256.digest msg

let charge_dma t ~bytes =
  ignore (keys t);
  charge t (Cost_model.dma_ns t.config.profile ~bytes);
  t.stats <- { t.stats with dma_bytes = t.stats.dma_bytes + bytes }

let charge_rsa_verify t ~bits =
  ignore (keys t);
  charge t (Cost_model.rsa_verify_ns t.config.profile ~bits)

let charge_hash_only t ~bytes =
  ignore (keys t);
  charge t (Cost_model.hash_ns t.config.profile ~bytes);
  t.stats <- { t.stats with hash_ops = t.stats.hash_ops + 1; hash_bytes = t.stats.hash_bytes + bytes }

let charge_sign_strong_only t =
  ignore (keys t);
  charge t (Cost_model.rsa_sign_ns t.config.profile ~bits:t.config.strong_bits);
  t.stats <- { t.stats with strong_signs = t.stats.strong_signs + 1 }

let busy_ns t = t.busy_ns
let reset_busy t = t.busy_ns <- 0L
let stats t = t.stats

let tamper_respond t = t.keys <- None
let is_zeroized t = t.keys = None
