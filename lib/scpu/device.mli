(** Secure coprocessor (SCPU) device model — the trusted enclosure.

    Models an IBM 4764-class FIPS 140-2 Level 4 cryptographic
    coprocessor: private keys live only inside an abstract {!t}; the
    host interacts exclusively through this interface (the moral
    equivalent of the CCA API plus custom WORM firmware entry points).
    Physical attack triggers zeroization ({!tamper_respond}) after which
    every operation raises {!Tamper_detected}.

    Every primitive charges virtual time from {!Cost_model} into a
    busy-time ledger; DMA transfers across the PCI-X bus are charged
    explicitly by callers via {!charge_dma} since only the firmware
    knows how many bytes actually cross the boundary in each protocol
    mode. The device also keeps per-operation counters so tests can
    assert, e.g., that the read path never touches the SCPU. *)

exception Tamper_detected

type config = {
  strong_bits : int;  (** modulus size of keys s and d (paper: 1024) *)
  weak_bits : int;  (** short-lived burst keys (paper: 512) *)
  weak_lifetime_ns : int64;
      (** security lifetime of weak constructs: how long a 512-bit
          modulus is assumed to resist factoring (paper: 60–180 min) *)
  profile : Cost_model.profile;
}

val default_config : config
(** 1024/512 bits, 120 min weak lifetime, IBM 4764 profile. *)

val test_config : config
(** 512/512 bits — fast key generation for unit tests; identical logic. *)

type stats = {
  strong_signs : int;
  weak_signs : int;
  deletion_signs : int;
  sign_calls : int;
      (** signing {e invocations} (single or batch): each call pays the
          per-key setup that {!sign_strong_batch} amortizes over a whole
          burst, so cross-client batching shows up as fewer [sign_calls]
          for the same number of signatures *)
  hmac_ops : int;
  hash_ops : int;
  hash_bytes : int;
  dma_bytes : int;
  weak_rotations : int;
}

type t

val provision :
  seed:string -> clock:Worm_simclock.Clock.t -> ca:Worm_crypto.Rsa.secret -> ?config:config -> name:string -> unit -> t
(** Factory provisioning: generates the device key set deterministically
    from [seed] and has the certificate authority [ca] certify the
    signing (s) and deletion (d) public keys. *)

val name : t -> string
val config : t -> config

val now : t -> int64
(** The SCPU's internal tamper-protected clock. *)

val random : t -> int -> string

(** {2 Certificates} *)

val signing_cert : t -> Worm_crypto.Cert.t
val deletion_cert : t -> Worm_crypto.Cert.t

val current_weak_cert : t -> Worm_crypto.Cert.t
(** Certificate of the active short-lived key, chained under the
    signing key s (verify it with the signing cert's public key). The
    device rotates weak keys when their lifetime lapses; fresh keys are
    prepared during idle periods so rotation charges no busy time. *)

(** {2 Signing services} *)

val sign_strong : t -> string -> string
(** Sign with s (metasig, datasig, window bounds). *)

val sign_deletion : t -> string -> string
(** Sign with d (deletion proofs). *)

val sign_weak : t -> string -> Worm_crypto.Cert.t * string
(** Sign with the current short-lived key; returns its certificate. *)

val sign_strong_batch : t -> string list -> string list
(** [sign_strong_batch t msgs] signs every message with s in order.
    Charges and counts one strong signature per message; the batch form
    amortizes per-key setup across the burst (§4.3). *)

val sign_deletion_batch : t -> string list -> string list

val sign_weak_batch : t -> string list -> Worm_crypto.Cert.t * string list
(** Batch form of {!sign_weak}. The key is rotated (at most once) before
    the batch, so every signature in it verifies under the single
    returned certificate. *)

val hmac_tag : t -> string -> string
(** MAC under a device-internal key (fastest deferred mode, §4.3). Only
    this device can verify. *)

val hmac_verify : t -> msg:string -> tag:string -> bool

val hash : t -> string -> string
(** SHA-256 computed inside the device (charged at SCPU hash rates). *)

(** {2 Ledger} *)

val charge_dma : t -> bytes:int -> unit

val charge_rsa_verify : t -> bits:int -> unit
(** Charge an on-device signature verification (firmware re-checking its
    own witnesses before honoring a deletion or strengthening request). *)

val charge_hash_only : t -> bytes:int -> unit
(** Charge one on-device hash pass over [bytes] without computing it
    (the firmware hashes with its own incremental constructions). *)

val charge_sign_strong_only : t -> unit
(** Charge a strong signature's cost without performing one (used by the
    simulator's fast path; keeps ledgers comparable). *)

val busy_ns : t -> int64
val reset_busy : t -> unit
val stats : t -> stats

(** {2 Tamper response} *)

val tamper_respond : t -> unit
(** Physical intrusion detected: destroy all internal state. *)

val is_zeroized : t -> bool
