type profile = {
  name : string;
  rsa_sign_anchors : (int * float) list;
  hash_call_overhead_ns : float;
  hash_bytes_per_sec : float;
  dma_bytes_per_sec : float;
  hmac_fixed_ns : float;
}

(* Decompose two (block size, MB/s) anchor points into per-call overhead
   plus peak streaming rate: t(b) = overhead + b / peak. *)
let hash_params ~small:(b1, r1) ~large:(b2, r2) =
  let t1 = float_of_int b1 /. r1 and t2 = float_of_int b2 /. r2 in
  let peak = float_of_int (b2 - b1) /. (t2 -. t1) in
  let overhead_ns = (t1 -. (float_of_int b1 /. peak)) *. 1e9 in
  (overhead_ns, peak)

let ibm_4764 =
  let overhead, peak = hash_params ~small:(1024, 1.42e6) ~large:(65536, 18.6e6) in
  {
    name = "IBM 4764";
    rsa_sign_anchors = [ (512, 4200.); (1024, 848.); (2048, 390.) ];
    hash_call_overhead_ns = overhead;
    hash_bytes_per_sec = peak;
    dma_bytes_per_sec = 82.5e6;
    hmac_fixed_ns = 5_000.;
  }

let host_p4 =
  let overhead, peak = hash_params ~small:(1024, 80e6) ~large:(65536, 120e6) in
  {
    name = "P4 @ 3.4GHz";
    rsa_sign_anchors = [ (512, 1315.); (1024, 261.); (2048, 43.) ];
    hash_call_overhead_ns = overhead;
    hash_bytes_per_sec = peak;
    dma_bytes_per_sec = 1e9;
    hmac_fixed_ns = 500.;
  }

(* Build a profile from anchors measured on the running host (the bench
   harness feeds Bechamel numbers in) so the simulator can project
   Figure-1 throughput for THIS machine next to the paper's hardware. *)
let of_measurements ~name ~rsa_sign_anchors ~hash_small ~hash_large
    ?(dma_bytes_per_sec = 1e9) ?(hmac_fixed_ns = 500.) () =
  if rsa_sign_anchors = [] then invalid_arg "Cost_model.of_measurements: no RSA anchors";
  let rec ascending = function
    | (b1, r1) :: ((b2, r2) :: _ as rest) ->
        if b1 >= b2 then invalid_arg "Cost_model.of_measurements: anchors must ascend in bits";
        if r1 <= 0. || r2 <= 0. then invalid_arg "Cost_model.of_measurements: non-positive rate";
        ascending rest
    | [ (_, r) ] -> if r <= 0. then invalid_arg "Cost_model.of_measurements: non-positive rate"
    | [] -> ()
  in
  ascending rsa_sign_anchors;
  let (b1, r1) = hash_small and (b2, r2) = hash_large in
  if b1 <= 0 || b2 <= b1 || r1 <= 0. || r2 <= 0. then
    invalid_arg "Cost_model.of_measurements: bad hash anchors";
  let overhead, peak = hash_params ~small:hash_small ~large:hash_large in
  {
    name;
    rsa_sign_anchors;
    hash_call_overhead_ns = max 0. overhead;
    hash_bytes_per_sec = peak;
    dma_bytes_per_sec;
    hmac_fixed_ns;
  }

let rsa_sign_sec profile ~bits =
  if bits <= 0 then invalid_arg "Cost_model.rsa_sign: non-positive bits";
  let anchors = profile.rsa_sign_anchors in
  let time_of_rate r = 1. /. r in
  let b = float_of_int bits in
  (* [profile] is an open record a caller can build by hand, so an empty
     anchor list is a caller error worth naming — not an impossible
     state to assert away. [locate] only ever recurses on non-empty
     tails, so the branch fires exactly for an anchorless profile. *)
  let rec locate = function
    | [] -> invalid_arg (Printf.sprintf "Cost_model.rsa_sign: profile %S has no RSA anchors" profile.name)
    | [ (bn, rn) ] ->
        (* above the top anchor: cubic extrapolation *)
        time_of_rate rn *. ((b /. float_of_int bn) ** 3.)
    | (b1, r1) :: ((b2, r2) :: _ as rest) ->
        if bits <= b1 then time_of_rate r1 *. ((b /. float_of_int b1) ** 3.)
        else if bits <= b2 then begin
          (* log-log interpolation between anchors *)
          let t1 = log (time_of_rate r1) and t2 = log (time_of_rate r2) in
          let x = (log b -. log (float_of_int b1)) /. (log (float_of_int b2) -. log (float_of_int b1)) in
          exp (t1 +. (x *. (t2 -. t1)))
        end
        else locate rest
  in
  locate anchors

let rsa_sign_ns profile ~bits = Int64.of_float (rsa_sign_sec profile ~bits *. 1e9)
let rsa_sign_per_sec profile ~bits = 1. /. rsa_sign_sec profile ~bits
let rsa_verify_ns profile ~bits = Int64.of_float (rsa_sign_sec profile ~bits /. 20. *. 1e9)

let hash_sec profile ~bytes =
  (profile.hash_call_overhead_ns *. 1e-9) +. (float_of_int bytes /. profile.hash_bytes_per_sec)

let hash_ns profile ~bytes = Int64.of_float (hash_sec profile ~bytes *. 1e9)
let hash_mb_per_sec profile ~block_bytes = float_of_int block_bytes /. hash_sec profile ~bytes:block_bytes /. 1e6

(* HMAC witnessing runs inside the firmware over in-enclosure data, so
   unlike the CCA hash *service* (whose Table-2 anchors are dominated by
   per-call command overhead at small blocks), it pays only streaming
   cost over message + padded key blocks plus a small fixed term. This
   is what makes §4.3's claim come out: HMAC throughput is limited by
   the SCPU bus, not by the hash service. *)
let hmac_ns profile ~bytes =
  Int64.of_float (profile.hmac_fixed_ns +. (float_of_int (bytes + 128) /. profile.hash_bytes_per_sec *. 1e9))

let dma_ns profile ~bytes = Int64.of_float (float_of_int bytes /. profile.dma_bytes_per_sec *. 1e9)

let max_sign_bits_for_rate profile ~signatures_per_sec =
  if signatures_per_sec <= 0. then invalid_arg "Cost_model.max_sign_bits_for_rate: non-positive rate";
  (* rsa_sign_sec is monotone in bits, so scan downward from a generous
     ceiling in 64-bit steps. *)
  let rec scan bits =
    if bits <= 512 then 512
    else if rsa_sign_per_sec profile ~bits >= signatures_per_sec then bits
    else scan (bits - 64)
  in
  scan 4096
