(** Calibrated processor cost models (the paper's Table 2).

    Heat-dissipation limits under tamper-resistance make the SCPU about
    an order of magnitude slower than the host CPU; every protocol
    decision in the paper flows from that asymmetry. The simulator
    charges virtual time for each primitive using these profiles, so
    reproduced throughput curves reflect the published hardware rather
    than whatever machine this code happens to run on.

    Anchor figures (Table 2, IBM 4764 vs P4\@3.4GHz / OpenSSL 0.9.7f):

    - RSA sign/s: 4764 = 4200 (512b, est.), 848 (1024b), 390 (2048b, mid
      of 316–470); P4 = 1315 / 261 / 43.
    - SHA-1: 4764 = 1.42 MB/s at 1 KB blocks, 18.6 MB/s at 64 KB; P4 =
      80 MB/s and 120 MB/s.
    - DMA end-to-end: 4764 = 82.5 MB/s (mid of 75–90); P4 memory bus =
      1 GB/s.

    SHA-1 anchors are decomposed into a per-call overhead plus a peak
    streaming rate, so intermediate block sizes interpolate smoothly.
    RSA costs interpolate between anchors on a log-log scale and
    extrapolate cubically (modular exponentiation is Θ(bits³)). *)

type profile = {
  name : string;
  rsa_sign_anchors : (int * float) list;  (** (modulus bits, signatures/s), ascending *)
  hash_call_overhead_ns : float;
  hash_bytes_per_sec : float;
  dma_bytes_per_sec : float;
  hmac_fixed_ns : float;  (** per-MAC fixed cost of the in-firmware HMAC path *)
}

val ibm_4764 : profile
val host_p4 : profile

val of_measurements :
  name:string ->
  rsa_sign_anchors:(int * float) list ->
  hash_small:int * float ->
  hash_large:int * float ->
  ?dma_bytes_per_sec:float ->
  ?hmac_fixed_ns:float ->
  unit ->
  profile
(** Calibrate a profile from rates measured on the running host:
    [rsa_sign_anchors] are (modulus bits, signatures/s) ascending in
    bits; [hash_small]/[hash_large] are (block bytes, bytes/s) at two
    block sizes, decomposed into per-call overhead + streaming peak the
    same way the Table-2 profiles are. Defaults assume a host-class
    memory bus (1 GB/s DMA) and in-process HMAC (500 ns fixed). The
    bench harness uses this to project the paper's Figure-1 sweep onto
    the machine the benchmarks just ran on.
    @raise Invalid_argument on empty, unsorted, or non-positive anchors. *)

val rsa_sign_ns : profile -> bits:int -> int64
val rsa_sign_per_sec : profile -> bits:int -> float
(** @raise Invalid_argument on non-positive [bits], or on a
    hand-constructed profile whose [rsa_sign_anchors] list is empty. *)

val rsa_verify_ns : profile -> bits:int -> int64
(** Public-key operation with e = 65537: a small constant number of
    multiplications versus ~1.5·bits for signing; modeled as sign/20. *)

val hash_ns : profile -> bytes:int -> int64
val hash_mb_per_sec : profile -> block_bytes:int -> float
val hmac_ns : profile -> bytes:int -> int64
(** In-firmware HMAC: streaming cost over message + key blocks plus a
    small fixed term — {e not} the CCA hash-service call overhead, which
    is why HMAC witnessing stays bus-limited (§4.3). *)

val dma_ns : profile -> bytes:int -> int64

val max_sign_bits_for_rate : profile -> signatures_per_sec:float -> int
(** §4.3's sizing question: "the maximum signature strength we can
    afford (e.g., bit-length of key) for a given throughput update
    rate". Returns the largest modulus size (multiple of 64, at least
    512) whose signing rate on this profile meets the target, or 512
    when even that cannot (HMAC territory). *)
