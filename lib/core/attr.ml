module Codec = Worm_util.Codec
module Clock = Worm_simclock.Clock

type hold = { lit_id : string; authority : string; credential : string; held_at : int64; timeout : int64 }

type t = {
  created_at : int64;
  policy : Policy.t;
  litigation : hold option;
  f_flag : bool;
  mac_label : string;
  dac_label : string;
  tenant : string;  (* "" = no tenant; otherwise keyed into the SCPU's per-tenant key hierarchy *)
}

let make ?(f_flag = false) ?(mac_label = "") ?(dac_label = "") ?(tenant = "") ~created_at ~policy () =
  { created_at; policy; litigation = None; f_flag; mac_label; dac_label; tenant }

let expiry t = Int64.add t.created_at t.policy.Policy.retention_ns
let is_expired t ~now = Int64.compare now (expiry t) > 0

let on_hold t ~now =
  match t.litigation with
  | None -> false
  | Some hold -> Int64.compare now hold.timeout <= 0

let deletable t ~now = is_expired t ~now && not (on_hold t ~now)
let with_hold t hold = { t with litigation = Some hold }
let without_hold t = { t with litigation = None }

let encode_hold enc hold =
  Codec.bytes enc hold.lit_id;
  Codec.bytes enc hold.authority;
  Codec.bytes enc hold.credential;
  Codec.u64 enc hold.held_at;
  Codec.u64 enc hold.timeout

let decode_hold dec =
  let lit_id = Codec.read_bytes dec in
  let authority = Codec.read_bytes dec in
  let credential = Codec.read_bytes dec in
  let held_at = Codec.read_u64 dec in
  let timeout = Codec.read_u64 dec in
  { lit_id; authority; credential; held_at; timeout }

let encode enc t =
  Codec.u64 enc t.created_at;
  Policy.encode enc t.policy;
  Codec.option encode_hold enc t.litigation;
  Codec.bool enc t.f_flag;
  Codec.bytes enc t.mac_label;
  Codec.bytes enc t.dac_label;
  Codec.bytes enc t.tenant

(* Must track [encode] exactly; checked by a property test. *)
let encoded_size t =
  let hold_size =
    match t.litigation with
    | None -> 1
    | Some h ->
        1 + (4 + String.length h.lit_id) + (4 + String.length h.authority)
        + (4 + String.length h.credential) + 8 + 8
  in
  8 + Policy.encoded_size t.policy + hold_size + 1 + (4 + String.length t.mac_label)
  + (4 + String.length t.dac_label) + (4 + String.length t.tenant)

let decode dec =
  let created_at = Codec.read_u64 dec in
  let policy = Policy.decode dec in
  let litigation = Codec.read_option decode_hold dec in
  let f_flag = Codec.read_bool dec in
  let mac_label = Codec.read_bytes dec in
  let dac_label = Codec.read_bytes dec in
  let tenant = Codec.read_bytes dec in
  { created_at; policy; litigation; f_flag; mac_label; dac_label; tenant }

let to_bytes t = Codec.encode encode t
let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "attr[%a created=%Ld%s%s]" Policy.pp t.policy t.created_at
    (if String.equal t.tenant "" then "" else " tenant=" ^ t.tenant)
    (match t.litigation with
    | Some hold -> Printf.sprintf " HELD:%s until %Ld" hold.lit_id hold.timeout
    | None -> "")
