(* Host-side tenant -> serials index. Untrusted bookkeeping: erasure
   correctness never depends on it (the SCPU refuses erased keys
   regardless), it only lets the host answer "which records did this
   tenant write" without scanning the VRDT, and lets maintenance skip
   erased records cheaply. Rebuilt from VRDT attrs on restore. *)

type t = { table : (string, Serial.Set.t ref) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let note t ~tenant ~sn =
  if not (String.equal tenant "") then begin
    match Hashtbl.find_opt t.table tenant with
    | Some set -> set := Serial.Set.add sn !set
    | None -> Hashtbl.replace t.table tenant (ref (Serial.Set.singleton sn))
  end

let remove t ~tenant ~sn =
  if not (String.equal tenant "") then begin
    match Hashtbl.find_opt t.table tenant with
    | Some set ->
        set := Serial.Set.remove sn !set;
        if Serial.Set.is_empty !set then Hashtbl.remove t.table tenant
    | None -> ()
  end

let serials t tenant =
  match Hashtbl.find_opt t.table tenant with
  | Some set -> Serial.Set.elements !set
  | None -> []

let count t tenant =
  match Hashtbl.find_opt t.table tenant with Some set -> Serial.Set.cardinal !set | None -> 0

let mem t ~tenant ~sn =
  match Hashtbl.find_opt t.table tenant with Some set -> Serial.Set.mem sn !set | None -> false

let tenants t = Hashtbl.fold (fun tenant _ acc -> tenant :: acc) t.table [] |> List.sort String.compare
