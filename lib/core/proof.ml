type read_response =
  | Found of { vrd : Vrd.t; blocks : string list }
  | Proof_deleted of { sn : Serial.t; proof : string }
  | Proof_in_window of Firmware.deletion_window
  | Proof_below_base of Firmware.base_bound
  | Proof_unallocated of Firmware.current_bound
  | Erased of { vrd : Vrd.t; cert : Firmware.erasure_cert }
  | Refused of string

let describe = function
  | Found { vrd; blocks } ->
      Printf.sprintf "found %s (%d blocks)" (Serial.to_string vrd.Vrd.sn) (List.length blocks)
  | Proof_deleted { sn; _ } -> Printf.sprintf "deletion proof for %s" (Serial.to_string sn)
  | Proof_in_window w ->
      Printf.sprintf "inside deletion window [%s, %s]" (Serial.to_string w.Firmware.lo)
        (Serial.to_string w.Firmware.hi)
  | Proof_below_base b -> Printf.sprintf "below base bound %s" (Serial.to_string b.Firmware.sn)
  | Proof_unallocated c -> Printf.sprintf "above current bound %s" (Serial.to_string c.Firmware.sn)
  | Erased { vrd; cert } ->
      Printf.sprintf "%s crypto-erased with tenant %S at %Ld" (Serial.to_string vrd.Vrd.sn)
        cert.Firmware.tenant cert.Firmware.erased_at
  | Refused excuse -> "refused: " ^ excuse
