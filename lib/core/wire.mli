(** Canonical byte encodings of every SCPU-signed statement.

    Both the firmware (signing) and clients (verifying) construct these
    from the same functions, so a signature can never be replayed as a
    different statement: each message carries a domain-separation tag,
    the store identity, and every value the statement binds.

    The [store_id] (a device-generated random identifier minted when a
    store is created) prevents cross-store replay: a deletion proof from
    one store says nothing about another. *)

val metasig_msg : store_id:string -> sn:Serial.t -> attr_bytes:string -> string
(** The paper's [S_s(SN, attr)] input. *)

val datasig_msg : store_id:string -> sn:Serial.t -> data_hash:string -> string
(** The paper's [S_s(SN, Hash(data))] input; [data_hash] is the chained
    hash of the record's data blocks. *)

val deletion_msg : store_id:string -> sn:Serial.t -> string
(** The paper's [S_d(v.SN)] input: proof of rightful deletion. *)

val base_bound_msg : store_id:string -> sn:Serial.t -> expires_at:int64 -> string
(** [S_s(SN_base)]: everything below [sn] was rightfully deleted. The
    embedded expiry bounds replay of stale bases (§4.2.1). *)

val current_bound_msg : store_id:string -> sn:Serial.t -> timestamp:int64 -> string
(** [S_s(SN_current)]: nothing above [sn] has been allocated, as of
    [timestamp]. Clients reject stale timestamps (§4.2.1 option ii). *)

val deletion_window_lo_msg : store_id:string -> window_id:string -> sn:Serial.t -> string
val deletion_window_hi_msg : store_id:string -> window_id:string -> sn:Serial.t -> string
(** Bounds of a collapsed run of expired SNs. The shared random
    [window_id] inside both envelopes is what stops the host from
    combining bounds of different windows into a forged one (§4.2.1). *)

val hold_credential_msg : store_id:string -> sn:Serial.t -> timestamp:int64 -> lit_id:string -> string
(** The litigation authority's credential [C = S_reg(SN, time, lit_id)]
    (§4.2.2 Litigation). *)

val release_credential_msg : store_id:string -> sn:Serial.t -> timestamp:int64 -> lit_id:string -> string

val erasure_msg : store_id:string -> tenant:string -> erased_at:int64 -> upto:Serial.t -> string
(** [S_d(tenant, erased_at, SN_current)]: the tenant's key hierarchy was
    destroyed inside the SCPU at [erased_at]; every record the tenant
    wrote (all of which carry serials at or below [upto]) is
    cryptographically unrecoverable. Signed with the deletion key d —
    an erasure certificate is a tenant-scoped deletion proof. *)

val migration_manifest_msg :
  source_store_id:string -> target_store_id:string -> base:Serial.t -> current:Serial.t -> content_hash:string -> string
(** Source-SCPU attestation that a compliant migration transferred the
    full live window [base..current] with the given content summary. *)
