(** Deferred-strengthening queue (§4.3).

    Records witnessed with short-lived constructs during a burst must be
    re-signed with the strong key {e within the security lifetime} of
    the weak construct. The host keeps this deadline-ordered queue and
    drains it during idle periods; the simulator asserts that no entry
    is ever strengthened past its deadline. *)

type entry = { sn : Serial.t; deadline : int64 }

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> sn:Serial.t -> deadline:int64 -> unit
(** Re-pushing an SN replaces its deadline. *)

val remove : t -> Serial.t -> bool
val mem : t -> Serial.t -> bool

val peek : t -> entry option
(** Earliest deadline. *)

val take_batch : t -> max:int -> entry list
(** Remove and return up to [max] entries, earliest deadline first. *)

val take_until : t -> deadline:int64 -> max:int -> entry list
(** Like {!take_batch}, but stops at the first entry whose deadline is
    after [deadline] — sizes a repayment batch to the urgency horizon
    without dequeuing work that can still wait. *)

val overdue : t -> now:int64 -> entry list
(** Entries whose deadline has already passed (a protocol failure if
    non-empty — they can no longer be safely strengthened). Does not
    remove them. *)

val to_list : t -> entry list
