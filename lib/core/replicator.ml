module Disk = Worm_simdisk.Disk
module Chained_hash = Worm_crypto.Chained_hash
module Rsa = Worm_crypto.Rsa
module Cert = Worm_crypto.Cert

type t = {
  primary : Worm.t;
  mirror : Worm.t;
  pairs : (Serial.t, Serial.t) Hashtbl.t;
  (* Off-store copies of the primary's signed VRD bytes, keyed by primary
     SN. These are untrusted host state like everything else here — what
     makes them usable for repair is that the witnesses inside are
     self-certifying under the primary SCPU's certificates, so a healed
     VRDT entry carries exactly the signatures the SCPU once issued. *)
  vrd_backups : (Serial.t, string) Hashtbl.t;
}

(* Verify a backup witness under the primary SCPU's signing certificate.
   Mirrors the client-side check: strong = long-term key s; weak = a
   short-term cert chained under s and still within its validity at the
   device's current time. MACs are opaque to the host, so a MAC backup
   never verifies (it is refreshed once strengthening lands). *)
let witness_verifies t msg witness =
  let signing = (Firmware.signing_cert (Worm.firmware t.primary)).Cert.key in
  let now = Worm_scpu.Device.now (Firmware.device (Worm.firmware t.primary)) in
  match witness with
  | Witness.Strong signature -> Rsa.verify signing ~msg ~signature
  | Witness.Weak { cert; signature } ->
      Cert.verify ~ca:signing ~now cert
      && cert.Cert.role = Cert.Scpu_short_term
      && Rsa.verify cert.Cert.key ~msg ~signature
  | Witness.Mac _ -> false

let vrd_verifies t (vrd : Vrd.t) =
  let store_id = Worm.store_id t.primary in
  let meta_msg = Wire.metasig_msg ~store_id ~sn:vrd.Vrd.sn ~attr_bytes:(Attr.to_bytes vrd.Vrd.attr) in
  let data_msg = Wire.datasig_msg ~store_id ~sn:vrd.Vrd.sn ~data_hash:vrd.Vrd.data_hash in
  witness_verifies t meta_msg vrd.Vrd.metasig && witness_verifies t data_msg vrd.Vrd.datasig

let backup_vrd t sn =
  match Vrdt.find (Worm.vrdt t.primary) sn with
  | Some (Vrdt.Active vrd) -> Hashtbl.replace t.vrd_backups sn (Vrd.to_bytes vrd)
  | Some (Vrdt.Deleted _) | None -> ()

(* Refresh backups whose live VRD now carries verifiably better
   witnesses (e.g. strengthening upgraded a weak/MAC pair). Only
   verified bytes may displace a backup — a corrupted live entry must
   never overwrite the good copy it would later be healed from. *)
let refresh_backups t =
  Hashtbl.iter
    (fun sn bytes ->
      match Vrdt.find (Worm.vrdt t.primary) sn with
      | Some (Vrdt.Active vrd) when Vrd.to_bytes vrd <> bytes && vrd_verifies t vrd ->
          Hashtbl.replace t.vrd_backups sn (Vrd.to_bytes vrd)
      | Some (Vrdt.Deleted _) | None -> Hashtbl.remove t.vrd_backups sn
      | Some (Vrdt.Active _) -> ())
    (Hashtbl.copy t.vrd_backups)

let create ~primary ~mirror = { primary; mirror; pairs = Hashtbl.create 256; vrd_backups = Hashtbl.create 256 }
let primary t = t.primary
let mirror t = t.mirror

let write ?witness ?tenant t ~policy ~blocks =
  (* Each store seals tenanted blocks under its own SCPU's key
     hierarchy — the key tables are independent device state, so an
     erasure must reach both sides ({!erase_tenant}). *)
  let p = Worm.write ?witness ?tenant t.primary ~policy ~blocks in
  let m = Worm.write ?witness ?tenant t.mirror ~policy ~blocks in
  Hashtbl.replace t.pairs p m;
  backup_vrd t p;
  (p, m)

let erase_tenant t ~tenant =
  let cert = Worm.erase_tenant t.primary ~tenant in
  ignore (Worm.erase_tenant t.mirror ~tenant : Firmware.erasure_cert);
  cert

let mirror_sn t sn = Hashtbl.find_opt t.pairs sn

let count_deletions outcomes = List.length (List.filter (fun (_, r) -> r = Ok ()) outcomes)

let expire_due t = (count_deletions (Worm.expire_due t.primary), count_deletions (Worm.expire_due t.mirror))

let idle_tick t =
  Worm.idle_tick t.primary;
  Worm.idle_tick t.mirror;
  refresh_backups t

type divergence = {
  primary_sn : Serial.t;
  mirror_sn_ : Serial.t;
  primary_verdict : string;
  mirror_verdict : string;
}

(* Digest-identical to hashing [String.concat "\x00" blocks], but fed
   part-by-part. *)
let rec sep_parts = function
  | [] -> []
  | [ b ] -> [ b ]
  | b :: rest -> b :: "\x00" :: sep_parts rest

let verdict_fingerprint client store sn =
  match Client.verify_read client ~sn (Worm.read store sn) with
  | Client.Valid_data { blocks; _ } ->
      ( "valid:" ^ Worm_util.Hex.encode (Worm_crypto.Sha256.digest_parts (sep_parts blocks)),
        "valid-data" )
  | v ->
      let name = Client.verdict_name v in
      (name, name)

let divergence_audit t ~primary_client ~mirror_client =
  Hashtbl.fold
    (fun p m acc ->
      let p_fp, p_name = verdict_fingerprint primary_client t.primary p in
      let m_fp, m_name = verdict_fingerprint mirror_client t.mirror m in
      if String.equal p_fp m_fp then acc
      else { primary_sn = p; mirror_sn_ = m; primary_verdict = p_name; mirror_verdict = m_name } :: acc)
    t.pairs []
  |> List.sort (fun a b -> Serial.compare a.primary_sn b.primary_sn)

let ( let* ) = Result.bind

let mirror_blocks t msn =
  match Worm.read t.mirror msn with
  | Proof.Found { blocks; _ } -> Ok blocks
  | r -> Error ("mirror copy unreadable: " ^ Proof.describe r)

let heal_data t ~sn =
  let* msn =
    match mirror_sn t sn with
    | Some m -> Ok m
    | None -> Error "no mirror pairing for this serial"
  in
  let* vrd =
    match Vrdt.find (Worm.vrdt t.primary) sn with
    | Some (Vrdt.Active vrd) -> Ok vrd
    | Some (Vrdt.Deleted _) -> Error "record is deleted on the primary"
    | None -> Error "primary VRDT entry missing (use heal_missing)"
  in
  let* blocks = mirror_blocks t msn in
  (* The primary's own datasig arbitrates: only bytes hashing to the
     committed value may be written back. *)
  let actual = Chained_hash.value (Chained_hash.of_blocks blocks) in
  if not (Worm_util.Ct.equal actual vrd.Vrd.data_hash) then
    Error "mirror bytes do not match the primary datasig (mirror also damaged?)"
  else if List.length blocks <> List.length vrd.Vrd.rdl then Error "block count mismatch"
  else begin
    let disk = Worm.disk t.primary in
    (* overwrite corrupted blocks in place; re-allocate destroyed ones
       (the rdl is unsigned host plumbing, so updating it is fine) *)
    let rdl' =
      List.map2
        (fun rd block -> if Disk.Raw.tamper disk rd ~f:(fun _ -> block) then rd else Disk.write disk block)
        vrd.Vrd.rdl blocks
    in
    if rdl' <> vrd.Vrd.rdl then Vrdt.set_active (Worm.vrdt t.primary) { vrd with Vrd.rdl = rdl' };
    Ok ()
  end

let heal_witness t ~sn =
  let* bytes =
    match Hashtbl.find_opt t.vrd_backups sn with
    | Some b -> Ok b
    | None -> Error "no VRD backup for this serial"
  in
  let* backup = Vrd.of_bytes bytes in
  let* live =
    match Vrdt.find (Worm.vrdt t.primary) sn with
    | Some (Vrdt.Active vrd) -> Ok vrd
    | Some (Vrdt.Deleted _) -> Error "record is deleted on the primary"
    | None -> Error "primary VRDT entry missing (use heal_missing)"
  in
  if not (vrd_verifies t backup) then Error "backup witnesses do not verify (backup also damaged?)"
  else begin
    (* Keep the live rdl: physical placement is unsigned host plumbing
       and may legitimately have moved since the backup was taken. *)
    Vrdt.set_active (Worm.vrdt t.primary) { backup with Vrd.rdl = live.Vrd.rdl };
    Ok ()
  end

let resync_mirror t =
  (* Strengthen first: the import path refuses weak/MAC witnesses, and a
     mirror rebuilt from them would anyway inherit evidence the source
     SCPU is about to replace. *)
  let rec drain () = if Worm.strengthen_pending t.primary ~max:256 () > 0 then drain () in
  drain ();
  (* Propagate erasures before walking records: a tenant forgotten on
     the primary must be forgotten on the rebuilt mirror too, and the
     walk below will (rightly) find no plaintext to replicate for it. *)
  List.iter
    (fun (cert : Firmware.erasure_cert) ->
      ignore (Worm.erase_tenant t.mirror ~tenant:cert.Firmware.tenant : Firmware.erasure_cert))
    (Worm.erased_tenants t.primary);
  let source_cert = Firmware.signing_cert (Worm.firmware t.primary) in
  let source_store_id = Worm.store_id t.primary in
  let sns = List.sort Serial.compare (Vrdt.active_sns (Worm.vrdt t.primary)) in
  let rec go n = function
    | [] -> Ok n
    | sn :: rest when Hashtbl.mem t.pairs sn -> go n rest
    | sn :: rest -> begin
        match Worm.read t.primary sn with
        | Proof.Erased _ ->
            (* Plaintext gone by design. The mirror's own tombstone
               (installed above) answers for the tenant; nothing to
               replicate, and nothing wrong. *)
            go n rest
        | Proof.Found { vrd; blocks } -> begin
            match
              Worm.import_record t.mirror ~source_signing_cert:source_cert ~source_store_id
                ~vrd_bytes:(Vrd.to_bytes vrd) ~blocks
            with
            | Ok msn ->
                Hashtbl.replace t.pairs sn msn;
                backup_vrd t sn;
                go (n + 1) rest
            | Error e ->
                Error
                  (Printf.sprintf "mirror refused re-ingest of sn %d: %s" (Serial.to_int sn)
                     (Firmware.error_to_string e))
          end
        | r ->
            Error (Printf.sprintf "primary record %d unreadable: %s" (Serial.to_int sn) (Proof.describe r))
      end
  in
  go 0 sns

let heal_missing t ~sn =
  let* msn =
    match mirror_sn t sn with
    | Some m -> Ok m
    | None -> Error "no mirror pairing for this serial"
  in
  (match Vrdt.find (Worm.vrdt t.primary) sn with
  | None -> Ok ()
  | Some _ -> Error "primary entry still present (use heal_data)")
  |> fun r ->
  let* () = r in
  let* blocks = mirror_blocks t msn in
  let* mirror_vrd =
    match Vrdt.find (Worm.vrdt t.mirror) msn with
    | Some (Vrdt.Active vrd) -> Ok vrd
    | Some (Vrdt.Deleted _) | None -> Error "mirror VRD unavailable"
  in
  let source_cert = Firmware.signing_cert (Worm.firmware t.mirror) in
  match
    Worm.import_record t.primary ~source_signing_cert:source_cert
      ~source_store_id:(Worm.store_id t.mirror) ~vrd_bytes:(Vrd.to_bytes mirror_vrd) ~blocks
  with
  | Ok new_sn ->
      Hashtbl.remove t.pairs sn;
      Hashtbl.replace t.pairs new_sn msn;
      Ok new_sn
  | Error e -> Error ("primary SCPU refused re-ingest: " ^ Firmware.error_to_string e)
