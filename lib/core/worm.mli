(** The WORM store: host-side orchestration (§4).

    Owns the untrusted half of the architecture — the disk, the VRDT,
    the deletion-window list, the deferred-strengthening queue, and the
    VEXP overflow backlog — and drives the trusted {!Firmware} through
    its narrow interface. Reads are served entirely by this (host) side;
    the SCPU is touched only by updates, exactly as §4.1 prescribes.

    Nothing in this module is trusted: the test suite attacks these
    structures directly (via {!Vrdt.Raw} and {!Worm_simdisk.Disk.Raw})
    and shows that clients detect every manipulation. *)

type datasig_mode =
  | Scpu_hashes  (** SCPU reads and hashes record data itself *)
  | Host_hash  (** host supplies the hash; SCPU audits during idle *)

type config = {
  datasig_mode : datasig_mode;
  default_witness : Firmware.witness_mode;
  heartbeat_interval_ns : int64;
      (** how often the current bound's timestamp is refreshed (§4.2.1
          option ii: "every few minutes") *)
  host_profile : Worm_scpu.Cost_model.profile;
  vexp_capacity : int;
  dedup : bool;
      (** content-addressed block sharing (§4.2 overlapping VRs): equal
          blocks are stored once and shredded when the last referencing
          record is deleted *)
  journal : bool;
      (** keep a hash-chained operation {!Journal}, anchored by the SCPU
          on every heartbeat *)
  encrypt_at_rest : bool;
      (** seal data blocks with the {!Vault} before they reach the disk
          (media-theft confidentiality); incompatible with [dedup] *)
  idle_audit_budget : int;
      (** max [Host_hash] audits drained per {!idle_tick}, so a huge
          audit backlog cannot starve deferred strengthening *)
}

val default_config : config
(** SCPU-side hashing, strong witnesses, 60 s heartbeat, P4 host, no
    dedup. *)

type t

val create :
  ?config:config ->
  ?disk:Worm_simdisk.Disk.t ->
  device:Worm_scpu.Device.t ->
  ca:Worm_crypto.Rsa.public ->
  unit ->
  t
(** @raise Invalid_argument if the configuration enables both [dedup]
    and [encrypt_at_rest]. *)

val config : t -> config
val firmware : t -> Firmware.t
(** Exposed for clients needing certificates and for the simulator;
    {!Firmware.t} only offers the trusted entry points, so host code
    holding it gains no illegitimate power. *)

val disk : t -> Worm_simdisk.Disk.t
val vrdt : t -> Vrdt.t
val store_id : t -> string

(** {2 WORM operations} *)

val write :
  ?witness:Firmware.witness_mode ->
  ?attr:Attr.t ->
  ?tenant:string ->
  t ->
  policy:Policy.t ->
  blocks:string list ->
  Serial.t
(** Store a new record under [policy] (or fully explicit [attr]); data
    is written to disk, witnessed by the SCPU, and indexed in the VRDT.
    A non-empty [tenant] (ignored when [attr] is given) seals the blocks
    under the SCPU's per-tenant key hierarchy, making the record
    crypto-erasable via {!erase_tenant}. Returns the SCPU-issued serial
    number. @raise Invalid_argument if the record's tenant has already
    been erased — wire servers refuse such writes before reaching here. *)

val write_attr_batch : ?witness:Firmware.witness_mode -> t -> (Attr.t * string list) list -> Serial.t list
(** {!write_batch} with fully explicit attributes (tenants, labels). *)

val write_batch : ?witness:Firmware.witness_mode -> t -> (Policy.t * string list) list -> Serial.t list
(** Store a burst of records through {e one} firmware signing batch
    ({!Firmware.write_batch}): the SCPU pays its per-key setup once per
    flush instead of once per record. Semantically identical to calling
    {!write} per entry — same serials, same witnesses byte-for-byte under
    one weak certificate — this is the entry point the event server's
    cross-client coalescing drives. Returns serials positionally. *)

type part =
  | Fresh of string  (** a new data block *)
  | Borrow of Serial.t * int  (** block [index] of an existing record *)

val write_shared :
  ?witness:Firmware.witness_mode ->
  t ->
  policy:Policy.t ->
  parts:part list ->
  (Serial.t, string) result
(** Section 4.2 overlapping virtual records: build a new VR that references
    blocks of existing records instead of re-storing them ("records can
    be part of multiple different VRs, being referenced through
    different descriptors"). Borrowed blocks gain a reference and are
    shredded only when the last holding VR is deleted. Requires
    [config.dedup]; fails if a borrowed record is missing or an index is
    out of range. *)

val read : t -> Serial.t -> Proof.read_response
(** Honest host read: returns the record or the strongest available
    proof of rightful absence. Touches no SCPU resources except a
    heartbeat-stale current bound refresh. *)

val expire_due : t -> (Serial.t * (unit, Firmware.error) result) list
(** Run the Retention Monitor: delete every record whose retention has
    lapsed (shred data, install deletion proof). Returns per-record
    outcomes; holds surface as [Error (On_litigation_hold _)] and are
    rescheduled. *)

val next_rm_wakeup : t -> int64 option

(** {2 Crypto-erasure (right to be forgotten)} *)

val erase_tenant : t -> tenant:string -> Firmware.erasure_cert
(** Destroy the tenant's key material inside the SCPU — O(1) in the
    tenant's record count (one NVRAM update, one deletion-key
    signature, one journal line). Every record the tenant wrote remains
    in the VRDT but its ciphertext is unrecoverable; reads return
    {!Proof.read_response.Erased} carrying the returned certificate.
    Idempotent. @raise Invalid_argument on the empty tenant id. *)

val erasure_cert_of : t -> string -> Firmware.erasure_cert option
val tenant_is_erased : t -> string -> bool
val erased_tenants : t -> Firmware.erasure_cert list

val tenant_serials : t -> string -> Serial.t list
(** Live serials the tenant wrote (host-side index, ascending). *)

val tenant_record_count : t -> string -> int

val live_tenants : t -> string list
(** Tenants with at least one indexed record, minus erased ones. *)

val lit_hold :
  t ->
  sn:Serial.t ->
  authority:Worm_crypto.Cert.t ->
  credential:string ->
  lit_id:string ->
  timestamp:int64 ->
  timeout:int64 ->
  (unit, Firmware.error) result

val lit_release :
  t -> sn:Serial.t -> authority:Worm_crypto.Cert.t -> credential:string -> timestamp:int64 -> (unit, Firmware.error) result

val import_record :
  t ->
  source_signing_cert:Worm_crypto.Cert.t ->
  source_store_id:string ->
  vrd_bytes:string ->
  blocks:string list ->
  (Serial.t, Firmware.error) result
(** Compliant-migration ingest (see {!Migration}): store a record from
    another store preserving its original attributes, after the local
    SCPU has verified the source SCPU's witnesses. *)

(** {2 Idle-period maintenance} *)

val heartbeat : t -> unit
(** Refresh the timestamped current bound (one strong signature). *)

val strengthen_pending : t -> ?deadline:int64 -> ?max:int -> unit -> int
(** Drain the deferred queue in signing batches: upgrade weak/MAC
    witnesses to strong signatures, running any pending data audits.
    [deadline] limits repayment to entries due by that time (an idle
    window can pay down only what is urgent); [max] bounds how many
    queue entries are dequeued. Returns the number strengthened. *)

type audit_outcome = {
  audited : int;  (** records examined this round (budget consumed) *)
  mismatches : (Serial.t * Firmware.error) list;
      (** classified failures, oldest first: [Audit_mismatch] (the host
          lied about a hash) or [Data_required] (blocks unreadable) *)
}

val run_audits : t -> ?max:int -> unit -> audit_outcome
(** Rehash [Host_hash]-mode records inside the SCPU (idle-time audit).
    A mismatch is a {e finding}, not a host crash: the offending SN is
    dequeued, reported in [mismatches], and also retained in the
    findings sink (see {!drain_audit_findings}) for the scrubber. *)

val drain_audit_findings : t -> (Serial.t * Firmware.error) list
(** Collect (and clear) failures surfaced by idle maintenance — audit
    mismatches, unreadable audit data, refused strengthenings — oldest
    first. The compliance scrubber feeds these into its report. *)

val compact_windows : t -> int
(** Collapse contiguous runs of >= 3 deletion proofs into signed
    deletion windows and expel the per-SN entries (§4.2.1). Also prunes
    entries below the base bound. Returns entries expelled. *)

val refeed_vexp : t -> int
(** Re-feed shed expiration entries into SCPU secure storage. Returns
    how many remain backlogged. *)

val idle_tick : t -> unit
(** One idle-period maintenance round: heartbeat, strengthening, audits,
    VEXP re-feed, window compaction. *)

(** {2 Host restart}

    The SCPU's state (keys, serial counters, deleted set, VEXP, hold
    table) lives in its battery-backed NVRAM; record data lives on the
    disk. The remaining host-side bookkeeping — VRDT, deletion windows,
    deferred/audit queues, VEXP overflow backlog — serializes to a blob
    so the host can reboot and resume. Restoring a {e stale} blob is
    just the rollback attack: harmless to guarantees (clients detect the
    inconsistency), annoying to availability. *)

val save_host_state : t -> string

val restore :
  ?config:config ->
  firmware:Firmware.t ->
  disk:Worm_simdisk.Disk.t ->
  host_state:string ->
  unit ->
  (t, string) result
(** Reattach to a still-running SCPU after a host restart. Dedup
    refcounts are rebuilt by walking the restored VRDT against the disk. *)

(** {2 Introspection} *)

val dedup_stats : t -> Dedup_store.stats option
(** [None] unless the store was created with [config.dedup = true]. *)

val journal : t -> Journal.t option
(** [None] unless the store was created with [config.journal = true]. *)

val vault : t -> Vault.t option

type metrics = {
  m_active : int;
  m_deleted_entries : int;  (** per-record deletion proofs still in the VRDT *)
  m_windows : int;
  m_vrdt_bytes : int;
  m_deferred : int;
  m_audit_backlog : int;
  m_vexp_backlog : int;
  m_sn_base : Serial.t;
  m_sn_current : Serial.t;
  m_disk_records : int;
  m_disk_bytes : int;
  m_journal_entries : int;  (** 0 when the journal is disabled *)
  m_dedup_ratio : float;  (** 1.0 when dedup is disabled *)
}

val metrics : t -> metrics
(** One-call operational snapshot (for consoles, logs, dashboards). *)

val pp_metrics : Format.formatter -> metrics -> unit

val deferred_backlog : t -> Deferred.entry list

val deferred_length : t -> int
(** Size of the deferred-strengthening debt ledger, O(1): the event
    server's admission control polls this (plus {!deferred_overdue})
    every flush, so it must not materialize the backlog. *)

val deferred_overdue : t -> now:int64 -> Deferred.entry list
val audit_backlog : t -> Serial.t list
val deletion_windows : t -> Firmware.deletion_window list
val vrdt_bytes : t -> int
val host_busy_ns : t -> int64
val reset_host_busy : t -> unit
val cached_current_bound : t -> Firmware.current_bound
val cached_base_bound : t -> Firmware.base_bound

(** {2 Scrubber hooks} *)

val peek_current_bound : t -> Firmware.current_bound
(** The cached current bound {e without} the auto-refresh of
    {!cached_current_bound} — auditors must see staleness, not heal it. *)

val peek_base_bound : t -> Firmware.base_bound
(** The cached base bound without {!cached_base_bound}'s re-signing.
    {!Worm_proto.Server.handle} reads bounds only through the peeks so
    dispatch stays pure; {!Worm_proto.Server.refresh} heals staleness. *)

val request_audit : t -> Serial.t -> bool
(** Re-queue a live record for an SCPU data audit (e.g. after a repair
    restored its blocks from a mirror). [false] if the SN is not live.
    Sound to expose: this only {e adds} an audit obligation. *)

val charge_host : t -> int64 -> unit
(** Charge host CPU time to this store's busy ledger (the scrubber bills
    its verification work here so simulations see audit overhead). *)

(** Insider-attack interface for tests and the audit subsystem's fault
    injection: replace the (untrusted, host-side) deletion-window list.
    Mirrors {!Vrdt.Raw} / {!Worm_simdisk.Disk.Raw}. *)
module Raw : sig
  val set_windows : t -> Firmware.deletion_window list -> unit
end
