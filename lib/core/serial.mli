(** Serial numbers (SN).

    The SCPU issues each virtual record a system-wide unique,
    monotonically increasing, {e consecutive} serial number. Consecutive
    monotonicity is load-bearing: it is what lets a window be
    authenticated by signing only its two bounds (§4.1 "No Hash-Tree
    Authentication") and what lets clients detect gaps. *)

type t

val zero : t
val first : t
(** The first SN ever issued (1; 0 is reserved as a pre-allocation
    sentinel for empty-store bounds). *)

val of_int64 : int64 -> t
(** @raise Invalid_argument on negative values. *)

val to_int64 : t -> int64
val of_int : int -> t
val to_int : t -> int
val next : t -> t
val prev : t -> t
(** @raise Invalid_argument on [zero]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val distance : t -> t -> int64
(** [distance lo hi] is [hi - lo]; negative if [hi < lo]. *)

val range : t -> t -> t list
(** [range lo hi] is [lo; lo+1; ...; hi], empty if [hi < lo]. *)

val encode : Worm_util.Codec.encoder -> t -> unit

val encoded_size : int
(** Byte length of [encode]'s output (a fixed-width u64). *)

val decode : Worm_util.Codec.decoder -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
