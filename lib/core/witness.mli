(** SCPU witnesses, in the three strengths of §4.3.

    A witness authenticates one canonical statement ({!Wire}). [Strong]
    is a signature under the long-term key s; [Weak] is a signature
    under a short-lived burst key together with that key's certificate
    (chained under s); [Mac] is an HMAC only the issuing SCPU can check
    — the cheapest deferred mode, invisible to clients until
    strengthened. *)

type t =
  | Strong of string
  | Weak of { cert : Worm_crypto.Cert.t; signature : string }
  | Mac of string

type strength = [ `Strong | `Weak | `Mac ]

val strength : t -> strength
val strength_name : strength -> string

val verifiable_by_client : t -> bool
(** [Mac] witnesses are not. *)

val encode : Worm_util.Codec.encoder -> t -> unit

val encoded_size : t -> int
(** Byte length of [encode]'s output, computed without encoding. *)

val decode : Worm_util.Codec.decoder -> t
val pp : Format.formatter -> t -> unit
