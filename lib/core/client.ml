open Worm_crypto
module Clock = Worm_simclock.Clock
module Codec = Worm_util.Codec
module Lru = Worm_util.Lru

type freshness = Timestamped of int64 | Direct_scpu of (unit -> Firmware.current_bound)

(* Memo of verified epoch-stable signatures (current bound, base bound,
   deletion windows, per-SN deletion proofs). Keyed by the exact
   (key fingerprint, msg, signature) triple, so a cached verdict can
   never be wrong — a refreshed bound or a re-signed proof has a
   different message or signature and simply misses. Mutex-guarded: one
   client may verify from many pool domains at once. *)
type vcache = {
  lru : (string, bool) Lru.t;
  vmutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  signing : Rsa.public;
  deletion : Rsa.public;
  signing_fp : string;
  deletion_fp : string;
  store_id : string;
  freshness : freshness;
  clock : Clock.t;
  cache : vcache option;
}

let default_max_bound_age = Clock.ns_of_min 5.
let default_verify_cache = 256

let connect ~ca ~clock ?(max_bound_age_ns = default_max_bound_age) ?freshness
    ?(verify_cache = default_verify_cache) ~signing_cert ~deletion_cert ~store_id () =
  let now = Clock.now clock in
  let freshness = Option.value ~default:(Timestamped max_bound_age_ns) freshness in
  if verify_cache < 0 then Error "negative verify-cache capacity"
  else if not (Cert.verify ~ca ~now signing_cert) then Error "signing certificate rejected"
  else if signing_cert.Cert.role <> Cert.Scpu_signing then Error "signing certificate has the wrong role"
  else if not (Cert.verify ~ca ~now deletion_cert) then Error "deletion certificate rejected"
  else if deletion_cert.Cert.role <> Cert.Scpu_deletion then Error "deletion certificate has the wrong role"
  else
    Ok
      {
        signing = signing_cert.Cert.key;
        deletion = deletion_cert.Cert.key;
        signing_fp = Rsa.fingerprint signing_cert.Cert.key;
        deletion_fp = Rsa.fingerprint deletion_cert.Cert.key;
        store_id;
        freshness;
        clock;
        cache =
          (if verify_cache = 0 then None
           else Some { lru = Lru.create verify_cache; vmutex = Mutex.create (); hits = 0; misses = 0 });
      }

let for_store ~ca ~clock ?max_bound_age_ns ?freshness ?verify_cache store =
  let fw = Worm.firmware store in
  match
    connect ~ca ~clock ?max_bound_age_ns ?freshness ?verify_cache
      ~signing_cert:(Firmware.signing_cert fw)
      ~deletion_cert:(Firmware.deletion_cert fw) ~store_id:(Worm.store_id store) ()
  with
  | Ok t -> t
  | Error msg -> failwith ("Client.for_store: " ^ msg)

(* ---------- verified-signature memo ---------- *)

type cache_stats = { cache_hits : int; cache_misses : int; cache_entries : int }

let verify_cache_stats t =
  match t.cache with
  | None -> None
  | Some c ->
      Mutex.lock c.vmutex;
      let s = { cache_hits = c.hits; cache_misses = c.misses; cache_entries = Lru.length c.lru } in
      Mutex.unlock c.vmutex;
      Some s

(* Epoch boundaries the key-exact memo cannot see arrive out of band:
   a litigation-hold release re-signs proofs, a migration retires the
   source key pair. Holders of the out-of-band knowledge (the scrubber's
   repair engine, migration drivers) drop the memo so the next read
   re-verifies against live state instead of trusting entries whose
   epoch has ended. *)
let invalidate_verify_cache t =
  match t.cache with
  | None -> ()
  | Some c ->
      Mutex.lock c.vmutex;
      Lru.clear c.lru;
      Mutex.unlock c.vmutex

(* Canonical memo key: Codec framing keeps (fp, msg, signature)
   unambiguous regardless of component lengths. *)
let memo_key ~fp ~msg ~signature =
  Codec.encode
    (fun enc () ->
      Codec.bytes enc fp;
      Codec.bytes enc msg;
      Codec.bytes enc signature)
    ()

(* Verify through the memo. Only used for signatures that are stable
   for a whole refresh epoch — never for per-record witnesses, whose
   working set would thrash the small LRU for no gain. *)
let stable_verify t ~fp key ~msg ~signature =
  match t.cache with
  | None -> Rsa.verify key ~msg ~signature
  | Some c -> begin
      let k = memo_key ~fp ~msg ~signature in
      Mutex.lock c.vmutex;
      match Lru.find c.lru k with
      | Some v ->
          c.hits <- c.hits + 1;
          Mutex.unlock c.vmutex;
          v
      | None ->
          c.misses <- c.misses + 1;
          Mutex.unlock c.vmutex;
          let v = Rsa.verify key ~msg ~signature in
          Mutex.lock c.vmutex;
          Lru.put c.lru k v;
          Mutex.unlock c.vmutex;
          v
    end

let verify_signing_stable t ~msg ~signature = stable_verify t ~fp:t.signing_fp t.signing ~msg ~signature
let verify_deletion_stable t ~msg ~signature = stable_verify t ~fp:t.deletion_fp t.deletion ~msg ~signature

type violation =
  | Wrong_serial
  | Meta_witness_invalid
  | Data_witness_invalid
  | Data_mismatch
  | Current_bound_invalid
  | Stale_current_bound
  | Base_bound_invalid
  | Base_bound_expired
  | Base_does_not_cover
  | Deletion_proof_invalid
  | Window_bound_invalid
  | Window_does_not_cover
  | Erasure_cert_invalid
  | Absence_unproven

let violation_to_string = function
  | Wrong_serial -> "record carries a different serial number"
  | Meta_witness_invalid -> "metasig does not verify"
  | Data_witness_invalid -> "datasig does not verify"
  | Data_mismatch -> "data does not hash to the signed value"
  | Current_bound_invalid -> "current-bound signature does not verify"
  | Stale_current_bound -> "current bound is older than the freshness limit"
  | Base_bound_invalid -> "base-bound signature does not verify"
  | Base_bound_expired -> "base bound has expired (possible replay)"
  | Base_does_not_cover -> "serial is not below the signed base"
  | Deletion_proof_invalid -> "deletion proof does not verify"
  | Window_bound_invalid -> "deletion-window bounds do not verify under one window id"
  | Window_does_not_cover -> "serial lies outside the deletion window"
  | Erasure_cert_invalid -> "erasure certificate does not verify or does not cover this record"
  | Absence_unproven -> "host failed to prove the record's absence"

type verdict =
  | Valid_data of { vrd : Vrd.t; blocks : string list }
  | Committed_unverifiable
  | Properly_deleted
  | Properly_erased
  | Never_written
  | Violation of violation list

let verdict_name = function
  | Valid_data _ -> "valid-data"
  | Committed_unverifiable -> "committed-unverifiable"
  | Properly_deleted -> "properly-deleted"
  | Properly_erased -> "properly-erased"
  | Never_written -> "never-written"
  | Violation vs -> "VIOLATION: " ^ String.concat "; " (List.map violation_to_string vs)

(* A witness verdict: [Ok true] = verifies, [Ok false] = MAC (cannot be
   checked by a client), [Error ()] = forged. *)
let check_witness t msg = function
  | Witness.Strong signature -> if Rsa.verify t.signing ~msg ~signature then Ok true else Error ()
  | Witness.Weak { cert; signature } ->
      (* Short-lived key: chained under the signing key, honored only
         within its lifetime (after which it must have been
         strengthened, so encountering it live is itself suspect). *)
      if
        Cert.verify ~ca:t.signing ~now:(Clock.now t.clock) cert
        && cert.Cert.role = Cert.Scpu_short_term
        && Rsa.verify cert.Cert.key ~msg ~signature
      then Ok true
      else Error ()
  | Witness.Mac _ -> Ok false

let verify_current_bound_sig t (b : Firmware.current_bound) =
  let msg = Wire.current_bound_msg ~store_id:t.store_id ~sn:b.Firmware.sn ~timestamp:b.Firmware.timestamp in
  verify_signing_stable t ~msg ~signature:b.Firmware.signature

(* Validate an absence claim's bound under the configured freshness
   policy; returns the bound whose [sn] the caller should trust. *)
let check_current_bound t (bound : Firmware.current_bound) =
  match t.freshness with
  | Timestamped max_age ->
      if not (verify_current_bound_sig t bound) then Error Current_bound_invalid
      else if Int64.compare (Int64.sub (Clock.now t.clock) bound.Firmware.timestamp) max_age > 0 then
        Error Stale_current_bound
      else Ok bound
  | Direct_scpu fetch ->
      (* option (i): ignore the served bound, ask the SCPU ourselves *)
      let fresh = fetch () in
      if verify_current_bound_sig t fresh then Ok fresh else Error Current_bound_invalid

(* The three independent costs of verifying a found record — the
   metasig check, the datasig check, and the chained hash over the data
   blocks — fan out across a pool when one is supplied, so a single
   large multi-block read already benefits from idle cores. *)
let verify_found ?pool t ~sn (vrd : Vrd.t) blocks =
  let meta_msg = Wire.metasig_msg ~store_id:t.store_id ~sn:vrd.Vrd.sn ~attr_bytes:(Attr.to_bytes vrd.Vrd.attr) in
  let data_msg = Wire.datasig_msg ~store_id:t.store_id ~sn:vrd.Vrd.sn ~data_hash:vrd.Vrd.data_hash in
  let check_meta () = check_witness t meta_msg vrd.Vrd.metasig in
  let check_data () = check_witness t data_msg vrd.Vrd.datasig in
  let hash_blocks () = Chained_hash.value (Chained_hash.of_blocks blocks) in
  let meta_res, data_res, actual_hash =
    match pool with
    | Some p when Worm_util.Pool.size p > 1 ->
        let r =
          Worm_util.Pool.parallel_map p
            (fun f -> f ())
            [|
              (fun () -> `Witness (check_meta ()));
              (fun () -> `Witness (check_data ()));
              (fun () -> `Hash (hash_blocks ()));
            |]
        in
        (match (r.(0), r.(1), r.(2)) with
        | `Witness m, `Witness d, `Hash h -> (m, d, h)
        | _ -> assert false)
    | _ -> (check_meta (), check_data (), hash_blocks ())
  in
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  if not (Serial.equal vrd.Vrd.sn sn) then flag Wrong_serial;
  let meta_ok =
    match meta_res with
    | Ok v -> v
    | Error () ->
        flag Meta_witness_invalid;
        true
  in
  let data_ok =
    match data_res with
    | Ok v -> v
    | Error () ->
        flag Data_witness_invalid;
        true
  in
  if not (Worm_util.Ct.equal actual_hash vrd.Vrd.data_hash) then flag Data_mismatch;
  match !violations with
  | [] -> if meta_ok && data_ok then Valid_data { vrd; blocks } else Committed_unverifiable
  | vs -> Violation (List.rev vs)

let verify_read ?pool t ~sn (response : Proof.read_response) =
  match response with
  | Proof.Found { vrd; blocks } -> verify_found ?pool t ~sn vrd blocks
  | Proof.Proof_deleted { sn = psn; proof } ->
      let msg = Wire.deletion_msg ~store_id:t.store_id ~sn in
      if not (Serial.equal psn sn) then Violation [ Deletion_proof_invalid ]
      else if verify_deletion_stable t ~msg ~signature:proof then Properly_deleted
      else Violation [ Deletion_proof_invalid ]
  | Proof.Proof_in_window w ->
      let lo_msg = Wire.deletion_window_lo_msg ~store_id:t.store_id ~window_id:w.Firmware.window_id ~sn:w.Firmware.lo in
      let hi_msg = Wire.deletion_window_hi_msg ~store_id:t.store_id ~window_id:w.Firmware.window_id ~sn:w.Firmware.hi in
      if
        not
          (verify_signing_stable t ~msg:lo_msg ~signature:w.Firmware.sig_lo
          && verify_signing_stable t ~msg:hi_msg ~signature:w.Firmware.sig_hi)
      then Violation [ Window_bound_invalid ]
      else if not (Serial.(w.Firmware.lo <= sn) && Serial.(sn <= w.Firmware.hi)) then
        Violation [ Window_does_not_cover ]
      else Properly_deleted
  | Proof.Proof_below_base b ->
      let msg = Wire.base_bound_msg ~store_id:t.store_id ~sn:b.Firmware.sn ~expires_at:b.Firmware.expires_at in
      if not (verify_signing_stable t ~msg ~signature:b.Firmware.signature) then Violation [ Base_bound_invalid ]
      else if Int64.compare (Clock.now t.clock) b.Firmware.expires_at > 0 then Violation [ Base_bound_expired ]
      else if not Serial.(sn < b.Firmware.sn) then Violation [ Base_does_not_cover ]
      else Properly_deleted
  | Proof.Proof_unallocated current -> begin
      match check_current_bound t current with
      | Error v -> Violation [ v ]
      | Ok trusted ->
          if Serial.(sn > trusted.Firmware.sn) then Never_written else Violation [ Absence_unproven ]
    end
  | Proof.Erased { vrd; cert } ->
      (* The VRD's metasig binds sn to the tenant; the cert proves that
         tenant's keys are gone. Together: this exact record existed and
         is now unrecoverable — a compliant outcome. The cert signature
         is epoch-stable per tenant, so it goes through the memo. *)
      let tenant = vrd.Vrd.attr.Attr.tenant in
      let meta_msg =
        Wire.metasig_msg ~store_id:t.store_id ~sn:vrd.Vrd.sn ~attr_bytes:(Attr.to_bytes vrd.Vrd.attr)
      in
      let cert_msg =
        Wire.erasure_msg ~store_id:t.store_id ~tenant:cert.Firmware.tenant
          ~erased_at:cert.Firmware.erased_at ~upto:cert.Firmware.upto
      in
      let violations = ref [] in
      let flag v = violations := v :: !violations in
      if not (Serial.equal vrd.Vrd.sn sn) then flag Wrong_serial;
      let meta_ok =
        match check_witness t meta_msg vrd.Vrd.metasig with
        | Ok v -> v
        | Error () ->
            flag Meta_witness_invalid;
            true
      in
      if String.equal tenant "" || not (String.equal tenant cert.Firmware.tenant) then
        flag Erasure_cert_invalid
      else if not (verify_deletion_stable t ~msg:cert_msg ~signature:cert.Firmware.signature) then
        flag Erasure_cert_invalid
      else if Serial.(sn > cert.Firmware.upto) then
        (* The cert pinned SN_current at destruction time; a record above
           it cannot belong to the erased tenant's history. *)
        flag Erasure_cert_invalid;
      begin
        match List.rev !violations with
        | [] -> if meta_ok then Properly_erased else Committed_unverifiable
        | vs -> Violation vs
      end
  | Proof.Refused _ -> Violation [ Absence_unproven ]

(* Standalone CA-rooted check of an erasure certificate, for callers
   that hold the cert without a record to read it through — the tenant
   itself validating its own "right to be forgotten" receipt, or an
   aggregating verifier checking every shard's attestation. *)
let verify_erasure_cert t (cert : Firmware.erasure_cert) =
  if String.equal cert.Firmware.tenant "" then Error "erasure certificate names an empty tenant"
  else begin
    let msg =
      Wire.erasure_msg ~store_id:t.store_id ~tenant:cert.Firmware.tenant
        ~erased_at:cert.Firmware.erased_at ~upto:cert.Firmware.upto
    in
    if verify_deletion_stable t ~msg ~signature:cert.Firmware.signature then Ok ()
    else Error "erasure certificate signature does not verify under the deletion certificate"
  end

(* A [Direct_scpu] absence check calls back into the firmware, which is
   not domain-safe — those responses stay on the submitting domain. *)
let must_verify_inline t = function
  | Proof.Proof_unallocated _ -> begin
      match t.freshness with
      | Direct_scpu _ -> true
      | Timestamped _ -> false
    end
  | Proof.Found _ | Proof.Proof_deleted _ | Proof.Proof_in_window _ | Proof.Proof_below_base _
  | Proof.Erased _ | Proof.Refused _ ->
      false

let verify_read_many ?pool t items =
  match pool with
  | Some p when Worm_util.Pool.size p > 1 && List.length items > 1 ->
      let arr = Array.of_list items in
      let results =
        Worm_util.Pool.parallel_map p
          (fun (sn, response) ->
            if must_verify_inline t response then None else Some (sn, verify_read t ~sn response))
          arr
      in
      (* Firmware-touching verdicts run here, in input order. *)
      Array.iteri
        (fun i r ->
          if r = None then
            let sn, response = arr.(i) in
            results.(i) <- Some (sn, verify_read t ~sn response))
        results;
      Array.to_list (Array.map Option.get results)
  | _ -> List.map (fun (sn, response) -> (sn, verify_read t ~sn response)) items

let verify_migration t ~target_store_id ~base ~current ~content_hash ~manifest_sig =
  let msg =
    Wire.migration_manifest_msg ~source_store_id:t.store_id ~target_store_id ~base ~current ~content_hash
  in
  let ok = Rsa.verify t.signing ~msg ~signature:manifest_sig in
  (* An accepted manifest means this store's records are moving under a
     new SCPU key pair: every epoch-stable signature this client has
     memoized is about to be superseded. Drop them all. *)
  if ok then invalidate_verify_cache t;
  ok
