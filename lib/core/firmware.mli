(** WORM firmware — the certified logic running inside the SCPU.

    Everything in this module executes within the trusted enclosure
    ({!Worm_scpu.Device}): it alone issues serial numbers, witnesses
    records, produces deletion proofs and window bounds, and enforces
    retention and litigation holds against its tamper-protected clock.
    The host-side store ({!Worm}) is untrusted plumbing around these
    entry points.

    Design invariants (§4):

    - serial numbers are consecutive and monotonically increasing;
    - a deletion proof is only ever issued for a record whose own
      metasig verifies and whose retention has lapsed without an active
      litigation hold — the host cannot schedule its way around this,
      because VEXP is a hint and this check is the enforcement point;
    - window-bound signatures embed a firmware-chosen random window id,
      so bounds of different windows cannot be recombined;
    - weak witnesses are honored only while their short-lived key
      certificate is valid, which forces strengthening within the
      security lifetime of §4.3. *)

type t

type witness_mode =
  | Strong_now  (** 1024-bit signatures inline (sustained mode) *)
  | Weak_deferred  (** 512-bit short-lived signatures (burst mode) *)
  | Mac_deferred  (** HMAC tags (fastest burst mode) *)

type data_source =
  | Blocks of string list
      (** record data is DMA-transferred into the SCPU, which hashes it
          itself — the paper's default trust model *)
  | Claimed_hash of string * int
      (** (chained hash, total bytes) computed by the host; the SCPU
          signs it immediately and audits the data during idle — the
          paper's "slightly weaker security model" (§4.2.2) *)

type current_bound = { sn : Serial.t; timestamp : int64; signature : string }
type base_bound = { sn : Serial.t; expires_at : int64; signature : string }

type deletion_window = { window_id : string; lo : Serial.t; hi : Serial.t; sig_lo : string; sig_hi : string }

type erasure_cert = {
  tenant : string;
  erased_at : int64;
  upto : Serial.t;  (** SN_current when the key was destroyed: every record the tenant ever wrote sits at or below it *)
  signature : string;  (** [S_d(tenant, erased_at, upto)] — deletion-key signed; see {!Wire.erasure_msg} *)
}
(** Proof that a tenant's key hierarchy was destroyed inside the SCPU: a
    tenant-scoped deletion proof. Verifiable by anyone holding the
    store's deletion certificate. *)

type write_result = {
  vrd : Vrd.t;
  vexp_shed : (int64 * Serial.t) list;
      (** expiration entries shed from bounded secure storage; the host
          must re-feed them during an idle period *)
}

type error =
  | Not_expired of int64  (** retention runs until the given time *)
  | On_litigation_hold of string
  | Bad_witness  (** witness does not verify / weak cert lapsed *)
  | Bad_credential  (** litigation credential rejected *)
  | Not_fully_deleted of Serial.t  (** window contains a live SN *)
  | Window_too_small
  | Audit_mismatch  (** host-claimed data hash was a lie *)
  | Data_required  (** a pending audit needs the data blocks, not a hash *)
  | Wrong_store
  | Already_deleted
  | No_hold_present
  | Malformed_vrd
  | Retention_shortening  (** retention may be extended, never shortened *)
  | Not_deleted  (** deletion-proof re-issue refused: the SN is not known deleted *)
  | Tenant_erased of string  (** the tenant's keys were crypto-erased; no key material remains *)

val error_to_string : error -> string

val create : device:Worm_scpu.Device.t -> ca:Worm_crypto.Rsa.public -> ?vexp_capacity:int -> unit -> t
(** [ca] is the root the firmware uses to validate litigation-authority
    certificates. [vexp_capacity] bounds the secure expiration schedule
    (default 4096 entries). *)

val device : t -> Worm_scpu.Device.t
val store_id : t -> string
val signing_cert : t -> Worm_crypto.Cert.t
val deletion_cert : t -> Worm_crypto.Cert.t
val sn_current : t -> Serial.t
(** Highest SN issued; {!Serial.zero} before the first write. *)

val sn_base : t -> Serial.t
(** Lowest still-active SN (= [sn_current + 1] when all are deleted). *)

val write : t -> attr:Attr.t -> rdl:Vrd.rd list -> data:data_source -> mode:witness_mode -> write_result
(** Allocate the next SN and witness a new record. The firmware stamps
    [attr.created_at] from its own clock — retention cannot be
    backdated. Equivalent to a one-entry {!write_batch}. *)

val write_batch : t -> mode:witness_mode -> (Attr.t * Vrd.rd list * data_source) list -> write_result list
(** Ingest a burst of records in {e one} signing batch: every record's
    serial is allocated and its data hashed first, then all [2 * n]
    witness statements go through a single
    {!Worm_scpu.Device.sign_strong_batch} /
    [sign_weak_batch] call — the per-key setup is paid once per flush
    instead of once per record, which is what makes the event server's
    cross-client batching cheaper than serving each connection alone.
    Results are positional. *)

val current_bound : t -> current_bound
(** Freshly signed, timestamped [S_s(SN_current)]. Called on the
    heartbeat (every few minutes) and on demand. *)

val base_bound : t -> base_bound
(** Signed [S_s(SN_base)] with an embedded expiry to prevent replay of
    stale bases. *)

val delete : t -> vrd_bytes:string -> (string, error) result
(** Verify the record's own witnesses and retention state, then issue
    the deletion proof [S_d(SN)]. The host is expected to shred the data
    and replace the VRDT entry with the proof. *)

val collapse_window : t -> lo:Serial.t -> hi:Serial.t -> (deletion_window, error) result
(** Certify a contiguous run of at least 3 expired SNs as a deletion
    window so their per-SN proofs can be expelled from the VRDT. *)

val strengthen : t -> vrd_bytes:string -> data:data_source -> (Vrd.t, error) result
(** Upgrade deferred witnesses to strong signatures (idle-time work).
    For a [Claimed_hash] write this is also where the data audit
    happens: pass [Blocks] to have the SCPU rehash and compare. *)

val strengthen_batch : t -> (string * data_source) list -> (Vrd.t, error) result list
(** Strengthen a burst of records in one signing batch: all entries are
    validated (and audited) first, then every surviving record's two
    strong witnesses are produced through {!Worm_scpu.Device.sign_strong_batch}.
    Results are positional, and a failing entry does not affect the
    others — the deferred-repayment loop drives this. *)

val extend_retention : t -> vrd_bytes:string -> new_retention_ns:int64 -> (Vrd.t, error) result
(** Variable retention (the flexibility §3 notes optical WORM lacks):
    lengthen a live record's retention period and re-witness the
    attributes. Shortening is refused — under WORM semantics history may
    be kept longer than mandated, never less. *)

val pending_audit : t -> Serial.t list
(** SNs written under [Claimed_hash] whose data the SCPU has not yet
    rehashed. *)

val audit : t -> vrd_bytes:string -> blocks:string list -> (unit, error) result
(** Idle-time data audit for a [Claimed_hash] write: DMA the data in,
    rehash, and compare against the hash the datasig committed to.
    [Audit_mismatch] means the host lied at write time. *)

val reaudit : t -> sn:Serial.t -> unit
(** Mark a live record pending so the next idle audit re-hashes its data
    (used after a repair restored blocks from a mirror). Safe to expose:
    the host can only {e add} audit obligations, never discharge one. *)

val reissue_deletion_proof : t -> sn:Serial.t -> (string, error) result
(** Re-sign [S_d(SN)] for a serial the SCPU positively knows is deleted
    (deleted-set member or below the base bound) — repairs a
    host-side-lost deletion proof. [Not_deleted] for live or unallocated
    serials: this entry point can restore evidence, never fabricate it. *)

val lit_hold :
  t ->
  vrd_bytes:string ->
  authority:Worm_crypto.Cert.t ->
  credential:string ->
  lit_id:string ->
  timestamp:int64 ->
  timeout:int64 ->
  (Vrd.t, error) result
(** Place a litigation hold: validates the authority's certificate
    (role, CA signature) and credential [S_reg(SN, time, lit_id)], then
    re-signs metasig over the held attributes. *)

val lit_release :
  t -> vrd_bytes:string -> authority:Worm_crypto.Cert.t -> credential:string -> timestamp:int64 -> (Vrd.t, error) result
(** Release a hold; only the authority that placed it qualifies. *)

(** {2 Per-tenant key hierarchy (crypto-erasure)}

    Master key (device-internal) → per-tenant keys (SCPU NVRAM) →
    per-record data keys (derived on demand). Tenant keys come from the
    device RNG at first use — {e not} from the master key — so erasing a
    tenant genuinely destroys the only copy: afterwards nobody, the SCPU
    included, can reconstruct any record key under it. *)

val record_key : t -> tenant:string -> sn:Serial.t -> (string, error) result
(** 128-bit data key for one record: [HMAC(tenant_key, store_id ‖ sn)]
    truncated. Provisions the tenant key on first use.
    [Error (Tenant_erased _)] once the tenant is erased. Raises
    [Invalid_argument] on the empty tenant id. *)

val erase_tenant : t -> tenant:string -> erasure_cert
(** Destroy the tenant's key — O(1) in the tenant's record count: one
    NVRAM update plus one deletion-key signature. Idempotent (re-erasing
    returns the original certificate). Erasing an unknown tenant plants
    the tombstone, refusing any future writes under that identity.
    Raises [Invalid_argument] on the empty tenant id. *)

val erasure_cert_of : t -> string -> erasure_cert option
val tenant_is_erased : t -> string -> bool
val erased_tenants : t -> erasure_cert list
(** All tombstones, sorted by tenant id. *)

(** {2 Retention Monitor} *)

val next_rm_wakeup : t -> int64 option
(** When the RM's alarm should next fire ([None]: nothing scheduled). *)

val rm_pop_due : t -> (int64 * Serial.t) list
(** Entries now due for deletion, earliest first. The host must follow
    up with {!delete} for each (the RM drives, {!delete} enforces). *)

val vexp_feed : t -> (int64 * Serial.t) list -> (int64 * Serial.t) list
(** Idle-time re-feed of shed expiration entries; returns entries shed
    in turn. *)

val vexp_length : t -> int

(** {2 Migration} *)

val attest_migration : t -> target_store_id:string -> content_hash:string -> string
(** Sign a migration manifest binding this store's current live window
    and a content summary to the target store's identity. *)

val import :
  t ->
  source_signing_cert:Worm_crypto.Cert.t ->
  source_store_id:string ->
  vrd_bytes:string ->
  blocks:string list ->
  (write_result, error) result
(** Compliant-migration ingest: accept a record from another Strong WORM
    store {e with its original attributes} — retention clocks must
    survive media migration. The target SCPU verifies the source SCPU's
    certificate (same CA) and its strong witnesses over the original
    (store, SN, attr, hash) statements, rehashes the data itself, and
    only then re-witnesses the record locally under a fresh SN. Weak or
    MAC source witnesses are refused: migrate after strengthening. *)

(** {2 Codecs for the signed artifacts}

    Host-visible values (they already left the enclosure); used by the
    wire protocol and host-state persistence. *)

val encode_current_bound : Worm_util.Codec.encoder -> current_bound -> unit
val decode_current_bound : Worm_util.Codec.decoder -> current_bound
val encode_base_bound : Worm_util.Codec.encoder -> base_bound -> unit
val decode_base_bound : Worm_util.Codec.decoder -> base_bound
val encode_deletion_window : Worm_util.Codec.encoder -> deletion_window -> unit
val decode_deletion_window : Worm_util.Codec.decoder -> deletion_window
val encode_erasure_cert : Worm_util.Codec.encoder -> erasure_cert -> unit
val decode_erasure_cert : Worm_util.Codec.decoder -> erasure_cert

(** {2 Introspection (host-visible, unprivileged)} *)

val deleted_set_size : t -> int
(** NVRAM bookkeeping size: deletion records above the base not yet
    absorbed by a base advance. *)
