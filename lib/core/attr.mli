(** WORM attributes (the [attr] field of a VRD, Table 1).

    Carries creation time, retention policy, shredding parameters (via
    {!Policy.t}), litigation-hold state, and the paper's miscellaneous
    descriptor flags (f_flag, MAC/DAC labels). The canonical encoding of
    this structure is what metasig signs, so any field change requires a
    fresh SCPU witness. *)

type hold = {
  lit_id : string;  (** court/litigation identifier *)
  authority : string;  (** issuing authority's certificate subject *)
  credential : string;  (** S_reg(SN, timestamp, lit_id) — the paper's C *)
  held_at : int64;
  timeout : int64;  (** absolute time at which the hold lapses on its own *)
}

type t = {
  created_at : int64;
  policy : Policy.t;
  litigation : hold option;
  f_flag : bool;
  mac_label : string;
  dac_label : string;
  tenant : string;
      (** data-subject / tenant identifier; [""] means untenanted. A
          non-empty tenant routes the record's payload through the
          SCPU's per-tenant key hierarchy, making it crypto-erasable
          in O(1) ({!Firmware.erase_tenant}). Part of the canonical
          encoding, so metasig binds the record to its tenant. *)
}

val make :
  ?f_flag:bool ->
  ?mac_label:string ->
  ?dac_label:string ->
  ?tenant:string ->
  created_at:int64 ->
  policy:Policy.t ->
  unit ->
  t

val expiry : t -> int64
(** [created_at + retention]: first instant the record may be deleted,
    litigation permitting. *)

val is_expired : t -> now:int64 -> bool

val on_hold : t -> now:int64 -> bool
(** A hold blocks deletion until released or its timeout passes. *)

val deletable : t -> now:int64 -> bool
(** Expired and not on hold. *)

val with_hold : t -> hold -> t
val without_hold : t -> t

val encode : Worm_util.Codec.encoder -> t -> unit

val encoded_size : t -> int
(** Byte length of [encode]'s output, computed without encoding. *)

val decode : Worm_util.Codec.decoder -> t
val to_bytes : t -> string
(** Canonical encoding (the signing input). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
