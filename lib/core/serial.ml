type t = int64

let zero = 0L
let first = 1L

let of_int64 v =
  if Int64.compare v 0L < 0 then invalid_arg "Serial.of_int64: negative";
  v

let to_int64 v = v
let of_int v = of_int64 (Int64.of_int v)
let to_int v = Int64.to_int v
let next v = Int64.add v 1L

let prev v = if v = 0L then invalid_arg "Serial.prev: zero" else Int64.sub v 1L

let equal = Int64.equal
let compare = Int64.compare
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let distance lo hi = Int64.sub hi lo

let range lo hi =
  let rec go acc v = if Stdlib.( < ) (Int64.compare v lo) 0 then acc else go (v :: acc) (Int64.sub v 1L) in
  if Stdlib.( < ) (Int64.compare hi lo) 0 then [] else go [] hi

let encode enc v = Worm_util.Codec.u64 enc v
let encoded_size = 8

let decode dec =
  let v = Worm_util.Codec.read_u64 dec in
  if Stdlib.( < ) (Int64.compare v 0L) 0 then raise (Worm_util.Codec.Malformed "negative serial number");
  v
let pp fmt v = Format.fprintf fmt "sn:%Ld" v
let to_string v = Printf.sprintf "sn:%Ld" v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
