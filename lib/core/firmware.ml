open Worm_crypto
module Device = Worm_scpu.Device

let src = Logs.Src.create "worm.firmware" ~doc:"Trusted WORM firmware (SCPU-resident logic)"

module Log = (val Logs.src_log src : Logs.LOG)

type witness_mode = Strong_now | Weak_deferred | Mac_deferred
type data_source = Blocks of string list | Claimed_hash of string * int

type current_bound = { sn : Serial.t; timestamp : int64; signature : string }
type base_bound = { sn : Serial.t; expires_at : int64; signature : string }
type deletion_window = { window_id : string; lo : Serial.t; hi : Serial.t; sig_lo : string; sig_hi : string }
type write_result = { vrd : Vrd.t; vexp_shed : (int64 * Serial.t) list }

type erasure_cert = { tenant : string; erased_at : int64; upto : Serial.t; signature : string }

(* Per-tenant leaf of the key hierarchy. [Tenant_key] holds the 128-bit
   tenant key in SCPU NVRAM — generated from the device RNG at first
   use, never derivable from the master key, so destroying this entry
   destroys every record key under it. [Tenant_gone] is the tombstone:
   the key is unrecoverable and the certificate is the proof. *)
type tenant_state = Tenant_key of string | Tenant_gone of erasure_cert

type error =
  | Not_expired of int64
  | On_litigation_hold of string
  | Bad_witness
  | Bad_credential
  | Not_fully_deleted of Serial.t
  | Window_too_small
  | Audit_mismatch
  | Data_required
  | Wrong_store
  | Already_deleted
  | No_hold_present
  | Malformed_vrd
  | Retention_shortening
  | Not_deleted
  | Tenant_erased of string

let error_to_string = function
  | Not_expired t -> Printf.sprintf "retention has not lapsed (runs until %Ld)" t
  | On_litigation_hold lit -> "record is under litigation hold " ^ lit
  | Bad_witness -> "witness does not verify (or its short-lived key lapsed)"
  | Bad_credential -> "litigation credential rejected"
  | Not_fully_deleted sn -> "window contains live record " ^ Serial.to_string sn
  | Window_too_small -> "deletion windows need at least 3 records"
  | Audit_mismatch -> "host-claimed data hash does not match the data"
  | Data_required -> "pending audit requires the data blocks"
  | Wrong_store -> "statement belongs to a different store"
  | Already_deleted -> "record is already deleted"
  | No_hold_present -> "record carries no litigation hold"
  | Malformed_vrd -> "VRD failed to decode"
  | Retention_shortening -> "retention periods may be extended, never shortened"
  | Not_deleted -> "the SCPU has no record of this serial being deleted"
  | Tenant_erased tenant -> Printf.sprintf "tenant %S was crypto-erased; its keys no longer exist" tenant

(* Freshness tolerance on litigation credentials. *)
let credential_tolerance_ns = Worm_simclock.Clock.ns_of_min 10.

(* How long a signed base bound may be served before it must be
   refreshed (it embeds this expiry to block replay of stale bases). *)
let base_bound_lifetime_ns = Worm_simclock.Clock.ns_of_hours 1.

type t = {
  dev : Device.t;
  ca : Rsa.public;
  store_id : string;
  mutable current : Serial.t;
  mutable base : Serial.t;
  mutable deleted : Serial.Set.t; (* deleted SNs >= base *)
  vexp : Vexp.t;
  pending_audit : (Serial.t, unit) Hashtbl.t;
  (* Authoritative litigation-hold table (NVRAM). The VRD's attr field
     carries the hold for clients to see, but deletion consults THIS:
     otherwise Mallory could replay a pre-hold VRD (whose metasig is
     still cryptographically valid) to get a held record deleted. *)
  holds : (Serial.t, Attr.hold) Hashtbl.t;
  (* Key hierarchy (NVRAM): master key (device-internal) -> per-tenant
     keys (this table) -> per-record data keys (HMAC-derived on demand).
     Erasure replaces a live entry with its tombstone certificate. *)
  tenants : (string, tenant_state) Hashtbl.t;
}

let create ~device ~ca ?(vexp_capacity = 4096) () =
  {
    dev = device;
    ca;
    store_id = Device.random device 16;
    current = Serial.zero;
    base = Serial.first;
    deleted = Serial.Set.empty;
    vexp = Vexp.create ~capacity:vexp_capacity;
    pending_audit = Hashtbl.create 64;
    holds = Hashtbl.create 16;
    tenants = Hashtbl.create 16;
  }

let device t = t.dev
let store_id t = t.store_id
let signing_cert t = Device.signing_cert t.dev
let deletion_cert t = Device.deletion_cert t.dev
let sn_current t = t.current
let sn_base t = t.base
let deleted_set_size t = Serial.Set.cardinal t.deleted

let signing_pub t = (Device.signing_cert t.dev).Cert.key

let strong_bits t = (Device.config t.dev).Device.strong_bits
let weak_bits t = (Device.config t.dev).Device.weak_bits

(* Re-verify one of our own witnesses. Weak witnesses are honored only
   while their certificate is valid: §4.3's security-lifetime bound. *)
let verify_witness t msg = function
  | Witness.Strong signature ->
      Device.charge_rsa_verify t.dev ~bits:(strong_bits t);
      Rsa.verify (signing_pub t) ~msg ~signature
  | Witness.Weak { cert; signature } ->
      Device.charge_rsa_verify t.dev ~bits:(strong_bits t);
      Cert.verify ~ca:(signing_pub t) ~now:(Device.now t.dev) cert
      && cert.Cert.role = Cert.Scpu_short_term
      && begin
           Device.charge_rsa_verify t.dev ~bits:(weak_bits t);
           Rsa.verify cert.Cert.key ~msg ~signature
         end
  | Witness.Mac tag -> Device.hmac_verify t.dev ~msg ~tag

let chained_hash_charged t blocks =
  List.fold_left
    (fun acc block ->
      Device.charge_hash_only t.dev ~bytes:(String.length block + 40);
      Chained_hash.add acc block)
    Chained_hash.empty blocks

let mode_name = function
  | Strong_now -> "strong"
  | Weak_deferred -> "weak"
  | Mac_deferred -> "mac"

(* Batched ingest: issue serials and hash/DMA each record first, then
   produce every witness of the burst (2 per record) in one signing
   batch — the device pays per-key setup once per flush, not once per
   record, which is what makes cross-client write coalescing in the
   event server cheaper than serving each connection alone. *)
let write_batch t ~mode entries =
  let prepared =
    List.map
      (fun (attr, rdl, data) ->
        let sn = Serial.next t.current in
        t.current <- sn;
        let attr = { attr with Attr.created_at = Device.now t.dev } in
        let attr_bytes = Attr.to_bytes attr in
        let data_hash =
          match data with
          | Blocks blocks ->
              let total = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
              Device.charge_dma t.dev ~bytes:(String.length attr_bytes + (8 * List.length rdl) + total);
              Chained_hash.value (chained_hash_charged t blocks)
          | Claimed_hash (hash, _total) ->
              Device.charge_dma t.dev ~bytes:(String.length attr_bytes + (8 * List.length rdl) + String.length hash);
              Hashtbl.replace t.pending_audit sn ();
              hash
        in
        let meta_msg = Wire.metasig_msg ~store_id:t.store_id ~sn ~attr_bytes in
        let data_msg = Wire.datasig_msg ~store_id:t.store_id ~sn ~data_hash in
        (sn, attr, rdl, data_hash, meta_msg, data_msg))
      entries
  in
  let msgs = List.concat_map (fun (_, _, _, _, meta_msg, data_msg) -> [ meta_msg; data_msg ]) prepared in
  let witnesses =
    match mode with
    | Strong_now -> List.map (fun s -> Witness.Strong s) (Device.sign_strong_batch t.dev msgs)
    | Weak_deferred ->
        let cert, sigs = Device.sign_weak_batch t.dev msgs in
        List.map (fun signature -> Witness.Weak { cert; signature }) sigs
    | Mac_deferred -> List.map (fun msg -> Witness.Mac (Device.hmac_tag t.dev msg)) msgs
  in
  let rec reassemble prepared witnesses =
    match (prepared, witnesses) with
    | [], [] -> []
    | (sn, attr, rdl, data_hash, _, _) :: rest, metasig :: datasig :: ws ->
        Log.debug (fun m ->
            m "write %s mode=%s expiry=%Ld" (Serial.to_string sn) (mode_name mode) (Attr.expiry attr));
        let vexp_shed =
          match Vexp.insert t.vexp ~expiry:(Attr.expiry attr) sn with
          | Vexp.Inserted -> []
          | Vexp.Inserted_evicting (e, s) -> [ (e, s) ]
          | Vexp.Rejected_full -> [ (Attr.expiry attr, sn) ]
        in
        { vrd = { Vrd.sn; attr; rdl; data_hash; metasig; datasig }; vexp_shed } :: reassemble rest ws
    | _ -> assert false
  in
  reassemble prepared witnesses

let write t ~attr ~rdl ~data ~mode =
  match write_batch t ~mode [ (attr, rdl, data) ] with [ r ] -> r | _ -> assert false

let current_bound t =
  let timestamp = Device.now t.dev in
  let msg = Wire.current_bound_msg ~store_id:t.store_id ~sn:t.current ~timestamp in
  { sn = t.current; timestamp; signature = Device.sign_strong t.dev msg }

let base_bound t =
  let expires_at = Int64.add (Device.now t.dev) base_bound_lifetime_ns in
  let msg = Wire.base_bound_msg ~store_id:t.store_id ~sn:t.base ~expires_at in
  { sn = t.base; expires_at; signature = Device.sign_strong t.dev msg }

let decode_vrd vrd_bytes =
  match Vrd.of_bytes vrd_bytes with
  | Ok vrd -> Ok vrd
  | Error _ -> Error Malformed_vrd

(* Check that a host-presented VRD is genuine: its metasig must be one
   of ours over exactly these attributes. *)
let authenticate_vrd t (vrd : Vrd.t) =
  Device.charge_dma t.dev ~bytes:(String.length (Vrd.to_bytes vrd));
  let msg = Wire.metasig_msg ~store_id:t.store_id ~sn:vrd.sn ~attr_bytes:(Attr.to_bytes vrd.attr) in
  if verify_witness t msg vrd.metasig then Ok () else Error Bad_witness

let is_deleted t sn = Serial.(sn < t.base) || Serial.Set.mem sn t.deleted

let tenant_erased_cert t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some (Tenant_gone cert) -> Some cert
  | Some (Tenant_key _) | None -> None

let erasure_cert_of t tenant = tenant_erased_cert t tenant
let tenant_is_erased t tenant = tenant_erased_cert t tenant <> None

let erased_tenants t =
  Hashtbl.fold (fun _ state acc -> match state with Tenant_gone cert -> cert :: acc | Tenant_key _ -> acc) t.tenants []
  |> List.sort (fun a b -> String.compare a.tenant b.tenant)

let record_key_input t ~sn =
  let module C = Worm_util.Codec in
  C.with_encoder (fun enc ->
      C.bytes enc "worm:v1:reckey";
      C.bytes enc t.store_id;
      Serial.encode enc sn;
      C.to_string enc)

(* Per-record data key: HMAC(tenant key, store_id || sn) truncated to
   128 bits. Derived on demand, so only the per-tenant key occupies
   NVRAM — destroying it orphans every record key under it at once. The
   tenant key itself comes from the device RNG at first use, never from
   the master key, so not even the SCPU can re-derive it after erasure. *)
let record_key t ~tenant ~sn =
  if String.equal tenant "" then invalid_arg "Firmware.record_key: empty tenant";
  match Hashtbl.find_opt t.tenants tenant with
  | Some (Tenant_gone _) -> Error (Tenant_erased tenant)
  | (Some (Tenant_key _) | None) as entry ->
      let key =
        match entry with
        | Some (Tenant_key key) -> key
        | _ ->
            let key = Device.random t.dev 16 in
            Hashtbl.replace t.tenants tenant (Tenant_key key);
            Log.debug (fun m -> m "tenant key provisioned for %S" tenant);
            key
      in
      let msg = record_key_input t ~sn in
      Device.charge_hash_only t.dev ~bytes:(String.length msg + 64);
      Ok (String.sub (Hmac.sha256 ~key msg) 0 16)

(* O(1) in the tenant's record count: destroy one NVRAM entry, sign one
   statement. Idempotent — re-erasing hands back the original cert.
   Erasing a tenant that never wrote still plants the tombstone, which
   refuses any future writes under that identity. *)
let erase_tenant t ~tenant =
  if String.equal tenant "" then invalid_arg "Firmware.erase_tenant: empty tenant";
  match Hashtbl.find_opt t.tenants tenant with
  | Some (Tenant_gone cert) -> cert
  | Some (Tenant_key _) | None ->
      let erased_at = Device.now t.dev in
      let upto = t.current in
      let msg = Wire.erasure_msg ~store_id:t.store_id ~tenant ~erased_at ~upto in
      let signature = Device.sign_deletion t.dev msg in
      let cert = { tenant; erased_at; upto; signature } in
      Hashtbl.replace t.tenants tenant (Tenant_gone cert);
      Log.info (fun m -> m "tenant %S crypto-erased (upto=%s)" tenant (Serial.to_string upto));
      cert

let advance_base t =
  while Serial.Set.mem t.base t.deleted do
    t.deleted <- Serial.Set.remove t.base t.deleted;
    t.base <- Serial.next t.base
  done

let ( let* ) = Result.bind

let delete t ~vrd_bytes =
  let* vrd = decode_vrd vrd_bytes in
  let* () = authenticate_vrd t vrd in
  if is_deleted t vrd.sn then Error Already_deleted
  else begin
    let now = Device.now t.dev in
    (* The internal hold table is authoritative, not the presented attr:
       a replayed pre-hold VRD must not unlock deletion. *)
    let active_hold =
      match Hashtbl.find_opt t.holds vrd.sn with
      | Some hold when Int64.compare now hold.Attr.timeout <= 0 -> Some hold
      | Some _ | None -> None
    in
    match active_hold with
    | Some hold -> Error (On_litigation_hold hold.Attr.lit_id)
    | None ->
        if not (Attr.is_expired vrd.attr ~now) then Error (Not_expired (Attr.expiry vrd.attr))
        else begin
          let proof = Device.sign_deletion t.dev (Wire.deletion_msg ~store_id:t.store_id ~sn:vrd.sn) in
          Log.info (fun m -> m "deletion proof issued for %s" (Serial.to_string vrd.sn));
          t.deleted <- Serial.Set.add vrd.sn t.deleted;
          advance_base t;
          ignore (Vexp.remove t.vexp vrd.sn);
          Hashtbl.remove t.pending_audit vrd.sn;
          Hashtbl.remove t.holds vrd.sn;
          Ok proof
        end
  end

let collapse_window t ~lo ~hi =
  if Int64.compare (Serial.distance lo hi) 2L < 0 then Error Window_too_small
  else if Serial.(lo < t.base) then Error Already_deleted
  else begin
    match List.find_opt (fun sn -> not (Serial.Set.mem sn t.deleted)) (Serial.range lo hi) with
    | Some live -> Error (Not_fully_deleted live)
    | None ->
        let window_id = Device.random t.dev 16 in
        let sig_lo = Device.sign_strong t.dev (Wire.deletion_window_lo_msg ~store_id:t.store_id ~window_id ~sn:lo) in
        let sig_hi = Device.sign_strong t.dev (Wire.deletion_window_hi_msg ~store_id:t.store_id ~window_id ~sn:hi) in
        Log.info (fun m -> m "deletion window [%s, %s] certified" (Serial.to_string lo) (Serial.to_string hi));
        Ok { window_id; lo; hi; sig_lo; sig_hi }
  end

(* Phase 1 of strengthening: everything except the strong signatures —
   decode, authenticate, re-verify the deferred datasig, and run any
   pending data audit. Returns the record plus the two statements that
   still need strong witnesses. *)
let strengthen_validate t ~vrd_bytes ~data =
  let* vrd = decode_vrd vrd_bytes in
  let* () = authenticate_vrd t vrd in
  let data_msg = Wire.datasig_msg ~store_id:t.store_id ~sn:vrd.sn ~data_hash:vrd.data_hash in
  if not (verify_witness t data_msg vrd.datasig) then Error Bad_witness
  else begin
    let* () =
      if not (Hashtbl.mem t.pending_audit vrd.sn) then Ok ()
      else if tenant_is_erased t vrd.attr.Attr.tenant then begin
        (* Erased tenant: the plaintext is unrecoverable, so the pending
           host-hash audit can never be satisfied — and no longer needs
           to be. Discharge it and let the witnesses strengthen. *)
        Hashtbl.remove t.pending_audit vrd.sn;
        Ok ()
      end
      else begin
        match data with
        | Claimed_hash _ -> Error Data_required
        | Blocks blocks ->
            let total = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
            Device.charge_dma t.dev ~bytes:total;
            let actual = Chained_hash.value (chained_hash_charged t blocks) in
            if Worm_util.Ct.equal actual vrd.data_hash then begin
              Hashtbl.remove t.pending_audit vrd.sn;
              Ok ()
            end
            else begin
              Log.err (fun m -> m "AUDIT MISMATCH on %s: host lied about the data hash" (Serial.to_string vrd.sn));
              Error Audit_mismatch
            end
      end
    in
    let meta_msg = Wire.metasig_msg ~store_id:t.store_id ~sn:vrd.sn ~attr_bytes:(Attr.to_bytes vrd.attr) in
    Ok (vrd, meta_msg, data_msg)
  end

(* Batch strengthening: validate every entry first, then produce all the
   strong witnesses in one signing batch (2 per surviving record), then
   reassemble. Per-entry failures stay per-entry — one bad VRD does not
   poison the rest of the burst. *)
let strengthen_batch t entries =
  let validated = List.map (fun (vrd_bytes, data) -> strengthen_validate t ~vrd_bytes ~data) entries in
  let msgs =
    List.concat_map (function Ok (_, meta_msg, data_msg) -> [ meta_msg; data_msg ] | Error _ -> []) validated
  in
  let sigs = Device.sign_strong_batch t.dev msgs in
  let rec reassemble validated sigs =
    match (validated, sigs) with
    | [], _ -> []
    | Error e :: rest, _ -> Error e :: reassemble rest sigs
    | Ok (vrd, _, _) :: rest, s_meta :: s_data :: sigs' ->
        Ok { vrd with Vrd.metasig = Witness.Strong s_meta; datasig = Witness.Strong s_data }
        :: reassemble rest sigs'
    | Ok _ :: _, _ -> assert false
  in
  reassemble validated sigs

let strengthen t ~vrd_bytes ~data =
  match strengthen_batch t [ (vrd_bytes, data) ] with [ r ] -> r | _ -> assert false

let pending_audit t = Hashtbl.fold (fun sn () acc -> sn :: acc) t.pending_audit [] |> List.sort Serial.compare

(* The host may only ADD audit obligations, never discharge them; marking
   a live record pending forces a DMA re-hash on the next idle audit. *)
let reaudit t ~sn =
  if Serial.(sn <= t.current) && not (is_deleted t sn) then Hashtbl.replace t.pending_audit sn ()

(* Signing S_d(SN) is sound for any SN the SCPU positively knows is
   deleted: members of the deleted set, or anything the base bound has
   already absorbed. Live or unallocated serials are refused — this can
   repair a lost proof but never manufacture one. *)
let reissue_deletion_proof t ~sn =
  if Serial.(sn >= Serial.first) && (Serial.(sn < t.base) || Serial.Set.mem sn t.deleted) then begin
    let proof = Device.sign_deletion t.dev (Wire.deletion_msg ~store_id:t.store_id ~sn) in
    Log.info (fun m -> m "deletion proof re-issued for %s" (Serial.to_string sn));
    Ok proof
  end
  else Error Not_deleted

let audit t ~vrd_bytes ~blocks =
  let* vrd = decode_vrd vrd_bytes in
  let* () = authenticate_vrd t vrd in
  if not (Hashtbl.mem t.pending_audit vrd.sn) then Ok ()
  else if tenant_is_erased t vrd.attr.Attr.tenant then begin
    (* The key is gone: the plaintext this audit would re-hash no longer
       exists anywhere. The obligation is moot — discharge it. *)
    Hashtbl.remove t.pending_audit vrd.sn;
    Ok ()
  end
  else begin
    let total = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
    Device.charge_dma t.dev ~bytes:total;
    let actual = Chained_hash.value (chained_hash_charged t blocks) in
    if Worm_util.Ct.equal actual vrd.data_hash then begin
      Hashtbl.remove t.pending_audit vrd.sn;
      Ok ()
    end
    else begin
      Log.err (fun m -> m "AUDIT MISMATCH on %s: host lied about the data hash" (Serial.to_string vrd.sn));
      Error Audit_mismatch
    end
  end

let check_authority t (cert : Cert.t) =
  Cert.verify ~ca:t.ca ~now:(Device.now t.dev) cert && cert.Cert.role = Cert.Regulation_authority

let fresh_enough t timestamp =
  let now = Device.now t.dev in
  Int64.compare (Int64.abs (Int64.sub now timestamp)) credential_tolerance_ns <= 0

let resign_meta t (vrd : Vrd.t) attr =
  let meta_msg = Wire.metasig_msg ~store_id:t.store_id ~sn:vrd.sn ~attr_bytes:(Attr.to_bytes attr) in
  { vrd with Vrd.attr; metasig = Witness.Strong (Device.sign_strong t.dev meta_msg) }

let extend_retention t ~vrd_bytes ~new_retention_ns =
  let* vrd = decode_vrd vrd_bytes in
  let* () = authenticate_vrd t vrd in
  if is_deleted t vrd.sn then Error Already_deleted
  else begin
    let old_retention = vrd.attr.Attr.policy.Policy.retention_ns in
    if Int64.compare new_retention_ns old_retention < 0 then Error Retention_shortening
    else begin
      let policy = { vrd.attr.Attr.policy with Policy.retention_ns = new_retention_ns } in
      let attr = { vrd.attr with Attr.policy } in
      ignore (Vexp.insert t.vexp ~expiry:(Attr.expiry attr) vrd.sn);
      Log.info (fun m ->
          m "retention of %s extended %Ld -> %Ld" (Serial.to_string vrd.sn) old_retention new_retention_ns);
      Ok (resign_meta t vrd attr)
    end
  end


let lit_hold t ~vrd_bytes ~authority ~credential ~lit_id ~timestamp ~timeout =
  let* vrd = decode_vrd vrd_bytes in
  let* () = authenticate_vrd t vrd in
  if is_deleted t vrd.sn then Error Already_deleted
  else if not (check_authority t authority && fresh_enough t timestamp) then Error Bad_credential
  else begin
    let msg = Wire.hold_credential_msg ~store_id:t.store_id ~sn:vrd.sn ~timestamp ~lit_id in
    Device.charge_rsa_verify t.dev ~bits:(Nat.bit_length authority.Cert.key.Rsa.n);
    if not (Rsa.verify authority.Cert.key ~msg ~signature:credential) then Error Bad_credential
    else begin
      let hold =
        {
          Attr.lit_id;
          authority = authority.Cert.subject;
          credential;
          held_at = Device.now t.dev;
          timeout;
        }
      in
      let attr = Attr.with_hold vrd.attr hold in
      Log.info (fun m -> m "litigation hold %s placed on %s by %s" lit_id (Serial.to_string vrd.sn) authority.Cert.subject);
      Hashtbl.replace t.holds vrd.sn hold;
      (* Deletion may not fire before the hold lapses. *)
      let effective = Int64.add (max (Attr.expiry attr) timeout) 1L in
      ignore (Vexp.insert t.vexp ~expiry:effective vrd.sn);
      Ok (resign_meta t vrd attr)
    end
  end

let lit_release t ~vrd_bytes ~authority ~credential ~timestamp =
  let* vrd = decode_vrd vrd_bytes in
  let* () = authenticate_vrd t vrd in
  (* Release against the internal table, not the presented attr. *)
  match Hashtbl.find_opt t.holds vrd.sn with
  | None -> Error No_hold_present
  | Some hold ->
      if not (check_authority t authority && fresh_enough t timestamp) then Error Bad_credential
      else if not (String.equal authority.Cert.subject hold.Attr.authority) then Error Bad_credential
      else begin
        let msg =
          Wire.release_credential_msg ~store_id:t.store_id ~sn:vrd.sn ~timestamp ~lit_id:hold.Attr.lit_id
        in
        Device.charge_rsa_verify t.dev ~bits:(Nat.bit_length authority.Cert.key.Rsa.n);
        if not (Rsa.verify authority.Cert.key ~msg ~signature:credential) then Error Bad_credential
        else begin
          Log.info (fun m -> m "litigation hold %s released on %s" hold.Attr.lit_id (Serial.to_string vrd.sn));
          Hashtbl.remove t.holds vrd.sn;
          let attr = Attr.without_hold vrd.attr in
          ignore (Vexp.insert t.vexp ~expiry:(Attr.expiry attr) vrd.sn);
          Ok (resign_meta t vrd attr)
        end
      end

let next_rm_wakeup t = Option.map fst (Vexp.next_due t.vexp)
let rm_pop_due t = Vexp.pop_due t.vexp ~now:(Device.now t.dev)

let vexp_feed t entries =
  List.concat_map
    (fun (expiry, sn) ->
      if is_deleted t sn then []
      else begin
        match Vexp.insert t.vexp ~expiry sn with
        | Vexp.Inserted -> []
        | Vexp.Inserted_evicting (e, s) -> [ (e, s) ]
        | Vexp.Rejected_full -> [ (expiry, sn) ]
      end)
    entries

let vexp_length t = Vexp.length t.vexp

let import t ~source_signing_cert ~source_store_id ~vrd_bytes ~blocks =
  let* vrd = decode_vrd vrd_bytes in
  let now = Device.now t.dev in
  Device.charge_rsa_verify t.dev ~bits:(strong_bits t);
  if
    not
      (Cert.verify ~ca:t.ca ~now source_signing_cert
      && source_signing_cert.Cert.role = Cert.Scpu_signing)
  then Error Bad_credential
  else begin
    let source_key = source_signing_cert.Cert.key in
    let verify_strong_source msg = function
      | Witness.Strong signature ->
          Device.charge_rsa_verify t.dev ~bits:(Nat.bit_length source_key.Rsa.n);
          Rsa.verify source_key ~msg ~signature
      | Witness.Weak _ | Witness.Mac _ -> false
    in
    let attr_bytes = Attr.to_bytes vrd.attr in
    let meta_msg = Wire.metasig_msg ~store_id:source_store_id ~sn:vrd.sn ~attr_bytes in
    let data_msg = Wire.datasig_msg ~store_id:source_store_id ~sn:vrd.sn ~data_hash:vrd.data_hash in
    if
      not (verify_strong_source meta_msg vrd.metasig && verify_strong_source data_msg vrd.datasig)
    then Error Bad_witness
    else begin
      let total = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
      Device.charge_dma t.dev ~bytes:total;
      let actual = Chained_hash.value (chained_hash_charged t blocks) in
      if not (Worm_util.Ct.equal actual vrd.data_hash) then Error Audit_mismatch
      else begin
        let sn = Serial.next t.current in
        let meta_msg' = Wire.metasig_msg ~store_id:t.store_id ~sn ~attr_bytes in
        let data_msg' = Wire.datasig_msg ~store_id:t.store_id ~sn ~data_hash:vrd.data_hash in
        let metasig = Witness.Strong (Device.sign_strong t.dev meta_msg') in
        let datasig = Witness.Strong (Device.sign_strong t.dev data_msg') in
        t.current <- sn;
        let vexp_shed =
          match Vexp.insert t.vexp ~expiry:(Attr.expiry vrd.attr) sn with
          | Vexp.Inserted -> []
          | Vexp.Inserted_evicting (e, s) -> [ (e, s) ]
          | Vexp.Rejected_full -> [ (Attr.expiry vrd.attr, sn) ]
        in
        Ok { vrd = { vrd with Vrd.sn; metasig; datasig; rdl = [] }; vexp_shed }
      end
    end
  end

module Codec_ = Worm_util.Codec

let encode_current_bound enc (b : current_bound) =
  Serial.encode enc b.sn;
  Codec_.u64 enc b.timestamp;
  Codec_.bytes enc b.signature

let decode_current_bound dec =
  let sn = Serial.decode dec in
  let timestamp = Codec_.read_u64 dec in
  let signature = Codec_.read_bytes dec in
  { sn; timestamp; signature }

let encode_base_bound enc (b : base_bound) =
  Serial.encode enc b.sn;
  Codec_.u64 enc b.expires_at;
  Codec_.bytes enc b.signature

let decode_base_bound dec =
  let sn = Serial.decode dec in
  let expires_at = Codec_.read_u64 dec in
  let signature = Codec_.read_bytes dec in
  { sn; expires_at; signature }

let encode_deletion_window enc (w : deletion_window) =
  Codec_.bytes enc w.window_id;
  Serial.encode enc w.lo;
  Serial.encode enc w.hi;
  Codec_.bytes enc w.sig_lo;
  Codec_.bytes enc w.sig_hi

let decode_deletion_window dec =
  let window_id = Codec_.read_bytes dec in
  let lo = Serial.decode dec in
  let hi = Serial.decode dec in
  let sig_lo = Codec_.read_bytes dec in
  let sig_hi = Codec_.read_bytes dec in
  { window_id; lo; hi; sig_lo; sig_hi }

let encode_erasure_cert enc (c : erasure_cert) =
  Codec_.bytes enc c.tenant;
  Codec_.u64 enc c.erased_at;
  Serial.encode enc c.upto;
  Codec_.bytes enc c.signature

let decode_erasure_cert dec =
  let tenant = Codec_.read_bytes dec in
  let erased_at = Codec_.read_u64 dec in
  let upto = Serial.decode dec in
  let signature = Codec_.read_bytes dec in
  { tenant; erased_at; upto; signature }

let attest_migration t ~target_store_id ~content_hash =
  let msg =
    Wire.migration_manifest_msg ~source_store_id:t.store_id ~target_store_id ~base:t.base ~current:t.current
      ~content_hash
  in
  Device.sign_strong t.dev msg
