module Codec = Worm_util.Codec

(* Pooled: statements are built for every metasig/datasig/bound message
   the SCPU signs or a verifier checks — the hottest encode path in the
   core. Tags carry the "worm:v1:" domain prefix precomputed, so a
   statement costs one pooled encode and the result string, nothing
   else. *)
let stmt tag fields =
  Codec.with_encoder (fun enc ->
      Codec.bytes enc tag;
      fields enc;
      Codec.to_string enc)

let metasig_msg ~store_id ~sn ~attr_bytes =
  stmt "worm:v1:meta" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.bytes enc attr_bytes)

let datasig_msg ~store_id ~sn ~data_hash =
  stmt "worm:v1:data" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.bytes enc data_hash)

let deletion_msg ~store_id ~sn =
  stmt "worm:v1:del" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn)

let base_bound_msg ~store_id ~sn ~expires_at =
  stmt "worm:v1:base" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.u64 enc expires_at)

let current_bound_msg ~store_id ~sn ~timestamp =
  stmt "worm:v1:current" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.u64 enc timestamp)

let deletion_window_bound side =
  let tag = "worm:v1:delwin:" ^ side in
  fun ~store_id ~window_id ~sn ->
    stmt tag (fun enc ->
        Codec.bytes enc store_id;
        Codec.bytes enc window_id;
        Serial.encode enc sn)

let deletion_window_lo_msg = deletion_window_bound "lo"
let deletion_window_hi_msg = deletion_window_bound "hi"

let hold_or_release tag =
  let tag = "worm:v1:" ^ tag in
  fun ~store_id ~sn ~timestamp ~lit_id ->
    stmt tag (fun enc ->
        Codec.bytes enc store_id;
        Serial.encode enc sn;
        Codec.u64 enc timestamp;
        Codec.bytes enc lit_id)

let hold_credential_msg = hold_or_release "lit-hold"
let release_credential_msg = hold_or_release "lit-release"

(* Signed with the deletion key d: the erasure certificate is the
   cluster-visible successor of a §4.2.2 deletion proof, scoped to a
   whole tenant. [upto] pins the current bound at destruction time, so
   the statement covers every serial the tenant could have written. *)
let erasure_msg ~store_id ~tenant ~erased_at ~upto =
  stmt "worm:v1:erase" (fun enc ->
      Codec.bytes enc store_id;
      Codec.bytes enc tenant;
      Codec.u64 enc erased_at;
      Serial.encode enc upto)

let migration_manifest_msg ~source_store_id ~target_store_id ~base ~current ~content_hash =
  stmt "worm:v1:migration" (fun enc ->
      Codec.bytes enc source_store_id;
      Codec.bytes enc target_store_id;
      Serial.encode enc base;
      Serial.encode enc current;
      Codec.bytes enc content_hash)
