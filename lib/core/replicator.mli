(** Duplicate-copy replication and healing.

    SEC rule 17a-4(f) — one of the paper's motivating regulations —
    requires broker-dealers to keep a {e duplicate copy} of electronic
    records, stored separately. This layer mirrors every write to a
    second Strong WORM store behind its own SCPU, and uses the mirror to
    detect and heal damage on the primary:

    - {!divergence_audit} reads every live record from both stores with
      full client verification and reports disagreements;
    - {!heal_data} rewrites a primary record's damaged data blocks from
      the mirror, after checking the mirror's bytes against the hash the
      primary's own datasig committed to — the mirror is {e not} trusted
      either, the signatures arbitrate;
    - {!heal_missing} re-ingests a record the primary lost entirely,
      through the compliant-migration import path (fresh local serial,
      original attributes).

    Replication is a host-availability mechanism: WORM guarantees never
    depend on it, they are what make it safe. *)

type t

val create : primary:Worm.t -> mirror:Worm.t -> t
(** Both stores must trust the same CA. *)

val primary : t -> Worm.t
val mirror : t -> Worm.t

val write :
  ?witness:Firmware.witness_mode ->
  ?tenant:string ->
  t ->
  policy:Policy.t ->
  blocks:string list ->
  Serial.t * Serial.t
(** Write to both stores; returns (primary SN, mirror SN). A non-empty
    [tenant] seals each copy under the respective store's own per-tenant
    key hierarchy. *)

val erase_tenant : t -> tenant:string -> Firmware.erasure_cert
(** Crypto-erase the tenant on {e both} stores — the key hierarchies are
    independent SCPU state, so a one-sided erasure would leave the
    mirror able to decrypt. Returns the primary's certificate (the
    mirror issues its own, retrievable via
    {!Worm.erasure_cert_of}). Idempotent, like {!Worm.erase_tenant}. *)

val mirror_sn : t -> Serial.t -> Serial.t option
(** The mirror serial paired with a primary serial at {!write} time. *)

val expire_due : t -> int * int
(** Run both retention monitors; (primary deletions, mirror deletions). *)

val idle_tick : t -> unit

val resync_mirror : t -> (int, string) result
(** Re-ingest every live primary record that has no mirror pairing,
    through the compliant-migration import path — the bulk form of
    {!heal_missing} in the other direction, used by the cluster's
    failover engine to rebuild a {e fresh} mirror after the old one was
    promoted to primary. Deferred witnesses are strengthened first
    (import refuses weak/MAC evidence), and the primary's tenant
    erasures are re-issued on the mirror before the walk — records of
    erased tenants are skipped (their plaintext is unrecoverable by
    design; the mirror's own tombstone answers for them). Returns how
    many records were replicated; stops at the first record the mirror
    SCPU refuses. *)

type divergence = {
  primary_sn : Serial.t;
  mirror_sn_ : Serial.t;
  primary_verdict : string;
  mirror_verdict : string;
}

val divergence_audit : t -> primary_client:Client.t -> mirror_client:Client.t -> divergence list
(** Verified read of every replicated pair; empty when the copies agree
    (same verdict class and, for valid data, identical bytes). *)

val heal_data : t -> sn:Serial.t -> (unit, string) result
(** Restore the primary record's data blocks from the mirror. Fails if
    the pair is unknown, the mirror copy does not verify, or the
    mirror's bytes do not match the primary datasig's hash. *)

val heal_witness : t -> sn:Serial.t -> (unit, string) result
(** Restore a primary record's VRDT entry (attributes, hashes, the two
    witnesses) from the off-store VRD backup captured at {!write} time
    and refreshed during {!idle_tick}. The backup must verify under the
    primary SCPU's certificates — backups are untrusted bytes; the
    signatures inside arbitrate. The live RDL is preserved (physical
    placement is unsigned host plumbing). Repairs a flipped
    datasig/metasig byte; for damaged {e data} use {!heal_data}. *)

val heal_missing : t -> sn:Serial.t -> (Serial.t, string) result
(** Re-ingest a record the primary lost (VRDT entry gone) from the
    mirror via the import path; returns the record's new primary SN and
    updates the pairing. *)
