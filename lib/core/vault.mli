(** At-rest encryption of record data.

    Storage {e confidentiality} is among the regulatory policies of §1,
    and the CCA the paper builds on provides symmetric encryption
    services. The vault encrypts every data block before it touches the
    platter with AES-128-CTR under a store key derived inside the SCPU
    (from its internal MAC key and the store identity, so a host restart
    re-derives the same key from the same device). Nonces are
    (serial number, block index) — unique because WORM storage never
    rewrites a block under the same coordinates.

    Threat addressed: theft or forensic imaging of the {e media}. The
    host necessarily holds the data key while serving reads, so a live
    super-user still sees plaintext — confidentiality against Mallory
    herself would need client-side encryption, out of scope here as in
    the paper. Integrity is entirely untouched: datasig signs the
    {e plaintext} chained hash, so sealing/unsealing cannot mask
    tampering.

    Not composable with {!Worm.config.dedup} (ciphertexts of equal
    plaintexts differ by design); {!Worm.create} rejects the
    combination. *)

type t

val create : Firmware.t -> t
(** Derive the store data key from the SCPU; same device and store id
    always yield the same key. *)

val of_key : string -> t
(** Cipher over a caller-supplied 16-byte key — the sealing end of the
    SCPU's per-tenant key hierarchy ({!Firmware.record_key}): each
    tenanted record is sealed under its own derived key, so destroying
    the tenant key unrecoverably erases every one of them. Raises
    [Invalid_argument] on any other key length. *)

val key_fingerprint : t -> string
(** Hex fingerprint for logs (never the key itself). *)

val seal : t -> sn:Serial.t -> index:int -> string -> string
(** Encrypt one data block at position [index] of record [sn]. *)

val unseal : t -> sn:Serial.t -> index:int -> string -> string
(** Inverse of {!seal} (CTR is an involution under the same nonce). *)
