module Codec = Worm_util.Codec
module Chained_hash = Worm_crypto.Chained_hash

type report = {
  mapping : (Serial.t * Serial.t) list;
  skipped_deleted : int;
  source_base : Serial.t;
  source_current : Serial.t;
  content_hash : string;
  manifest_sig : string;
}

let content_entry sn data_hash =
  Codec.encode
    (fun enc () ->
      Serial.encode enc sn;
      Codec.bytes enc data_hash)
    ()

let migrate ~source ~target =
  let src_fw = Worm.firmware source in
  let source_cert = Firmware.signing_cert src_fw in
  let source_store_id = Worm.store_id source in
  let source_base = Firmware.sn_base src_fw in
  let source_current = Firmware.sn_current src_fw in
  let rec walk sn mapping skipped chain =
    if Serial.(sn > source_current) then Ok (List.rev mapping, skipped, chain)
    else begin
      match Worm.read source sn with
      | Proof.Found { vrd; blocks; _ } -> begin
          match
            Worm.import_record target ~source_signing_cert:source_cert ~source_store_id
              ~vrd_bytes:(Vrd.to_bytes vrd) ~blocks
          with
          | Ok target_sn ->
              let chain = Chained_hash.add chain (content_entry sn vrd.Vrd.data_hash) in
              walk (Serial.next sn) ((sn, target_sn) :: mapping) skipped chain
          | Error e ->
              Error
                (Printf.sprintf "target refused %s: %s" (Serial.to_string sn) (Firmware.error_to_string e))
        end
      | Proof.Proof_deleted _ | Proof.Proof_in_window _ | Proof.Proof_below_base _ ->
          walk (Serial.next sn) mapping (skipped + 1) chain
      | Proof.Erased _ ->
          (* Crypto-erased: the plaintext is unrecoverable by design, so
             there is nothing to move — compliant to skip, like a
             deleted record. The source retains the erasure cert. *)
          walk (Serial.next sn) mapping (skipped + 1) chain
      | Proof.Proof_unallocated _ -> Error (Serial.to_string sn ^ " reported unallocated inside the live window")
      | Proof.Refused excuse -> Error (Serial.to_string sn ^ " unreadable during migration: " ^ excuse)
    end
  in
  match walk source_base [] 0 Chained_hash.empty with
  | Error _ as e -> e
  | Ok (mapping, skipped_deleted, chain) ->
      let content_hash = Chained_hash.value chain in
      let manifest_sig =
        Firmware.attest_migration src_fw ~target_store_id:(Worm.store_id target) ~content_hash
      in
      Ok { mapping; skipped_deleted; source_base; source_current; content_hash; manifest_sig }

let verify_report ~source_client ~target_store_id report =
  Client.verify_migration source_client ~target_store_id ~base:report.source_base ~current:report.source_current
    ~content_hash:report.content_hash ~manifest_sig:report.manifest_sig
