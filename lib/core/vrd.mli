(** Virtual Record Descriptors (Table 1).

    A VRD binds a serial number to the WORM attributes and the physical
    record descriptor list (RDL) of one virtual record, authenticated by
    two SCPU witnesses: [metasig] over (SN, attr) and [datasig] over
    (SN, Hash(data)). VRDs live in the VRDT on untrusted storage — their
    integrity comes entirely from the witnesses. *)

type rd = Worm_simdisk.Disk.addr
(** Physical data record descriptor. In a file-system deployment these
    would be inodes; here they address the disk model. *)

type t = {
  sn : Serial.t;
  attr : Attr.t;
  rdl : rd list;  (** the VR's physical records, in chain-hash order *)
  data_hash : string;  (** chained hash over the data blocks (cached) *)
  metasig : Witness.t;
  datasig : Witness.t;
}

val weakest_strength : t -> Witness.strength
(** The weaker of the two witnesses — what the deferred-strengthening
    queue keys on. *)

val encode : Worm_util.Codec.encoder -> t -> unit
val decode : Worm_util.Codec.decoder -> t
val to_bytes : t -> string

val encoded_size : t -> int
(** [String.length (to_bytes t)] computed arithmetically — the VRDT's
    table sizing goes through this instead of serializing every entry. *)

val of_bytes : string -> (t, string) result
val pp : Format.formatter -> t -> unit
