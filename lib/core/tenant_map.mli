(** Host-side index from tenant id to the serials it wrote.

    Untrusted bookkeeping: crypto-erasure is enforced inside the SCPU
    ({!Firmware.erase_tenant} destroys the key whether or not the host
    kept this map honest). The map exists so the host can enumerate a
    tenant's records without a VRDT scan — reporting, maintenance
    skipping — and is rebuilt from VRDT attributes on restore. Serials
    with the empty tenant id are never indexed. *)

type t

val create : unit -> t
val note : t -> tenant:string -> sn:Serial.t -> unit
val remove : t -> tenant:string -> sn:Serial.t -> unit
val serials : t -> string -> Serial.t list
(** Ascending. *)

val count : t -> string -> int
val mem : t -> tenant:string -> sn:Serial.t -> bool
val tenants : t -> string list
(** Tenants with at least one live record, sorted. *)
