module Aes = Worm_crypto.Aes
module Device = Worm_scpu.Device

type t = { key : Aes.key; fingerprint : string }

let create fw =
  let dev = Firmware.device fw in
  (* Derived inside the enclosure from the device's internal MAC key:
     deterministic per (device, store), never stored on the host disk. *)
  let secret = Device.hmac_tag dev ("worm:vault-key|" ^ Firmware.store_id fw) in
  let key_bytes = String.sub secret 0 16 in
  {
    key = Aes.key_of_string key_bytes;
    fingerprint = String.sub (Worm_crypto.Sha256.hex_digest ("worm:vault-fp|" ^ secret)) 0 16;
  }

(* A cipher over a caller-supplied key: used for per-record tenant keys
   out of the SCPU key hierarchy ({!Firmware.record_key}). *)
let of_key key_bytes =
  if String.length key_bytes <> 16 then invalid_arg "Vault.of_key: need a 16-byte key";
  {
    key = Aes.key_of_string key_bytes;
    fingerprint = String.sub (Worm_crypto.Sha256.hex_digest ("worm:vault-fp|" ^ key_bytes)) 0 16;
  }

let key_fingerprint t = t.fingerprint

let nonce ~sn ~index =
  if index < 0 || index > 0xffff then invalid_arg "Vault: block index out of range";
  let sn64 = Serial.to_int64 sn in
  let b = Bytes.create 8 in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.shift_right_logical sn64 (8 * (5 - i))) land 0xff))
  done;
  Bytes.set b 6 (Char.chr ((index lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (index land 0xff));
  Bytes.unsafe_to_string b

let seal t ~sn ~index block = Aes.ctr t.key ~nonce:(nonce ~sn ~index) block
let unseal = seal
