(** Client-side verification.

    Clients trust only the certificate authority's public key, their own
    (roughly synchronized) clock, and nothing about the storage server.
    From the CA they validate the SCPU's signing and deletion
    certificates (served by the untrusted host), and then check every
    read response end-to-end: data against datasig, attributes against
    metasig, absences against deletion proofs, window bounds, or the
    base/current bounds, with freshness limits on everything replayable.

    Theorems 1 and 2 of the paper are, operationally, the statement that
    {!verify_read} returns [Violation _] whenever the host lies. *)

type t

type freshness =
  | Timestamped of int64
      (** §4.2.1 option (ii): accept served current bounds whose
          timestamp is at most this old. Cheap (no SCPU contact on
          reads) but leaves a hiding window of the same width for
          records written within it. *)
  | Direct_scpu of (unit -> Firmware.current_bound)
      (** §4.2.1 option (i): "upon each access, the client contacts the
          SCPU directly to retrieve the current [S_s(SN_current)]".
          Absence claims are checked against a bound fetched through
          this (authenticated) channel, closing the staleness window at
          the cost of SCPU involvement in absence-reads. *)

val connect :
  ca:Worm_crypto.Rsa.public ->
  clock:Worm_simclock.Clock.t ->
  ?max_bound_age_ns:int64 ->
  ?freshness:freshness ->
  ?verify_cache:int ->
  signing_cert:Worm_crypto.Cert.t ->
  deletion_cert:Worm_crypto.Cert.t ->
  store_id:string ->
  unit ->
  (t, string) result
(** Validate the served certificates against the CA. The default
    freshness policy is [Timestamped] with [max_bound_age_ns]
    (5 minutes unless given) — "the client will not accept values older
    than a few minutes" (§4.2.1). Passing [freshness] overrides both.

    [verify_cache] sizes the verified-signature memo (default 256
    entries; 0 disables it). Epoch-stable signatures — the current
    bound, the base bound, deletion-window bounds, and per-SN deletion
    proofs — are verified once and remembered under their exact
    (key fingerprint, message, signature) triple, so a refresh epoch
    pays each public-key verification once rather than once per read.
    Per-record witnesses are never cached. *)

val for_store :
  ca:Worm_crypto.Rsa.public ->
  clock:Worm_simclock.Clock.t ->
  ?max_bound_age_ns:int64 ->
  ?freshness:freshness ->
  ?verify_cache:int ->
  Worm.t ->
  t
(** Convenience: connect to a local {!Worm.t}, fetching its certificates
    the way a remote client would. @raise Failure if certificates fail
    to validate. *)

type violation =
  | Wrong_serial  (** host returned a record with a different SN *)
  | Meta_witness_invalid
  | Data_witness_invalid
  | Data_mismatch  (** data blocks do not hash to the signed value *)
  | Current_bound_invalid
  | Stale_current_bound
  | Base_bound_invalid
  | Base_bound_expired
  | Base_does_not_cover  (** sn is not actually below the signed base *)
  | Deletion_proof_invalid
  | Window_bound_invalid  (** signatures don't match under one window id *)
  | Window_does_not_cover
  | Erasure_cert_invalid
      (** erasure cert fails to verify, names a different (or empty)
          tenant than the VRD's metasig binds, or does not cover the
          serial *)
  | Absence_unproven  (** the host refused to prove anything *)

val violation_to_string : violation -> string

type verdict =
  | Valid_data of { vrd : Vrd.t; blocks : string list }
  | Committed_unverifiable
      (** witnessed only by an SCPU-internal MAC so far (§4.3 HMAC mode);
          retry after the next idle-period strengthening *)
  | Properly_deleted
  | Properly_erased
      (** the record's tenant was crypto-erased: the metasig binds the
          serial to the tenant, and the SCPU-signed erasure certificate
          proves that tenant's keys are destroyed — provably
          unrecoverable, compliant *)
  | Never_written
  | Violation of violation list

val verdict_name : verdict -> string

val verify_read : ?pool:Worm_util.Pool.t -> t -> sn:Serial.t -> Proof.read_response -> verdict
(** Full verification of a read response for serial number [sn]. With a
    [pool], the independent costs of a found record — both witness
    checks and the chained hash over the data blocks — run on separate
    domains; verdicts are identical to the sequential path. *)

val verify_read_many :
  ?pool:Worm_util.Pool.t -> t -> (Serial.t * Proof.read_response) list -> (Serial.t * verdict) list
(** Verify a batch of read responses, in order. With a [pool] of size
    > 1 the per-response verifications fan out across its domains (the
    host-side-only read path of §4.2.2 scaled over cores); the result
    is element-for-element identical to the sequential
    [List.map]-of-{!verify_read} it replaces. [Direct_scpu] absence
    checks call back into the firmware and therefore always run on the
    submitting domain. *)

val verify_erasure_cert : t -> Firmware.erasure_cert -> (unit, string) result
(** CA-rooted check of an SCPU-signed erasure certificate on its own,
    without a record to read it through: verifies the deletion-key
    signature over the canonical erasure message for this store. This is
    the tenant's "right to be forgotten" receipt check — [Ok ()] means
    the store's SCPU really did destroy that tenant's keys no later than
    serial [upto]. *)

type cache_stats = { cache_hits : int; cache_misses : int; cache_entries : int }

val verify_cache_stats : t -> cache_stats option
(** [None] when the client was connected with [~verify_cache:0]. *)

val invalidate_verify_cache : t -> unit
(** Drop every memoized verification. The memo's exact-triple keying
    already makes refreshed bounds miss naturally; explicit
    invalidation is for out-of-band epoch boundaries — a bound refresh
    the caller forced, a litigation-hold release that re-signed proofs,
    a migration retiring the store's key pair (see the scrubber's
    repair engine, which calls this after every repair action). *)

val verify_migration :
  t ->
  target_store_id:string ->
  base:Serial.t ->
  current:Serial.t ->
  content_hash:string ->
  manifest_sig:string ->
  bool
(** Check a source-SCPU migration attestation (see {!Migration}). *)
