type entry = Active of Vrd.t | Deleted of { proof : string }

type t = { table : (Serial.t, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }
let find t sn = Hashtbl.find_opt t.table sn
let set_active t vrd = Hashtbl.replace t.table vrd.Vrd.sn (Active vrd)
let set_deleted t sn ~proof = Hashtbl.replace t.table sn (Deleted { proof })
let drop t sn = Hashtbl.remove t.table sn
let entry_count t = Hashtbl.length t.table

let fold t ~init ~f = Hashtbl.fold (fun sn entry acc -> f acc sn entry) t.table init

let active_count t =
  fold t ~init:0 ~f:(fun acc _ entry ->
      match entry with
      | Active _ -> acc + 1
      | Deleted _ -> acc)

let deleted_count t = entry_count t - active_count t
let iter t f = Hashtbl.iter f t.table

let active_sns t =
  fold t ~init:[] ~f:(fun acc sn entry ->
      match entry with
      | Active _ -> sn :: acc
      | Deleted _ -> acc)
  |> List.sort Serial.compare

let approx_bytes t =
  fold t ~init:0 ~f:(fun acc _ entry ->
      acc + 8
      +
      match entry with
      | Active vrd -> Vrd.encoded_size vrd
      | Deleted { proof } -> String.length proof)

module Raw = struct
  let put t sn entry = Hashtbl.replace t.table sn entry
  let remove t sn = Hashtbl.remove t.table sn
  let snapshot t = fold t ~init:[] ~f:(fun acc sn entry -> (sn, entry) :: acc)

  let restore t image =
    Hashtbl.reset t.table;
    List.iter (fun (sn, entry) -> Hashtbl.replace t.table sn entry) image
end
