(** Read responses and their proofs (§4.2.2 Read).

    A read of serial number x either returns the record with its VRD, or
    must come with an SCPU-rooted proof of why it cannot: the record was
    rightfully deleted (individually, inside a collapsed deletion
    window, or below the base bound) or was never allocated (above the
    fresh current bound). A host that can produce none of these is, by
    Theorem 2, hiding something. *)

type read_response =
  | Found of { vrd : Vrd.t; blocks : string list }
      (** the record and its descriptor; the SCPU witnesses inside the
          VRD are self-certifying, so no bound accompanies success *)
  | Proof_deleted of { sn : Serial.t; proof : string }  (** S_d(sn) from the VRDT *)
  | Proof_in_window of Firmware.deletion_window
      (** sn falls inside a collapsed window of expired records *)
  | Proof_below_base of Firmware.base_bound  (** sn < SN_base: expelled long ago *)
  | Proof_unallocated of Firmware.current_bound  (** sn > SN_current: never written *)
  | Erased of { vrd : Vrd.t; cert : Firmware.erasure_cert }
      (** the record exists but its tenant's keys were crypto-erased: the
          VRD (whose metasig still binds sn to the tenant) plus the
          SCPU-signed erasure certificate prove the ciphertext is
          unrecoverable — a compliant outcome, not a refusal *)
  | Refused of string
      (** no proof offered — never legitimate; carries the host's excuse
          for the audit log *)

val describe : read_response -> string
