module Codec = Worm_util.Codec
module Cert = Worm_crypto.Cert

type t = Strong of string | Weak of { cert : Cert.t; signature : string } | Mac of string

type strength = [ `Strong | `Weak | `Mac ]

let strength = function
  | Strong _ -> `Strong
  | Weak _ -> `Weak
  | Mac _ -> `Mac

let strength_name = function
  | `Strong -> "strong"
  | `Weak -> "weak"
  | `Mac -> "mac"

let verifiable_by_client = function
  | Strong _ | Weak _ -> true
  | Mac _ -> false

let encode enc = function
  | Strong s ->
      Codec.u8 enc 0;
      Codec.bytes enc s
  | Weak { cert; signature } ->
      Codec.u8 enc 1;
      Cert.encode enc cert;
      Codec.bytes enc signature
  | Mac tag ->
      Codec.u8 enc 2;
      Codec.bytes enc tag

(* Must track [encode] exactly; checked by a property test. *)
let encoded_size = function
  | Strong s -> 1 + 4 + String.length s
  | Weak { cert; signature } -> 1 + Cert.encoded_size cert + 4 + String.length signature
  | Mac tag -> 1 + 4 + String.length tag

let decode dec =
  match Codec.read_u8 dec with
  | 0 -> Strong (Codec.read_bytes dec)
  | 1 ->
      let cert = Cert.decode dec in
      let signature = Codec.read_bytes dec in
      Weak { cert; signature }
  | 2 -> Mac (Codec.read_bytes dec)
  | n -> raise (Codec.Malformed (Printf.sprintf "bad witness tag %d" n))

let pp fmt t = Format.pp_print_string fmt (strength_name (strength t))
