(** Regulation policies.

    The paper's motivation is the body of US records regulation (§1);
    each policy here carries the retention period and disposal
    requirements a record stored under it inherits by default. *)

type regulation =
  | Sec17a4  (** SEC rule 17a-4: broker-dealer records *)
  | Hipaa  (** health records *)
  | Sox  (** Sarbanes-Oxley audit records *)
  | Dod5015_2  (** DOD records management *)
  | Ferpa  (** educational records *)
  | Glba  (** Gramm-Leach-Bliley financial privacy *)
  | Fda21cfr11  (** FDA electronic records *)
  | Gdpr  (** EU personal data: storage limitation + right to erasure *)
  | Custom of string

type t = {
  regulation : regulation;
  retention_ns : int64;  (** mandated minimum retention *)
  shred_passes : int;  (** disposal overwrite passes *)
}

val of_regulation : regulation -> t
(** Default profile for each named regulation (retention periods per the
    usual statutory minima: SEC 17a-4 six years, HIPAA six years, SOX
    seven, DOD/FDA varies — see the implementation table). *)

val custom : name:string -> retention_ns:int64 -> shred_passes:int -> t

val regulation_name : regulation -> string
val encode : Worm_util.Codec.encoder -> t -> unit

val encoded_size : t -> int
(** Byte length of [encode]'s output, computed without encoding. *)

val decode : Worm_util.Codec.decoder -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
