module Device = Worm_scpu.Device
module Cost_model = Worm_scpu.Cost_model
module Disk = Worm_simdisk.Disk
module Clock = Worm_simclock.Clock
module Chained_hash = Worm_crypto.Chained_hash

type datasig_mode = Scpu_hashes | Host_hash

type config = {
  datasig_mode : datasig_mode;
  default_witness : Firmware.witness_mode;
  heartbeat_interval_ns : int64;
  host_profile : Cost_model.profile;
  vexp_capacity : int;
  dedup : bool;
  journal : bool;
  encrypt_at_rest : bool;
  idle_audit_budget : int;
}

let default_config =
  {
    datasig_mode = Scpu_hashes;
    default_witness = Firmware.Strong_now;
    heartbeat_interval_ns = Clock.ns_of_sec 60.;
    host_profile = Cost_model.host_p4;
    vexp_capacity = 4096;
    dedup = false;
    journal = false;
    encrypt_at_rest = false;
    idle_audit_budget = 256;
  }

type t = {
  config : config;
  fw : Firmware.t;
  disk : Disk.t;
  dedup : Dedup_store.t option;
  journal : Journal.t option;
  vault : Vault.t option;
  vrdt : Vrdt.t;
  tenants : Tenant_map.t;
  deferred : Deferred.t;
  audit_queue : (Serial.t, unit) Hashtbl.t;
  mutable vexp_backlog : (int64 * Serial.t) list;
  mutable windows : Firmware.deletion_window list;
  mutable current_cache : Firmware.current_bound;
  mutable base_cache : Firmware.base_bound;
  mutable host_busy_ns : int64;
  (* Adversarial failures surfaced by idle maintenance (audit mismatches,
     refused strengthenings): findings to report, not host crashes. *)
  mutable audit_findings : (Serial.t * Firmware.error) list;
}

let create ?(config = default_config) ?disk ~device ~ca () =
  if config.dedup && config.encrypt_at_rest then
    invalid_arg "Worm.create: dedup and encrypt_at_rest cannot be combined";
  let disk =
    match disk with
    | Some d -> d
    | None -> Disk.create ()
  in
  let fw = Firmware.create ~device ~ca ~vexp_capacity:config.vexp_capacity () in
  {
    config;
    fw;
    disk;
    dedup = (if config.dedup then Some (Dedup_store.create disk) else None);
    journal = (if config.journal then Some (Journal.create fw) else None);
    vault = (if config.encrypt_at_rest then Some (Vault.create fw) else None);
    vrdt = Vrdt.create ();
    tenants = Tenant_map.create ();
    deferred = Deferred.create ();
    audit_queue = Hashtbl.create 64;
    vexp_backlog = [];
    windows = [];
    current_cache = Firmware.current_bound fw;
    base_cache = Firmware.base_bound fw;
    host_busy_ns = 0L;
    audit_findings = [];
  }

let config t = t.config
let firmware t = t.fw
let disk t = t.disk
let vrdt t = t.vrdt
let store_id t = Firmware.store_id t.fw
let now t = Device.now (Firmware.device t.fw)

let charge_host t ns = t.host_busy_ns <- Int64.add t.host_busy_ns ns

let record_op t op =
  match t.journal with
  | Some j -> ignore (Journal.append j op)
  | None -> ()

(* The cipher guarding one record's blocks: the SCPU's per-tenant key
   hierarchy when the record is tenanted, the store vault when
   encrypt_at_rest is on, neither otherwise. [Error] only once the
   tenant has been crypto-erased. *)
let record_cipher t ~(attr : Attr.t) ~sn =
  let tenant = attr.Attr.tenant in
  if String.equal tenant "" then Ok t.vault
  else begin
    match Firmware.record_key t.fw ~tenant ~sn with
    | Ok key -> Ok (Some (Vault.of_key key))
    | Error e -> Error e
  end

let tenant_erasure t (vrd : Vrd.t) =
  let tenant = vrd.Vrd.attr.Attr.tenant in
  if String.equal tenant "" then None else Firmware.erasure_cert_of t.fw tenant

let apply_cipher t ~(attr : Attr.t) cipher ~sn blocks =
  match cipher with
  | None -> blocks
  | Some v ->
      (* Tenant sealing runs on the host CPU (the derived key left the
         SCPU); the store-vault path keeps its historical free-of-charge
         accounting. *)
      let tenanted = not (String.equal attr.Attr.tenant "") in
      List.mapi
        (fun index b ->
          if tenanted then charge_host t (Cost_model.hash_ns t.config.host_profile ~bytes:(String.length b));
          Vault.seal v ~sn ~index b)
        blocks

let seal_blocks t ~(attr : Attr.t) ~sn blocks =
  match record_cipher t ~attr ~sn with
  | Ok cipher -> apply_cipher t ~attr cipher ~sn blocks
  | Error e ->
      (* Writes for erased tenants are refused at admission; reaching
         the sealing path with a dead key is a host-logic bug. *)
      invalid_arg ("Worm.seal_blocks: " ^ Firmware.error_to_string e)

(* CTR sealing is an involution, so unsealing is the same transform —
   but on the read path a dead tenant key is an expected outcome, not a
   bug, hence the result. *)
let unseal_blocks t ~(attr : Attr.t) ~sn blocks =
  match record_cipher t ~attr ~sn with
  | Ok cipher -> Ok (apply_cipher t ~attr cipher ~sn blocks)
  | Error e -> Error e

let store_blocks t blocks =
  match t.dedup with
  | Some d -> List.map (Dedup_store.store_block d) blocks
  | None -> List.map (Disk.write t.disk) blocks

let shred_rdl t ~passes rdl =
  match t.dedup with
  | Some d -> List.iter (fun rd -> ignore (Dedup_store.release d ~passes rd)) rdl
  | None -> List.iter (fun rd -> ignore (Disk.shred t.disk ~passes rd)) rdl

let host_chained_hash t blocks =
  (* Chained hash computed on the host CPU (Host_hash mode); each link
     hashes the block plus the 40-byte chain prefix. *)
  List.fold_left
    (fun acc block ->
      charge_host t (Cost_model.hash_ns t.config.host_profile ~bytes:(String.length block + 40));
      Chained_hash.add acc block)
    Chained_hash.empty blocks

(* The security lifetime applicable to deferred witnesses. *)
let deferred_deadline t (vrd : Vrd.t) =
  match Vrd.weakest_strength vrd with
  | `Strong -> None
  | `Weak -> begin
      match (vrd.Vrd.metasig, vrd.Vrd.datasig) with
      | Witness.Weak { cert; _ }, _ | _, Witness.Weak { cert; _ } -> Some cert.Worm_crypto.Cert.not_after
      | _ -> assert false
    end
  | `Mac ->
      let cfg = Device.config (Firmware.device t.fw) in
      Some (Int64.add (now t) cfg.Device.weak_lifetime_ns)

(* Host-side bookkeeping after the firmware witnessed a record: seal and
   store the blocks (sealing needs the SCPU-issued serial), activate the
   VRDT entry, and register the deferred/audit obligations. *)
let finish_write t ~blocks { Firmware.vrd; vexp_shed } =
  let rdl = store_blocks t (seal_blocks t ~attr:vrd.Vrd.attr ~sn:vrd.Vrd.sn blocks) in
  let vrd = { vrd with Vrd.rdl } in
  Vrdt.set_active t.vrdt vrd;
  Tenant_map.note t.tenants ~tenant:vrd.Vrd.attr.Attr.tenant ~sn:vrd.Vrd.sn;
  t.vexp_backlog <- vexp_shed @ t.vexp_backlog;
  (match deferred_deadline t vrd with
  | Some deadline -> Deferred.push t.deferred ~sn:vrd.Vrd.sn ~deadline
  | None -> ());
  (match t.config.datasig_mode with
  | Host_hash -> Hashtbl.replace t.audit_queue vrd.Vrd.sn ()
  | Scpu_hashes -> ());
  record_op t (Journal.Op_write vrd.Vrd.sn);
  vrd.Vrd.sn

let data_source_of_blocks t blocks =
  match t.config.datasig_mode with
  | Scpu_hashes -> Firmware.Blocks blocks
  | Host_hash ->
      let total = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
      Firmware.Claimed_hash (Chained_hash.value (host_chained_hash t blocks), total)

(* Admission check for tenanted writes: an erased tenant's identity is
   permanently closed. Checked before the firmware allocates a serial —
   raising later, mid-seal, would leak a witnessed record with no data. *)
let tenant_admission t (attr : Attr.t) =
  let tenant = attr.Attr.tenant in
  if (not (String.equal tenant "")) && Firmware.tenant_is_erased t.fw tenant then
    invalid_arg ("Worm.write: " ^ Firmware.error_to_string (Firmware.Tenant_erased tenant))

let write_attr_batch ?witness t entries =
  let witness =
    match witness with
    | Some w -> w
    | None -> t.config.default_witness
  in
  List.iter (fun (attr, _) -> tenant_admission t attr) entries;
  let prepared = List.map (fun (attr, blocks) -> (attr, [], data_source_of_blocks t blocks)) entries in
  let results = Firmware.write_batch t.fw ~mode:witness prepared in
  List.map2 (fun (_, blocks) result -> finish_write t ~blocks result) entries results

let write_batch ?witness t entries =
  write_attr_batch ?witness t
    (List.map
       (fun (policy, blocks) ->
         (Attr.make ~created_at:0L (* stamped by the firmware *) ~policy (), blocks))
       entries)

let write ?witness ?attr ?tenant t ~policy ~blocks =
  let witness =
    match witness with
    | Some w -> w
    | None -> t.config.default_witness
  in
  let attr =
    match attr with
    | Some a -> a
    | None -> Attr.make ?tenant ~created_at:0L (* stamped by the firmware *) ~policy ()
  in
  tenant_admission t attr;
  let data = data_source_of_blocks t blocks in
  (* the SCPU issues the serial first; block sealing needs it for nonces *)
  let result = Firmware.write t.fw ~attr ~rdl:[] ~data ~mode:witness in
  finish_write t ~blocks result

type part = Fresh of string | Borrow of Serial.t * int

let write_shared ?witness t ~policy ~parts =
  match t.dedup with
  | None -> Error "write_shared requires a dedup-enabled store"
  | Some dedup -> begin
      (* resolve each part to its content (the SCPU witnesses the full
         logical record) and, for borrows, the existing block address *)
      let resolve part =
        match part with
        | Fresh block -> Ok (block, None)
        | Borrow (sn, index) -> begin
            match Vrdt.find t.vrdt sn with
            | Some (Vrdt.Active vrd) -> begin
                match List.nth_opt vrd.Vrd.rdl index with
                | None -> Error (Printf.sprintf "%s has no block %d" (Serial.to_string sn) index)
                | Some rd -> begin
                    match Disk.read t.disk rd with
                    | Some content -> Ok (content, Some rd)
                    | None -> Error (Printf.sprintf "block %d of %s unreadable" index (Serial.to_string sn))
                  end
              end
            | Some (Vrdt.Deleted _) | None -> Error (Serial.to_string sn ^ " is not an active record")
          end
      in
      let rec resolve_all acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> begin
            match resolve p with
            | Ok r -> resolve_all (r :: acc) rest
            | Error e -> Error e
          end
      in
      match resolve_all [] parts with
      | Error e -> Error e
      | Ok resolved ->
          let witness =
            match witness with
            | Some w -> w
            | None -> t.config.default_witness
          in
          let blocks = List.map fst resolved in
          let attr = Attr.make ~created_at:0L ~policy () in
          let data =
            match t.config.datasig_mode with
            | Scpu_hashes -> Firmware.Blocks blocks
            | Host_hash ->
                let total = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
                Firmware.Claimed_hash (Chained_hash.value (host_chained_hash t blocks), total)
          in
          let { Firmware.vrd; vexp_shed } = Firmware.write t.fw ~attr ~rdl:[] ~data ~mode:witness in
          let rdl =
            List.map
              (fun (content, existing) ->
                match existing with
                | Some rd ->
                    ignore (Dedup_store.addref dedup rd);
                    rd
                | None -> Dedup_store.store_block dedup content)
              resolved
          in
          let vrd = { vrd with Vrd.rdl } in
          Vrdt.set_active t.vrdt vrd;
          t.vexp_backlog <- vexp_shed @ t.vexp_backlog;
          (match deferred_deadline t vrd with
          | Some deadline -> Deferred.push t.deferred ~sn:vrd.Vrd.sn ~deadline
          | None -> ());
          (match t.config.datasig_mode with
          | Host_hash -> Hashtbl.replace t.audit_queue vrd.Vrd.sn ()
          | Scpu_hashes -> ());
          record_op t (Journal.Op_write vrd.Vrd.sn);
          Ok vrd.Vrd.sn
    end

let import_record t ~source_signing_cert ~source_store_id ~vrd_bytes ~blocks =
  match Firmware.import t.fw ~source_signing_cert ~source_store_id ~vrd_bytes ~blocks with
  | Error e -> Error e
  | Ok { Firmware.vrd; vexp_shed } ->
      let rdl = store_blocks t (seal_blocks t ~attr:vrd.Vrd.attr ~sn:vrd.Vrd.sn blocks) in
      Vrdt.set_active t.vrdt { vrd with Vrd.rdl };
      Tenant_map.note t.tenants ~tenant:vrd.Vrd.attr.Attr.tenant ~sn:vrd.Vrd.sn;
      t.vexp_backlog <- vexp_shed @ t.vexp_backlog;
      Ok vrd.Vrd.sn

let heartbeat t =
  t.current_cache <- Firmware.current_bound t.fw;
  match t.journal with
  | Some j -> ignore (Journal.anchor j)
  | None -> ()

let cached_current_bound t =
  let age = Int64.sub (now t) t.current_cache.Firmware.timestamp in
  if Int64.compare age t.config.heartbeat_interval_ns > 0 then heartbeat t;
  t.current_cache

let cached_base_bound t =
  let fw_base = Firmware.sn_base t.fw in
  if
    (not (Serial.equal t.base_cache.Firmware.sn fw_base))
    || Int64.compare (now t) t.base_cache.Firmware.expires_at >= 0
  then t.base_cache <- Firmware.base_bound t.fw;
  t.base_cache

let find_window t sn =
  List.find_opt (fun w -> Serial.(w.Firmware.lo <= sn) && Serial.(sn <= w.Firmware.hi)) t.windows

let read t sn =
  match Vrdt.find t.vrdt sn with
  | Some (Vrdt.Active vrd) -> begin
      (* Erasure check first: a provable [Erased] outcome costs no disk
         I/O at all — the VRD plus the cached certificate suffice, so a
         post-erasure read is O(1) no matter how much the tenant wrote. *)
      match tenant_erasure t vrd with
      | Some cert -> Proof.Erased { vrd; cert }
      | None -> begin
          let blocks = List.map (Disk.read t.disk) vrd.Vrd.rdl in
          if List.exists Option.is_none blocks then Proof.Refused "data blocks unreadable"
          else begin
            match unseal_blocks t ~attr:vrd.Vrd.attr ~sn (List.filter_map Fun.id blocks) with
            | Ok blocks -> Proof.Found { vrd; blocks }
            | Error e -> Proof.Refused (Firmware.error_to_string e)
          end
        end
    end
  | Some (Vrdt.Deleted { proof }) -> Proof.Proof_deleted { sn; proof }
  | None -> begin
      match find_window t sn with
      | Some w -> Proof.Proof_in_window w
      | None ->
          let base = cached_base_bound t in
          if Serial.(sn < base.Firmware.sn) then Proof.Proof_below_base base
          else begin
            let current = cached_current_bound t in
            if Serial.(sn > current.Firmware.sn) then Proof.Proof_unallocated current
            else Proof.Refused "no record and no proof (inconsistent store)"
          end
    end

let delete_one t sn =
  match Vrdt.find t.vrdt sn with
  | Some (Vrdt.Active vrd) -> begin
      match Firmware.delete t.fw ~vrd_bytes:(Vrd.to_bytes vrd) with
      | Ok proof ->
          let passes = vrd.Vrd.attr.Attr.policy.Policy.shred_passes in
          shred_rdl t ~passes vrd.Vrd.rdl;
          Vrdt.set_deleted t.vrdt sn ~proof;
          Tenant_map.remove t.tenants ~tenant:vrd.Vrd.attr.Attr.tenant ~sn;
          Deferred.remove t.deferred sn |> ignore;
          Hashtbl.remove t.audit_queue sn;
          record_op t (Journal.Op_delete sn);
          Ok ()
      | Error e -> Error e
    end
  | Some (Vrdt.Deleted _) -> Error Firmware.Already_deleted
  | None -> Error Firmware.Already_deleted

let expire_due t =
  let due = Firmware.rm_pop_due t.fw in
  List.map
    (fun (_expiry, sn) ->
      let result = delete_one t sn in
      (match result with
      | Error (Firmware.Not_expired real_expiry) ->
          (* stale schedule (e.g. the record was re-attributed); re-feed *)
          t.vexp_backlog <- (real_expiry, sn) :: t.vexp_backlog
      | Error (Firmware.On_litigation_hold _) | Error _ | Ok () -> ());
      (sn, result))
    due

let next_rm_wakeup t = Firmware.next_rm_wakeup t.fw

let with_active_vrd t sn f =
  match Vrdt.find t.vrdt sn with
  | Some (Vrdt.Active vrd) -> f vrd
  | Some (Vrdt.Deleted _) | None -> Error Firmware.Already_deleted

let lit_hold t ~sn ~authority ~credential ~lit_id ~timestamp ~timeout =
  with_active_vrd t sn (fun vrd ->
      match
        Firmware.lit_hold t.fw ~vrd_bytes:(Vrd.to_bytes vrd) ~authority ~credential ~lit_id ~timestamp ~timeout
      with
      | Ok vrd' ->
          Vrdt.set_active t.vrdt vrd';
          record_op t (Journal.Op_hold (sn, lit_id));
          Ok ()
      | Error e -> Error e)

let lit_release t ~sn ~authority ~credential ~timestamp =
  with_active_vrd t sn (fun vrd ->
      match Firmware.lit_release t.fw ~vrd_bytes:(Vrd.to_bytes vrd) ~authority ~credential ~timestamp with
      | Ok vrd' ->
          Vrdt.set_active t.vrdt vrd';
          record_op t
            (Journal.Op_release
               ( sn,
                 match vrd.Vrd.attr.Attr.litigation with
                 | Some h -> h.Attr.lit_id
                 | None -> "?" ));
          Ok ()
      | Error e -> Error e)

let read_blocks_opt t (vrd : Vrd.t) =
  let blocks = List.map (Disk.read t.disk) vrd.Vrd.rdl in
  if List.exists Option.is_none blocks then None
  else begin
    match unseal_blocks t ~attr:vrd.Vrd.attr ~sn:vrd.Vrd.sn (List.filter_map Fun.id blocks) with
    | Ok blocks -> Some blocks
    | Error _ -> None
  end

(* Deferred repayment drains in chunks so each trip into the firmware
   amortizes signing setup over a whole burst without holding an
   unboundedly large batch of VRDs in flight. *)
let strengthen_chunk = 32

let strengthen_pending t ?deadline ?(max = max_int) () =
  let strengthened = ref 0 in
  let taken = ref 0 in
  let continue = ref true in
  while !continue do
    let want = min strengthen_chunk (max - !taken) in
    let batch =
      if want <= 0 then []
      else begin
        match deadline with
        | Some d -> Deferred.take_until t.deferred ~deadline:d ~max:want
        | None -> Deferred.take_batch t.deferred ~max:want
      end
    in
    if batch = [] then continue := false
    else begin
      taken := !taken + List.length batch;
      let entries =
        List.filter_map
          (fun { Deferred.sn; _ } ->
            match Vrdt.find t.vrdt sn with
            | Some (Vrdt.Active vrd) ->
                if Hashtbl.mem t.audit_queue sn && tenant_erasure t vrd = None then begin
                  match read_blocks_opt t vrd with
                  | Some blocks -> Some (sn, vrd, Firmware.Blocks blocks)
                  | None ->
                      (* One unreadable record is a classified finding,
                         not an abort of the whole maintenance pass. *)
                      Hashtbl.remove t.audit_queue sn;
                      t.audit_findings <- (sn, Firmware.Data_required) :: t.audit_findings;
                      None
                end
                else
                  (* No pending audit — or an erased tenant, whose audit
                     the firmware discharges (the plaintext is gone by
                     design): strengthen over the claimed hash. *)
                  Some (sn, vrd, Firmware.Claimed_hash (vrd.Vrd.data_hash, 0))
            | Some (Vrdt.Deleted _) | None -> None)
          batch
      in
      let results =
        Firmware.strengthen_batch t.fw (List.map (fun (_, vrd, data) -> (Vrd.to_bytes vrd, data)) entries)
      in
      List.iter2
        (fun (sn, _, _) result ->
          match result with
          | Ok vrd' ->
              Vrdt.set_active t.vrdt vrd';
              Hashtbl.remove t.audit_queue sn;
              record_op t (Journal.Op_strengthen sn);
              incr strengthened
          | Error e ->
              (* An adversarial mismatch (or lapsed weak witness) is a
                 finding, not a host crash: record it and keep draining.
                 The record stays as-is; clients flag it on read. *)
              t.audit_findings <- (sn, e) :: t.audit_findings)
        entries results
    end
  done;
  !strengthened

type audit_outcome = { audited : int; mismatches : (Serial.t * Firmware.error) list }

let run_audits t ?(max = max_int) () =
  let pending = Hashtbl.fold (fun sn () acc -> sn :: acc) t.audit_queue [] |> List.sort Serial.compare in
  let rec go count bad = function
    | [] -> (count, bad)
    | _ when count >= max -> (count, bad)
    | sn :: rest -> begin
        match Vrdt.find t.vrdt sn with
        | Some (Vrdt.Active vrd) when tenant_erasure t vrd <> None ->
            (* Crypto-erased tenant: the obligation is moot (and the
               firmware discharges it); compliant, not a finding. *)
            Hashtbl.remove t.audit_queue sn;
            go count bad rest
        | Some (Vrdt.Active vrd) -> begin
            (* Both failure modes below are findings, never crashes: the
               queue keeps draining and the caller gets the classified
               outcome (unreadable data reports as [Data_required]). *)
            match read_blocks_opt t vrd with
            | None ->
                Hashtbl.remove t.audit_queue sn;
                go (count + 1) ((sn, Firmware.Data_required) :: bad) rest
            | Some blocks -> begin
                match Firmware.audit t.fw ~vrd_bytes:(Vrd.to_bytes vrd) ~blocks with
                | Ok () ->
                    Hashtbl.remove t.audit_queue sn;
                    go (count + 1) bad rest
                | Error e ->
                    Hashtbl.remove t.audit_queue sn;
                    go (count + 1) ((sn, e) :: bad) rest
              end
          end
        | Some (Vrdt.Deleted _) | None ->
            Hashtbl.remove t.audit_queue sn;
            go count bad rest
      end
  in
  let count, bad = go 0 [] pending in
  let mismatches = List.rev bad in
  t.audit_findings <- List.rev_append mismatches t.audit_findings;
  { audited = count; mismatches }

(* ---------- crypto-erasure (right to be forgotten) ---------- *)

(* O(1) in the tenant's record count: one firmware key destruction plus
   one journal line. Records stay in the VRDT — their ciphertext is now
   provably unrecoverable, and reads return [Proof.Erased] with the
   certificate instead of touching the disk. *)
let erase_tenant t ~tenant =
  let cert = Firmware.erase_tenant t.fw ~tenant in
  record_op t (Journal.Op_custom ("erase-tenant:" ^ tenant));
  cert

let erasure_cert_of t tenant = Firmware.erasure_cert_of t.fw tenant
let tenant_is_erased t tenant = Firmware.tenant_is_erased t.fw tenant
let erased_tenants t = Firmware.erased_tenants t.fw
let tenant_serials t tenant = Tenant_map.serials t.tenants tenant
let tenant_record_count t tenant = Tenant_map.count t.tenants tenant
(* "Live" excludes erased tenants: their serials stay indexed (the VRDT
   still holds the records), but for reporting they are gone. *)
let live_tenants t =
  List.filter (fun tenant -> not (tenant_is_erased t tenant)) (Tenant_map.tenants t.tenants)

let drain_audit_findings t =
  let findings = List.rev t.audit_findings in
  t.audit_findings <- [];
  findings

let compact_windows t =
  (* Prune entries already covered by the base bound... *)
  let base = Firmware.sn_base t.fw in
  let pruned =
    Vrdt.fold t.vrdt ~init:[] ~f:(fun acc sn entry ->
        match entry with
        | Vrdt.Deleted _ when Serial.(sn < base) -> sn :: acc
        | Vrdt.Deleted _ | Vrdt.Active _ -> acc)
  in
  List.iter (Vrdt.drop t.vrdt) pruned;
  t.windows <- List.filter (fun w -> Serial.(w.Firmware.hi >= base)) t.windows;
  (* ...then collapse contiguous runs of >= 3 deletion proofs. *)
  let deleted =
    Vrdt.fold t.vrdt ~init:[] ~f:(fun acc sn entry ->
        match entry with
        | Vrdt.Deleted _ -> sn :: acc
        | Vrdt.Active _ -> acc)
    |> List.sort Serial.compare
  in
  let runs =
    let rec group acc run = function
      | [] -> List.rev (List.rev run :: acc)
      | sn :: rest -> begin
          match run with
          | prev :: _ when Serial.equal sn (Serial.next prev) -> group acc (sn :: run) rest
          | _ :: _ -> group (List.rev run :: acc) [ sn ] rest
          | [] -> group acc [ sn ] rest
        end
    in
    match deleted with
    | [] -> []
    | _ -> group [] [] deleted |> List.filter (fun run -> List.length run >= 3)
  in
  List.fold_left
    (fun expelled run ->
      match run with
      | [] -> expelled
      | lo :: _ -> begin
          let hi = List.nth run (List.length run - 1) in
          match Firmware.collapse_window t.fw ~lo ~hi with
          | Ok window ->
              List.iter (Vrdt.drop t.vrdt) run;
              t.windows <- window :: t.windows;
              record_op t (Journal.Op_window (window.Firmware.lo, window.Firmware.hi));
              expelled + List.length run
          | Error _ -> expelled
        end)
    (List.length pruned) runs

let refeed_vexp t =
  let backlog = t.vexp_backlog in
  t.vexp_backlog <- Firmware.vexp_feed t.fw backlog;
  List.length t.vexp_backlog

let idle_tick t =
  heartbeat t;
  ignore (strengthen_pending t ());
  (* Budgeted: a huge Host_hash backlog must not starve the rest of the
     tick (deferred strengthening ran first, vexp/window work follows). *)
  ignore (run_audits t ~max:t.config.idle_audit_budget ());
  ignore (refeed_vexp t);
  ignore (compact_windows t)

(* ---------- host restart ---------- *)

module Codec = Worm_util.Codec

let host_state_magic = "worm-host-state:v1"

let encode_vrdt_entry enc (sn, entry) =
  Serial.encode enc sn;
  match entry with
  | Vrdt.Active vrd ->
      Codec.u8 enc 0;
      Vrd.encode enc vrd
  | Vrdt.Deleted { proof } ->
      Codec.u8 enc 1;
      Codec.bytes enc proof

let decode_vrdt_entry dec =
  let sn = Serial.decode dec in
  match Codec.read_u8 dec with
  | 0 -> (sn, Vrdt.Active (Vrd.decode dec))
  | 1 -> (sn, Vrdt.Deleted { proof = Codec.read_bytes dec })
  | n -> raise (Codec.Malformed (Printf.sprintf "bad vrdt entry tag %d" n))

let save_host_state t =
  Codec.encode
    (fun enc () ->
      Codec.bytes enc host_state_magic;
      Codec.list encode_vrdt_entry enc (Vrdt.Raw.snapshot t.vrdt);
      Codec.list Firmware.encode_deletion_window enc t.windows;
      Codec.list
        (fun enc { Deferred.sn; deadline } ->
          Serial.encode enc sn;
          Codec.u64 enc deadline)
        enc (Deferred.to_list t.deferred);
      Codec.list (fun enc sn -> Serial.encode enc sn) enc
        (Hashtbl.fold (fun sn () acc -> sn :: acc) t.audit_queue []);
      Codec.list
        (fun enc (expiry, sn) ->
          Codec.u64 enc expiry;
          Serial.encode enc sn)
        enc t.vexp_backlog)
    ()

let restore ?(config = default_config) ~firmware:fw ~disk ~host_state () =
  if config.dedup && config.encrypt_at_rest then
    invalid_arg "Worm.restore: dedup and encrypt_at_rest cannot be combined";
  let decode dec =
    let magic = Codec.read_bytes dec in
    if not (String.equal magic host_state_magic) then raise (Codec.Malformed "not a host-state blob");
    let entries = Codec.read_list decode_vrdt_entry dec in
    let windows = Codec.read_list Firmware.decode_deletion_window dec in
    let deferred = Codec.read_list
        (fun dec ->
          let sn = Serial.decode dec in
          let deadline = Codec.read_u64 dec in
          (sn, deadline))
        dec
    in
    let audits = Codec.read_list Serial.decode dec in
    let backlog = Codec.read_list
        (fun dec ->
          let expiry = Codec.read_u64 dec in
          let sn = Serial.decode dec in
          (expiry, sn))
        dec
    in
    (entries, windows, deferred, audits, backlog)
  in
  match Codec.decode decode host_state with
  | Error e -> Error ("host state rejected: " ^ e)
  | Ok (entries, windows, deferred_entries, audits, backlog) ->
      let vrdt = Vrdt.create () in
      Vrdt.Raw.restore vrdt entries;
      (* The tenant index is derivable state: rebuilt from VRDT attrs,
         so the host-state blob format is unchanged. *)
      let tenants = Tenant_map.create () in
      List.iter
        (fun (sn, entry) ->
          match entry with
          | Vrdt.Active vrd -> Tenant_map.note tenants ~tenant:vrd.Vrd.attr.Attr.tenant ~sn
          | Vrdt.Deleted _ -> ())
        entries;
      let dedup =
        if config.dedup then begin
          let holders =
            List.filter_map
              (fun (_, entry) ->
                match entry with
                | Vrdt.Active vrd -> Some vrd.Vrd.rdl
                | Vrdt.Deleted _ -> None)
              entries
          in
          Some (Dedup_store.rebuild disk ~holders)
        end
        else None
      in
      let deferred = Deferred.create () in
      List.iter (fun (sn, deadline) -> Deferred.push deferred ~sn ~deadline) deferred_entries;
      let audit_queue = Hashtbl.create 64 in
      List.iter (fun sn -> Hashtbl.replace audit_queue sn ()) audits;
      Ok
        {
          config;
          fw;
          disk;
          dedup;
          journal = (if config.journal then Some (Journal.create fw) else None);
          vault = (if config.encrypt_at_rest then Some (Vault.create fw) else None);
          vrdt;
          tenants;
          deferred;
          audit_queue;
          vexp_backlog = backlog;
          windows;
          current_cache = Firmware.current_bound fw;
          base_cache = Firmware.base_bound fw;
          host_busy_ns = 0L;
          audit_findings = [];
        }

let dedup_stats t = Option.map Dedup_store.stats t.dedup
let journal t = t.journal
let vault t = t.vault

type metrics = {
  m_active : int;
  m_deleted_entries : int;
  m_windows : int;
  m_vrdt_bytes : int;
  m_deferred : int;
  m_audit_backlog : int;
  m_vexp_backlog : int;
  m_sn_base : Serial.t;
  m_sn_current : Serial.t;
  m_disk_records : int;
  m_disk_bytes : int;
  m_journal_entries : int;
  m_dedup_ratio : float;
}

let metrics t =
  {
    m_active = Vrdt.active_count t.vrdt;
    m_deleted_entries = Vrdt.deleted_count t.vrdt;
    m_windows = List.length t.windows;
    m_vrdt_bytes = Vrdt.approx_bytes t.vrdt;
    m_deferred = Deferred.length t.deferred;
    m_audit_backlog = Hashtbl.length t.audit_queue;
    m_vexp_backlog = List.length t.vexp_backlog;
    m_sn_base = Firmware.sn_base t.fw;
    m_sn_current = Firmware.sn_current t.fw;
    m_disk_records = Disk.record_count t.disk;
    m_disk_bytes = Disk.bytes_stored t.disk;
    m_journal_entries =
      (match t.journal with
      | Some j -> Journal.length j
      | None -> 0);
    m_dedup_ratio =
      (match t.dedup with
      | Some d -> Dedup_store.dedup_ratio d
      | None -> 1.0);
  }

let pp_metrics fmt m =
  Format.fprintf fmt
    "active %d, deletion proofs %d, windows %d, vrdt %dB, deferred %d, audits %d, vexp backlog %d, window \
     [%a, %a], disk %d recs/%dB, journal %d, dedup %.2fx"
    m.m_active m.m_deleted_entries m.m_windows m.m_vrdt_bytes m.m_deferred m.m_audit_backlog m.m_vexp_backlog
    Serial.pp m.m_sn_base Serial.pp m.m_sn_current m.m_disk_records m.m_disk_bytes m.m_journal_entries
    m.m_dedup_ratio
let deferred_backlog t = Deferred.to_list t.deferred
let deferred_length t = Deferred.length t.deferred
let deferred_overdue t ~now = Deferred.overdue t.deferred ~now
let audit_backlog t = Hashtbl.fold (fun sn () acc -> sn :: acc) t.audit_queue [] |> List.sort Serial.compare
let deletion_windows t = t.windows
let vrdt_bytes t = Vrdt.approx_bytes t.vrdt
let host_busy_ns t = t.host_busy_ns
let reset_host_busy t = t.host_busy_ns <- 0L

(* ---------- scrubber hooks ---------- *)

let peek_current_bound t = t.current_cache
let peek_base_bound t = t.base_cache

let request_audit t sn =
  match Vrdt.find t.vrdt sn with
  | Some (Vrdt.Active _) ->
      Firmware.reaudit t.fw ~sn;
      Hashtbl.replace t.audit_queue sn ();
      true
  | Some (Vrdt.Deleted _) | None -> false

module Raw = struct
  let set_windows t ws = t.windows <- ws
end
