(** Content-addressed block storage with reference counting.

    §4.2's virtual records "are allowed to overlap, and records can be
    part of multiple different VRs ... allowing repeatedly stored
    objects (such as popular email attachments) to potentially be stored
    only once". This layer sits between the WORM store and the disk:
    identical blocks share one physical record, each holder contributes
    a reference, and the shredder runs only when the last reference is
    released.

    The index and refcounts are host-side plumbing: corrupting them can
    waste space or destroy availability (both detectable — a missing
    block fails the datasig check), but can never forge record contents,
    which ride on the SCPU-signed chained hash as always. *)

type t

val create : Worm_simdisk.Disk.t -> t

val store_block : t -> string -> Worm_simdisk.Disk.addr
(** Store (or re-reference) one block; identical contents return the
    same address with an incremented refcount. *)

val store_sub : t -> string -> pos:int -> len:int -> Worm_simdisk.Disk.addr
(** [store_block] on [s[pos .. pos+len-1]], hashing the range in place:
    a dedup hit never materialises the substring. *)

val read : t -> Worm_simdisk.Disk.addr -> string option

type release_result =
  | Freed  (** last reference: the block was shredded *)
  | Still_referenced of int  (** remaining reference count *)
  | Absent

val release : t -> passes:int -> Worm_simdisk.Disk.addr -> release_result

val addref : t -> Worm_simdisk.Disk.addr -> bool
(** Take an additional reference on an existing block (overlapping VRs
    borrowing each other's records, §4.2). [false] if unknown. *)

val refcount : t -> Worm_simdisk.Disk.addr -> int
(** 0 for unknown addresses. *)

type stats = {
  unique_blocks : int;
  logical_blocks : int;  (** sum of refcounts *)
  physical_bytes : int;
  logical_bytes : int;
}

val stats : t -> stats

val dedup_ratio : t -> float
(** logical/physical bytes; 1.0 when nothing is shared. *)

val rebuild : Worm_simdisk.Disk.t -> holders:Worm_simdisk.Disk.addr list list -> t
(** Reconstruct the index after a host restart: one reference per holder
    per address, contents reread from the disk. Assumes the store wrote
    through the dedup layer from creation (equal content implies equal
    address). Unreadable addresses are skipped. *)
