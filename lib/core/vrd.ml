module Codec = Worm_util.Codec

type rd = Worm_simdisk.Disk.addr

type t = {
  sn : Serial.t;
  attr : Attr.t;
  rdl : rd list;
  data_hash : string;
  metasig : Witness.t;
  datasig : Witness.t;
}

let rank = function
  | `Strong -> 2
  | `Weak -> 1
  | `Mac -> 0

let weakest_strength t =
  let m = Witness.strength t.metasig and d = Witness.strength t.datasig in
  if rank m <= rank d then m else d

let encode enc t =
  Serial.encode enc t.sn;
  Attr.encode enc t.attr;
  Codec.list (fun enc rd -> Codec.int_as_u64 enc rd) enc t.rdl;
  Codec.bytes enc t.data_hash;
  Witness.encode enc t.metasig;
  Witness.encode enc t.datasig

let decode dec =
  let sn = Serial.decode dec in
  let attr = Attr.decode dec in
  let rdl = Codec.read_list Codec.read_int_as_u64 dec in
  let data_hash = Codec.read_bytes dec in
  let metasig = Witness.decode dec in
  let datasig = Witness.decode dec in
  { sn; attr; rdl; data_hash; metasig; datasig }

let to_bytes t = Codec.encode encode t
let of_bytes s = Codec.decode decode s

(* Byte length of [to_bytes t] without materializing the encoding —
   the VRDT sizes its whole table through this on every metrics
   snapshot, where serializing each entry just to measure it made
   [approx_bytes] the table's own hot spot. *)
let encoded_size t =
  Serial.encoded_size + Attr.encoded_size t.attr
  + (4 + (8 * List.length t.rdl))
  + (4 + String.length t.data_hash)
  + Witness.encoded_size t.metasig + Witness.encoded_size t.datasig

let pp fmt t =
  Format.fprintf fmt "vrd[%a %a rds=%d meta=%a data=%a]" Serial.pp t.sn Attr.pp t.attr (List.length t.rdl)
    Witness.pp t.metasig Witness.pp t.datasig
