type entry = { sn : Serial.t; deadline : int64 }

module Key = struct
  type t = int64 * Serial.t

  let compare (d1, s1) (d2, s2) =
    let c = Int64.compare d1 d2 in
    if c <> 0 then c else Serial.compare s1 s2
end

module Key_set = Set.Make (Key)

type t = { mutable entries : Key_set.t; by_sn : (Serial.t, int64) Hashtbl.t }

let create () = { entries = Key_set.empty; by_sn = Hashtbl.create 64 }
let length t = Key_set.cardinal t.entries
let is_empty t = Key_set.is_empty t.entries
let mem t sn = Hashtbl.mem t.by_sn sn

let remove t sn =
  match Hashtbl.find_opt t.by_sn sn with
  | None -> false
  | Some deadline ->
      t.entries <- Key_set.remove (deadline, sn) t.entries;
      Hashtbl.remove t.by_sn sn;
      true

let push t ~sn ~deadline =
  ignore (remove t sn);
  t.entries <- Key_set.add (deadline, sn) t.entries;
  Hashtbl.replace t.by_sn sn deadline

let peek t = Option.map (fun (deadline, sn) -> { sn; deadline }) (Key_set.min_elt_opt t.entries)

let take_batch t ~max =
  let rec go acc n =
    if n = 0 then List.rev acc
    else begin
      match Key_set.min_elt_opt t.entries with
      | None -> List.rev acc
      | Some ((deadline, sn) as key) ->
          t.entries <- Key_set.remove key t.entries;
          Hashtbl.remove t.by_sn sn;
          go ({ sn; deadline } :: acc) (n - 1)
    end
  in
  go [] max

let take_until t ~deadline ~max =
  let rec go acc n =
    if n = 0 then List.rev acc
    else begin
      match Key_set.min_elt_opt t.entries with
      | Some ((d, sn) as key) when Int64.compare d deadline <= 0 ->
          t.entries <- Key_set.remove key t.entries;
          Hashtbl.remove t.by_sn sn;
          go ({ sn; deadline = d } :: acc) (n - 1)
      | Some _ | None -> List.rev acc
    end
  in
  go [] max

(* Keys are ordered by (deadline, sn), so the overdue entries are a
   prefix of the set: stop at the first deadline >= now instead of
   folding the whole queue — admission control polls this every tick. *)
let overdue t ~now =
  let rec go seq acc =
    match seq () with
    | Seq.Cons ((deadline, sn), rest) when Int64.compare deadline now < 0 ->
        go rest ({ sn; deadline } :: acc)
    | Seq.Cons _ | Seq.Nil -> List.rev acc
  in
  go (Key_set.to_seq t.entries) []

let to_list t = List.map (fun (deadline, sn) -> { sn; deadline }) (Key_set.elements t.entries)
