module Disk = Worm_simdisk.Disk
module Sha256 = Worm_crypto.Sha256

type entry = { addr : Disk.addr; mutable refs : int; bytes : int }

type t = {
  disk : Disk.t;
  by_hash : (string, entry) Hashtbl.t;
  by_addr : (Disk.addr, string) Hashtbl.t; (* addr -> content hash *)
}

let create disk = { disk; by_hash = Hashtbl.create 256; by_addr = Hashtbl.create 256 }

let store_block t block =
  let h = Sha256.digest block in
  match Hashtbl.find_opt t.by_hash h with
  | Some entry ->
      entry.refs <- entry.refs + 1;
      entry.addr
  | None ->
      let addr = Disk.write t.disk block in
      Hashtbl.replace t.by_hash h { addr; refs = 1; bytes = String.length block };
      Hashtbl.replace t.by_addr addr h;
      addr

(* Zero-copy variant: the candidate range is hashed in place, so on a
   dedup hit (the case dedup exists for) the substring is never
   materialised; only a miss pays for the copy it must store anyway. *)
let store_sub t s ~pos ~len =
  let h = Sha256.digest_sub s ~pos ~len in
  match Hashtbl.find_opt t.by_hash h with
  | Some entry ->
      entry.refs <- entry.refs + 1;
      entry.addr
  | None ->
      let block = String.sub s pos len in
      let addr = Disk.write t.disk block in
      Hashtbl.replace t.by_hash h { addr; refs = 1; bytes = len };
      Hashtbl.replace t.by_addr addr h;
      addr

let read t addr = Disk.read t.disk addr

type release_result = Freed | Still_referenced of int | Absent

let release t ~passes addr =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> Absent
  | Some h -> begin
      match Hashtbl.find_opt t.by_hash h with
      | None -> Absent
      | Some entry ->
          entry.refs <- entry.refs - 1;
          if entry.refs > 0 then Still_referenced entry.refs
          else begin
            Hashtbl.remove t.by_hash h;
            Hashtbl.remove t.by_addr addr;
            ignore (Disk.shred t.disk ~passes addr);
            Freed
          end
    end

let addref t addr =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> false
  | Some h -> begin
      match Hashtbl.find_opt t.by_hash h with
      | None -> false
      | Some entry ->
          entry.refs <- entry.refs + 1;
          true
    end

let refcount t addr =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> 0
  | Some h -> begin
      match Hashtbl.find_opt t.by_hash h with
      | None -> 0
      | Some entry -> entry.refs
    end

type stats = { unique_blocks : int; logical_blocks : int; physical_bytes : int; logical_bytes : int }

let stats t =
  Hashtbl.fold
    (fun _ entry acc ->
      {
        unique_blocks = acc.unique_blocks + 1;
        logical_blocks = acc.logical_blocks + entry.refs;
        physical_bytes = acc.physical_bytes + entry.bytes;
        logical_bytes = acc.logical_bytes + (entry.refs * entry.bytes);
      })
    t.by_hash
    { unique_blocks = 0; logical_blocks = 0; physical_bytes = 0; logical_bytes = 0 }

let dedup_ratio t =
  let s = stats t in
  if s.physical_bytes = 0 then 1.0 else float_of_int s.logical_bytes /. float_of_int s.physical_bytes

let adopt t addr content =
  match Hashtbl.find_opt t.by_addr addr with
  | Some h -> begin
      match Hashtbl.find_opt t.by_hash h with
      | Some entry -> entry.refs <- entry.refs + 1
      | None -> assert false (* by_addr and by_hash are kept in sync *)
    end
  | None ->
      let h = Sha256.digest content in
      Hashtbl.replace t.by_hash h { addr; refs = 1; bytes = String.length content };
      Hashtbl.replace t.by_addr addr h

let rebuild disk ~holders =
  let t = create disk in
  List.iter
    (fun rdl ->
      List.iter
        (fun addr ->
          match Disk.read disk addr with
          | Some content -> adopt t addr content
          | None -> ())
        rdl)
    holders;
  t
