module Clock = Worm_simclock.Clock
module Codec = Worm_util.Codec

type regulation = Sec17a4 | Hipaa | Sox | Dod5015_2 | Ferpa | Glba | Fda21cfr11 | Gdpr | Custom of string

type t = { regulation : regulation; retention_ns : int64; shred_passes : int }

let years = Clock.ns_of_years

let of_regulation regulation =
  let retention_ns, shred_passes =
    match regulation with
    | Sec17a4 -> (years 6., 3)
    | Hipaa -> (years 6., 3)
    | Sox -> (years 7., 3)
    | Dod5015_2 -> (years 25., 7)
    | Ferpa -> (years 20., 3)
    | Glba -> (years 5., 3)
    | Fda21cfr11 -> (years 10., 3)
    (* Storage-limitation principle: keep no longer than needed. One
       shred pass — erasure for GDPR tenants is cryptographic, not
       physical (see Firmware.erase_tenant). *)
    | Gdpr -> (years 3., 1)
    | Custom _ -> (years 1., 1)
  in
  { regulation; retention_ns; shred_passes }

let custom ~name ~retention_ns ~shred_passes =
  if Int64.compare retention_ns 0L < 0 then invalid_arg "Policy.custom: negative retention";
  if shred_passes < 1 then invalid_arg "Policy.custom: need at least one shred pass";
  { regulation = Custom name; retention_ns; shred_passes }

let regulation_name = function
  | Sec17a4 -> "SEC-17a-4"
  | Hipaa -> "HIPAA"
  | Sox -> "SOX"
  | Dod5015_2 -> "DOD-5015.2"
  | Ferpa -> "FERPA"
  | Glba -> "GLBA"
  | Fda21cfr11 -> "FDA-21-CFR-11"
  | Gdpr -> "GDPR"
  | Custom name -> "custom:" ^ name

let regulation_tag = function
  | Sec17a4 -> 0
  | Hipaa -> 1
  | Sox -> 2
  | Dod5015_2 -> 3
  | Ferpa -> 4
  | Glba -> 5
  | Fda21cfr11 -> 6
  | Custom _ -> 7
  | Gdpr -> 8

let encode enc t =
  Codec.u8 enc (regulation_tag t.regulation);
  (match t.regulation with
  | Custom name -> Codec.bytes enc name
  | Sec17a4 | Hipaa | Sox | Dod5015_2 | Ferpa | Glba | Fda21cfr11 | Gdpr -> ());
  Codec.u64 enc t.retention_ns;
  Codec.u16 enc t.shred_passes

(* Must track [encode] exactly; checked by a property test. *)
let encoded_size t =
  let name_size =
    match t.regulation with
    | Custom name -> 4 + String.length name
    | Sec17a4 | Hipaa | Sox | Dod5015_2 | Ferpa | Glba | Fda21cfr11 | Gdpr -> 0
  in
  1 + name_size + 8 + 2

let decode dec =
  let regulation =
    match Codec.read_u8 dec with
    | 0 -> Sec17a4
    | 1 -> Hipaa
    | 2 -> Sox
    | 3 -> Dod5015_2
    | 4 -> Ferpa
    | 5 -> Glba
    | 6 -> Fda21cfr11
    | 7 -> Custom (Codec.read_bytes dec)
    | 8 -> Gdpr
    | n -> raise (Codec.Malformed (Printf.sprintf "bad regulation tag %d" n))
  in
  let retention_ns = Codec.read_u64 dec in
  let shred_passes = Codec.read_u16 dec in
  { regulation; retention_ns; shred_passes }

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "%s[retain %a, shred x%d]" (regulation_name t.regulation) Clock.pp_duration t.retention_ns
    t.shred_passes
