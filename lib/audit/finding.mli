(** Classified compliance findings.

    Every anomaly the scrubber surfaces is reduced to one of a small set
    of classes, chosen so that each class maps to exactly one repair
    action (see {!Scrubber.repair_all}) and so that the fault-injection
    tests can assert a one-to-one correspondence between what was broken
    and what was reported. *)

open Worm_core

type cls =
  | Stale_bound  (** a bound's timestamp is past the freshness limit *)
  | Bad_signature  (** a witness / proof / bound signature fails to verify *)
  | Data_mismatch  (** stored bytes do not hash to the signed value *)
  | Missing_proof  (** an absence was claimed without a covering proof *)
  | Torn_window  (** deletion-window bounds inconsistent or covering live SNs *)
  | Unreadable  (** data blocks destroyed — no proof either way *)
  | Backlog_anomaly  (** deferred/audit queues reference dead records or are overdue *)

type subject =
  | Record of Serial.t
  | Window of Serial.t * Serial.t  (** (lo, hi) of the offending window *)
  | Bounds  (** the store-wide base/current bounds *)
  | Journal
  | Backlog

type t = { subject : subject; cls : cls; detail : string }

val make : subject -> cls -> string -> t
val cls_name : cls -> string
val subject_to_string : subject -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val of_violations : Client.violation list -> cls
(** Collapse a client verdict's violation list to the dominant class
    (data mismatch > torn window > bad signature > missing proof >
    stale bound). *)

val of_firmware_error : Firmware.error -> cls
(** Classify failures surfaced by idle maintenance
    ({!Worm.drain_audit_findings}). *)

val encode : Worm_util.Codec.encoder -> t -> unit
val decode : Worm_util.Codec.decoder -> t
