open Worm_core
module Codec = Worm_util.Codec

type cls =
  | Stale_bound
  | Bad_signature
  | Data_mismatch
  | Missing_proof
  | Torn_window
  | Unreadable
  | Backlog_anomaly

type subject =
  | Record of Serial.t
  | Window of Serial.t * Serial.t
  | Bounds
  | Journal
  | Backlog

type t = { subject : subject; cls : cls; detail : string }

let make subject cls detail = { subject; cls; detail }

let cls_name = function
  | Stale_bound -> "stale-bound"
  | Bad_signature -> "bad-signature"
  | Data_mismatch -> "data-mismatch"
  | Missing_proof -> "missing-proof"
  | Torn_window -> "torn-window"
  | Unreadable -> "unreadable"
  | Backlog_anomaly -> "backlog-anomaly"

let subject_to_string = function
  | Record sn -> "record " ^ Serial.to_string sn
  | Window (lo, hi) -> Printf.sprintf "window [%s, %s]" (Serial.to_string lo) (Serial.to_string hi)
  | Bounds -> "bounds"
  | Journal -> "journal"
  | Backlog -> "backlog"

let equal a b = a.subject = b.subject && a.cls = b.cls && String.equal a.detail b.detail
let compare = Stdlib.compare
let pp fmt t = Format.fprintf fmt "%s: %s (%s)" (subject_to_string t.subject) (cls_name t.cls) t.detail

(* Dominance order: the most actionable symptom names the class. A
   record with both a forged datasig and mismatching bytes is a
   data-mismatch (heal the data first; the re-audit then covers the
   signature); stale bounds rank last because a heartbeat fixes them. *)
let violation_cls = function
  | Client.Data_mismatch -> Data_mismatch
  | Client.Window_bound_invalid | Client.Window_does_not_cover -> Torn_window
  | Client.Meta_witness_invalid | Client.Data_witness_invalid | Client.Deletion_proof_invalid
  | Client.Current_bound_invalid | Client.Base_bound_invalid | Client.Base_bound_expired
  | Client.Erasure_cert_invalid ->
      Bad_signature
  | Client.Absence_unproven | Client.Wrong_serial | Client.Base_does_not_cover -> Missing_proof
  | Client.Stale_current_bound -> Stale_bound

let cls_rank = function
  | Data_mismatch -> 0
  | Torn_window -> 1
  | Bad_signature -> 2
  | Unreadable -> 3
  | Missing_proof -> 4
  | Backlog_anomaly -> 5
  | Stale_bound -> 6

let of_violations = function
  | [] -> Missing_proof
  | vs -> List.map violation_cls vs |> List.sort (fun a b -> Int.compare (cls_rank a) (cls_rank b)) |> List.hd

let of_firmware_error = function
  | Firmware.Audit_mismatch -> Data_mismatch
  | Firmware.Data_required -> Unreadable
  | _ -> Bad_signature

(* ---------- codec (findings checkpoint) ---------- *)

let cls_tag = function
  | Stale_bound -> 0
  | Bad_signature -> 1
  | Data_mismatch -> 2
  | Missing_proof -> 3
  | Torn_window -> 4
  | Unreadable -> 5
  | Backlog_anomaly -> 6

let cls_of_tag = function
  | 0 -> Stale_bound
  | 1 -> Bad_signature
  | 2 -> Data_mismatch
  | 3 -> Missing_proof
  | 4 -> Torn_window
  | 5 -> Unreadable
  | 6 -> Backlog_anomaly
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown finding class tag %d" n))

let encode enc t =
  (match t.subject with
  | Record sn ->
      Codec.u8 enc 0;
      Serial.encode enc sn
  | Window (lo, hi) ->
      Codec.u8 enc 1;
      Serial.encode enc lo;
      Serial.encode enc hi
  | Bounds -> Codec.u8 enc 2
  | Journal -> Codec.u8 enc 3
  | Backlog -> Codec.u8 enc 4);
  Codec.u8 enc (cls_tag t.cls);
  Codec.bytes enc t.detail

let decode dec =
  let subject =
    match Codec.read_u8 dec with
    | 0 -> Record (Serial.decode dec)
    | 1 ->
        let lo = Serial.decode dec in
        let hi = Serial.decode dec in
        Window (lo, hi)
    | 2 -> Bounds
    | 3 -> Journal
    | 4 -> Backlog
    | n -> raise (Codec.Malformed (Printf.sprintf "unknown finding subject tag %d" n))
  in
  let cls = cls_of_tag (Codec.read_u8 dec) in
  let detail = Codec.read_bytes dec in
  { subject; cls; detail }
