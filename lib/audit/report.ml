open Worm_core

type t = {
  store_id : string;
  sn_base : Serial.t;
  sn_current : Serial.t;
  records_scanned : int;
  slices : int;
  host_ns : int64;
  pass_complete : bool;
  findings : Finding.t list;
}

let clean t = t.pass_complete && t.findings = []

let summary t =
  Printf.sprintf "%s: %d records in %d slices, %d finding(s)%s"
    (if clean t then "clean" else if t.pass_complete then "FINDINGS" else "in progress")
    t.records_scanned t.slices (List.length t.findings)
    (if t.pass_complete then "" else " so far")

(* Minimal JSON emitter: the report schema needs only strings, ints,
   bools and flat finding objects, so no library dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_json (f : Finding.t) =
  Printf.sprintf {|{"subject": "%s", "class": "%s", "detail": "%s"}|}
    (json_escape (Finding.subject_to_string f.Finding.subject))
    (Finding.cls_name f.Finding.cls)
    (json_escape f.Finding.detail)

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"worm-audit-report/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"store_id\": \"%s\",\n" (Worm_util.Hex.encode t.store_id));
  Buffer.add_string b (Printf.sprintf "  \"sn_base\": %Ld,\n" (Serial.to_int64 t.sn_base));
  Buffer.add_string b (Printf.sprintf "  \"sn_current\": %Ld,\n" (Serial.to_int64 t.sn_current));
  Buffer.add_string b (Printf.sprintf "  \"records_scanned\": %d,\n" t.records_scanned);
  Buffer.add_string b (Printf.sprintf "  \"slices\": %d,\n" t.slices);
  Buffer.add_string b (Printf.sprintf "  \"host_ns\": %Ld,\n" t.host_ns);
  Buffer.add_string b (Printf.sprintf "  \"pass_complete\": %b,\n" t.pass_complete);
  Buffer.add_string b (Printf.sprintf "  \"clean\": %b,\n" (clean t));
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n    ";
      Buffer.add_string b (finding_json f))
    t.findings;
  if t.findings <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}";
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "@[<v>%s@," (summary t);
  List.iter (fun f -> Format.fprintf fmt "  %a@," Finding.pp f) t.findings;
  Format.fprintf fmt "@]"
