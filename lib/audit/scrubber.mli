(** Continuous compliance scrubber.

    Walks the full serial-number space in budgeted slices, verifying for
    every SN exactly one of the §4.2.2 read outcomes — a live record
    with valid metasig/datasig, a deletion proof [S_d(SN)], membership
    in a coherent deletion window, or the below-base / above-current
    bounds — then runs the cross-cutting invariants no single read
    exercises: bound freshness against the heartbeat, deletion-window
    coherence against the VRDT, the journal's hash chain and SCPU
    anchors, and deferred/audit backlog sanity.

    The scrubber is host-side and untrusted, like every auditor in the
    paper's model: all verification goes through {!Client} against
    SCPU-rooted signatures, so a lying scrubber gains nothing — it can
    only fail to report, which an external {!Remote_client} audit
    catches independently.

    Cost discipline: each {!run_slice} stops once the configured host
    budget (or record cap) is consumed, and bills its verification work
    to the store's host ledger via {!Worm.charge_host}, so simulations
    measure steady-state audit overhead honestly. The cursor (and the
    findings accumulated so far) checkpoint to bytes and reload after a
    host restart; a corrupt checkpoint degrades to a fresh pass from the
    bottom of the SN space, never to a silent mis-resume. *)

open Worm_core

type config = {
  slice_budget_ns : int64;  (** host CPU per slice; slice ends when consumed *)
  max_records_per_slice : int;  (** hard cap regardless of budget *)
  max_bound_age_ns : int64;  (** freshness limit for the current bound *)
}

val default_config : config
(** 5 ms of host CPU per slice, at most 512 records, 5-minute bound
    freshness (the {!Client} default). *)

type t

val create : ?config:config -> ?pool:Worm_util.Pool.t -> store:Worm.t -> client:Client.t -> unit -> t
(** [client] must be bound to [store]'s certificates (e.g.
    {!Client.for_store}).

    With a [pool] of size > 1, each slice reads responses on the
    calling domain (the store's tables are single-writer) and fans
    their verification out across the pool in SN-ordered batches.
    Findings, cursor movement, and budget accounting are identical to
    the sequential walk: verdicts are consumed in SN order under the
    same budget, and a batch's surplus verdicts are discarded rather
    than consumed early. *)

val attach_mirror : t -> Replicator.t -> unit
(** Give the repair engine a replica to heal from. The [Replicator]'s
    primary must be this scrubber's store. *)

val config : t -> config
val cursor : t -> Serial.t
(** Next SN the scrubber will examine. *)

val findings : t -> Finding.t list
(** Findings of the pass in progress (or just completed), oldest first. *)

type slice_stats = {
  examined : int;  (** per-SN checks performed in this slice *)
  spent_ns : int64;  (** host cost charged for the slice *)
  pass_completed : bool;  (** this slice finished the pass *)
}

val run_slice : t -> slice_stats
(** One budgeted increment of scrubbing. Starts a new pass (snapshotting
    the SN range to cover) if none is in progress; on the slice that
    reaches the end of the range, also runs the cross-cutting invariant
    checks and finalizes the pass report. *)

val run_pass : t -> Report.t
(** Drive {!run_slice} until the current pass completes and return its
    report. *)

val last_report : t -> Report.t option
(** The most recently completed pass. *)

val report : t -> Report.t
(** Snapshot of the pass in progress ([pass_complete = false] unless the
    pass just finished). *)

(** {2 Checkpointing} *)

val save_state : t -> string
(** Serialize cursor, pass extent, and accumulated findings. *)

val load_state : t -> string -> (unit, string) result
(** Restore a checkpoint taken by {!save_state} on a scrubber for the
    same store. On any corruption — bad magic, wrong store, truncated or
    malformed bytes — the scrubber resets to a fresh pass starting at
    the bottom of the SN space and reports the reason as [Error]: a
    damaged cursor must never cause a region to be silently skipped. *)

(** {2 Repair} *)

type repair_outcome = { finding : Finding.t; action : string; result : (unit, string) result }

val repair_all : t -> repair_outcome list
(** Attempt to repair every finding of the last completed pass:
    stale bounds via a heartbeat; torn windows by SCPU re-certification
    (or safe removal — the per-SN proofs and base bound still cover the
    records); forged witnesses from the mirror's verified VRD backup;
    damaged or destroyed data from the mirror copy, re-queueing an SCPU
    data audit; missing deletion proofs re-issued by the SCPU for
    serials it positively knows are deleted, else re-ingested from the
    mirror. Mirror-based repairs fail with [Error] when no mirror is
    attached. Run another pass afterwards to confirm a clean report. *)
