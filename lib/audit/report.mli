(** Machine-readable audit health reports.

    The end product of a scrub pass: what was covered, what it cost, and
    every classified finding. [to_json] emits the stable wire form that
    `wormctl audit` prints and external compliance tooling consumes. *)

open Worm_core

type t = {
  store_id : string;
  sn_base : Serial.t;
  sn_current : Serial.t;
  records_scanned : int;  (** per-SN outcomes verified this pass *)
  slices : int;  (** budgeted slices the pass took *)
  host_ns : int64;  (** host CPU charged for verification work *)
  pass_complete : bool;  (** [false]: interim snapshot mid-pass *)
  findings : Finding.t list;
}

val clean : t -> bool
(** A complete pass with zero findings. *)

val summary : t -> string
(** One human-readable line. *)

val to_json : t -> string
(** Stable JSON object (schema [worm-audit-report/1]). *)

val pp : Format.formatter -> t -> unit
