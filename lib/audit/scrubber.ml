open Worm_core
module Codec = Worm_util.Codec
module Cost_model = Worm_scpu.Cost_model
module Device = Worm_scpu.Device
module Rsa = Worm_crypto.Rsa
module Cert = Worm_crypto.Cert

type config = {
  slice_budget_ns : int64;
  max_records_per_slice : int;
  max_bound_age_ns : int64;
}

let default_config =
  { slice_budget_ns = 5_000_000L; max_records_per_slice = 512; max_bound_age_ns = 300_000_000_000L }

(* A pass walks [cursor, target] — the SN space as it stood when the
   pass began. Records written after the snapshot belong to the next
   pass; an ever-growing store must not keep a pass from terminating. *)
type pass = { target : Serial.t; mutable scanned : int; mutable slices : int; mutable spent_ns : int64 }

type t = {
  store : Worm.t;
  client : Client.t;
  cfg : config;
  pool : Worm_util.Pool.t option;
  mutable mirror : Replicator.t option;
  mutable cursor : Serial.t;
  mutable pass : pass option;
  mutable pass_findings : Finding.t list;  (* newest first *)
  mutable last : Report.t option;
}

let create ?(config = default_config) ?pool ~store ~client () =
  { store; client; cfg = config; pool; mirror = None; cursor = Serial.first; pass = None;
    pass_findings = []; last = None }

let attach_mirror t r = t.mirror <- Some r
let config t = t.cfg
let cursor t = t.cursor
let findings t = List.rev t.pass_findings
let last_report t = t.last

let fw t = Worm.firmware t.store
let now t = Device.now (Firmware.device (fw t))
let profile t = (Worm.config t.store).Worm.host_profile
let signing_key t = (Firmware.signing_cert (fw t)).Cert.key

let flag t subject cls detail = t.pass_findings <- Finding.make subject cls detail :: t.pass_findings

(* ---------- per-SN verification ---------- *)

(* What one scrubbed SN costs the host: two public-key verifications
   (both witnesses, or a proof plus a bound) and a hash over whatever
   data came back. Billed to the store's host ledger so the simulator's
   audit-overhead section measures real contention with writes. *)
let record_cost t blocks =
  let p = profile t in
  let bytes = List.fold_left (fun acc b -> acc + String.length b) 0 blocks in
  Int64.add (Int64.mul 2L (Cost_model.rsa_verify_ns p ~bits:1024)) (Cost_model.hash_ns p ~bytes:(bytes + 40))

let blocks_of = function
  | Proof.Found { blocks; _ } -> blocks
  | _ -> []

(* Turn one (response, verdict) pair into findings and return the host
   cost of having verified it. Shared verbatim by the sequential walk
   and the pooled batches, so the two produce identical findings by
   construction. *)
let classify t sn response verdict =
  (match (response, verdict) with
  | Proof.Refused excuse, _ -> begin
      (* A refusal is never legitimate (Theorem 2); distinguish the
         repairable case — live VRDT entry whose data blocks are gone —
         from a flat absence claim with no proof. *)
      match Vrdt.find (Worm.vrdt t.store) sn with
      | Some (Vrdt.Active _) -> flag t (Finding.Record sn) Finding.Unreadable ("data blocks unreadable: " ^ excuse)
      | _ -> flag t (Finding.Record sn) Finding.Missing_proof ("read refused: " ^ excuse)
    end
  | _, Client.Violation vs ->
      flag t (Finding.Record sn) (Finding.of_violations vs)
        (String.concat "; " (List.map Client.violation_to_string vs))
  | _, Client.Never_written ->
      (* The walk only probes serials at or below the pass target — the
         SCPU's counter when the pass began — so this absence claim is
         false even when a within-tolerance stale bound lets a remote
         client accept it (the §4.2.1 staleness window). *)
      flag t (Finding.Record sn) Finding.Missing_proof "never-written claimed for an allocated serial"
  | _, (Client.Valid_data _ | Client.Committed_unverifiable | Client.Properly_deleted | Client.Properly_erased) ->
      (* Properly_erased is compliant: the cert verified, the tenant's
         records are provably unrecoverable — nothing to flag. *)
      ());
  record_cost t (blocks_of response)

let check_sn t sn =
  let response = Worm.read t.store sn in
  classify t sn response (Client.verify_read t.client ~sn response)

(* ---------- cross-cutting invariants ---------- *)

let check_bounds t =
  (* Peek, do not refresh: cached_current_bound would heal the very
     staleness we are here to detect. *)
  let cb = Worm.peek_current_bound t.store in
  let cb_msg = Wire.current_bound_msg ~store_id:(Worm.store_id t.store) ~sn:cb.Firmware.sn ~timestamp:cb.Firmware.timestamp in
  if not (Rsa.verify (signing_key t) ~msg:cb_msg ~signature:cb.Firmware.signature) then
    flag t Finding.Bounds Finding.Bad_signature "current-bound signature does not verify"
  else if Int64.compare (Int64.sub (now t) cb.Firmware.timestamp) t.cfg.max_bound_age_ns > 0 then
    flag t Finding.Bounds Finding.Stale_bound
      (Printf.sprintf "current bound is %Lds old" (Int64.div (Int64.sub (now t) cb.Firmware.timestamp) 1_000_000_000L));
  let bb = Worm.cached_base_bound t.store in
  let bb_msg = Wire.base_bound_msg ~store_id:(Worm.store_id t.store) ~sn:bb.Firmware.sn ~expires_at:bb.Firmware.expires_at in
  if not (Rsa.verify (signing_key t) ~msg:bb_msg ~signature:bb.Firmware.signature) then
    flag t Finding.Bounds Finding.Bad_signature "base-bound signature does not verify"
  else if Int64.compare (now t) bb.Firmware.expires_at >= 0 then
    flag t Finding.Bounds Finding.Stale_bound "base bound expired and was not re-fetched"

let check_windows t =
  List.iter
    (fun (w : Firmware.deletion_window) ->
      (* The client's window check covers signature validity, id
         correlation, and coverage of the probe serial. *)
      (match Client.verify_read t.client ~sn:w.Firmware.lo (Proof.Proof_in_window w) with
      | Client.Violation vs ->
          flag t
            (Finding.Window (w.Firmware.lo, w.Firmware.hi))
            Finding.Torn_window
            (String.concat "; " (List.map Client.violation_to_string vs))
      | _ -> ());
      (* A coherent-looking window must not shadow live records. *)
      List.iter
        (fun sn ->
          match Vrdt.find (Worm.vrdt t.store) sn with
          | Some (Vrdt.Active _) ->
              flag t
                (Finding.Window (w.Firmware.lo, w.Firmware.hi))
                Finding.Torn_window
                ("window covers live record " ^ Serial.to_string sn)
          | _ -> ())
        (Serial.range w.Firmware.lo w.Firmware.hi))
    (Worm.deletion_windows t.store)

let check_journal t =
  match Worm.journal t.store with
  | None -> ()
  | Some j ->
      let entries = Journal.entries j in
      if not (Journal.verify_chain ~entries) then
        flag t Finding.Journal Finding.Bad_signature "journal hash chain is inconsistent"
      else begin
        match List.rev (Journal.anchors j) with
        | [] -> ()
        | anchor :: _ ->
            if not (Journal.verify_anchor ~signing:(signing_key t) ~store_id:(Worm.store_id t.store) ~entries anchor)
            then flag t Finding.Journal Finding.Bad_signature "latest SCPU anchor does not verify against the chain"
      end

let check_backlogs t =
  let vrdt = Worm.vrdt t.store in
  List.iter
    (fun sn ->
      match Vrdt.find vrdt sn with
      | Some (Vrdt.Active _) -> ()
      | _ ->
          flag t Finding.Backlog Finding.Backlog_anomaly
            ("audit queue references non-live record " ^ Serial.to_string sn))
    (Worm.audit_backlog t.store);
  List.iter
    (fun (e : Deferred.entry) ->
      match Vrdt.find vrdt e.Deferred.sn with
      | Some (Vrdt.Active _) -> ()
      | _ ->
          flag t Finding.Backlog Finding.Backlog_anomaly
            ("deferred queue references non-live record " ^ Serial.to_string e.Deferred.sn))
    (Worm.deferred_backlog t.store);
  List.iter
    (fun (e : Deferred.entry) ->
      flag t Finding.Backlog Finding.Backlog_anomaly
        (Printf.sprintf "record %s is past its strengthening deadline" (Serial.to_string e.Deferred.sn)))
    (Worm.deferred_overdue t.store ~now:(now t));
  (* Failures idle maintenance already hit (audit mismatches, refused
     strengthenings) fold into this pass's findings. *)
  List.iter
    (fun (sn, e) ->
      flag t (Finding.Record sn) (Finding.of_firmware_error e)
        ("idle maintenance: " ^ Firmware.error_to_string e))
    (Worm.drain_audit_findings t.store)

let cross_cutting_cost t =
  let p = profile t in
  (* Bounds, latest anchor, and per-window bound pairs: all public-key
     verifications. *)
  let windows = List.length (Worm.deletion_windows t.store) in
  Int64.mul (Int64.of_int (3 + (2 * windows))) (Cost_model.rsa_verify_ns p ~bits:1024)

(* ---------- pass / slice machinery ---------- *)

let begin_pass t =
  t.cursor <- Serial.first;
  t.pass <- Some { target = Firmware.sn_current (fw t); scanned = 0; slices = 0; spent_ns = 0L };
  t.pass_findings <- []

let make_report t (pass : pass) ~complete =
  {
    Report.store_id = Worm.store_id t.store;
    sn_base = Firmware.sn_base (fw t);
    sn_current = Firmware.sn_current (fw t);
    records_scanned = pass.scanned;
    slices = pass.slices;
    host_ns = pass.spent_ns;
    pass_complete = complete;
    findings = List.rev t.pass_findings;
  }

type slice_stats = { examined : int; spent_ns : int64; pass_completed : bool }

let finalize_pass t (pass : pass) =
  check_bounds t;
  check_windows t;
  check_journal t;
  check_backlogs t;
  let cost = cross_cutting_cost t in
  pass.spent_ns <- Int64.add pass.spent_ns cost;
  t.last <- Some (make_report t pass ~complete:true);
  t.pass <- None;
  cost

let run_slice t =
  let pass =
    match t.pass with
    | Some p -> p
    | None ->
        begin_pass t;
        Option.get t.pass
  in
  pass.slices <- pass.slices + 1;
  let spent = ref 0L in
  let examined = ref 0 in
  let budget_left () =
    Int64.compare !spent t.cfg.slice_budget_ns < 0 && !examined < t.cfg.max_records_per_slice
  in
  let consume cost =
    spent := Int64.add !spent cost;
    incr examined;
    pass.scanned <- pass.scanned + 1;
    t.cursor <- Serial.next t.cursor
  in
  let pool =
    match t.pool with
    | Some p when Worm_util.Pool.size p > 1 -> Some p
    | _ -> None
  in
  (match pool with
  | None ->
      while Serial.(t.cursor <= pass.target) && budget_left () do
        consume (check_sn t t.cursor)
      done
  | Some pool ->
      (* Reads stay on this domain (the store's Hashtbls are
         single-writer); verification fans out per batch. The budget is
         applied to verdicts in SN order exactly as the sequential walk
         would, so a batch that overruns the slice budget discards the
         surplus verdicts — the cursor stays put and the next slice
         re-verifies them. Batches are a small multiple of the pool so
         that surplus stays bounded. *)
      let batch_cap = Worm_util.Pool.size pool * 4 in
      while Serial.(t.cursor <= pass.target) && budget_left () do
        let room = min batch_cap (t.cfg.max_records_per_slice - !examined) in
        let n = min (Int64.to_int (Int64.add (Serial.distance t.cursor pass.target) 1L)) room in
        let sns = List.init n (fun i -> Serial.of_int64 (Int64.add (Serial.to_int64 t.cursor) (Int64.of_int i))) in
        let responses = List.map (fun sn -> (sn, Worm.read t.store sn)) sns in
        let verdicts = Client.verify_read_many ~pool t.client responses in
        List.iter2
          (fun (sn, response) (_, verdict) ->
            if budget_left () then consume (classify t sn response verdict))
          responses verdicts
      done);
  pass.spent_ns <- Int64.add pass.spent_ns !spent;
  let completed =
    if Serial.(t.cursor > pass.target) && budget_left () then begin
      spent := Int64.add !spent (finalize_pass t pass);
      true
    end
    else false
  in
  Worm.charge_host t.store !spent;
  { examined = !examined; spent_ns = !spent; pass_completed = completed }

let report t =
  match (t.pass, t.last) with
  | Some pass, _ -> make_report t pass ~complete:false
  | None, Some r -> r
  | None, None -> make_report t { target = Serial.zero; scanned = 0; slices = 0; spent_ns = 0L } ~complete:false

let run_pass t =
  let rec go () =
    let stats = run_slice t in
    if stats.pass_completed then Option.get t.last else go ()
  in
  go ()

(* ---------- checkpointing ---------- *)

let state_magic = "worm-audit-state:v1"

let save_state t =
  Codec.encode
    (fun enc () ->
      Codec.bytes enc state_magic;
      Codec.bytes enc (Worm.store_id t.store);
      Serial.encode enc t.cursor;
      (Codec.option (fun enc (p : pass) ->
           Serial.encode enc p.target;
           Codec.int_as_u64 enc p.scanned;
           Codec.int_as_u64 enc p.slices;
           Codec.u64 enc p.spent_ns))
        enc t.pass;
      Codec.list Finding.encode enc (List.rev t.pass_findings))
    ()

let reset t =
  t.cursor <- Serial.first;
  t.pass <- None;
  t.pass_findings <- []

let load_state t blob =
  let decoded =
    Codec.decode
      (fun dec ->
        let magic = Codec.read_bytes dec in
        if not (String.equal magic state_magic) then raise (Codec.Malformed "bad audit-state magic");
        let store_id = Codec.read_bytes dec in
        if not (String.equal store_id (Worm.store_id t.store)) then
          raise (Codec.Malformed "audit state belongs to a different store");
        let cursor = Serial.decode dec in
        let pass =
          Codec.read_option
            (fun dec ->
              let target = Serial.decode dec in
              let scanned = Codec.read_int_as_u64 dec in
              let slices = Codec.read_int_as_u64 dec in
              let spent_ns = Codec.read_u64 dec in
              { target; scanned; slices; spent_ns })
            dec
        in
        let findings = Codec.read_list Finding.decode dec in
        (cursor, pass, findings))
      blob
  in
  match decoded with
  | Ok (cursor, pass, findings) ->
      t.cursor <- cursor;
      t.pass <- pass;
      t.pass_findings <- List.rev findings;
      Ok ()
  | Error e ->
      (* Never resume from bytes we cannot trust: a truncated cursor
         could silently skip a damaged region. Start over from the
         bottom of the SN space instead. *)
      reset t;
      Error ("audit checkpoint rejected (restarting from SN base): " ^ e)

(* ---------- repair ---------- *)

type repair_outcome = { finding : Finding.t; action : string; result : (unit, string) result }

let need_mirror t f =
  match t.mirror with
  | Some r -> f r
  | None -> Error "no mirror attached"

let window_of t lo hi =
  List.find_opt
    (fun (w : Firmware.deletion_window) -> Serial.equal w.Firmware.lo lo && Serial.equal w.Firmware.hi hi)
    (Worm.deletion_windows t.store)

let repair_torn_window t lo hi =
  match window_of t lo hi with
  | None -> Ok ()
  | Some bad -> begin
      let others = List.filter (fun w -> w != bad) (Worm.deletion_windows t.store) in
      (* Re-certify through the SCPU: collapse_window only signs bounds
         for runs it knows are fully deleted, so either we get a fresh
         coherent window or the torn one was misplaced and is dropped —
         per-SN proofs and the base bound still cover the range. *)
      match Firmware.collapse_window (fw t) ~lo ~hi with
      | Ok fresh ->
          Worm.Raw.set_windows t.store (fresh :: others);
          Ok ()
      | Error _ ->
          Worm.Raw.set_windows t.store others;
          Ok ()
    end

let repair_record t r sn cls =
  let requeue () = ignore (Worm.request_audit t.store sn) in
  match cls with
  | Finding.Bad_signature -> begin
      match Replicator.heal_witness r ~sn with
      | Ok () ->
          requeue ();
          Ok ()
      | Error _ when Vrdt.find (Worm.vrdt t.store) sn = None ->
          Result.map (fun _ -> ()) (Replicator.heal_missing r ~sn)
      | Error e -> Error e
    end
  | Finding.Data_mismatch | Finding.Unreadable -> begin
      match Replicator.heal_data r ~sn with
      | Ok () ->
          requeue ();
          Ok ()
      | Error _ when Vrdt.find (Worm.vrdt t.store) sn = None ->
          Result.map (fun _ -> ()) (Replicator.heal_missing r ~sn)
      | Error e -> Error e
    end
  | Finding.Missing_proof -> Result.map (fun _ -> ()) (Replicator.heal_missing r ~sn)
  | _ -> Error "no automated repair for this class"

let repair_one t (f : Finding.t) =
  (* Repairs that make the SCPU re-sign — a heartbeat refreshing the
     current bound, a window re-certification, a re-issued deletion
     proof — end the epoch the client's verified-signature memo was
     built in. Drop it so post-repair reads verify live state. *)
  let invalidate () = Client.invalidate_verify_cache t.client in
  match (f.Finding.subject, f.Finding.cls) with
  | _, Finding.Stale_bound ->
      Worm.heartbeat t.store;
      invalidate ();
      ("heartbeat", Ok ())
  | Finding.Window (lo, hi), _ ->
      let result = repair_torn_window t lo hi in
      invalidate ();
      ("re-certify window", result)
  | Finding.Record sn, Finding.Missing_proof -> begin
      (* The SCPU can restore evidence it positively holds: a deletion
         proof for a serial in its deleted set or below its base. *)
      match Firmware.reissue_deletion_proof (fw t) ~sn with
      | Ok proof ->
          Vrdt.set_deleted (Worm.vrdt t.store) sn ~proof;
          invalidate ();
          ("re-issue deletion proof", Ok ())
      | Error Firmware.Not_deleted ->
          ("re-ingest from mirror", need_mirror t (fun r -> repair_record t r sn Finding.Missing_proof))
      | Error e -> ("re-issue deletion proof", Error (Firmware.error_to_string e))
    end
  | Finding.Record sn, (Finding.Bad_signature | Finding.Data_mismatch | Finding.Unreadable) ->
      ("heal from mirror", need_mirror t (fun r -> repair_record t r sn f.Finding.cls))
  | _, _ -> ("none", Error "no automated repair for this finding")

let repair_all t =
  let findings =
    match t.last with
    | Some r -> r.Report.findings
    | None -> []
  in
  List.map
    (fun f ->
      let action, result = repair_one t f in
      { finding = f; action; result })
    findings
