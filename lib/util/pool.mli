(** Fixed-size domain pool for host-side parallelism.

    The paper's read path is host-CPU-only (§4.2.2): verifying
    [metasig]/[datasig] witnesses and bound signatures costs the
    untrusted host public-key operations and hashing, none of which
    touch the SCPU. This pool spreads that verification over the
    machine's cores with stdlib domains only — no external scheduler.

    A pool of size [n] uses [n - 1] persistent worker domains plus the
    submitting domain, which drains the same queue while it waits, so
    submitting to a busy pool degrades gracefully toward inline
    execution. A pool of size 1 spawns no domains and runs every batch
    sequentially in the caller — the clean fallback path.

    Batches are synchronous: [parallel_map]/[parallel_for] return only
    after every element has been processed. If any element raises, the
    first exception is re-raised on the submitting domain after the
    whole batch has finished (no element is silently skipped).

    The pool itself is domain-safe; the work functions must be too.
    In this codebase that means: pure computation, {!Worm_crypto.Rsa}
    verification (its context cache is per-domain), and the
    mutex-guarded caches in {!Worm_core.Client}. Do not touch a
    {!Worm_core.Worm.t} (host Hashtbls are single-writer) from inside a
    pooled task. *)

type t

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1. *)

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains] total domains (default
    {!recommended_domains}). [domains = 1] spawns nothing and makes
    every batch sequential.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total domains participating in a batch (workers + submitter). *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map t f arr] is [Array.map f arr] with elements processed
    on the pool's domains in chunked ranges. Result order matches input
    order. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map] over a list. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f i] for [0 <= i < n] across the pool.
    Iterations must be independent. *)

val shutdown : t -> unit
(** Stop the workers (after the queue drains) and join them.
    Idempotent; subsequent submissions raise [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
