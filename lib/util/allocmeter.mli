(** Minor-heap allocation metering.

    [Gc.minor_words] counts every word ever allocated on the minor heap
    (promotion does not subtract), so deltas of it measure allocation
    pressure — the thing that actually costs time on a hot serving path —
    independently of when collections happen. Readings are per-domain;
    take deltas on the domain doing the work. *)

val minor_words : unit -> float
(** Words allocated on this domain's minor heap since program start. *)

val measure : (unit -> 'a) -> 'a * float
(** [measure f] runs [f] and returns its result paired with the minor
    words allocated during the call. *)

val per_op : ops:int -> (unit -> unit) -> float
(** [per_op ~ops f] runs [f] [ops] times and returns the mean minor
    words allocated per call. @raise Invalid_argument if [ops <= 0]. *)
