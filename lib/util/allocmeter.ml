let minor_words = Gc.minor_words

let measure f =
  let w0 = Gc.minor_words () in
  let v = f () in
  (v, Gc.minor_words () -. w0)

let per_op ~ops f =
  if ops <= 0 then invalid_arg "Allocmeter.per_op";
  let w0 = Gc.minor_words () in
  for _ = 1 to ops do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int ops
