(* Zero-copy wire core. The encoder is a growable preallocated [Bytes]
   written with unsafe big-endian word stores (the sha256.ml playbook:
   bounds are established once by [ensure], then the word primitives
   skip the per-byte checks); the decoder reads whole words the same
   way and can hand out [(string, pos, len)] slices instead of
   [String.sub] copies. Encodings are canonical and signed — the byte
   format here must stay bit-identical to test/support/ref_codec.ml,
   the retained seed codec that tests and the wire smoke compare
   against. *)

type encoder = { mutable buf : Bytes.t; mutable len : int }

external set16u : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external set32u : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external get16u : string -> int -> int = "%caml_string_get16u"
external get32u : string -> int -> int32 = "%caml_string_get32u"
external get64u : string -> int -> int64 = "%caml_string_get64u"
external swap16 : int -> int = "%bswap16"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

let be16 v = if Sys.big_endian then v else swap16 v
let be32 v = if Sys.big_endian then v else swap32 v
let be64 v = if Sys.big_endian then v else swap64 v
let initial_capacity = 256
let make () = { buf = Bytes.create initial_capacity; len = 0 }
let encoder () = make ()
let reset e = e.len <- 0
let length e = e.len
let to_string e = Bytes.sub_string e.buf 0 e.len

let grow e need =
  let cap = ref (Bytes.length e.buf * 2) in
  while need > !cap do
    cap := !cap * 2
  done;
  let nb = Bytes.create !cap in
  Bytes.blit e.buf 0 nb 0 e.len;
  e.buf <- nb

let ensure e n =
  let need = e.len + n in
  if need > Bytes.length e.buf then grow e need

let u8 e v =
  if v < 0 || v > 0xff then invalid_arg "Codec.u8";
  ensure e 1;
  Bytes.unsafe_set e.buf e.len (Char.unsafe_chr v);
  e.len <- e.len + 1

let u16 e v =
  if v < 0 || v > 0xffff then invalid_arg "Codec.u16";
  ensure e 2;
  set16u e.buf e.len (be16 v);
  e.len <- e.len + 2

let u32 e v =
  if v < 0 || v > 0xffffffff then invalid_arg "Codec.u32";
  ensure e 4;
  (* [Int32.of_int] wraps: values in [2^31, 2^32) land on the same bit
     pattern a true u32 store would produce *)
  set32u e.buf e.len (be32 (Int32.of_int v));
  e.len <- e.len + 4

let u64 e v =
  ensure e 8;
  set64u e.buf e.len (be64 v);
  e.len <- e.len + 8

let int_as_u64 e v =
  if v < 0 then invalid_arg "Codec.int_as_u64";
  u64 e (Int64.of_int v)

let bool e b = u8 e (if b then 1 else 0)

let raw e s =
  let n = String.length s in
  ensure e n;
  Bytes.blit_string s 0 e.buf e.len n;
  e.len <- e.len + n

let raw_sub e s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then invalid_arg "Codec.raw_sub";
  ensure e len;
  Bytes.blit_string s pos e.buf e.len len;
  e.len <- e.len + len

let bytes e s =
  u32 e (String.length s);
  raw e s

let list item e xs =
  u32 e (List.length xs);
  List.iter (item e) xs

let option item e = function
  | None -> u8 e 0
  | Some v ->
      u8 e 1;
      item e v

(* ---------- encoder pool ---------- *)

(* Per-domain free list: client verification fans encodes across
   Worm_util.Pool domains, so a global stack would race. DLS keeps the
   hot path lock-free; the Atomic counters only aggregate stats. *)
let pool_key : encoder list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let pool_reused = Atomic.make 0
let pool_fresh = Atomic.make 0
let max_pooled = 8
let max_retained_bytes = 1 lsl 16

type pool_stats = { pool_reused : int; pool_fresh : int }

let pool_stats () = { pool_reused = Atomic.get pool_reused; pool_fresh = Atomic.get pool_fresh }

let with_encoder f =
  let free = Domain.DLS.get pool_key in
  let e =
    match !free with
    | e :: rest ->
        free := rest;
        Atomic.incr pool_reused;
        e
    | [] ->
        Atomic.incr pool_fresh;
        make ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* don't retain giant buffers, and reset so a partial encode
         (range-check raise) can't leak into the next borrow *)
      if Bytes.length e.buf <= max_retained_bytes && List.length !free < max_pooled then begin
        e.len <- 0;
        free := e :: !free
      end)
    (fun () -> f e)

let encode enc v =
  with_encoder (fun e ->
      enc e v;
      to_string e)

let encoded_length enc v =
  with_encoder (fun e ->
      enc e v;
      e.len)

(* ---------- decoder ---------- *)

(* [limit], not [String.length input]: a decoder can be a window over a
   larger buffer (slices, framed sub-messages) without copying it out. *)
type decoder = { input : string; mutable pos : int; limit : int }

exception Truncated
exception Malformed of string

let decoder input = { input; pos = 0; limit = String.length input }

let decoder_sub input ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length input - len then invalid_arg "Codec.decoder_sub";
  { input; pos; limit = pos + len }

let remaining d = d.limit - d.pos

let take d n =
  if remaining d < n then raise Truncated;
  let pos = d.pos in
  d.pos <- pos + n;
  pos

let read_u8 d =
  let pos = take d 1 in
  Char.code (String.unsafe_get d.input pos)

let read_u16 d =
  let pos = take d 2 in
  be16 (get16u d.input pos)

let read_u32 d =
  let pos = take d 4 in
  Int32.to_int (be32 (get32u d.input pos)) land 0xffffffff

let read_u64 d =
  let pos = take d 8 in
  be64 (get64u d.input pos)

let read_int_as_u64 d =
  let v = read_u64 d in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Malformed "int_as_u64 out of range");
  Int64.to_int v

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "bad bool tag %d" n))

type slice = { base : string; pos : int; len : int }

let read_bytes_slice d =
  let n = read_u32 d in
  let pos = take d n in
  { base = d.input; pos; len = n }

let read_bytes d =
  let s = read_bytes_slice d in
  String.sub s.base s.pos s.len

let slice_string s = String.sub s.base s.pos s.len
let slice_decoder s = { input = s.base; pos = s.pos; limit = s.pos + s.len }

let read_list item d =
  let n = read_u32 d in
  List.init n (fun _ -> item d)

let read_option item d =
  match read_u8 d with
  | 0 -> None
  | 1 -> Some (item d)
  | n -> raise (Malformed (Printf.sprintf "bad option tag %d" n))

let expect_end d = if remaining d <> 0 then raise (Malformed "trailing bytes")

let run_decoder dec d =
  match
    let v = dec d in
    expect_end d;
    v
  with
  | v -> Ok v
  | exception Truncated -> Error "truncated input"
  | exception Malformed msg -> Error ("malformed input: " ^ msg)

let decode dec s = run_decoder dec (decoder s)
let decode_sub dec s ~pos ~len = run_decoder dec (decoder_sub s ~pos ~len)
