(* Bounded map with least-recently-used eviction. Lookups stamp a
   monotonic tick; inserts over capacity evict the smallest stamp with a
   linear scan. Capacities here are small (hundreds) and misses are
   orders of magnitude dearer than a scan (an RSA verification), so the
   O(capacity) eviction is the right trade against a linked-list LRU's
   per-node overhead. Not domain-safe: callers wrap with their own
   mutex when shared. *)

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, 'v * int ref) Hashtbl.t;
  mutable tick : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity; tbl = Hashtbl.create (max 16 capacity); tick = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl

let touch t stamp =
  t.tick <- t.tick + 1;
  stamp := t.tick

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some (v, stamp) ->
      touch t stamp;
      Some v
  | None -> None

let mem t k = Hashtbl.mem t.tbl k

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun k (_, stamp) acc ->
        match acc with
        | Some (_, best) when best <= !stamp -> acc
        | _ -> Some (k, !stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) -> Hashtbl.remove t.tbl k
  | None -> ()

let put t k v =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.tbl k with
    | Some _ -> Hashtbl.remove t.tbl k
    | None -> if Hashtbl.length t.tbl >= t.capacity then evict_oldest t);
    t.tick <- t.tick + 1;
    Hashtbl.add t.tbl k (v, ref t.tick)
  end

let remove t k = Hashtbl.remove t.tbl k
let clear t = Hashtbl.reset t.tbl
