(** Deterministic binary serialization.

    All multi-byte integers are big-endian. Variable-length fields are
    length-prefixed. Encodings are canonical: a value has exactly one
    encoding, so encodings can be hashed and signed directly.

    The implementation is the zero-copy wire core: encoders write into
    a growable preallocated [Bytes] with unsafe big-endian word stores
    and can be reset and reused (a small per-domain pool backs
    {!with_encoder}/{!encode}); decoders can expose length-prefixed
    fields as {!slice} views over the input instead of [String.sub]
    copies, feeding the [feed_sub]/[digest_sub] zero-copy hash API.
    The byte format is frozen — [test/support/ref_codec.ml] keeps the
    original implementation as the identity oracle. *)

type encoder
(** Mutable accumulator for an encoding in progress. *)

val encoder : unit -> encoder
(** A fresh, unpooled encoder, for long-lived accumulators. *)

val reset : encoder -> unit
(** Forget the contents; keeps the underlying buffer for reuse. *)

val length : encoder -> int
(** Bytes written so far. *)

val to_string : encoder -> string

val u8 : encoder -> int -> unit
(** @raise Invalid_argument if outside [0, 255]. *)

val u16 : encoder -> int -> unit
(** @raise Invalid_argument if outside [0, 65535]. *)

val u32 : encoder -> int -> unit
(** @raise Invalid_argument if outside [0, 2{^32}-1]. *)

val u64 : encoder -> int64 -> unit
val int_as_u64 : encoder -> int -> unit
(** Non-negative [int] written as u64. @raise Invalid_argument if negative. *)

val bool : encoder -> bool -> unit
val bytes : encoder -> string -> unit
(** Length-prefixed (u32) byte string. *)

val raw : encoder -> string -> unit
(** Append bytes verbatim, no length prefix — for splicing fragments
    that are already canonical encodings (the encode-once memo path). *)

val raw_sub : encoder -> string -> pos:int -> len:int -> unit
(** [raw] of a substring, without materialising it.
    @raise Invalid_argument if the range is outside [s]. *)

val list : (encoder -> 'a -> unit) -> encoder -> 'a list -> unit
(** u32 count followed by the elements. *)

val option : (encoder -> 'a -> unit) -> encoder -> 'a option -> unit

val with_encoder : (encoder -> 'a) -> 'a
(** Borrow a pooled per-domain encoder, reset and ready; it returns to
    the pool when [f] finishes (exception-safe). Nesting borrows is
    fine — each gets its own encoder. *)

type pool_stats = { pool_reused : int; pool_fresh : int }

val pool_stats : unit -> pool_stats
(** Aggregate borrow counters across all domains since program start. *)

type decoder
(** Read cursor over an encoded string (or a window of one). *)

exception Truncated
(** Raised when a read runs past the end of the input. *)

exception Malformed of string
(** Raised on structurally invalid input (e.g. a bad bool tag). *)

val decoder : string -> decoder

val decoder_sub : string -> pos:int -> len:int -> decoder
(** Cursor over a window of [s], no copy.
    @raise Invalid_argument if the range is outside [s]. *)

val remaining : decoder -> int

val read_u8 : decoder -> int
val read_u16 : decoder -> int
val read_u32 : decoder -> int
val read_u64 : decoder -> int64
val read_int_as_u64 : decoder -> int
val read_bool : decoder -> bool
val read_bytes : decoder -> string

type slice = private { base : string; pos : int; len : int }
(** A zero-copy view of a length-prefixed field inside a decoder's
    input. Valid as long as the underlying string — strings are
    immutable, so slices never dangle. *)

val read_bytes_slice : decoder -> slice
(** Like {!read_bytes} but returns the view instead of a copy — feed it
    to [Sha256.feed_sub]/[digest_sub], {!raw_sub}, or {!slice_decoder}. *)

val slice_string : slice -> string
(** Materialise the slice (one [String.sub]). *)

val slice_decoder : slice -> decoder
(** Decode a framed sub-message in place. *)

val read_list : (decoder -> 'a) -> decoder -> 'a list
val read_option : (decoder -> 'a) -> decoder -> 'a option

val expect_end : decoder -> unit
(** @raise Malformed if input bytes remain. *)

val encode : (encoder -> 'a -> unit) -> 'a -> string
(** [encode enc v] runs [enc] on a pooled encoder and returns the bytes. *)

val encoded_length : (encoder -> 'a -> unit) -> 'a -> int
(** Wire length of [encode enc v] without materialising the string —
    the event server charges Netsim by length only. *)

val decode : (decoder -> 'a) -> string -> ('a, string) result
(** [decode dec s] runs [dec], requiring all input to be consumed. *)

val decode_sub : (decoder -> 'a) -> string -> pos:int -> len:int -> ('a, string) result
(** {!decode} over a window of [s], no copy. *)
