(** Bounded key-value map with least-recently-used eviction.

    Backs the client's verified-signature memo: epoch-stable signatures
    (current bound, base bound, deletion windows, per-SN deletion
    proofs) are verified once and remembered, so a read-heavy client
    pays the public-key cost once per epoch instead of once per read.

    A capacity of 0 is legal and makes {!put} a no-op — the natural
    spelling of "cache disabled". Eviction is an O(capacity) scan,
    deliberate at the small capacities used here (see the .ml note).

    Not domain-safe; callers sharing an Lru across domains must guard
    it with their own mutex. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** @raise Invalid_argument on a negative capacity. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, evicting the least-recently-used entry when at
    capacity. No-op when capacity is 0. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit
