(* Fixed-size domain pool over the OCaml 5 stdlib (Domain + Mutex +
   Condition only; no external scheduler). Workers block on a shared
   task queue; a submitting domain also drains the queue while it waits,
   so a pool is never slower than running the work inline. *)

type task = unit -> unit

type t = {
  size : int;  (* worker domains + the submitting domain *)
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains a task or on shutdown *)
  queue : task Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
}

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopped do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue && t.stopped then Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ?domains () =
  let size =
    match domains with
    | None -> recommended_domains ()
    | Some d when d < 1 -> invalid_arg "Pool.create: need at least one domain"
    | Some d -> d
  in
  let t =
    { size; mutex = Mutex.create (); work = Condition.create (); queue = Queue.create ();
      workers = []; stopped = false }
  in
  (* size - 1 workers: the domain that submits a batch participates in
     draining it, so [size] domains compute in parallel. *)
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One batch of chunk tasks: completion is tracked under the pool mutex
   so the submitter can both help drain the queue and sleep once it
   empties. The first exception wins and is re-raised on the submitting
   domain after every chunk has finished. *)
type batch = { mutable pending : int; done_ : Condition.t; mutable failure : exn option }

let submit_batch t thunks =
  let n = List.length thunks in
  let b = { pending = n; done_ = Condition.create (); failure = None } in
  let wrap thunk () =
    (try thunk () with e -> Mutex.lock t.mutex;
                           (if b.failure = None then b.failure <- Some e);
                           Mutex.unlock t.mutex);
    Mutex.lock t.mutex;
    b.pending <- b.pending - 1;
    if b.pending = 0 then Condition.broadcast b.done_;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: submit on a shut-down pool"
  end;
  List.iter (fun thunk -> Queue.push (wrap thunk) t.queue) thunks;
  Condition.broadcast t.work;
  (* Help: run queued tasks (ours or another submitter's) until our
     batch completes. Tasks never block on other tasks, so draining the
     queue from here cannot deadlock. *)
  let rec help () =
    if b.pending > 0 then begin
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex;
          help ()
      | None ->
          if b.pending > 0 then begin
            Condition.wait b.done_ t.mutex;
            help ()
          end
    end
  in
  help ();
  let failure = b.failure in
  Mutex.unlock t.mutex;
  match failure with
  | Some e -> raise e
  | None -> ()

(* Split [0, n) into at most [chunks] contiguous ranges of near-equal
   length. *)
let ranges ~n ~chunks =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and extra = n mod chunks in
  List.init chunks (fun i ->
      let lo = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (lo, lo + len))

let parallel_for t ~n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    (* More chunks than domains so uneven per-item cost load-balances. *)
    let thunks =
      List.map
        (fun (lo, hi) () ->
          for i = lo to hi - 1 do
            f i
          done)
        (ranges ~n ~chunks:(t.size * 4))
    in
    submit_batch t thunks
  end

let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t ~n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index was written *))
      results
  end

let map_list t f l = Array.to_list (parallel_map t f (Array.of_list l))
