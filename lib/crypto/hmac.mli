(** HMAC (RFC 2104) over any of the hashes in this library.

    HMACs back the paper's fastest deferred-witnessing mode (§4.3): during
    bursts the SCPU MACs records with an internal key instead of signing,
    then upgrades to real signatures during idle periods.

    The implementation is streaming: the inner and outer key pads are
    precomputed and fed through the hash contexts directly, so MACing
    never concatenates pad + message into a fresh string. *)

module type HASH = sig
  type ctx

  val digest_size : int
  val block_size : int
  val init : unit -> ctx
  val feed : ctx -> string -> unit
  val feed_sub : ctx -> string -> pos:int -> len:int -> unit
  val get : ctx -> string
  val digest : string -> string
end

module Make (H : HASH) : sig
  val mac : key:string -> string -> string
  val mac_parts : key:string -> string list -> string
  (** MAC of the concatenation of the parts, without concatenating. *)

  val mac_sub : key:string -> string -> pos:int -> len:int -> string
  (** MAC of a substring, fed zero-copy via {!HASH.feed_sub}. *)
end

val sha256 : key:string -> string -> string
(** HMAC-SHA-256; 32-byte output. *)

val sha256_parts : key:string -> string list -> string
val sha256_sub : key:string -> string -> pos:int -> len:int -> string

val sha1 : key:string -> string -> string
(** HMAC-SHA-1; 20-byte output. *)

val verify_sha256 : key:string -> msg:string -> mac:string -> bool
(** Timing-safe comparison against a freshly computed MAC. *)
