(** Arbitrary-precision natural numbers.

    Pure OCaml: little-endian arrays of 31-bit limbs. Values are
    canonical (no leading zero limbs), so structural equality of the
    underlying representation coincides with numeric equality.

    This is the bignum substrate for the RSA implementation — the sealed
    build environment ships no zarith, so the reproduction carries its
    own. Performance targets the paper's key sizes (512–2048 bits):
    schoolbook multiplication and Montgomery exponentiation. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Invalid_argument if the value exceeds [max_int]. *)

val to_int_opt : t -> int option

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** Truncated subtraction. @raise Invalid_argument if the result would
    be negative. *)

val pred : t -> t
(** @raise Invalid_argument on zero. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero. *)

val div : t -> t -> t
val modulo : t -> t -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val gcd : t -> t -> t

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [Some x] with [a * x = 1 (mod m)] when
    [gcd a m = 1], otherwise [None]. *)

type mont
(** Precomputed Montgomery context for a fixed odd modulus: the limb
    inverse, [R^2 mod m], and preallocated scratch buffers for the fused
    CIOS multiply / squaring inner loops. Building one costs a full
    division ([R^2 mod m]); cache it per key and pass it to {!mod_pow}
    to keep that cost off the signing hot path. A context's scratch is
    reused across calls, so a single context must not be used from two
    concurrent exponentiations (fine single-threaded). *)

val mont_init : t -> mont
(** @raise Invalid_argument if the modulus is zero or even. *)

val mont_clone : mont -> mont
(** A context over the same modulus sharing the precomputed constants
    but carrying fresh scratch buffers. Cloning is two small
    allocations, against the full division {!mont_init} pays — so a
    cache can hold one master context per modulus and hand each domain
    its own clone, keeping contexts single-threaded without re-running
    the setup. *)

val mont_modulus : mont -> t

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** Modular exponentiation. Uses Montgomery reduction for odd moduli and
    a generic square-and-multiply fallback otherwise. Builds a fresh
    Montgomery context per call — for repeated exponentiations under one
    modulus, build the context once and use {!mod_pow_ctx}.
    @raise Division_by_zero on a zero modulus. *)

val mod_pow_ctx : mont -> base:t -> exp:t -> t
(** [mod_pow_ctx ctx ~base ~exp] is [base^exp mod (mont_modulus ctx)]
    through the fused-CIOS fast path, with no per-call setup — the
    signing hot path for cached per-key contexts. *)

val mod_pow_generic : base:t -> exp:t -> modulus:t -> t
(** Reference square-and-multiply implementation (no Montgomery forms,
    any modulus). Slow; exposed as the cross-check oracle for the fused
    CIOS fast path. *)

val of_bytes_be : string -> t
(** Big-endian bytes to natural. The empty string is zero. *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding; zero encodes as the empty string. *)

val to_bytes_be_padded : len:int -> t -> string
(** Fixed-width big-endian encoding, zero-padded on the left.
    @raise Invalid_argument if the value needs more than [len] bytes. *)

val of_decimal : string -> t
(** @raise Invalid_argument on empty or non-digit input. *)

val to_decimal : t -> string
val pp : Format.formatter -> t -> unit
