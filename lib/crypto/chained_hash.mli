(** Incremental chained hash over a sequence of data blocks.

    The paper's datasig signs [Hash(data)] where the hash may be "a
    chained hash (or other incremental secure hashing)" — appending a
    block costs one compression pass over that block only, so the SCPU
    never rehashes the whole record when records are assembled from
    multiple physical blocks. *)

type t

val empty : t

val add : t -> string -> t
(** Absorb one data block. [add] is injective on block sequences:
    blocks are length-delimited inside the chain, so ["ab"+"c"] and
    ["a"+"bc"] chain to different values. *)

val add_sub : t -> string -> pos:int -> len:int -> t
(** [add_sub t s ~pos ~len] absorbs [s[pos .. pos+len-1]] as one block,
    feeding it zero-copy from the caller's buffer.
    @raise Invalid_argument on an out-of-bounds range. *)

val of_blocks : string list -> t
val value : t -> string
(** 32-byte chain value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
