(* Complete binary tree in an array: node 1 is the root, node i has
   children 2i and 2i+1; leaves occupy [capacity, 2*capacity). Leaf and
   interior hashes are domain-separated to rule out second-preimage
   splicing between levels. *)

type t = {
  cap : int;
  nodes : string array; (* 2*cap entries; index 0 unused *)
  present : bool array;
  leaves : string array; (* raw leaf data for [get] *)
  mutable hashes : int;
}

let empty_leaf_hash = Sha256.digest "worm:merkle:empty-leaf"
let leaf_hash data = Sha256.digest_parts [ "\x00"; data ]
let node_hash l r = Sha256.digest_parts [ "\x01"; l; r ]

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Merkle.create: non-positive capacity";
  let cap = pow2_at_least capacity 1 in
  let nodes = Array.make (2 * cap) "" in
  for i = cap to (2 * cap) - 1 do
    nodes.(i) <- empty_leaf_hash
  done;
  let t = { cap; nodes; present = Array.make cap false; leaves = Array.make cap ""; hashes = 0 } in
  for i = cap - 1 downto 1 do
    nodes.(i) <- node_hash nodes.(2 * i) nodes.((2 * i) + 1)
  done;
  (* Construction hashing is not charged to the update counter. *)
  t

(* Bulk build: one [digest_parts_many] fan-out per tree level, so the
   independent hashes of a level run across the domain pool. Like
   [create], construction hashing is not charged to the counter. *)
let of_leaves ?pool leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Merkle.of_leaves: no leaves";
  let cap = pow2_at_least n 1 in
  let nodes = Array.make (2 * cap) "" in
  let hashed = Sha256.digest_parts_many ?pool (Array.map (fun d -> [ "\x00"; d ]) leaves) in
  Array.blit hashed 0 nodes cap n;
  for i = cap + n to (2 * cap) - 1 do
    nodes.(i) <- empty_leaf_hash
  done;
  let width = ref (cap / 2) in
  while !width >= 1 do
    let w = !width in
    let parts =
      Array.init w (fun j ->
          let i = w + j in
          [ "\x01"; nodes.(2 * i); nodes.((2 * i) + 1) ])
    in
    let hashed = Sha256.digest_parts_many ?pool parts in
    Array.blit hashed 0 nodes w w;
    width := w / 2
  done;
  let present = Array.make cap false in
  for i = 0 to n - 1 do
    present.(i) <- true
  done;
  let stored = Array.make cap "" in
  Array.blit leaves 0 stored 0 n;
  { cap; nodes; present; leaves = stored; hashes = 0 }

let capacity t = t.cap
let root t = t.nodes.(1)

let check_index t i = if i < 0 || i >= t.cap then invalid_arg "Merkle: index out of range"

let set t i data =
  check_index t i;
  t.leaves.(i) <- data;
  t.present.(i) <- true;
  let node = ref (t.cap + i) in
  t.nodes.(!node) <- leaf_hash data;
  t.hashes <- t.hashes + 1;
  while !node > 1 do
    node := !node / 2;
    t.nodes.(!node) <- node_hash t.nodes.(2 * !node) t.nodes.((2 * !node) + 1);
    t.hashes <- t.hashes + 1
  done

let get t i =
  check_index t i;
  if t.present.(i) then Some t.leaves.(i) else None

let proof t i =
  check_index t i;
  let rec up node acc = if node <= 1 then List.rev acc else up (node / 2) (t.nodes.(node lxor 1) :: acc) in
  up (t.cap + i) []

let verify ~root ~capacity ~index ~leaf_data ~proof =
  capacity > 0
  && index >= 0
  && index < capacity
  &&
  let rec climb node h = function
    | [] -> node = 1 && Worm_util.Ct.equal h root
    | sib :: rest ->
        let h' = if node land 1 = 0 then node_hash h sib else node_hash sib h in
        climb (node / 2) h' rest
  in
  climb (capacity + index) (leaf_hash leaf_data) proof

let hash_count t = t.hashes
let reset_hash_count t = t.hashes <- 0
