type t = { mutable k : string; mutable v : string }

let hmac = Hmac.sha256

let update t data =
  t.k <- Hmac.sha256_parts ~key:t.k [ t.v; "\x00"; data ];
  t.v <- hmac ~key:t.k t.v;
  if String.length data > 0 then begin
    t.k <- Hmac.sha256_parts ~key:t.k [ t.v; "\x01"; data ];
    t.v <- hmac ~key:t.k t.v
  end

let create ~seed =
  let t = { k = String.make 32 '\x00'; v = String.make 32 '\x01' } in
  update t seed;
  t

let reseed t entropy = update t entropy

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- hmac ~key:t.k t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let byte t = Char.code (generate t 1).[0]

let uint64 t =
  let s = generate t 8 in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v

let int_below t bound =
  if bound <= 0 then invalid_arg "Drbg.int_below: non-positive bound";
  (* Rejection sampling over 62-bit draws keeps the result unbiased. *)
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (uint64 t) 2) in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let nat_bits t bits =
  if bits < 0 then invalid_arg "Drbg.nat_bits: negative";
  if bits = 0 then Nat.zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let s = Bytes.of_string (generate t nbytes) in
    let extra = (nbytes * 8) - bits in
    if extra > 0 then Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) land (0xff lsr extra)));
    Nat.of_bytes_be (Bytes.unsafe_to_string s)
  end

let nat_below t bound =
  if Nat.is_zero bound then invalid_arg "Drbg.nat_below: zero bound";
  let bits = Nat.bit_length bound in
  let rec draw () =
    let v = nat_bits t bits in
    if Nat.compare v bound < 0 then v else draw ()
  in
  draw ()

let split t ~label =
  let seed = generate t 32 ^ "|split|" ^ label in
  create ~seed
