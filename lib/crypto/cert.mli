(** Minimal public-key certificates.

    The paper assumes the SCPU's verification keys are certified "by a
    regulatory or general purpose certificate authority" and served to
    clients by the untrusted main CPU. A certificate binds a subject
    name and role to an RSA public key under the CA's signature; clients
    bootstrap trust from the CA key alone. *)

type role =
  | Scpu_signing  (** the SCPU's key s: metasig, datasig, window bounds *)
  | Scpu_deletion  (** the SCPU's key d: deletion proofs *)
  | Scpu_short_term  (** short-lived burst keys (§4.3) *)
  | Regulation_authority  (** litigation-hold credential issuer *)

val role_to_string : role -> string

type t = {
  subject : string;
  role : role;
  key : Rsa.public;
  not_before : int64;  (** virtual-clock nanoseconds *)
  not_after : int64;
  signature : string;  (** CA signature over the canonical body *)
}

val issue :
  ca:Rsa.secret -> subject:string -> role:role -> key:Rsa.public -> not_before:int64 -> not_after:int64 -> t

val verify : ca:Rsa.public -> now:int64 -> t -> bool
(** Checks the CA signature and the validity window. *)

val encode : Worm_util.Codec.encoder -> t -> unit

val encoded_size : t -> int
(** Byte length of [encode]'s output, computed without encoding. *)

val decode : Worm_util.Codec.decoder -> t
val pp : Format.formatter -> t -> unit
