(* SHA-256 (FIPS 180-4) with an unsafe, fully-unrolled compression core.

   32-bit words are carried in native ints. Invariants of the unrolled
   core below (machine-generated, do not hand-edit round lines):
     - every *named* value (state a..h, schedule words w0..w63) is
       masked to 32 bits at the point it is bound;
     - intermediate sums/xors may carry garbage above bit 31 (additions
       only ever carry upward, so the low 32 bits stay exact) and are
       masked when stored;
     - only named (clean) values are ever shifted right, so no garbage
       is ever shifted down into the low 32 bits;
     - [String.unsafe_get] is sound because every caller of [compress]
       establishes [off + 64 <= String.length s] before the call.
   The message schedule is a 16-word rolling window, fully unrolled:
   w16..w63 are computed just-in-time between rounds so their live
   ranges stay short. *)

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable h5 : int;
  mutable h6 : int;
  mutable h7 : int;
  buf : Bytes.t; (* partial block; doubles as the padding block *)
  mutable buf_len : int;
  mutable total : int; (* bytes fed *)
  mutable finalized : bool;
}

let digest_size = 32
let block_size = 64

let init () =
  {
    h0 = 0x6a09e667;
    h1 = 0xbb67ae85;
    h2 = 0x3c6ef372;
    h3 = 0xa54ff53a;
    h4 = 0x510e527f;
    h5 = 0x9b05688c;
    h6 = 0x1f83d9ab;
    h7 = 0x5be0cd19;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
  }


(* Unaligned 32-bit load + byte swap compile to two instructions on
   amd64; the box/unbox pair is eliminated by the backend. Soundness of
   the unchecked load: callers of [compress] establish
   [off + 64 <= String.length s]. *)
external unsafe_get_32 : string -> int -> int32 = "%caml_string_get32u"
external swap32 : int32 -> int32 = "%bswap_int32"

let compress ctx s off =
  let w0 = swap32 (unsafe_get_32 s off) in
  let w1 = swap32 (unsafe_get_32 s (off + 4)) in
  let w2 = swap32 (unsafe_get_32 s (off + 8)) in
  let w3 = swap32 (unsafe_get_32 s (off + 12)) in
  let w4 = swap32 (unsafe_get_32 s (off + 16)) in
  let w5 = swap32 (unsafe_get_32 s (off + 20)) in
  let w6 = swap32 (unsafe_get_32 s (off + 24)) in
  let w7 = swap32 (unsafe_get_32 s (off + 28)) in
  let w8 = swap32 (unsafe_get_32 s (off + 32)) in
  let w9 = swap32 (unsafe_get_32 s (off + 36)) in
  let w10 = swap32 (unsafe_get_32 s (off + 40)) in
  let w11 = swap32 (unsafe_get_32 s (off + 44)) in
  let w12 = swap32 (unsafe_get_32 s (off + 48)) in
  let w13 = swap32 (unsafe_get_32 s (off + 52)) in
  let w14 = swap32 (unsafe_get_32 s (off + 56)) in
  let w15 = swap32 (unsafe_get_32 s (off + 60)) in
  let a = Int32.of_int ctx.h0 in
  let b = Int32.of_int ctx.h1 in
  let c = Int32.of_int ctx.h2 in
  let d = Int32.of_int ctx.h3 in
  let e = Int32.of_int ctx.h4 in
  let f = Int32.of_int ctx.h5 in
  let g = Int32.of_int ctx.h6 in
  let h = Int32.of_int ctx.h7 in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0x428a2f98l w0))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0x71374491l w1))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0xb5c0fbcfl w2))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0xe9b5dba5l w3))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x3956c25bl w4))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0x59f111f1l w5))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0x923f82a4l w6))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0xab1c5ed5l w7))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0xd807aa98l w8))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0x12835b01l w9))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x243185bel w10))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x550c7dc3l w11))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x72be5d74l w12))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0x80deb1fel w13))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0x9bdc06a7l w14))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0xc19bf174l w15))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let w0 = (Int32.add (Int32.add w0 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 7) (Int32.shift_left w1 25)) (Int32.logor (Int32.shift_right_logical w1 18) (Int32.shift_left w1 14))) (Int32.shift_right_logical w1 3))) (Int32.add w9 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 17) (Int32.shift_left w14 15)) (Int32.logor (Int32.shift_right_logical w14 19) (Int32.shift_left w14 13))) (Int32.shift_right_logical w14 10)))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0xe49b69c1l w0))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let w1 = (Int32.add (Int32.add w1 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 7) (Int32.shift_left w2 25)) (Int32.logor (Int32.shift_right_logical w2 18) (Int32.shift_left w2 14))) (Int32.shift_right_logical w2 3))) (Int32.add w10 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 17) (Int32.shift_left w15 15)) (Int32.logor (Int32.shift_right_logical w15 19) (Int32.shift_left w15 13))) (Int32.shift_right_logical w15 10)))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0xefbe4786l w1))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let w2 = (Int32.add (Int32.add w2 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 7) (Int32.shift_left w3 25)) (Int32.logor (Int32.shift_right_logical w3 18) (Int32.shift_left w3 14))) (Int32.shift_right_logical w3 3))) (Int32.add w11 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w0 17) (Int32.shift_left w0 15)) (Int32.logor (Int32.shift_right_logical w0 19) (Int32.shift_left w0 13))) (Int32.shift_right_logical w0 10)))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x0fc19dc6l w2))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let w3 = (Int32.add (Int32.add w3 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 7) (Int32.shift_left w4 25)) (Int32.logor (Int32.shift_right_logical w4 18) (Int32.shift_left w4 14))) (Int32.shift_right_logical w4 3))) (Int32.add w12 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 17) (Int32.shift_left w1 15)) (Int32.logor (Int32.shift_right_logical w1 19) (Int32.shift_left w1 13))) (Int32.shift_right_logical w1 10)))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x240ca1ccl w3))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let w4 = (Int32.add (Int32.add w4 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 7) (Int32.shift_left w5 25)) (Int32.logor (Int32.shift_right_logical w5 18) (Int32.shift_left w5 14))) (Int32.shift_right_logical w5 3))) (Int32.add w13 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 17) (Int32.shift_left w2 15)) (Int32.logor (Int32.shift_right_logical w2 19) (Int32.shift_left w2 13))) (Int32.shift_right_logical w2 10)))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x2de92c6fl w4))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let w5 = (Int32.add (Int32.add w5 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 7) (Int32.shift_left w6 25)) (Int32.logor (Int32.shift_right_logical w6 18) (Int32.shift_left w6 14))) (Int32.shift_right_logical w6 3))) (Int32.add w14 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 17) (Int32.shift_left w3 15)) (Int32.logor (Int32.shift_right_logical w3 19) (Int32.shift_left w3 13))) (Int32.shift_right_logical w3 10)))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0x4a7484aal w5))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let w6 = (Int32.add (Int32.add w6 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 7) (Int32.shift_left w7 25)) (Int32.logor (Int32.shift_right_logical w7 18) (Int32.shift_left w7 14))) (Int32.shift_right_logical w7 3))) (Int32.add w15 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 17) (Int32.shift_left w4 15)) (Int32.logor (Int32.shift_right_logical w4 19) (Int32.shift_left w4 13))) (Int32.shift_right_logical w4 10)))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0x5cb0a9dcl w6))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let w7 = (Int32.add (Int32.add w7 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 7) (Int32.shift_left w8 25)) (Int32.logor (Int32.shift_right_logical w8 18) (Int32.shift_left w8 14))) (Int32.shift_right_logical w8 3))) (Int32.add w0 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 17) (Int32.shift_left w5 15)) (Int32.logor (Int32.shift_right_logical w5 19) (Int32.shift_left w5 13))) (Int32.shift_right_logical w5 10)))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0x76f988dal w7))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let w8 = (Int32.add (Int32.add w8 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 7) (Int32.shift_left w9 25)) (Int32.logor (Int32.shift_right_logical w9 18) (Int32.shift_left w9 14))) (Int32.shift_right_logical w9 3))) (Int32.add w1 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 17) (Int32.shift_left w6 15)) (Int32.logor (Int32.shift_right_logical w6 19) (Int32.shift_left w6 13))) (Int32.shift_right_logical w6 10)))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0x983e5152l w8))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let w9 = (Int32.add (Int32.add w9 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 7) (Int32.shift_left w10 25)) (Int32.logor (Int32.shift_right_logical w10 18) (Int32.shift_left w10 14))) (Int32.shift_right_logical w10 3))) (Int32.add w2 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 17) (Int32.shift_left w7 15)) (Int32.logor (Int32.shift_right_logical w7 19) (Int32.shift_left w7 13))) (Int32.shift_right_logical w7 10)))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0xa831c66dl w9))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let w10 = (Int32.add (Int32.add w10 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 7) (Int32.shift_left w11 25)) (Int32.logor (Int32.shift_right_logical w11 18) (Int32.shift_left w11 14))) (Int32.shift_right_logical w11 3))) (Int32.add w3 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 17) (Int32.shift_left w8 15)) (Int32.logor (Int32.shift_right_logical w8 19) (Int32.shift_left w8 13))) (Int32.shift_right_logical w8 10)))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0xb00327c8l w10))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let w11 = (Int32.add (Int32.add w11 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 7) (Int32.shift_left w12 25)) (Int32.logor (Int32.shift_right_logical w12 18) (Int32.shift_left w12 14))) (Int32.shift_right_logical w12 3))) (Int32.add w4 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 17) (Int32.shift_left w9 15)) (Int32.logor (Int32.shift_right_logical w9 19) (Int32.shift_left w9 13))) (Int32.shift_right_logical w9 10)))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0xbf597fc7l w11))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let w12 = (Int32.add (Int32.add w12 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 7) (Int32.shift_left w13 25)) (Int32.logor (Int32.shift_right_logical w13 18) (Int32.shift_left w13 14))) (Int32.shift_right_logical w13 3))) (Int32.add w5 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 17) (Int32.shift_left w10 15)) (Int32.logor (Int32.shift_right_logical w10 19) (Int32.shift_left w10 13))) (Int32.shift_right_logical w10 10)))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0xc6e00bf3l w12))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let w13 = (Int32.add (Int32.add w13 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 7) (Int32.shift_left w14 25)) (Int32.logor (Int32.shift_right_logical w14 18) (Int32.shift_left w14 14))) (Int32.shift_right_logical w14 3))) (Int32.add w6 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 17) (Int32.shift_left w11 15)) (Int32.logor (Int32.shift_right_logical w11 19) (Int32.shift_left w11 13))) (Int32.shift_right_logical w11 10)))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0xd5a79147l w13))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let w14 = (Int32.add (Int32.add w14 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 7) (Int32.shift_left w15 25)) (Int32.logor (Int32.shift_right_logical w15 18) (Int32.shift_left w15 14))) (Int32.shift_right_logical w15 3))) (Int32.add w7 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 17) (Int32.shift_left w12 15)) (Int32.logor (Int32.shift_right_logical w12 19) (Int32.shift_left w12 13))) (Int32.shift_right_logical w12 10)))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0x06ca6351l w14))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let w15 = (Int32.add (Int32.add w15 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w0 7) (Int32.shift_left w0 25)) (Int32.logor (Int32.shift_right_logical w0 18) (Int32.shift_left w0 14))) (Int32.shift_right_logical w0 3))) (Int32.add w8 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 17) (Int32.shift_left w13 15)) (Int32.logor (Int32.shift_right_logical w13 19) (Int32.shift_left w13 13))) (Int32.shift_right_logical w13 10)))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0x14292967l w15))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let w0 = (Int32.add (Int32.add w0 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 7) (Int32.shift_left w1 25)) (Int32.logor (Int32.shift_right_logical w1 18) (Int32.shift_left w1 14))) (Int32.shift_right_logical w1 3))) (Int32.add w9 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 17) (Int32.shift_left w14 15)) (Int32.logor (Int32.shift_right_logical w14 19) (Int32.shift_left w14 13))) (Int32.shift_right_logical w14 10)))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0x27b70a85l w0))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let w1 = (Int32.add (Int32.add w1 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 7) (Int32.shift_left w2 25)) (Int32.logor (Int32.shift_right_logical w2 18) (Int32.shift_left w2 14))) (Int32.shift_right_logical w2 3))) (Int32.add w10 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 17) (Int32.shift_left w15 15)) (Int32.logor (Int32.shift_right_logical w15 19) (Int32.shift_left w15 13))) (Int32.shift_right_logical w15 10)))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0x2e1b2138l w1))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let w2 = (Int32.add (Int32.add w2 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 7) (Int32.shift_left w3 25)) (Int32.logor (Int32.shift_right_logical w3 18) (Int32.shift_left w3 14))) (Int32.shift_right_logical w3 3))) (Int32.add w11 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w0 17) (Int32.shift_left w0 15)) (Int32.logor (Int32.shift_right_logical w0 19) (Int32.shift_left w0 13))) (Int32.shift_right_logical w0 10)))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x4d2c6dfcl w2))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let w3 = (Int32.add (Int32.add w3 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 7) (Int32.shift_left w4 25)) (Int32.logor (Int32.shift_right_logical w4 18) (Int32.shift_left w4 14))) (Int32.shift_right_logical w4 3))) (Int32.add w12 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 17) (Int32.shift_left w1 15)) (Int32.logor (Int32.shift_right_logical w1 19) (Int32.shift_left w1 13))) (Int32.shift_right_logical w1 10)))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x53380d13l w3))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let w4 = (Int32.add (Int32.add w4 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 7) (Int32.shift_left w5 25)) (Int32.logor (Int32.shift_right_logical w5 18) (Int32.shift_left w5 14))) (Int32.shift_right_logical w5 3))) (Int32.add w13 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 17) (Int32.shift_left w2 15)) (Int32.logor (Int32.shift_right_logical w2 19) (Int32.shift_left w2 13))) (Int32.shift_right_logical w2 10)))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x650a7354l w4))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let w5 = (Int32.add (Int32.add w5 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 7) (Int32.shift_left w6 25)) (Int32.logor (Int32.shift_right_logical w6 18) (Int32.shift_left w6 14))) (Int32.shift_right_logical w6 3))) (Int32.add w14 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 17) (Int32.shift_left w3 15)) (Int32.logor (Int32.shift_right_logical w3 19) (Int32.shift_left w3 13))) (Int32.shift_right_logical w3 10)))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0x766a0abbl w5))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let w6 = (Int32.add (Int32.add w6 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 7) (Int32.shift_left w7 25)) (Int32.logor (Int32.shift_right_logical w7 18) (Int32.shift_left w7 14))) (Int32.shift_right_logical w7 3))) (Int32.add w15 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 17) (Int32.shift_left w4 15)) (Int32.logor (Int32.shift_right_logical w4 19) (Int32.shift_left w4 13))) (Int32.shift_right_logical w4 10)))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0x81c2c92el w6))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let w7 = (Int32.add (Int32.add w7 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 7) (Int32.shift_left w8 25)) (Int32.logor (Int32.shift_right_logical w8 18) (Int32.shift_left w8 14))) (Int32.shift_right_logical w8 3))) (Int32.add w0 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 17) (Int32.shift_left w5 15)) (Int32.logor (Int32.shift_right_logical w5 19) (Int32.shift_left w5 13))) (Int32.shift_right_logical w5 10)))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0x92722c85l w7))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let w8 = (Int32.add (Int32.add w8 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 7) (Int32.shift_left w9 25)) (Int32.logor (Int32.shift_right_logical w9 18) (Int32.shift_left w9 14))) (Int32.shift_right_logical w9 3))) (Int32.add w1 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 17) (Int32.shift_left w6 15)) (Int32.logor (Int32.shift_right_logical w6 19) (Int32.shift_left w6 13))) (Int32.shift_right_logical w6 10)))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0xa2bfe8a1l w8))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let w9 = (Int32.add (Int32.add w9 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 7) (Int32.shift_left w10 25)) (Int32.logor (Int32.shift_right_logical w10 18) (Int32.shift_left w10 14))) (Int32.shift_right_logical w10 3))) (Int32.add w2 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 17) (Int32.shift_left w7 15)) (Int32.logor (Int32.shift_right_logical w7 19) (Int32.shift_left w7 13))) (Int32.shift_right_logical w7 10)))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0xa81a664bl w9))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let w10 = (Int32.add (Int32.add w10 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 7) (Int32.shift_left w11 25)) (Int32.logor (Int32.shift_right_logical w11 18) (Int32.shift_left w11 14))) (Int32.shift_right_logical w11 3))) (Int32.add w3 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 17) (Int32.shift_left w8 15)) (Int32.logor (Int32.shift_right_logical w8 19) (Int32.shift_left w8 13))) (Int32.shift_right_logical w8 10)))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0xc24b8b70l w10))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let w11 = (Int32.add (Int32.add w11 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 7) (Int32.shift_left w12 25)) (Int32.logor (Int32.shift_right_logical w12 18) (Int32.shift_left w12 14))) (Int32.shift_right_logical w12 3))) (Int32.add w4 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 17) (Int32.shift_left w9 15)) (Int32.logor (Int32.shift_right_logical w9 19) (Int32.shift_left w9 13))) (Int32.shift_right_logical w9 10)))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0xc76c51a3l w11))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let w12 = (Int32.add (Int32.add w12 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 7) (Int32.shift_left w13 25)) (Int32.logor (Int32.shift_right_logical w13 18) (Int32.shift_left w13 14))) (Int32.shift_right_logical w13 3))) (Int32.add w5 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 17) (Int32.shift_left w10 15)) (Int32.logor (Int32.shift_right_logical w10 19) (Int32.shift_left w10 13))) (Int32.shift_right_logical w10 10)))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0xd192e819l w12))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let w13 = (Int32.add (Int32.add w13 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 7) (Int32.shift_left w14 25)) (Int32.logor (Int32.shift_right_logical w14 18) (Int32.shift_left w14 14))) (Int32.shift_right_logical w14 3))) (Int32.add w6 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 17) (Int32.shift_left w11 15)) (Int32.logor (Int32.shift_right_logical w11 19) (Int32.shift_left w11 13))) (Int32.shift_right_logical w11 10)))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0xd6990624l w13))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let w14 = (Int32.add (Int32.add w14 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 7) (Int32.shift_left w15 25)) (Int32.logor (Int32.shift_right_logical w15 18) (Int32.shift_left w15 14))) (Int32.shift_right_logical w15 3))) (Int32.add w7 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 17) (Int32.shift_left w12 15)) (Int32.logor (Int32.shift_right_logical w12 19) (Int32.shift_left w12 13))) (Int32.shift_right_logical w12 10)))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0xf40e3585l w14))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let w15 = (Int32.add (Int32.add w15 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w0 7) (Int32.shift_left w0 25)) (Int32.logor (Int32.shift_right_logical w0 18) (Int32.shift_left w0 14))) (Int32.shift_right_logical w0 3))) (Int32.add w8 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 17) (Int32.shift_left w13 15)) (Int32.logor (Int32.shift_right_logical w13 19) (Int32.shift_left w13 13))) (Int32.shift_right_logical w13 10)))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0x106aa070l w15))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let w0 = (Int32.add (Int32.add w0 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 7) (Int32.shift_left w1 25)) (Int32.logor (Int32.shift_right_logical w1 18) (Int32.shift_left w1 14))) (Int32.shift_right_logical w1 3))) (Int32.add w9 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 17) (Int32.shift_left w14 15)) (Int32.logor (Int32.shift_right_logical w14 19) (Int32.shift_left w14 13))) (Int32.shift_right_logical w14 10)))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0x19a4c116l w0))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let w1 = (Int32.add (Int32.add w1 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 7) (Int32.shift_left w2 25)) (Int32.logor (Int32.shift_right_logical w2 18) (Int32.shift_left w2 14))) (Int32.shift_right_logical w2 3))) (Int32.add w10 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 17) (Int32.shift_left w15 15)) (Int32.logor (Int32.shift_right_logical w15 19) (Int32.shift_left w15 13))) (Int32.shift_right_logical w15 10)))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0x1e376c08l w1))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let w2 = (Int32.add (Int32.add w2 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 7) (Int32.shift_left w3 25)) (Int32.logor (Int32.shift_right_logical w3 18) (Int32.shift_left w3 14))) (Int32.shift_right_logical w3 3))) (Int32.add w11 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w0 17) (Int32.shift_left w0 15)) (Int32.logor (Int32.shift_right_logical w0 19) (Int32.shift_left w0 13))) (Int32.shift_right_logical w0 10)))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x2748774cl w2))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let w3 = (Int32.add (Int32.add w3 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 7) (Int32.shift_left w4 25)) (Int32.logor (Int32.shift_right_logical w4 18) (Int32.shift_left w4 14))) (Int32.shift_right_logical w4 3))) (Int32.add w12 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 17) (Int32.shift_left w1 15)) (Int32.logor (Int32.shift_right_logical w1 19) (Int32.shift_left w1 13))) (Int32.shift_right_logical w1 10)))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x34b0bcb5l w3))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let w4 = (Int32.add (Int32.add w4 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 7) (Int32.shift_left w5 25)) (Int32.logor (Int32.shift_right_logical w5 18) (Int32.shift_left w5 14))) (Int32.shift_right_logical w5 3))) (Int32.add w13 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 17) (Int32.shift_left w2 15)) (Int32.logor (Int32.shift_right_logical w2 19) (Int32.shift_left w2 13))) (Int32.shift_right_logical w2 10)))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x391c0cb3l w4))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let w5 = (Int32.add (Int32.add w5 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 7) (Int32.shift_left w6 25)) (Int32.logor (Int32.shift_right_logical w6 18) (Int32.shift_left w6 14))) (Int32.shift_right_logical w6 3))) (Int32.add w14 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 17) (Int32.shift_left w3 15)) (Int32.logor (Int32.shift_right_logical w3 19) (Int32.shift_left w3 13))) (Int32.shift_right_logical w3 10)))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0x4ed8aa4al w5))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let w6 = (Int32.add (Int32.add w6 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 7) (Int32.shift_left w7 25)) (Int32.logor (Int32.shift_right_logical w7 18) (Int32.shift_left w7 14))) (Int32.shift_right_logical w7 3))) (Int32.add w15 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 17) (Int32.shift_left w4 15)) (Int32.logor (Int32.shift_right_logical w4 19) (Int32.shift_left w4 13))) (Int32.shift_right_logical w4 10)))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0x5b9cca4fl w6))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let w7 = (Int32.add (Int32.add w7 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 7) (Int32.shift_left w8 25)) (Int32.logor (Int32.shift_right_logical w8 18) (Int32.shift_left w8 14))) (Int32.shift_right_logical w8 3))) (Int32.add w0 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 17) (Int32.shift_left w5 15)) (Int32.logor (Int32.shift_right_logical w5 19) (Int32.shift_left w5 13))) (Int32.shift_right_logical w5 10)))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0x682e6ff3l w7))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  let w8 = (Int32.add (Int32.add w8 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 7) (Int32.shift_left w9 25)) (Int32.logor (Int32.shift_right_logical w9 18) (Int32.shift_left w9 14))) (Int32.shift_right_logical w9 3))) (Int32.add w1 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 17) (Int32.shift_left w6 15)) (Int32.logor (Int32.shift_right_logical w6 19) (Int32.shift_left w6 13))) (Int32.shift_right_logical w6 10)))) in
  let t1 = (Int32.add (Int32.add h (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 6) (Int32.shift_left e 26)) (Int32.logor (Int32.shift_right_logical e 11) (Int32.shift_left e 21))) (Int32.logor (Int32.shift_right_logical e 25) (Int32.shift_left e 7)))) (Int32.add (Int32.logxor g (Int32.logand e (Int32.logxor f g))) (Int32.add 0x748f82eel w8))) in
  let d = Int32.add d t1 in
  let h = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 2) (Int32.shift_left a 30)) (Int32.logor (Int32.shift_right_logical a 13) (Int32.shift_left a 19))) (Int32.logor (Int32.shift_right_logical a 22) (Int32.shift_left a 10))) (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))))) in
  let w9 = (Int32.add (Int32.add w9 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 7) (Int32.shift_left w10 25)) (Int32.logor (Int32.shift_right_logical w10 18) (Int32.shift_left w10 14))) (Int32.shift_right_logical w10 3))) (Int32.add w2 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 17) (Int32.shift_left w7 15)) (Int32.logor (Int32.shift_right_logical w7 19) (Int32.shift_left w7 13))) (Int32.shift_right_logical w7 10)))) in
  let t1 = (Int32.add (Int32.add g (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 6) (Int32.shift_left d 26)) (Int32.logor (Int32.shift_right_logical d 11) (Int32.shift_left d 21))) (Int32.logor (Int32.shift_right_logical d 25) (Int32.shift_left d 7)))) (Int32.add (Int32.logxor f (Int32.logand d (Int32.logxor e f))) (Int32.add 0x78a5636fl w9))) in
  let c = Int32.add c t1 in
  let g = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 2) (Int32.shift_left h 30)) (Int32.logor (Int32.shift_right_logical h 13) (Int32.shift_left h 19))) (Int32.logor (Int32.shift_right_logical h 22) (Int32.shift_left h 10))) (Int32.logxor b (Int32.logand (Int32.logxor h b) (Int32.logxor a b))))) in
  let w10 = (Int32.add (Int32.add w10 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 7) (Int32.shift_left w11 25)) (Int32.logor (Int32.shift_right_logical w11 18) (Int32.shift_left w11 14))) (Int32.shift_right_logical w11 3))) (Int32.add w3 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 17) (Int32.shift_left w8 15)) (Int32.logor (Int32.shift_right_logical w8 19) (Int32.shift_left w8 13))) (Int32.shift_right_logical w8 10)))) in
  let t1 = (Int32.add (Int32.add f (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 6) (Int32.shift_left c 26)) (Int32.logor (Int32.shift_right_logical c 11) (Int32.shift_left c 21))) (Int32.logor (Int32.shift_right_logical c 25) (Int32.shift_left c 7)))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x84c87814l w10))) in
  let b = Int32.add b t1 in
  let f = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 2) (Int32.shift_left g 30)) (Int32.logor (Int32.shift_right_logical g 13) (Int32.shift_left g 19))) (Int32.logor (Int32.shift_right_logical g 22) (Int32.shift_left g 10))) (Int32.logxor a (Int32.logand (Int32.logxor g a) (Int32.logxor h a))))) in
  let w11 = (Int32.add (Int32.add w11 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 7) (Int32.shift_left w12 25)) (Int32.logor (Int32.shift_right_logical w12 18) (Int32.shift_left w12 14))) (Int32.shift_right_logical w12 3))) (Int32.add w4 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 17) (Int32.shift_left w9 15)) (Int32.logor (Int32.shift_right_logical w9 19) (Int32.shift_left w9 13))) (Int32.shift_right_logical w9 10)))) in
  let t1 = (Int32.add (Int32.add e (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 6) (Int32.shift_left b 26)) (Int32.logor (Int32.shift_right_logical b 11) (Int32.shift_left b 21))) (Int32.logor (Int32.shift_right_logical b 25) (Int32.shift_left b 7)))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x8cc70208l w11))) in
  let a = Int32.add a t1 in
  let e = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 2) (Int32.shift_left f 30)) (Int32.logor (Int32.shift_right_logical f 13) (Int32.shift_left f 19))) (Int32.logor (Int32.shift_right_logical f 22) (Int32.shift_left f 10))) (Int32.logxor h (Int32.logand (Int32.logxor f h) (Int32.logxor g h))))) in
  let w12 = (Int32.add (Int32.add w12 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 7) (Int32.shift_left w13 25)) (Int32.logor (Int32.shift_right_logical w13 18) (Int32.shift_left w13 14))) (Int32.shift_right_logical w13 3))) (Int32.add w5 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 17) (Int32.shift_left w10 15)) (Int32.logor (Int32.shift_right_logical w10 19) (Int32.shift_left w10 13))) (Int32.shift_right_logical w10 10)))) in
  let t1 = (Int32.add (Int32.add d (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical a 6) (Int32.shift_left a 26)) (Int32.logor (Int32.shift_right_logical a 11) (Int32.shift_left a 21))) (Int32.logor (Int32.shift_right_logical a 25) (Int32.shift_left a 7)))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x90befffal w12))) in
  let h = Int32.add h t1 in
  let d = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical e 2) (Int32.shift_left e 30)) (Int32.logor (Int32.shift_right_logical e 13) (Int32.shift_left e 19))) (Int32.logor (Int32.shift_right_logical e 22) (Int32.shift_left e 10))) (Int32.logxor g (Int32.logand (Int32.logxor e g) (Int32.logxor f g))))) in
  let w13 = (Int32.add (Int32.add w13 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 7) (Int32.shift_left w14 25)) (Int32.logor (Int32.shift_right_logical w14 18) (Int32.shift_left w14 14))) (Int32.shift_right_logical w14 3))) (Int32.add w6 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 17) (Int32.shift_left w11 15)) (Int32.logor (Int32.shift_right_logical w11 19) (Int32.shift_left w11 13))) (Int32.shift_right_logical w11 10)))) in
  let t1 = (Int32.add (Int32.add c (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical h 6) (Int32.shift_left h 26)) (Int32.logor (Int32.shift_right_logical h 11) (Int32.shift_left h 21))) (Int32.logor (Int32.shift_right_logical h 25) (Int32.shift_left h 7)))) (Int32.add (Int32.logxor b (Int32.logand h (Int32.logxor a b))) (Int32.add 0xa4506cebl w13))) in
  let g = Int32.add g t1 in
  let c = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical d 2) (Int32.shift_left d 30)) (Int32.logor (Int32.shift_right_logical d 13) (Int32.shift_left d 19))) (Int32.logor (Int32.shift_right_logical d 22) (Int32.shift_left d 10))) (Int32.logxor f (Int32.logand (Int32.logxor d f) (Int32.logxor e f))))) in
  let w14 = (Int32.add (Int32.add w14 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 7) (Int32.shift_left w15 25)) (Int32.logor (Int32.shift_right_logical w15 18) (Int32.shift_left w15 14))) (Int32.shift_right_logical w15 3))) (Int32.add w7 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 17) (Int32.shift_left w12 15)) (Int32.logor (Int32.shift_right_logical w12 19) (Int32.shift_left w12 13))) (Int32.shift_right_logical w12 10)))) in
  let t1 = (Int32.add (Int32.add b (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical g 6) (Int32.shift_left g 26)) (Int32.logor (Int32.shift_right_logical g 11) (Int32.shift_left g 21))) (Int32.logor (Int32.shift_right_logical g 25) (Int32.shift_left g 7)))) (Int32.add (Int32.logxor a (Int32.logand g (Int32.logxor h a))) (Int32.add 0xbef9a3f7l w14))) in
  let f = Int32.add f t1 in
  let b = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical c 2) (Int32.shift_left c 30)) (Int32.logor (Int32.shift_right_logical c 13) (Int32.shift_left c 19))) (Int32.logor (Int32.shift_right_logical c 22) (Int32.shift_left c 10))) (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))))) in
  let w15 = (Int32.add (Int32.add w15 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w0 7) (Int32.shift_left w0 25)) (Int32.logor (Int32.shift_right_logical w0 18) (Int32.shift_left w0 14))) (Int32.shift_right_logical w0 3))) (Int32.add w8 (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 17) (Int32.shift_left w13 15)) (Int32.logor (Int32.shift_right_logical w13 19) (Int32.shift_left w13 13))) (Int32.shift_right_logical w13 10)))) in
  let t1 = (Int32.add (Int32.add a (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical f 6) (Int32.shift_left f 26)) (Int32.logor (Int32.shift_right_logical f 11) (Int32.shift_left f 21))) (Int32.logor (Int32.shift_right_logical f 25) (Int32.shift_left f 7)))) (Int32.add (Int32.logxor h (Int32.logand f (Int32.logxor g h))) (Int32.add 0xc67178f2l w15))) in
  let e = Int32.add e t1 in
  let a = (Int32.add t1 (Int32.add (Int32.logxor (Int32.logxor (Int32.logor (Int32.shift_right_logical b 2) (Int32.shift_left b 30)) (Int32.logor (Int32.shift_right_logical b 13) (Int32.shift_left b 19))) (Int32.logor (Int32.shift_right_logical b 22) (Int32.shift_left b 10))) (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))))) in
  ctx.h0 <- (ctx.h0 + Int32.to_int a) land 0xFFFFFFFF;
  ctx.h1 <- (ctx.h1 + Int32.to_int b) land 0xFFFFFFFF;
  ctx.h2 <- (ctx.h2 + Int32.to_int c) land 0xFFFFFFFF;
  ctx.h3 <- (ctx.h3 + Int32.to_int d) land 0xFFFFFFFF;
  ctx.h4 <- (ctx.h4 + Int32.to_int e) land 0xFFFFFFFF;
  ctx.h5 <- (ctx.h5 + Int32.to_int f) land 0xFFFFFFFF;
  ctx.h6 <- (ctx.h6 + Int32.to_int g) land 0xFFFFFFFF;
  ctx.h7 <- (ctx.h7 + Int32.to_int h) land 0xFFFFFFFF

let feed_sub ctx s ~pos ~len =
  if ctx.finalized then invalid_arg "Sha256.feed_sub: context already finalized";
  if pos < 0 || len < 0 || pos > String.length s - len then invalid_arg "Sha256.feed_sub: out of bounds";
  ctx.total <- ctx.total + len;
  let p = ref pos in
  let stop = pos + len in
  if ctx.buf_len > 0 then begin
    let take = min (block_size - ctx.buf_len) len in
    Bytes.blit_string s !p ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    p := !p + take;
    if ctx.buf_len = block_size then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  while stop - !p >= block_size do
    compress ctx s !p;
    p := !p + block_size
  done;
  if !p < stop then begin
    Bytes.blit_string s !p ctx.buf 0 (stop - !p);
    ctx.buf_len <- stop - !p
  end

let feed ctx s =
  if ctx.finalized then invalid_arg "Sha256.feed: context already finalized";
  feed_sub ctx s ~pos:0 ~len:(String.length s)

(* Pad in place: ctx.buf always has room because buf_len < 64. *)
let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.get: context already finalized";
  ctx.finalized <- true;
  let total_bits = ctx.total * 8 in
  let b = ctx.buf in
  let n = ctx.buf_len in
  Bytes.unsafe_set b n '\x80';
  if n + 1 > 56 then begin
    Bytes.fill b (n + 1) (block_size - n - 1) '\000';
    compress ctx (Bytes.unsafe_to_string b) 0;
    Bytes.fill b 0 56 '\000'
  end
  else Bytes.fill b (n + 1) (56 - (n + 1)) '\000';
  for i = 0 to 7 do
    Bytes.unsafe_set b (56 + i) (Char.unsafe_chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx (Bytes.unsafe_to_string b) 0;
  ctx.buf_len <- 0

let word_be out off v =
  Bytes.unsafe_set out off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set out (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set out (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set out (off + 3) (Char.unsafe_chr (v land 0xff))

let digest_into ctx out ~pos =
  if pos < 0 || pos > Bytes.length out - digest_size then invalid_arg "Sha256.digest_into: out of bounds";
  finalize ctx;
  word_be out pos ctx.h0;
  word_be out (pos + 4) ctx.h1;
  word_be out (pos + 8) ctx.h2;
  word_be out (pos + 12) ctx.h3;
  word_be out (pos + 16) ctx.h4;
  word_be out (pos + 20) ctx.h5;
  word_be out (pos + 24) ctx.h6;
  word_be out (pos + 28) ctx.h7

let get ctx =
  let out = Bytes.create digest_size in
  digest_into ctx out ~pos:0;
  Bytes.unsafe_to_string out

let digest_sub s ~pos ~len =
  let ctx = init () in
  feed_sub ctx s ~pos ~len;
  get ctx

let digest s = digest_sub s ~pos:0 ~len:(String.length s)

let digest_parts parts =
  let ctx = init () in
  List.iter (fun s -> feed_sub ctx s ~pos:0 ~len:(String.length s)) parts;
  get ctx

(* Multi-buffer hashing: independent digests fan out over the domain
   pool; a 1-domain pool (or none) degrades to the sequential map. *)
let digest_many ?pool inputs =
  match pool with
  | Some p when Worm_util.Pool.size p > 1 && Array.length inputs > 1 -> Worm_util.Pool.parallel_map p digest inputs
  | _ -> Array.map digest inputs

let digest_parts_many ?pool inputs =
  match pool with
  | Some p when Worm_util.Pool.size p > 1 && Array.length inputs > 1 ->
      Worm_util.Pool.parallel_map p digest_parts inputs
  | _ -> Array.map digest_parts inputs

let hex_digest s = Worm_util.Hex.encode (digest s)
