(** RSA signatures, PKCS#1 v1.5 over SHA-256. Pure OCaml.

    The SCPU's two signing keys (s and d in the paper) are instances of
    {!secret}; clients verify with {!public}. Short-lived burst keys
    (§4.3) are simply smaller-modulus instances. *)

type public = { n : Nat.t; e : Nat.t }

type secret
(** Secret key with CRT acceleration parameters. The representation is
    abstract: holders of a {!secret} can sign, nothing else leaks. *)

val generate : Drbg.t -> bits:int -> secret
(** Generate a [bits]-bit modulus key pair with e = 65537.
    @raise Invalid_argument if [bits < 512] (PKCS#1 padding needs room). *)

val public_of : secret -> public
val modulus_bytes : public -> int

val sign : secret -> string -> string
(** [sign key msg] returns the PKCS#1 v1.5 signature over
    [SHA-256(msg)], as a modulus-width byte string. *)

val sign_batch : secret -> string list -> string list
(** [sign_batch key msgs] signs each message in order. Equivalent to
    [List.map (sign key) msgs] but hoists the per-key setup so burst
    witnessing and deferred-signature repayment pay it once. *)

val verify : public -> msg:string -> signature:string -> bool
(** Domain-safe: the per-key verification context cache keeps one
    master context per modulus behind a mutex and hands each domain its
    own clone, so concurrent verifies under one key never share
    Montgomery scratch. *)

val verify_batch :
  ?pool:Worm_util.Pool.t -> public -> (string * string) list -> bool list
(** [verify_batch ?pool key [(msg, signature); ...]] verifies each pair,
    in order. With a [pool] of size > 1 the verifications fan out across
    its domains — the host-side read path of §4.2.2, where throughput is
    bounded only by how fast the untrusted host can check signatures.
    Without one (or on a single-domain pool) it is exactly
    [List.map (fun (m, s) -> verify key ~msg:m ~signature:s)]. *)

val raw_apply_secret : secret -> Nat.t -> Nat.t
(** Textbook RSA private operation (CRT), exposed for tests and the
    cost-model microbenchmarks. *)

val raw_apply_public : public -> Nat.t -> Nat.t

val fingerprint : public -> string
(** SHA-256 over the canonical public-key encoding (hex, 16 chars). *)

val encode_public : Worm_util.Codec.encoder -> public -> unit
val decode_public : Worm_util.Codec.decoder -> public

val public_encoded_size : public -> int
(** Byte length of {!encode_public}'s output, computed arithmetically —
    no encoder is materialized. *)

val equal_public : public -> public -> bool
val pp_public : Format.formatter -> public -> unit
