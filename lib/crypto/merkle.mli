(** Updatable Merkle hash tree over a fixed-capacity array of leaves.

    This is the baseline the paper argues {e against} for compliance
    stores (§2.3, §4.1): every record insertion costs O(log n) hash
    recomputations up the tree, whereas the window scheme certifies the
    live range in O(1). The tree counts its hash invocations so the
    ablation benchmark can report the asymptotic gap directly. *)

type t

val create : capacity:int -> t
(** Capacity is rounded up to a power of two; absent leaves hash as a
    fixed empty marker. @raise Invalid_argument if [capacity <= 0]. *)

val of_leaves : ?pool:Worm_util.Pool.t -> string array -> t
(** Bulk construction: installs leaf [i] = [leaves.(i)], hashing each
    tree level across the domain pool ({!Sha256.digest_parts_many}).
    The root is identical to [create]-then-[set] for the same leaves.
    Construction hashing is not charged to {!hash_count}.
    @raise Invalid_argument on an empty array. *)

val capacity : t -> int
val root : t -> string
val set : t -> int -> string -> unit
(** [set t i leaf_data] installs a leaf and recomputes its root path.
    @raise Invalid_argument on an out-of-range index. *)

val get : t -> int -> string option
val proof : t -> int -> string list
(** Sibling hashes from leaf level to the root. *)

val verify : root:string -> capacity:int -> index:int -> leaf_data:string -> proof:string list -> bool

val hash_count : t -> int
(** Cumulative number of node-hash computations since creation. *)

val reset_hash_count : t -> unit
