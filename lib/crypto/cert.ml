module Codec = Worm_util.Codec

type role = Scpu_signing | Scpu_deletion | Scpu_short_term | Regulation_authority

let role_to_string = function
  | Scpu_signing -> "scpu-signing"
  | Scpu_deletion -> "scpu-deletion"
  | Scpu_short_term -> "scpu-short-term"
  | Regulation_authority -> "regulation-authority"

let role_tag = function
  | Scpu_signing -> 0
  | Scpu_deletion -> 1
  | Scpu_short_term -> 2
  | Regulation_authority -> 3

let role_of_tag = function
  | 0 -> Scpu_signing
  | 1 -> Scpu_deletion
  | 2 -> Scpu_short_term
  | 3 -> Regulation_authority
  | n -> raise (Codec.Malformed (Printf.sprintf "bad cert role %d" n))

type t = {
  subject : string;
  role : role;
  key : Rsa.public;
  not_before : int64;
  not_after : int64;
  signature : string;
}

let encode_body enc (subject, role, key, not_before, not_after) =
  Codec.bytes enc subject;
  Codec.u8 enc (role_tag role);
  Rsa.encode_public enc key;
  Codec.u64 enc not_before;
  Codec.u64 enc not_after

let body_bytes t = Codec.encode encode_body (t.subject, t.role, t.key, t.not_before, t.not_after)

let issue ~ca ~subject ~role ~key ~not_before ~not_after =
  let unsigned = { subject; role; key; not_before; not_after; signature = "" } in
  { unsigned with signature = Rsa.sign ca (body_bytes unsigned) }

let verify ~ca ~now t =
  Int64.compare t.not_before now <= 0
  && Int64.compare now t.not_after <= 0
  && Rsa.verify ca ~msg:(body_bytes t) ~signature:t.signature

let encode enc t =
  encode_body enc (t.subject, t.role, t.key, t.not_before, t.not_after);
  Codec.bytes enc t.signature

(* Must track [encode] exactly; checked by a property test. *)
let encoded_size t =
  4 + String.length t.subject + 1 + Rsa.public_encoded_size t.key + 8 + 8
  + (4 + String.length t.signature)

let decode dec =
  let subject = Codec.read_bytes dec in
  let role = role_of_tag (Codec.read_u8 dec) in
  let key = Rsa.decode_public dec in
  let not_before = Codec.read_u64 dec in
  let not_after = Codec.read_u64 dec in
  let signature = Codec.read_bytes dec in
  { subject; role; key; not_before; not_after; signature }

let pp fmt t =
  Format.fprintf fmt "cert[%s/%s key=%a]" t.subject (role_to_string t.role) Rsa.pp_public t.key
