(* SHA-1 (FIPS 180-4) with an unsafe, fully-unrolled compression core.

   Retained because the paper's SCPU (IBM 4764) benchmarks hashing with
   SHA-1 (Table 2); the WORM layer itself signs SHA-256 digests.

   32-bit words are carried in native ints. The unrolled core below is
   machine-generated (do not hand-edit round lines) and obeys the same
   invariants as Sha256.compress: named values are masked at binding,
   unmasked intermediates are never right-shifted, and every caller
   establishes [off + 64 <= String.length s] before the unsafe loads. *)

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buf : Bytes.t; (* partial block; doubles as the padding block *)
  mutable buf_len : int;
  mutable total : int; (* bytes fed *)
  mutable finalized : bool;
}

let digest_size = 20
let block_size = 64

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
  }


(* Unaligned 32-bit load + byte swap compile to two instructions on
   amd64; the box/unbox pair is eliminated by the backend. Soundness of
   the unchecked load: callers of [compress] establish
   [off + 64 <= String.length s]. *)
external unsafe_get_32 : string -> int -> int32 = "%caml_string_get32u"
external swap32 : int32 -> int32 = "%bswap_int32"

let compress ctx s off =
  let w0 = swap32 (unsafe_get_32 s off) in
  let w1 = swap32 (unsafe_get_32 s (off + 4)) in
  let w2 = swap32 (unsafe_get_32 s (off + 8)) in
  let w3 = swap32 (unsafe_get_32 s (off + 12)) in
  let w4 = swap32 (unsafe_get_32 s (off + 16)) in
  let w5 = swap32 (unsafe_get_32 s (off + 20)) in
  let w6 = swap32 (unsafe_get_32 s (off + 24)) in
  let w7 = swap32 (unsafe_get_32 s (off + 28)) in
  let w8 = swap32 (unsafe_get_32 s (off + 32)) in
  let w9 = swap32 (unsafe_get_32 s (off + 36)) in
  let w10 = swap32 (unsafe_get_32 s (off + 40)) in
  let w11 = swap32 (unsafe_get_32 s (off + 44)) in
  let w12 = swap32 (unsafe_get_32 s (off + 48)) in
  let w13 = swap32 (unsafe_get_32 s (off + 52)) in
  let w14 = swap32 (unsafe_get_32 s (off + 56)) in
  let w15 = swap32 (unsafe_get_32 s (off + 60)) in
  let a = Int32.of_int ctx.h0 in
  let b = Int32.of_int ctx.h1 in
  let c = Int32.of_int ctx.h2 in
  let d = Int32.of_int ctx.h3 in
  let e = Int32.of_int ctx.h4 in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x5A827999l w0))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x5A827999l w1))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand e (Int32.logxor a b))) (Int32.add 0x5A827999l w2))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand d (Int32.logxor e a))) (Int32.add 0x5A827999l w3))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x5A827999l w4))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x5A827999l w5))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x5A827999l w6))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand e (Int32.logxor a b))) (Int32.add 0x5A827999l w7))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand d (Int32.logxor e a))) (Int32.add 0x5A827999l w8))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x5A827999l w9))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x5A827999l w10))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x5A827999l w11))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand e (Int32.logxor a b))) (Int32.add 0x5A827999l w12))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand d (Int32.logxor e a))) (Int32.add 0x5A827999l w13))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x5A827999l w14))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand b (Int32.logxor c d))) (Int32.add 0x5A827999l w15))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w0 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand a (Int32.logxor b c))) (Int32.add 0x5A827999l w0))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w1 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand e (Int32.logxor a b))) (Int32.add 0x5A827999l w1))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w2 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand d (Int32.logxor e a))) (Int32.add 0x5A827999l w2))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w3 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand c (Int32.logxor d e))) (Int32.add 0x5A827999l w3))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w4 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0x6ED9EBA1l w4))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w5 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0x6ED9EBA1l w5))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w6 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0x6ED9EBA1l w6))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w7 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0x6ED9EBA1l w7))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w8 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0x6ED9EBA1l w8))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w9 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0x6ED9EBA1l w9))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w10 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0x6ED9EBA1l w10))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w11 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0x6ED9EBA1l w11))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w12 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0x6ED9EBA1l w12))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w13 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0x6ED9EBA1l w13))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w14 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0x6ED9EBA1l w14))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w15 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0x6ED9EBA1l w15))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w0 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0x6ED9EBA1l w0))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w1 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0x6ED9EBA1l w1))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w2 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0x6ED9EBA1l w2))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w3 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0x6ED9EBA1l w3))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w4 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0x6ED9EBA1l w4))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w5 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0x6ED9EBA1l w5))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w6 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0x6ED9EBA1l w6))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w7 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0x6ED9EBA1l w7))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w8 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))) (Int32.add 0x8F1BBCDCl w8))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w9 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))) (Int32.add 0x8F1BBCDCl w9))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w10 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand (Int32.logxor e b) (Int32.logxor a b))) (Int32.add 0x8F1BBCDCl w10))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w11 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand (Int32.logxor d a) (Int32.logxor e a))) (Int32.add 0x8F1BBCDCl w11))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w12 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))) (Int32.add 0x8F1BBCDCl w12))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w13 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))) (Int32.add 0x8F1BBCDCl w13))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w14 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))) (Int32.add 0x8F1BBCDCl w14))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w15 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand (Int32.logxor e b) (Int32.logxor a b))) (Int32.add 0x8F1BBCDCl w15))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w0 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand (Int32.logxor d a) (Int32.logxor e a))) (Int32.add 0x8F1BBCDCl w0))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w1 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))) (Int32.add 0x8F1BBCDCl w1))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w2 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))) (Int32.add 0x8F1BBCDCl w2))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w3 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))) (Int32.add 0x8F1BBCDCl w3))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w4 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand (Int32.logxor e b) (Int32.logxor a b))) (Int32.add 0x8F1BBCDCl w4))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w5 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand (Int32.logxor d a) (Int32.logxor e a))) (Int32.add 0x8F1BBCDCl w5))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w6 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))) (Int32.add 0x8F1BBCDCl w6))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w7 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor d (Int32.logand (Int32.logxor b d) (Int32.logxor c d))) (Int32.add 0x8F1BBCDCl w7))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w8 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor c (Int32.logand (Int32.logxor a c) (Int32.logxor b c))) (Int32.add 0x8F1BBCDCl w8))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w9 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor b (Int32.logand (Int32.logxor e b) (Int32.logxor a b))) (Int32.add 0x8F1BBCDCl w9))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w10 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor a (Int32.logand (Int32.logxor d a) (Int32.logxor e a))) (Int32.add 0x8F1BBCDCl w10))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w11 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor e (Int32.logand (Int32.logxor c e) (Int32.logxor d e))) (Int32.add 0x8F1BBCDCl w11))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w12 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0xCA62C1D6l w12))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w13 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0xCA62C1D6l w13))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w14 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0xCA62C1D6l w14))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w15 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0xCA62C1D6l w15))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w0 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0xCA62C1D6l w0))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w1 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0xCA62C1D6l w1))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w2 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0xCA62C1D6l w2))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w3 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0xCA62C1D6l w3))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w4 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0xCA62C1D6l w4))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w5 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0xCA62C1D6l w5))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w6 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0xCA62C1D6l w6))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w7 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0xCA62C1D6l w7))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w8 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0xCA62C1D6l w8))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w9 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0xCA62C1D6l w9))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w10 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0xCA62C1D6l w10))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  let w11 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 31)) in
  let e = (Int32.add (Int32.add e (Int32.logor (Int32.shift_left a 5) (Int32.shift_right_logical a 27))) (Int32.add (Int32.logxor (Int32.logxor b c) d) (Int32.add 0xCA62C1D6l w11))) in
  let b = (Int32.logor (Int32.shift_left b 30) (Int32.shift_right_logical b 2)) in
  let w12 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 31)) in
  let d = (Int32.add (Int32.add d (Int32.logor (Int32.shift_left e 5) (Int32.shift_right_logical e 27))) (Int32.add (Int32.logxor (Int32.logxor a b) c) (Int32.add 0xCA62C1D6l w12))) in
  let a = (Int32.logor (Int32.shift_left a 30) (Int32.shift_right_logical a 2)) in
  let w13 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 31)) in
  let c = (Int32.add (Int32.add c (Int32.logor (Int32.shift_left d 5) (Int32.shift_right_logical d 27))) (Int32.add (Int32.logxor (Int32.logxor e a) b) (Int32.add 0xCA62C1D6l w13))) in
  let e = (Int32.logor (Int32.shift_left e 30) (Int32.shift_right_logical e 2)) in
  let w14 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 31)) in
  let b = (Int32.add (Int32.add b (Int32.logor (Int32.shift_left c 5) (Int32.shift_right_logical c 27))) (Int32.add (Int32.logxor (Int32.logxor d e) a) (Int32.add 0xCA62C1D6l w14))) in
  let d = (Int32.logor (Int32.shift_left d 30) (Int32.shift_right_logical d 2)) in
  let w15 = (Int32.logor (Int32.shift_left (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1) (Int32.shift_right_logical (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 31)) in
  let a = (Int32.add (Int32.add a (Int32.logor (Int32.shift_left b 5) (Int32.shift_right_logical b 27))) (Int32.add (Int32.logxor (Int32.logxor c d) e) (Int32.add 0xCA62C1D6l w15))) in
  let c = (Int32.logor (Int32.shift_left c 30) (Int32.shift_right_logical c 2)) in
  ctx.h0 <- (ctx.h0 + Int32.to_int a) land 0xFFFFFFFF;
  ctx.h1 <- (ctx.h1 + Int32.to_int b) land 0xFFFFFFFF;
  ctx.h2 <- (ctx.h2 + Int32.to_int c) land 0xFFFFFFFF;
  ctx.h3 <- (ctx.h3 + Int32.to_int d) land 0xFFFFFFFF;
  ctx.h4 <- (ctx.h4 + Int32.to_int e) land 0xFFFFFFFF

let feed_sub ctx s ~pos ~len =
  if ctx.finalized then invalid_arg "Sha1.feed_sub: context already finalized";
  if pos < 0 || len < 0 || pos > String.length s - len then invalid_arg "Sha1.feed_sub: out of bounds";
  ctx.total <- ctx.total + len;
  let p = ref pos in
  let stop = pos + len in
  if ctx.buf_len > 0 then begin
    let take = min (block_size - ctx.buf_len) len in
    Bytes.blit_string s !p ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    p := !p + take;
    if ctx.buf_len = block_size then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  while stop - !p >= block_size do
    compress ctx s !p;
    p := !p + block_size
  done;
  if !p < stop then begin
    Bytes.blit_string s !p ctx.buf 0 (stop - !p);
    ctx.buf_len <- stop - !p
  end

let feed ctx s =
  if ctx.finalized then invalid_arg "Sha1.feed: context already finalized";
  feed_sub ctx s ~pos:0 ~len:(String.length s)

(* Pad in place: ctx.buf always has room because buf_len < 64. *)
let finalize ctx =
  if ctx.finalized then invalid_arg "Sha1.get: context already finalized";
  ctx.finalized <- true;
  let total_bits = ctx.total * 8 in
  let b = ctx.buf in
  let n = ctx.buf_len in
  Bytes.unsafe_set b n '\x80';
  if n + 1 > 56 then begin
    Bytes.fill b (n + 1) (block_size - n - 1) '\000';
    compress ctx (Bytes.unsafe_to_string b) 0;
    Bytes.fill b 0 56 '\000'
  end
  else Bytes.fill b (n + 1) (56 - (n + 1)) '\000';
  for i = 0 to 7 do
    Bytes.unsafe_set b (56 + i) (Char.unsafe_chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx (Bytes.unsafe_to_string b) 0;
  ctx.buf_len <- 0

let word_be out off v =
  Bytes.unsafe_set out off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set out (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set out (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set out (off + 3) (Char.unsafe_chr (v land 0xff))

let digest_into ctx out ~pos =
  if pos < 0 || pos > Bytes.length out - digest_size then invalid_arg "Sha1.digest_into: out of bounds";
  finalize ctx;
  word_be out pos ctx.h0;
  word_be out (pos + 4) ctx.h1;
  word_be out (pos + 8) ctx.h2;
  word_be out (pos + 12) ctx.h3;
  word_be out (pos + 16) ctx.h4

let get ctx =
  let out = Bytes.create digest_size in
  digest_into ctx out ~pos:0;
  Bytes.unsafe_to_string out

let digest_sub s ~pos ~len =
  let ctx = init () in
  feed_sub ctx s ~pos ~len;
  get ctx

let digest s = digest_sub s ~pos:0 ~len:(String.length s)

let digest_parts parts =
  let ctx = init () in
  List.iter (fun s -> feed_sub ctx s ~pos:0 ~len:(String.length s)) parts;
  get ctx

let digest_many ?pool inputs =
  match pool with
  | Some p when Worm_util.Pool.size p > 1 && Array.length inputs > 1 -> Worm_util.Pool.parallel_map p digest inputs
  | _ -> Array.map digest inputs

let hex_digest s = Worm_util.Hex.encode (digest s)
