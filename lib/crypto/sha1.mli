(** SHA-1 (FIPS 180-4). Pure OCaml, unsafe fully-unrolled core.

    SHA-1 is retained because the paper's SCPU (IBM 4764) benchmarks
    hashing with SHA-1 (Table 2); the WORM layer itself signs SHA-256
    digests. Do not use SHA-1 for collision resistance in new designs.

    Contexts are single-use, exactly as in {!Sha256}: a finalized
    context raises [Invalid_argument] on any further use. *)

type ctx

val digest_size : int
(** 20 bytes. *)

val block_size : int
(** 64 bytes. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** @raise Invalid_argument if the context was already finalized. *)

val feed_sub : ctx -> string -> pos:int -> len:int -> unit
(** Zero-copy range feed; see {!Sha256.feed_sub}. *)

val get : ctx -> string
(** Finalize and return the 20-byte digest. The context is dead
    afterwards: any further use raises [Invalid_argument]. *)

val digest_into : ctx -> Bytes.t -> pos:int -> unit
(** Finalize into [out] at [pos]; see {!Sha256.digest_into}. *)

val digest : string -> string
val digest_sub : string -> pos:int -> len:int -> string

val digest_parts : string list -> string
(** Digest the concatenation of the parts without concatenating them. *)

val digest_many : ?pool:Worm_util.Pool.t -> string array -> string array
(** Multi-buffer hashing over the domain pool; see {!Sha256.digest_many}. *)

val hex_digest : string -> string
