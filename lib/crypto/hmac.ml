module type HASH = sig
  type ctx

  val digest_size : int
  val block_size : int
  val init : unit -> ctx
  val feed : ctx -> string -> unit
  val feed_sub : ctx -> string -> pos:int -> len:int -> unit
  val get : ctx -> string
  val digest : string -> string
end

module Make (H : HASH) = struct
  let xor_pad key pad =
    let b = Bytes.make H.block_size pad in
    String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor Char.code pad))) key;
    Bytes.unsafe_to_string b

  (* Precomputed inner/outer pads: deriving them once per MAC (or once
     per key, for callers that reuse one) replaces the [ipad ^ msg] and
     [opad ^ inner] copies of the old implementation with streaming
     feeds. *)
  type key = { ipad : string; opad : string }

  let derive key =
    let key = if String.length key > H.block_size then H.digest key else key in
    { ipad = xor_pad key '\x36'; opad = xor_pad key '\x5c' }

  let finish k inner_ctx =
    let inner = H.get inner_ctx in
    let ctx = H.init () in
    H.feed ctx k.opad;
    H.feed ctx inner;
    H.get ctx

  let start k =
    let ctx = H.init () in
    H.feed ctx k.ipad;
    ctx

  let mac_parts ~key parts =
    let k = derive key in
    let ctx = start k in
    List.iter (H.feed ctx) parts;
    finish k ctx

  let mac ~key msg = mac_parts ~key [ msg ]

  let mac_sub ~key s ~pos ~len =
    let k = derive key in
    let ctx = start k in
    H.feed_sub ctx s ~pos ~len;
    finish k ctx
end

module Hmac_sha256 = Make (Sha256)
module Hmac_sha1 = Make (Sha1)

let sha256 = Hmac_sha256.mac
let sha256_parts = Hmac_sha256.mac_parts
let sha256_sub = Hmac_sha256.mac_sub
let sha1 = Hmac_sha1.mac
let verify_sha256 ~key ~msg ~mac = Worm_util.Ct.equal (sha256 ~key msg) mac
