module Codec = Worm_util.Codec

type public = { n : Nat.t; e : Nat.t }

type secret = {
  pub : public;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
  dp : Nat.t; (* d mod (p-1) *)
  dq : Nat.t; (* d mod (q-1) *)
  qinv : Nat.t; (* q^-1 mod p *)
  mont_p : Nat.mont; (* cached Montgomery context for p *)
  mont_q : Nat.mont; (* cached Montgomery context for q *)
}

let e_65537 = Nat.of_int 65537

let generate rng ~bits =
  if bits < 512 then invalid_arg "Rsa.generate: modulus below 512 bits";
  let half = bits / 2 in
  let rec gen_prime () =
    let p = Prime.generate rng ~bits:half in
    if Nat.is_one (Nat.gcd e_65537 (Nat.pred p)) then p else gen_prime ()
  in
  let rec gen_pair () =
    let p = gen_prime () in
    let q = gen_prime () in
    if Nat.equal p q then gen_pair ()
    else begin
      let n = Nat.mul p q in
      if Nat.bit_length n <> bits then gen_pair () else (p, q, n)
    end
  in
  let p, q, n = gen_pair () in
  (* Orient so that p > q (required for the CRT recombination below). *)
  let p, q = if Nat.compare p q > 0 then (p, q) else (q, p) in
  let p1 = Nat.pred p and q1 = Nat.pred q in
  let phi = Nat.mul p1 q1 in
  let d =
    match Nat.mod_inverse e_65537 phi with
    | Some d -> d
    | None -> assert false (* gcd(e, p-1) = gcd(e, q-1) = 1 by construction *)
  in
  let qinv =
    match Nat.mod_inverse q p with
    | Some v -> v
    | None -> assert false (* p, q distinct primes *)
  in
  { pub = { n; e = e_65537 }; d; p; q;
    dp = Nat.modulo d p1; dq = Nat.modulo d q1; qinv;
    mont_p = Nat.mont_init p; mont_q = Nat.mont_init q }

let public_of sk = sk.pub
let modulus_bytes pub = (Nat.bit_length pub.n + 7) / 8

let raw_apply_secret sk m =
  let m = Nat.modulo m sk.pub.n in
  let m1 = Nat.mod_pow_ctx sk.mont_p ~base:m ~exp:sk.dp in
  let m2 = Nat.mod_pow_ctx sk.mont_q ~base:m ~exp:sk.dq in
  (* h = qinv * (m1 - m2) mod p, with the subtraction lifted above zero *)
  let m2_mod_p = Nat.modulo m2 sk.p in
  let diff = Nat.modulo (Nat.sub (Nat.add m1 sk.p) m2_mod_p) sk.p in
  let h = Nat.modulo (Nat.mul sk.qinv diff) sk.p in
  Nat.add m2 (Nat.mul h sk.q)

(* [public] is a transparent record, so verification contexts live in a
   module-level memo instead of the key itself. Two layers make the
   memo domain-safe without serializing verifications:

   - a mutex-guarded master table paying mont_init (a full division for
     R^2 mod m) once per modulus, process-wide;
   - a domain-local table of clones of the master (fresh scratch over
     shared constants), because a Nat.mont context's scratch buffers
     make it single-threaded — two domains must never share one.

   Both tables are bounded so a stream of one-shot keys cannot grow
   them without limit. Even/zero moduli (never produced by [generate],
   but [public] is an open record) fall through to the generic path. *)
let master_ctx_memo : (Nat.t, Nat.mont) Hashtbl.t = Hashtbl.create 8
let master_ctx_mutex = Mutex.create ()

let master_ctx n =
  Mutex.lock master_ctx_mutex;
  match Hashtbl.find_opt master_ctx_memo n with
  | Some ctx ->
      Mutex.unlock master_ctx_mutex;
      ctx
  | None ->
      (* Build outside the lock: mont_init is the expensive part, and
         losing a race just means one redundant init. *)
      Mutex.unlock master_ctx_mutex;
      let ctx = Nat.mont_init n in
      Mutex.lock master_ctx_mutex;
      let ctx =
        match Hashtbl.find_opt master_ctx_memo n with
        | Some existing -> existing
        | None ->
            if Hashtbl.length master_ctx_memo > 64 then Hashtbl.reset master_ctx_memo;
            Hashtbl.add master_ctx_memo n ctx;
            ctx
      in
      Mutex.unlock master_ctx_mutex;
      ctx

let domain_ctx_memo : (Nat.t, Nat.mont) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let public_ctx n =
  if Nat.is_zero n || Nat.is_even n then None
  else begin
    let tbl = Domain.DLS.get domain_ctx_memo in
    match Hashtbl.find_opt tbl n with
    | Some ctx -> Some ctx
    | None ->
        let ctx = Nat.mont_clone (master_ctx n) in
        if Hashtbl.length tbl > 64 then Hashtbl.reset tbl;
        Hashtbl.add tbl n ctx;
        Some ctx
  end

let raw_apply_public pub s =
  match public_ctx pub.n with
  | Some ctx -> Nat.mod_pow_ctx ctx ~base:s ~exp:pub.e
  | None -> Nat.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n

(* DER DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1). *)
let sha256_prefix =
  Worm_util.Hex.decode "3031300d060960864801650304020105000420"

let emsa_pkcs1_v15 ~k msg =
  let tlen = String.length sha256_prefix + Sha256.digest_size in
  if k < tlen + 11 then invalid_arg "Rsa: modulus too small for PKCS#1 encoding";
  (* 0x00 0x01 PS(0xff..) 0x00 DigestInfo-prefix digest, built in one
     buffer with the digest finalized directly into place. *)
  let em = Bytes.make k '\xff' in
  Bytes.set em 0 '\x00';
  Bytes.set em 1 '\x01';
  Bytes.set em (k - tlen - 1) '\x00';
  Bytes.blit_string sha256_prefix 0 em (k - tlen) (String.length sha256_prefix);
  let ctx = Sha256.init () in
  Sha256.feed ctx msg;
  Sha256.digest_into ctx em ~pos:(k - Sha256.digest_size);
  Bytes.unsafe_to_string em

let sign_one sk ~k msg =
  let em = emsa_pkcs1_v15 ~k msg in
  let m = Nat.of_bytes_be em in
  let s = raw_apply_secret sk m in
  Nat.to_bytes_be_padded ~len:k s

let sign sk msg =
  let k = modulus_bytes sk.pub in
  sign_one sk ~k msg

let sign_batch sk msgs =
  let k = modulus_bytes sk.pub in
  List.map (sign_one sk ~k) msgs

let verify pub ~msg ~signature =
  let k = modulus_bytes pub in
  String.length signature = k
  &&
  let s = Nat.of_bytes_be signature in
  Nat.compare s pub.n < 0
  &&
  match Nat.to_bytes_be_padded ~len:k (raw_apply_public pub s) with
  | em -> Worm_util.Ct.equal em (emsa_pkcs1_v15 ~k msg)
  | exception Invalid_argument _ -> false

let verify_batch ?pool pub items =
  match pool with
  | Some p when Worm_util.Pool.size p > 1 && List.length items > 1 ->
      (* Warm the master context before fanning out, so the domains
         clone a ready context instead of racing to build one each. *)
      if not (Nat.is_zero pub.n || Nat.is_even pub.n) then ignore (master_ctx pub.n);
      Worm_util.Pool.map_list p (fun (msg, signature) -> verify pub ~msg ~signature) items
  | _ -> List.map (fun (msg, signature) -> verify pub ~msg ~signature) items

let encode_public enc pub =
  Codec.bytes enc (Nat.to_bytes_be pub.n);
  Codec.bytes enc (Nat.to_bytes_be pub.e)

(* Must track [encode_public] exactly: each component is a length-
   prefixed minimal big-endian encoding of (bit_length + 7) / 8 bytes. *)
let public_encoded_size pub =
  4 + ((Nat.bit_length pub.n + 7) / 8) + 4 + ((Nat.bit_length pub.e + 7) / 8)

let decode_public dec =
  let n = Nat.of_bytes_be (Codec.read_bytes dec) in
  let e = Nat.of_bytes_be (Codec.read_bytes dec) in
  { n; e }

let fingerprint pub =
  let canonical = Codec.encode encode_public pub in
  String.sub (Worm_util.Hex.encode (Sha256.digest canonical)) 0 16

let equal_public a b = Nat.equal a.n b.n && Nat.equal a.e b.e
let pp_public fmt pub = Format.fprintf fmt "rsa-%d:%s" (Nat.bit_length pub.n) (fingerprint pub)
