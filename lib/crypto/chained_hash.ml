type t = string

let empty = Sha256.digest "worm:chained-hash:init"

(* Each link hashes [prev || be64(len) || block]: the length delimiter
   keeps [add] injective on block sequences. The block bytes are fed
   straight from the caller's buffer ([feed_sub]) — no per-record
   concatenation or substring copies. *)

let link t s pos len =
  let ctx = Sha256.init () in
  Sha256.feed ctx t;
  let lenb = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set lenb i (Char.chr ((len lsr (8 * (7 - i))) land 0xff))
  done;
  Sha256.feed ctx (Bytes.unsafe_to_string lenb);
  Sha256.feed_sub ctx s ~pos ~len;
  Sha256.get ctx

let add t block = link t block 0 (String.length block)

let add_sub t s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Chained_hash.add_sub: out of bounds";
  link t s pos len

let of_blocks blocks = List.fold_left add empty blocks
let value t = t
let equal (a : t) (b : t) = Worm_util.Ct.equal a b
let pp fmt t = Format.pp_print_string fmt (Worm_util.Hex.encode t)
