(* Little-endian arrays of limbs in base 2^31. The invariant throughout is
   that values are canonical: the top limb is nonzero (zero is [||]).
   Base 2^31 keeps every intermediate product a*b + c + d within OCaml's
   63-bit native int: (2^31-1)^2 + 2*(2^31-1) = 2^62 - 1 = max_int. *)

type t = int array

let base_bits = 31
let base_mask = 0x7FFFFFFF

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else begin
    let rec limbs acc v = if v = 0 then List.rev acc else limbs ((v land base_mask) :: acc) (v lsr base_bits) in
    Array.of_list (limbs [] v)
  end

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  (* max_int is 62 bits: at most three limbs with a one-bit top limb. *)
  let n = Array.length a in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > max_int lsr base_bits then ok := false
      else begin
        let shifted = !v lsl base_bits in
        if shifted > max_int - a.(i) || shifted < 0 then ok := false else v := shifted lor a.(i)
      end
    done;
    if !ok then Some !v else None
  end

let to_int a =
  match to_int_opt a with
  | Some v -> v
  | None -> invalid_arg "Nat.to_int: overflow"

let is_one a = Array.length a = 1 && a.(0) = 1
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

let succ a = add a one

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base_mask + 1;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let pred a = sub a one

let mul (a : t) (b : t) : t =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let x = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- x land base_mask;
          carry := x lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let x = r.(!k) + !carry in
          r.(!k) <- x land base_mask;
          carry := x lsr base_bits;
          incr k
        done
      end
    done;
    normalize r
  end

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + width top 0
  end

let test_bit (a : t) i =
  if i < 0 then invalid_arg "Nat.test_bit: negative index";
  let limb = i / base_bits in
  limb < Array.length a && (a.(limb) lsr (i mod base_bits)) land 1 = 1

let shift_left (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let x = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- x land base_mask;
        carry := x lsr base_bits
      done;
      r.(la + limbs) <- !carry
    end;
    normalize r
  end

let shift_right (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      if bits = 0 then Array.blit a limbs r 0 n
      else begin
        for i = 0 to n - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - bits)) land base_mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

(* Shift-and-subtract long division: O(bits(a) * limbs) — plenty for key
   sizes up to a few thousand bits, and only exercised outside the
   Montgomery fast path. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  let c = compare a b in
  if c < 0 then (zero, a)
  else if c = 0 then (one, zero)
  else begin
    let shift = bit_length a - bit_length b in
    let qlimbs = (shift / base_bits) + 1 in
    let q = Array.make qlimbs 0 in
    let r = ref a in
    let d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end;
      d := shift_right !d 1
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let modulo a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (modulo a b)

(* Signed values for the extended Euclid coefficient: (negative?, magnitude). *)
let s_sub (an, a) (bn, b) =
  match (an, bn) with
  | false, true -> (false, add a b)
  | true, false -> (true, add a b)
  | false, false -> if compare a b >= 0 then (false, sub a b) else (true, sub b a)
  | true, true -> if compare b a >= 0 then (false, sub b a) else (true, sub a b)

let mod_inverse a m =
  if is_zero m then invalid_arg "Nat.mod_inverse: zero modulus";
  if is_one m then Some zero
  else begin
    let a = modulo a m in
    (* Invariant: r_i = (coefficient of original a) kept in s_i, mod m. *)
    let rec go r0 r1 s0 s1 =
      if is_zero r1 then
        if is_one r0 then begin
          let neg, mag = s0 in
          let mag = modulo mag m in
          Some (if neg && not (is_zero mag) then sub m mag else mag)
        end
        else None
      else begin
        let q, r2 = divmod r0 r1 in
        let neg1, mag1 = s1 in
        let s2 = s_sub s0 (neg1, mul mag1 q) in
        go r1 r2 s1 s2
      end
    in
    go m a (false, zero) (false, one)
  end

(* Montgomery arithmetic for odd moduli. Values inside the domain are
   kept as fixed-width [limbs]-length arrays (< m, not canonicalized) so
   the inner loops never allocate: a context carries two preallocated
   scratch buffers that every multiply/square/reduce runs through. A
   context is therefore NOT reentrant — one modular exponentiation at a
   time per context — which is fine for this single-threaded codebase
   and lets callers cache contexts per key for the signing hot path. *)
type mont = {
  m : t;  (* modulus, canonical: exactly [limbs] limbs, top nonzero *)
  n0' : int;  (* -m^-1 mod 2^31 *)
  r2 : int array;  (* R^2 mod m, fixed width *)
  one_m : int array;  (* R mod m: Montgomery form of 1, fixed width *)
  limbs : int;
  tmp : int array;  (* limbs + 2: CIOS accumulator *)
  sq : int array;  (* 2*limbs + 1: squaring / plain-reduction buffer *)
}

let mont_modulus ctx = ctx.m

(* Fresh scratch over the same precomputed constants. The immutable
   fields (m, n0', r2, one_m) are shared — only tmp/sq are per-clone —
   so cloning costs two small allocations instead of the division
   mont_init pays for R^2 mod m. This is what makes a shared context
   cache domain-safe: one master per modulus, one clone per domain. *)
let mont_clone ctx =
  { ctx with tmp = Array.make (ctx.limbs + 2) 0; sq = Array.make ((2 * ctx.limbs) + 1) 0 }

let mont_init (m : t) =
  if is_zero m || is_even m then invalid_arg "Nat.mont_init: modulus must be odd";
  let limbs = Array.length m in
  let m0 = m.(0) in
  (* Hensel lifting: five Newton steps take a 1-bit inverse to >= 32 bits. *)
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := (!inv * (2 - (m0 * !inv))) land base_mask
  done;
  let n0' = (base_mask + 1 - !inv) land base_mask in
  let r_mod_m = modulo (shift_left one (base_bits * limbs)) m in
  let r2 = modulo (mul r_mod_m r_mod_m) m in
  let pad a =
    let w = Array.make limbs 0 in
    Array.blit a 0 w 0 (Array.length a);
    w
  in
  {
    m;
    n0';
    r2 = pad r2;
    one_m = pad r_mod_m;
    limbs;
    tmp = Array.make (limbs + 2) 0;
    sq = Array.make ((2 * limbs) + 1) 0;
  }

(* dst <- src mod m where src is the [limbs+1]-wide value at [src.(off)
   .. src.(off+limbs)] known to be < 2m (top limb 0 or 1). *)
let mont_sub_once ctx (src : int array) off (dst : int array) =
  let n = ctx.limbs and m = ctx.m in
  let ge =
    src.(off + n) > 0
    ||
    let rec cmp i = if i < 0 then true else if src.(off + i) <> m.(i) then src.(off + i) > m.(i) else cmp (i - 1) in
    cmp (n - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = Array.unsafe_get src (off + i) - Array.unsafe_get m i - !borrow in
      Array.unsafe_set dst i (d land base_mask);
      borrow := (d asr base_bits) land 1
    done
  end
  else Array.blit src off dst 0 n

(* Fused CIOS multiply: dst <- a*b/R mod m without materializing the
   double-width product. Each outer round interleaves one limb of the
   schoolbook product with one limb of the reduction, accumulating in
   ctx.tmp; [dst] may alias [a] or [b]. *)
let mont_mul ctx (dst : int array) (a : int array) (b : int array) =
  let n = ctx.limbs and m = ctx.m and t = ctx.tmp in
  Array.fill t 0 (n + 2) 0;
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    (* t += a_i * b *)
    let c = ref 0 in
    for j = 0 to n - 1 do
      let x = Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !c in
      Array.unsafe_set t j (x land base_mask);
      c := x lsr base_bits
    done;
    let x = t.(n) + !c in
    t.(n) <- x land base_mask;
    t.(n + 1) <- x lsr base_bits;
    (* t <- (t + u*m) / 2^31 *)
    let u = (t.(0) * ctx.n0') land base_mask in
    let c = ref ((t.(0) + (u * Array.unsafe_get m 0)) lsr base_bits) in
    for j = 1 to n - 1 do
      let x = Array.unsafe_get t j + (u * Array.unsafe_get m j) + !c in
      Array.unsafe_set t (j - 1) (x land base_mask);
      c := x lsr base_bits
    done;
    let x = t.(n) + !c in
    t.(n - 1) <- x land base_mask;
    t.(n) <- t.(n + 1) + (x lsr base_bits);
    t.(n + 1) <- 0
  done;
  mont_sub_once ctx t 0 dst

(* Montgomery reduction of the double-width value sitting in ctx.sq:
   dst <- sq / R mod m (SOS rounds, in place). *)
let mont_reduce_scratch ctx (dst : int array) =
  let n = ctx.limbs and m = ctx.m and t = ctx.sq in
  for i = 0 to n - 1 do
    let u = (t.(i) * ctx.n0') land base_mask in
    if u <> 0 then begin
      let c = ref 0 in
      for j = 0 to n - 1 do
        let x = Array.unsafe_get t (i + j) + (u * Array.unsafe_get m j) + !c in
        Array.unsafe_set t (i + j) (x land base_mask);
        c := x lsr base_bits
      done;
      let k = ref (i + n) in
      while !c <> 0 do
        let x = t.(!k) + !c in
        t.(!k) <- x land base_mask;
        c := x lsr base_bits;
        incr k
      done
    end
  done;
  mont_sub_once ctx t n dst

(* Dedicated squaring: the cross products a_i*a_j (i<j) are computed
   once, doubled by a linear shift pass, and the diagonal a_i^2 terms
   added — about half the limb products of mont_mul — then reduced.
   (Doubling each product inline would overflow 63-bit ints: 2*(2^31-1)^2
   > max_int, hence the separate shift pass.) *)
let mont_sqr ctx (dst : int array) (a : int array) =
  let n = ctx.limbs and t = ctx.sq in
  let len = (2 * n) + 1 in
  Array.fill t 0 len 0;
  for i = 0 to n - 2 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then begin
      let c = ref 0 in
      for j = i + 1 to n - 1 do
        let x = Array.unsafe_get t (i + j) + (ai * Array.unsafe_get a j) + !c in
        Array.unsafe_set t (i + j) (x land base_mask);
        c := x lsr base_bits
      done;
      let k = ref (i + n) in
      while !c <> 0 do
        let x = t.(!k) + !c in
        t.(!k) <- x land base_mask;
        c := x lsr base_bits;
        incr k
      done
    end
  done;
  let c = ref 0 in
  for i = 0 to len - 1 do
    let x = (Array.unsafe_get t i lsl 1) lor !c in
    Array.unsafe_set t i (x land base_mask);
    c := x lsr base_bits
  done;
  let c = ref 0 in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    let p = ai * ai in
    let x = Array.unsafe_get t (2 * i) + (p land base_mask) + !c in
    Array.unsafe_set t (2 * i) (x land base_mask);
    let x1 = Array.unsafe_get t ((2 * i) + 1) + (p lsr base_bits) + (x lsr base_bits) in
    Array.unsafe_set t ((2 * i) + 1) (x1 land base_mask);
    c := x1 lsr base_bits
  done;
  if !c <> 0 then begin
    let k = ref (2 * n) in
    while !c <> 0 do
      let x = t.(!k) + !c in
      t.(!k) <- x land base_mask;
      c := x lsr base_bits;
      incr k
    done
  end;
  mont_reduce_scratch ctx dst

(* Fixed 4-bit windows: 4 squarings plus at most one table multiply per
   window, a ~17% multiply saving over binary square-and-multiply at RSA
   sizes. The 16-entry table costs 14 extra multiplies up front, well
   repaid beyond ~128-bit exponents; short exponents take the binary
   path. *)
let mod_pow_ctx ctx ~base ~exp =
  let n = ctx.limbs in
  (* Bring [base] into Montgomery form without a long division. CIOS
     tolerates one operand up to R, so an n-limb base converts directly;
     a wider base first folds through a Montgomery reduction (valid while
     base < m*R, i.e. bit_length base <= bit_length m + 31n - 1) and two
     r2 multiplies undo the R^-1. Only oversized bases — never hit by the
     RSA paths — fall back to [modulo]. *)
  let base_m = Array.make n 0 in
  let blen = Array.length base in
  if blen <= n then begin
    Array.blit base 0 base_m 0 blen;
    mont_mul ctx base_m base_m ctx.r2
  end
  else if blen <= 2 * n && bit_length base <= bit_length ctx.m + (base_bits * n) - 1
  then begin
    Array.fill ctx.sq 0 ((2 * n) + 1) 0;
    Array.blit base 0 ctx.sq 0 blen;
    mont_reduce_scratch ctx base_m;
    mont_mul ctx base_m base_m ctx.r2;
    mont_mul ctx base_m base_m ctx.r2
  end
  else begin
    let b = modulo base ctx.m in
    Array.blit b 0 base_m 0 (Array.length b);
    mont_mul ctx base_m base_m ctx.r2
  end;
  let base_zero =
    let rec all_zero i = i >= n || (base_m.(i) = 0 && all_zero (i + 1)) in
    all_zero 0
  in
  if base_zero then if is_zero exp then modulo one ctx.m else zero
  else begin
    let nbits = bit_length exp in
    let acc = Array.make n 0 in
    if nbits <= 128 then begin
      Array.blit ctx.one_m 0 acc 0 n;
      for i = nbits - 1 downto 0 do
        mont_sqr ctx acc acc;
        if test_bit exp i then mont_mul ctx acc acc base_m
      done
    end
    else begin
      let table = Array.init 16 (fun _ -> Array.make n 0) in
      Array.blit ctx.one_m 0 table.(0) 0 n;
      Array.blit base_m 0 table.(1) 0 n;
      for i = 2 to 15 do
        mont_mul ctx table.(i) table.(i - 1) base_m
      done;
      let windows = (nbits + 3) / 4 in
      let window_value w =
        let lo = 4 * w in
        let v = ref 0 in
        for b = 3 downto 0 do
          v := (!v lsl 1) lor (if test_bit exp (lo + b) then 1 else 0)
        done;
        !v
      in
      Array.blit table.(window_value (windows - 1)) 0 acc 0 n;
      for w = windows - 2 downto 0 do
        mont_sqr ctx acc acc;
        mont_sqr ctx acc acc;
        mont_sqr ctx acc acc;
        mont_sqr ctx acc acc;
        let v = window_value w in
        if v > 0 then mont_mul ctx acc acc table.(v)
      done
    end;
    (* out of Montgomery form: acc / R mod m *)
    Array.fill ctx.sq 0 ((2 * n) + 1) 0;
    Array.blit acc 0 ctx.sq 0 n;
    mont_reduce_scratch ctx acc;
    normalize (Array.copy acc)
  end

let mod_pow_generic ~base ~exp ~modulus =
  let base = modulo base modulus in
  let acc = ref (modulo one modulus) in
  for i = bit_length exp - 1 downto 0 do
    acc := modulo (mul !acc !acc) modulus;
    if test_bit exp i then acc := modulo (mul !acc base) modulus
  done;
  !acc

let mod_pow ~base ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if is_one modulus then zero
  else if is_even modulus then mod_pow_generic ~base ~exp ~modulus
  else mod_pow_ctx (mont_init modulus) ~base ~exp

let of_bytes_be s =
  let n = String.length s in
  if n = 0 then zero
  else begin
    (* Pack 8-bit bytes directly into 31-bit limbs. *)
    let total_bits = n * 8 in
    let limbs = ((total_bits + base_bits - 1) / base_bits) in
    let r = Array.make limbs 0 in
    for i = 0 to n - 1 do
      let byte = Char.code s.[n - 1 - i] in
      let bit = i * 8 in
      let limb = bit / base_bits and off = bit mod base_bits in
      r.(limb) <- r.(limb) lor ((byte lsl off) land base_mask);
      if off > base_bits - 8 && limb + 1 < limbs then r.(limb + 1) <- r.(limb + 1) lor (byte lsr (base_bits - off))
    done;
    normalize r
  end

let to_bytes_be a =
  let bits = bit_length a in
  let n = (bits + 7) / 8 in
  let out = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    (* byte i counts from the most significant end *)
    let lo_bit = (n - 1 - i) * 8 in
    let v = ref 0 in
    for b = 7 downto 0 do
      v := (!v lsl 1) lor (if test_bit a (lo_bit + b) then 1 else 0)
    done;
    Bytes.set out i (Char.chr !v)
  done;
  Bytes.unsafe_to_string out

let to_bytes_be_padded ~len a =
  let s = to_bytes_be a in
  let n = String.length s in
  if n > len then invalid_arg "Nat.to_bytes_be_padded: value too large";
  String.make (len - n) '\000' ^ s

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  let acc = ref zero in
  let ten = of_int 10 in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_decimal: non-digit")
    s;
  !acc

let to_decimal a =
  if is_zero a then "0"
  else begin
    let chunk = of_int 1_000_000_000 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod a chunk in
        let digits = to_int r in
        if is_zero q then string_of_int digits :: acc else go q (Printf.sprintf "%09d" digits :: acc)
      end
    in
    String.concat "" (go a [])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
