(** SHA-256 (FIPS 180-4). Pure OCaml, unsafe fully-unrolled core.

    The default digest for all WORM signatures, deletion proofs, window
    bounds and chained record hashes. The reference (safe, loop-based)
    implementation this core is checked byte-for-byte against lives in
    [test/support/ref_hash.ml].

    A context is single-use: finalizing it ({!get} / {!digest_into})
    marks it finalized, and any further {!feed}/{!get} on it raises
    [Invalid_argument] — it never silently yields garbage. *)

type ctx

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** @raise Invalid_argument if the context was already finalized. *)

val feed_sub : ctx -> string -> pos:int -> len:int -> unit
(** [feed_sub ctx s ~pos ~len] feeds [s[pos .. pos+len-1]] without
    materialising a substring: whole 64-byte blocks are compressed
    directly out of [s].
    @raise Invalid_argument on a finalized context or out-of-bounds
    range. *)

val get : ctx -> string
(** Finalize and return the 32-byte digest. The context is dead
    afterwards: any further use raises [Invalid_argument]. *)

val digest_into : ctx -> Bytes.t -> pos:int -> unit
(** Finalize, writing the 32 digest bytes into [out] at [pos] — no
    intermediate string. Same single-use semantics as {!get}. *)

val digest : string -> string
val digest_sub : string -> pos:int -> len:int -> string

val digest_parts : string list -> string
(** Digest the concatenation of the parts without concatenating them. *)

val digest_many : ?pool:Worm_util.Pool.t -> string array -> string array
(** Multi-buffer hashing: [digest_many ~pool inputs] is
    [Array.map digest inputs] with the independent digests fanned out
    across the domain pool. With no pool, a 1-domain pool, or fewer than
    two inputs it runs sequentially — byte-identical results either
    way. *)

val digest_parts_many : ?pool:Worm_util.Pool.t -> string list array -> string array
(** {!digest_parts} over each element, pooled like {!digest_many}. *)

val hex_digest : string -> string
