module Disk = Worm_simdisk.Disk
module Clock = Worm_simclock.Clock
module Sha256 = Worm_crypto.Sha256
open Worm_core

type record_id = int

type meta = { rdl : Disk.addr list; checksum : string; created_at : int64; policy : Policy.t; deleted : bool }

type t = {
  disk : Disk.t;
  clock : Clock.t;
  (* "logically unaddressable" checksum + metadata region — still just
     host memory, which is the whole problem *)
  table : (record_id, meta) Hashtbl.t;
  mutable next_id : int;
}

let create ?disk ~clock () =
  let disk =
    match disk with
    | Some d -> d
    | None -> Disk.create ()
  in
  { disk; clock; table = Hashtbl.create 256; next_id = 0 }

(* Same digest as [Sha256.digest (String.concat "\x00" blocks)], minus
   the concatenation. *)
let rec sep_parts = function
  | [] -> []
  | [ b ] -> [ b ]
  | b :: rest -> b :: "\x00" :: sep_parts rest

let checksum_of blocks = Sha256.digest_parts (sep_parts blocks)

let write t ~policy ~blocks =
  let id = t.next_id in
  t.next_id <- id + 1;
  let rdl = List.map (Disk.write t.disk) blocks in
  Hashtbl.replace t.table id
    { rdl; checksum = checksum_of blocks; created_at = Clock.now t.clock; policy; deleted = false };
  id

type read_result = Ok_data of string list | Checksum_mismatch | Deleted | Never_written

let read t id =
  match Hashtbl.find_opt t.table id with
  | None -> Never_written
  | Some meta when meta.deleted -> Deleted
  | Some meta -> begin
      let blocks = List.map (Disk.read t.disk) meta.rdl in
      if List.exists Option.is_none blocks then Checksum_mismatch
      else begin
        let blocks = List.filter_map Fun.id blocks in
        if String.equal (checksum_of blocks) meta.checksum then Ok_data blocks else Checksum_mismatch
      end
    end

let delete t id =
  match Hashtbl.find_opt t.table id with
  | None -> Error "no such record"
  | Some meta when meta.deleted -> Error "already deleted"
  | Some meta ->
      let expiry = Int64.add meta.created_at meta.policy.Policy.retention_ns in
      if Int64.compare (Clock.now t.clock) expiry <= 0 then Error "retention period has not lapsed"
      else begin
        List.iter (fun rd -> ignore (Disk.shred t.disk ~passes:meta.policy.Policy.shred_passes rd)) meta.rdl;
        Hashtbl.replace t.table id { meta with deleted = true };
        Ok ()
      end

let record_count t = Hashtbl.fold (fun _ m acc -> if m.deleted then acc else acc + 1) t.table 0

module Raw = struct
  let tamper_and_fix_checksum t id blocks' =
    match Hashtbl.find_opt t.table id with
    | None -> false
    | Some meta when meta.deleted -> false
    | Some meta ->
        if List.length blocks' <> List.length meta.rdl then false
        else begin
          List.iter2 (fun rd b -> ignore (Disk.Raw.tamper t.disk rd ~f:(fun _ -> b))) meta.rdl blocks';
          Hashtbl.replace t.table id { meta with checksum = checksum_of blocks' };
          true
        end

  let hide t id =
    match Hashtbl.find_opt t.table id with
    | None -> false
    | Some meta ->
        List.iter (fun rd -> ignore (Disk.Raw.delete t.disk rd)) meta.rdl;
        Hashtbl.remove t.table id;
        true

  let force_delete t id =
    match Hashtbl.find_opt t.table id with
    | None -> false
    | Some meta ->
        List.iter (fun rd -> ignore (Disk.Raw.delete t.disk rd)) meta.rdl;
        Hashtbl.replace t.table id { meta with deleted = true };
        true
end
