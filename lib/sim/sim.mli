(** Throughput simulation (the paper's §5 evaluation).

    Runs real protocol traffic — genuine RSA signatures, hashes, disk
    and VRDT updates — through a {!Worm_core.Worm} store while the cost
    models charge virtual time to three resource ledgers: the SCPU
    (Table 2's IBM 4764 column), the host CPU (the P4 column), and the
    disk. In steady state the pipeline's throughput is set by its
    slowest stage, so

    {v throughput = records / max(scpu, host, disk busy time) v}

    which is what Figure 1 plots against record size for the different
    witnessing modes. Costs per record are deterministic, so modest
    record counts give exact results. *)

type mode = {
  label : string;
  witness : Worm_core.Firmware.witness_mode;
  datasig : Worm_core.Worm.datasig_mode;
}

val mode_strong_scpu_hash : mode
(** Sustained operation: 1024-bit signatures, SCPU hashes the data —
    the paper's 450–500 records/s regime. *)

val mode_strong_host_hash : mode
(** Sustained with host-side hashing (§4.2.2's weaker trust model). *)

val mode_weak_scpu_hash : mode
(** Burst: deferred 512-bit signatures, SCPU hashing. *)

val mode_weak_host_hash : mode
(** Burst: deferred 512-bit signatures + host hashing — the paper's
    2000–2500 records/s headline regime. *)

val mode_mac_host_hash : mode
(** Burst: HMAC witnesses — "practically unlimited throughputs at
    levels only restricted by the SCPU–main memory bus" (§4.3). *)

val all_modes : mode list

type measurement = {
  label : string;
  record_bytes : int;
  records : int;
  scpu_s : float;  (** SCPU busy seconds during the burst *)
  host_s : float;
  disk_s : float;
  throughput_rps : float;
  bottleneck : string;  (** "scpu" | "host" | "disk" *)
  idle_scpu_s : float;  (** deferred work paid later (strengthening + audits) *)
  deferred_after_idle : int;  (** must be 0: everything strengthened in time *)
}

type env
(** Shared provisioning (CA, SCPU device, clock) so sweeps don't pay
    RSA key generation per data point. *)

val make_env : ?profile:Worm_scpu.Cost_model.profile -> ?strong_bits:int -> ?weak_bits:int -> seed:string -> unit -> env

val device : env -> Worm_scpu.Device.t
val clock : env -> Worm_simclock.Clock.t

val run_write_burst :
  env ->
  mode:mode ->
  record_bytes:int ->
  records:int ->
  ?disk_latency:Worm_simdisk.Disk.latency_model ->
  unit ->
  measurement
(** One Figure 1 data point: ingest [records] records of [record_bytes]
    each under [mode], then run the idle maintenance and verify the
    deferred queue drained within every security lifetime. *)

val figure1 : env -> ?records:int -> unit -> measurement list
(** The full Figure 1 sweep: {!all_modes} x {!Worm_workload.Workload.figure1_sizes},
    on a fast disk so the WORM layer (not I/O) is what is measured. *)

val local_figure1 :
  profile:Worm_scpu.Cost_model.profile -> ?records:int -> ?sizes:int list -> seed:string -> unit -> measurement list
(** Figure 1 with the SCPU cost model replaced by a profile calibrated
    from measurements on the running host (see
    {!Worm_scpu.Cost_model.of_measurements}): projects what this machine
    would sustain in each witnessing mode. Provisions its own
    environment so the caller's [env] profile is undisturbed. *)

type read_row = {
  read_kind : string;  (** ["found-<n>KB"] or an absence-proof shape *)
  read_record_bytes : int;  (** 0 for absence proofs *)
  sig_verifies : float;  (** public-key verifications per uncached read *)
  uncached_rps : float;
  cached_rps : float;  (** epoch-stable signatures memoized, cost amortized *)
}

val read_projection :
  verify_per_sec:float ->
  hash_bytes_per_sec:float ->
  ?sizes:int list ->
  ?epoch_reads:int ->
  unit ->
  read_row list
(** {!local_figure1}'s counterpart for the §4.2.2 read path, from this
    host's measured verify and hash rates. Reads never involve the SCPU
    (§4.1): an uncached read costs its public-key verifications plus a
    hash over the record bytes. The [cached_rps] column amortizes the
    epoch-stable signatures — current/base bounds, window bounds, per-SN
    deletion proofs — over [epoch_reads] reads per refresh epoch
    (default 1024), modeling {!Worm_core.Client}'s verified-signature
    memo. Per-record witnesses are never cached, so found-record rows
    are identical in both columns. *)

val io_bottleneck : env -> ?records:int -> record_bytes:int -> unit -> (float * measurement) list
(** §5's closing observation: sweep disk seek latency 0–8 ms and watch
    the bottleneck shift from the WORM layer to I/O. Returns
    [(seek_ms, measurement)] rows. *)

type ablation_row = {
  n : int;  (** records inserted *)
  window_scpu_us_per_update : float;
  merkle_scpu_us_per_update : float;
  merkle_hashes_per_update : float;
}

val window_vs_merkle : env -> ns:int list -> ablation_row list
(** §2.3/§4.1 ablation: constant-cost window authentication versus
    O(log n) Merkle maintenance, as store size grows. Uses 1-byte
    records so authentication (not data hashing) dominates. *)

type read_mix_row = {
  write_fraction : float;
  ops_per_sec : float;
  scpu_us_per_op : float;  (** average SCPU time per operation *)
  mix_bottleneck : string;
}

val read_mix : env -> ?ops:int -> record_bytes:int -> unit -> read_mix_row list
(** §4.1's design payoff: "the SCPU is involved in updates only but not
    in reads, thus minimizing the overhead for a query load dominated by
    read queries". Sweeps the write fraction from read-only to
    write-only; SCPU cost per operation scales with the write fraction
    and a read-heavy store runs at disk speed. *)

type scaling_row = {
  scpus : int;
  aggregate_rps : float;
  speedup : float;  (** relative to one SCPU *)
  scaling_bottleneck : string;
}

val multi_scpu_scaling :
  ?strong_bits:int -> ?record_bytes:int -> ?records:int -> seed:string -> scpus_list:int list -> unit -> scaling_row list
(** §5: "These results naturally scale if multiple SCPUs are available."
    Round-robin record ingest across k SCPU-backed stores, each with its
    own disk, all sharing one host CPU; aggregate throughput is limited
    by the busiest resource. This is a projection (k stores driven in a
    plain loop, host cost summed); {!cluster_scaling} is the measured
    counterpart that drives a real {!Worm_cluster.Shard_router}. *)

type cluster_shard_row = {
  cs_shard : int;
  cs_records : int;
  cs_scpu_s : float;
  cs_host_s : float;
  cs_disk_s : float;
  cs_rps : float;  (** this shard's stripe alone, at its own bottleneck *)
  cs_bottleneck : string;
}

type cluster_row = {
  cl_shards : int;
  cl_records : int;
  cl_aggregate_rps : float;  (** whole workload over the slowest shard's busy time *)
  cl_speedup : float;  (** relative to the measured 1-shard cluster *)
  cl_bottleneck_shard : int;
  cl_bottleneck : string;  (** saturated resource on that shard *)
  cl_makespan_s : float;  (** slowest shard's event-loop virtual makespan *)
  cl_flushes : int;  (** batched signing flushes across all shard loops *)
  cl_proof_ok : bool;  (** aggregated freshness proof verified against the CA *)
  cl_global_current_ok : bool;  (** proof's coherent global bound equals records written *)
  cl_fingerprint_match : bool;  (** every global serial's verified content matches the sequential single store *)
  cl_shard_rows : cluster_shard_row list;
  cl_minor_words_per_req : float;
      (** wire-path minor-heap words per request across the shard event
          loops (encode/decode/framing only; store dispatch and client
          callbacks excluded) — real-machine cost, not part of the
          virtual-time model *)
  cl_host_rps : float;  (** requests per second of real host CPU across the shard loops *)
}

val cluster_scaling :
  ?record_bytes:int ->
  ?records:int ->
  ?strong_bits:int ->
  ?weak_bits:int ->
  seed:string ->
  shards_list:int list ->
  unit ->
  cluster_row list
(** Measured multi-SCPU scaling: for each N in [shards_list], provision
    a real N-shard {!Worm_cluster.Shard_router} (independent SCPU +
    disk + host ledger per shard), mount one batching
    {!Worm_proto.Event_server} per shard over its
    {!Worm_proto.Cluster_server.shard_server}, drive the interleaved
    stripe of the same [records]-record workload through each loop, and
    report aggregate throughput from the per-shard busy ledgers — no
    multiplied projections. Every run is gated: the aggregated
    {!Worm_cluster.Cluster_proof} must verify and its coherent global
    bound must equal the record count, and reading every global serial
    back through the router must produce verdicts and content digests
    identical to a sequential single-store run of the same payloads. *)

type storage_row = { stage : string; vrdt_bytes : int; entries : int; windows : int }

val storage_reduction : env -> ?records:int -> ?long_lived_every:int -> unit -> storage_row list
(** §4.2.1's stated motivation: "Serial number issuing and VRDT
    management are designed to minimize the VRDT-related storage."
    Ingest a mixed-retention load (every [long_lived_every]-th record is
    long-lived, the rest expire), run the RM, and report the VRDT
    footprint before expiry, with per-record deletion proofs, and after
    window collapsing expels them. *)

type burst_row = {
  arrival_rps : float;  (** burst write arrival rate *)
  max_burst_min : float;
      (** longest burst (minutes) whose strengthening debt still clears
          within the weak constructs' security lifetime *)
  debt_per_sec : float;  (** strengthening signatures accrued per burst second *)
}

val burst_sustainability :
  ?profile:Worm_scpu.Cost_model.profile ->
  ?strong_bits:int ->
  ?weak_lifetime_min:float ->
  ?rates:float list ->
  unit ->
  burst_row list
(** §4.3 quantified: the paper allows deferred-construct bursts "of no
    more than 60-180 minutes (life-time of the short-lived constructs)".
    A burst at arrival rate [r] accrues strengthening debt at [2r]
    signatures/s; draining it FIFO at the strong key's rate [s] after
    the burst, every weak witness must be re-signed within its lifetime
    [L], giving

    {v T_max = L * min(1, s / (2r)) v}

    — the paper's "no more than the lifetime" bound when the strong key
    can keep pace ([2r <= s]), and the tighter repayment bound above it.
    Rows where [T_max < L] tell the operator the lifetime alone is not
    the binding constraint at that rate. *)

type day_phase = { label : string; rate_per_sec : float; duration_s : float }

type day_row = {
  phase : string;
  writes : int;
  strong : int;
  weak : int;
  mac : int;
  overdue_after : int;  (** deferred entries past their lifetime — must be 0 *)
}

val adaptive_day : env -> ?phases:day_phase list -> unit -> day_row list
(** Drive a store through load phases with the §4.3 {!Worm_core.Adaptive}
    controller choosing the witness strength per write, running idle
    maintenance between phases. Default phases model a trading day:
    opening burst, steady trading, lunch trickle, closing flood. The
    invariant checked per row: no deferred witness ever outlives its
    security lifetime. *)

type audit_row = {
  slice_budget_ms : float;  (** host budget per scrubber slice *)
  audit_records : int;  (** per-SN outcomes verified in the pass *)
  audit_slices : int;
  scanned_per_slice : float;
  scrub_host_s : float;  (** host CPU for the complete pass *)
  audit_baseline_rps : float;  (** ingest throughput, no scrubbing *)
  with_scrub_rps : float;  (** ingest throughput amortizing one scrub pass *)
  audit_overhead_pct : float;
  audit_findings : int;  (** must be 0 on an honest store *)
}

val audit_overhead : env -> ?records:int -> ?record_bytes:int -> ?budgets_ms:float list -> unit -> audit_row list
(** Steady-state cost of the continuous compliance scrubber
    ({!Worm_audit.Scrubber}): populate a store, complete one full audit
    pass in budgeted slices, and report how amortizing per-record
    verification into the ingest pipeline moves write throughput.
    Tighter budgets take more slices but the same total work — the
    knob trades audit latency against per-tick jitter, not total
    overhead. *)

type erasure_row = {
  tenant_records : int;  (** records the erased tenant owned *)
  erase_scpu_us : float;  (** SCPU busy time for the whole erasure (flat) *)
  erase_host_us : float;  (** host busy time for the whole erasure (flat) *)
  shred_disk_us : float;  (** disk busy time to shred the same records (linear) *)
}

val tenant_erasure : env -> ?volumes:int list -> ?record_bytes:int -> unit -> erasure_row list
(** O(1) crypto-erasure versus per-record shredding: for each volume in
    [volumes] (default spans 10 to 10,000 — three orders of magnitude),
    seal that many records under one tenant's key hierarchy, measure
    the disk time a key-less design would spend overwriting them, then
    measure {!Worm_core.Worm.erase_tenant} on the busy ledgers. Every
    row is gated before it is returned: the SCPU-signed erasure
    certificate must verify against the CA-rooted deletion certificate,
    every erased serial must read back as a provable properly-erased
    verdict, and a bystander tenant's end-to-end verdicts must be
    identical before and after the erasure.
    @raise Failure if any gate fails. *)

type fault_row = {
  fault_label : string;  (** fault kind, ["clean"] for the baseline *)
  injected_rate : float;
  fault_attempts : int;  (** physical transport calls for the full audit *)
  fault_retries : int;
  fault_resumes : int;  (** extra audit round trips vs. the clean run *)
  fault_reverifications : int;  (** confirming re-reads of violating verdicts *)
  wire_ms : float;  (** virtual wire + retry-wait time (Netsim ledger) *)
  wire_overhead : float;  (** [wire_ms] relative to the clean run *)
  fault_verdicts_match : bool;  (** violations/coverage identical to clean *)
}

val remote_fault_tolerance :
  ?records:int -> ?batch:int -> ?rates:float list -> seed:string -> unit -> fault_row list
(** Cost of graceful degradation on the wire: run
    {!Worm_proto.Remote_client.run_remote_audit_to_completion} against
    an honest store behind a {!Worm_proto.Faulty} transport (drop,
    garble, truncate, duplicate, delay at each rate in [rates], plus a
    bounded crash outage), with retry backoff charged to the
    {!Worm_proto.Netsim} ledger. Every row must report
    [fault_verdicts_match = true]: injected faults may only cost wire
    time and retries, never change what the audit concludes. *)

val pp_fault_row : Format.formatter -> fault_row -> unit

type latency_summary = { p50_ms : float; p95_ms : float; p99_ms : float; mean_ms : float; max_ms : float }

type multi_client_result = {
  mc_clients : int;
  mc_virtual_s : float;  (** event-run virtual makespan *)
  mc_writes_acked : int;
  mc_reads_ok : int;  (** read-after-write replies that verified clean *)
  mc_gave_up : int;
  mc_shed : int;  (** writes answered Busy by admission control *)
  mc_flushes : int;  (** cross-client signing batches *)
  mc_strengthened_in_run : int;  (** debt repaid by shed slots during serving *)
  mc_deferred_after : int;  (** debt ledger depth when serving ended *)
  mc_sign_calls : int;  (** SCPU signing invocations, batched event run *)
  mc_baseline_sign_calls : int;  (** same workload served sequentially, unbatched *)
  mc_write_latency : latency_summary;
  mc_read_latency : latency_summary;
  mc_fingerprint_match : bool;
      (** after both stores drained their deferred debt, every client's
          record read back with the same verified verdict in the faulty
          batched run as in the sequential clean run *)
  mc_fault_stats : Worm_proto.Faulty.stats option;
  mc_requests : int;  (** completions the event run delivered (or gave up) *)
  mc_minor_words_per_req : float;
      (** wire-path minor-heap words per request, metered by the event
          server around its own encode/decode/framing work — store
          dispatch (signing, hashing, disk) and client callbacks are
          excluded. Real-machine cost, not part of the virtual model. *)
  mc_host_rps : float;  (** requests per second of real host CPU in the event run *)
}

val multi_client :
  ?phases:day_phase list ->
  ?fault_rate:float ->
  ?batch_size:int ->
  ?debt_ceiling:int ->
  ?record_bytes:int ->
  ?strong_bits:int ->
  ?weak_bits:int ->
  seed:string ->
  unit ->
  multi_client_result
(** Drive one writer per arrival of [phases] (default {!default_day})
    through the real {!Worm_proto.Message} / {!Worm_proto.Server} stack
    twice: once through {!Worm_proto.Event_server} with cross-client
    batch witnessing, adaptive witness selection, debt-ceiling admission
    control, and a seeded {!Worm_proto.Faulty} ingress at [fault_rate]
    per fault kind; and once as a sequential no-fault client, which is
    both the unbatched [sign_calls] baseline and the convergence oracle
    for [mc_fingerprint_match]. Each acked write is followed by a
    read-after-write verified with the real client verifier.
    Deterministic in [seed]. *)

val pp_latency : Format.formatter -> latency_summary -> unit
val pp_multi_client : Format.formatter -> multi_client_result -> unit

type table2_row = { operation : string; scpu : string; host : string }

val table2 : ?profile:Worm_scpu.Cost_model.profile -> ?host:Worm_scpu.Cost_model.profile -> unit -> table2_row list
(** Regenerate Table 2 from the calibrated cost models. *)

val pp_measurement : Format.formatter -> measurement -> unit
