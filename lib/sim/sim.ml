module Device = Worm_scpu.Device
module Cost_model = Worm_scpu.Cost_model
module Clock = Worm_simclock.Clock
module Disk = Worm_simdisk.Disk
module Drbg = Worm_crypto.Drbg
module Rsa = Worm_crypto.Rsa
open Worm_core

type mode = { label : string; witness : Firmware.witness_mode; datasig : Worm.datasig_mode }

let mode_strong_scpu_hash = { label = "strong-1024/scpu-hash"; witness = Firmware.Strong_now; datasig = Worm.Scpu_hashes }
let mode_strong_host_hash = { label = "strong-1024/host-hash"; witness = Firmware.Strong_now; datasig = Worm.Host_hash }
let mode_weak_scpu_hash = { label = "deferred-512/scpu-hash"; witness = Firmware.Weak_deferred; datasig = Worm.Scpu_hashes }
let mode_weak_host_hash = { label = "deferred-512/host-hash"; witness = Firmware.Weak_deferred; datasig = Worm.Host_hash }
let mode_mac_host_hash = { label = "hmac/host-hash"; witness = Firmware.Mac_deferred; datasig = Worm.Host_hash }

let all_modes =
  [ mode_strong_scpu_hash; mode_strong_host_hash; mode_weak_scpu_hash; mode_weak_host_hash; mode_mac_host_hash ]

type measurement = {
  label : string;
  record_bytes : int;
  records : int;
  scpu_s : float;
  host_s : float;
  disk_s : float;
  throughput_rps : float;
  bottleneck : string;
  idle_scpu_s : float;
  deferred_after_idle : int;
}

type env = { ca : Rsa.secret; dev : Device.t; clk : Clock.t; rng : Drbg.t }

let make_env ?(profile = Cost_model.ibm_4764) ?(strong_bits = 1024) ?(weak_bits = 512) ~seed () =
  let rng = Drbg.create ~seed:("sim-env|" ^ seed) in
  let ca = Rsa.generate rng ~bits:1024 in
  let clk = Clock.create () in
  let config = { Device.default_config with strong_bits; weak_bits; profile } in
  let dev = Device.provision ~seed ~clock:clk ~ca ~config ~name:"sim-scpu" () in
  { ca; dev; clk; rng }

let device env = env.dev
let clock env = env.clk

let sec ns = Int64.to_float ns /. 1e9

let run_write_burst env ~mode ~record_bytes ~records ?(disk_latency = Disk.fast_latency) () =
  let disk = Disk.create ~latency:disk_latency () in
  let config =
    { Worm.default_config with datasig_mode = mode.datasig; default_witness = mode.witness }
  in
  let store = Worm.create ~config ~disk ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
  let policy = Policy.of_regulation Policy.Sec17a4 in
  let payloads = List.init records (fun _ -> Worm_workload.Workload.record env.rng ~bytes:record_bytes) in
  Device.reset_busy env.dev;
  Worm.reset_host_busy store;
  Disk.reset_busy disk;
  List.iter (fun blocks -> ignore (Worm.write store ~policy ~blocks)) payloads;
  let scpu_s = sec (Device.busy_ns env.dev) in
  let host_s = sec (Worm.host_busy_ns store) in
  let disk_s = sec (Disk.busy_ns disk) in
  (* Idle period: advance the clock a little and drain the deferred work
     well inside the weak constructs' security lifetime. *)
  Device.reset_busy env.dev;
  Clock.advance env.clk (Clock.ns_of_sec 1.);
  Worm.idle_tick store;
  let idle_scpu_s = sec (Device.busy_ns env.dev) in
  let deferred_after_idle = List.length (Worm.deferred_backlog store) in
  let slowest = max scpu_s (max host_s disk_s) in
  let bottleneck = if slowest = scpu_s then "scpu" else if slowest = host_s then "host" else "disk" in
  {
    label = mode.label;
    record_bytes;
    records;
    scpu_s;
    host_s;
    disk_s;
    throughput_rps = (if slowest <= 0. then infinity else float_of_int records /. slowest);
    bottleneck;
    idle_scpu_s;
    deferred_after_idle;
  }

let figure1 env ?(records = 24) () =
  List.concat_map
    (fun mode ->
      List.map
        (fun record_bytes -> run_write_burst env ~mode ~record_bytes ~records ())
        Worm_workload.Workload.figure1_sizes)
    all_modes

(* Figure 1 re-projected onto a profile calibrated from rates measured
   on the running host (Cost_model.of_measurements): what THIS machine
   would sustain as the SCPU, next to the paper's 2008 hardware. *)
let local_figure1 ~profile ?(records = 24) ?sizes ~seed () =
  let env = make_env ~profile ~seed () in
  let sizes = Option.value sizes ~default:Worm_workload.Workload.figure1_sizes in
  List.concat_map
    (fun mode -> List.map (fun record_bytes -> run_write_burst env ~mode ~record_bytes ~records ()) sizes)
    all_modes

(* The read-path counterpart of local_figure1: project verified-read
   throughput from this host's measured primitive rates. Reads never
   involve the SCPU (§4.1), so the whole budget is host-side public-key
   verification plus data hashing; the cached column amortizes the
   epoch-stable signatures (bounds, windows, deletion proofs) that the
   client's verify memo pays once per epoch instead of once per read.
   Per-record witnesses are never cached, so found-record rows don't
   move. *)
type read_row = {
  read_kind : string;
  read_record_bytes : int;
  sig_verifies : float;
  uncached_rps : float;
  cached_rps : float;
}

let read_projection ~verify_per_sec ~hash_bytes_per_sec ?sizes ?(epoch_reads = 1024) () =
  let sizes = Option.value sizes ~default:Worm_workload.Workload.figure1_sizes in
  let tv = 1. /. verify_per_sec in
  let row kind ~bytes ~sigs ~stable =
    let hash_s = float_of_int bytes /. hash_bytes_per_sec in
    let uncached_s = hash_s +. (sigs *. tv) in
    let cached_s =
      if stable then hash_s +. (sigs *. tv /. float_of_int (max 1 epoch_reads)) else uncached_s
    in
    {
      read_kind = kind;
      read_record_bytes = bytes;
      sig_verifies = sigs;
      uncached_rps = (if uncached_s <= 0. then infinity else 1. /. uncached_s);
      cached_rps = (if cached_s <= 0. then infinity else 1. /. cached_s);
    }
  in
  List.map
    (fun bytes ->
      (* metasig + datasig, both per-record and therefore uncacheable *)
      row (Printf.sprintf "found-%dKB" (bytes / 1024)) ~bytes ~sigs:2. ~stable:false)
    sizes
  @ [
      row "deleted" ~bytes:0 ~sigs:1. ~stable:true;
      row "deletion-window" ~bytes:0 ~sigs:2. ~stable:true;
      row "below-base" ~bytes:0 ~sigs:1. ~stable:true;
      row "above-current" ~bytes:0 ~sigs:1. ~stable:true;
    ]

let io_bottleneck env ?(records = 24) ~record_bytes () =
  let seeks_ms = [ 0.0; 0.5; 1.0; 2.0; 3.5; 5.0; 8.0 ] in
  List.map
    (fun seek_ms ->
      let disk_latency = { Disk.seek_ns = Clock.ns_of_ms seek_ms; bytes_per_sec = 100e6 } in
      (seek_ms, run_write_burst env ~mode:mode_strong_scpu_hash ~record_bytes ~records ~disk_latency ()))
    seeks_ms

type ablation_row = {
  n : int;
  window_scpu_us_per_update : float;
  merkle_scpu_us_per_update : float;
  merkle_hashes_per_update : float;
}

let window_vs_merkle env ~ns =
  List.map
    (fun n ->
      (* Window scheme: per-update SCPU cost is independent of store
         size, so a sample of inserts suffices. *)
      let sample = min n 64 in
      let disk = Disk.create ~latency:Disk.zero_latency () in
      let store = Worm.create ~disk ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
      let policy = Policy.of_regulation Policy.Sec17a4 in
      Device.reset_busy env.dev;
      for _ = 1 to sample do
        ignore (Worm.write store ~policy ~blocks:[ "x" ])
      done;
      let window_us = sec (Device.busy_ns env.dev) *. 1e6 /. float_of_int sample in
      (* Merkle baseline: populate to n (bulk, uncharged), then measure
         appends at size n. *)
      let mstore = Worm_baseline.Merkle_store.create ~device:env.dev ~capacity:(n + sample) in
      Worm_baseline.Merkle_store.bulk_load mstore (List.init n (fun _ -> "x"));
      Device.reset_busy env.dev;
      let hashes_before = (Device.stats env.dev).Device.hash_ops in
      for _ = 1 to sample do
        ignore (Worm_baseline.Merkle_store.append mstore "x")
      done;
      let merkle_us = sec (Device.busy_ns env.dev) *. 1e6 /. float_of_int sample in
      let hashes = (Device.stats env.dev).Device.hash_ops - hashes_before in
      {
        n;
        window_scpu_us_per_update = window_us;
        merkle_scpu_us_per_update = merkle_us;
        merkle_hashes_per_update = float_of_int hashes /. float_of_int sample;
      })
    ns

type read_mix_row = { write_fraction : float; ops_per_sec : float; scpu_us_per_op : float; mix_bottleneck : string }

let read_mix env ?(ops = 200) ~record_bytes () =
  let fractions = [ 0.0; 0.01; 0.1; 0.25; 0.5; 1.0 ] in
  List.map
    (fun write_fraction ->
      let disk = Disk.create ~latency:Disk.fast_latency () in
      let store = Worm.create ~disk ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
      let policy = Policy.of_regulation Policy.Sec17a4 in
      (* seed a few records so reads have targets *)
      let seeds =
        List.init 8 (fun _ -> Worm.write store ~policy ~blocks:(Worm_workload.Workload.record env.rng ~bytes:record_bytes))
      in
      let trace =
        Worm_workload.Workload.mixed_trace env.rng ~ops ~write_fraction ~record_bytes ~policy
      in
      Device.reset_busy env.dev;
      Worm.reset_host_busy store;
      Disk.reset_busy disk;
      List.iter
        (fun op ->
          match op with
          | Worm_workload.Workload.Write { blocks; policy } -> ignore (Worm.write store ~policy ~blocks)
          | Worm_workload.Workload.Read i -> ignore (Worm.read store (List.nth seeds (i mod List.length seeds))))
        trace;
      let scpu_s = sec (Device.busy_ns env.dev) in
      let host_s = sec (Worm.host_busy_ns store) in
      let disk_s = sec (Disk.busy_ns disk) in
      let slowest = max scpu_s (max host_s disk_s) in
      let mix_bottleneck = if slowest = scpu_s then "scpu" else if slowest = host_s then "host" else "disk" in
      {
        write_fraction;
        ops_per_sec = (if slowest <= 0. then infinity else float_of_int ops /. slowest);
        scpu_us_per_op = scpu_s /. float_of_int ops *. 1e6;
        mix_bottleneck;
      })
    fractions

type scaling_row = { scpus : int; aggregate_rps : float; speedup : float; scaling_bottleneck : string }

let multi_scpu_scaling ?(strong_bits = 1024) ?(record_bytes = 1024) ?(records = 48) ~seed ~scpus_list () =
  let rng = Drbg.create ~seed:("multi-scpu|" ^ seed) in
  let ca = Rsa.generate rng ~bits:1024 in
  let clk = Clock.create () in
  let device_config = { Device.default_config with Device.strong_bits } in
  let max_k = List.fold_left max 1 scpus_list in
  (* one device pool reused across rows so keygen is paid once *)
  let devices =
    Array.init max_k (fun i ->
        Device.provision
          ~seed:(Printf.sprintf "%s-%d" seed i)
          ~clock:clk ~ca ~config:device_config
          ~name:(Printf.sprintf "scpu-%d" i)
          ())
  in
  let run k =
    (* Each SCPU owns its disk, as in the real cluster: a single shared
       spindle would serialize k independent stores and misattribute
       every disk-heavy row. The host column stays summed — this is the
       paper's k-SCPUs-in-one-host projection, the measured counterpart
       with per-shard hosts is [cluster_scaling]. *)
    let disks = Array.init k (fun _ -> Disk.create ~latency:Disk.fast_latency ()) in
    let config = { Worm.default_config with datasig_mode = Worm.Host_hash } in
    let stores =
      List.init k (fun i -> Worm.create ~config ~disk:disks.(i) ~device:devices.(i) ~ca:(Rsa.public_of ca) ())
    in
    Array.iter Device.reset_busy devices;
    List.iter Worm.reset_host_busy stores;
    Array.iter Disk.reset_busy disks;
    let policy = Policy.of_regulation Policy.Sec17a4 in
    let payloads = List.init records (fun _ -> Worm_workload.Workload.record rng ~bytes:record_bytes) in
    List.iteri
      (fun i blocks -> ignore (Worm.write (List.nth stores (i mod k)) ~policy ~blocks))
      payloads;
    let scpu_busy =
      List.fold_left (fun acc i -> max acc (sec (Device.busy_ns devices.(i)))) 0. (List.init k Fun.id)
    in
    let host_busy = List.fold_left (fun acc store -> acc +. sec (Worm.host_busy_ns store)) 0. stores in
    let disk_busy = Array.fold_left (fun acc d -> max acc (sec (Disk.busy_ns d))) 0. disks in
    let slowest = max scpu_busy (max host_busy disk_busy) in
    let bottleneck =
      if slowest = scpu_busy then "scpu" else if slowest = host_busy then "host" else "disk"
    in
    (float_of_int records /. slowest, bottleneck)
  in
  let single_rps = ref None in
  List.map
    (fun k ->
      let rps, bottleneck = run k in
      let base =
        match !single_rps with
        | Some r -> r
        | None ->
            let r, _ = run 1 in
            single_rps := Some r;
            r
      in
      { scpus = k; aggregate_rps = rps; speedup = rps /. base; scaling_bottleneck = bottleneck })
    scpus_list


type storage_row = { stage : string; vrdt_bytes : int; entries : int; windows : int }

let storage_reduction env ?(records = 400) ?(long_lived_every = 25) () =
  let disk = Disk.create ~latency:Disk.zero_latency () in
  let store = Worm.create ~disk ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 100.) ~shred_passes:1 in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_years 10.) ~shred_passes:1 in
  for i = 1 to records do
    let policy = if i mod long_lived_every = 0 then long else short in
    ignore (Worm.write store ~policy ~blocks:[ Printf.sprintf "record-%d" i ])
  done;
  let snap stage =
    {
      stage;
      vrdt_bytes = Worm.vrdt_bytes store;
      entries = Vrdt.entry_count (Worm.vrdt store);
      windows = List.length (Worm.deletion_windows store);
    }
  in
  let live = snap "all live" in
  Clock.advance env.clk (Clock.ns_of_sec 200.);
  (* drain in waves in case VEXP capacity shed some entries *)
  for _ = 1 to 4 do
    ignore (Worm.expire_due store);
    ignore (Worm.refeed_vexp store)
  done;
  let proofs = snap "expired, per-record proofs" in
  ignore (Worm.compact_windows store);
  let compacted = snap "windows collapsed" in
  [ live; proofs; compacted ]

type burst_row = { arrival_rps : float; max_burst_min : float; debt_per_sec : float }

let burst_sustainability ?(profile = Cost_model.ibm_4764) ?(strong_bits = 1024)
    ?(weak_lifetime_min = 120.) ?(rates = [ 100.; 424.; 848.; 1500.; 2096.; 4000. ]) () =
  let s = Cost_model.rsa_sign_per_sec profile ~bits:strong_bits in
  List.map
    (fun arrival_rps ->
      let debt_per_sec = 2. *. arrival_rps in
      let max_burst_min = weak_lifetime_min *. Float.min 1. (s /. debt_per_sec) in
      { arrival_rps; max_burst_min; debt_per_sec })
    rates

type day_phase = { label : string; rate_per_sec : float; duration_s : float }

type day_row = { phase : string; writes : int; strong : int; weak : int; mac : int; overdue_after : int }

let default_day =
  [
    { label = "opening burst"; rate_per_sec = 2000.; duration_s = 0.25 };
    { label = "steady trading"; rate_per_sec = 100.; duration_s = 2. };
    { label = "lunch trickle"; rate_per_sec = 20.; duration_s = 2. };
    { label = "closing flood"; rate_per_sec = 8000.; duration_s = 0.5 };
  ]

let adaptive_day env ?(phases = default_day) () =
  let config = { Worm.default_config with datasig_mode = Worm.Host_hash } in
  let store = Worm.create ~config ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
  let controller =
    Worm_core.Adaptive.create ~profile:(Device.config env.dev).Device.profile
      ~device_config:(Device.config env.dev) ()
  in
  let policy = Policy.of_regulation Policy.Sec17a4 in
  List.map
    (fun { label; rate_per_sec; duration_s } ->
      let n = max 1 (int_of_float (rate_per_sec *. duration_s)) in
      let strong = ref 0 and weak = ref 0 and mac = ref 0 in
      for _ = 1 to n do
        Clock.advance env.clk (Int64.of_float (1e9 /. rate_per_sec));
        let now = Clock.now env.clk in
        Worm_core.Adaptive.note_write controller ~now;
        let witness =
          Worm_core.Adaptive.recommend controller ~now
            ~deferred_backlog:(List.length (Worm.deferred_backlog store))
        in
        (match witness with
        | Firmware.Strong_now -> incr strong
        | Firmware.Weak_deferred -> incr weak
        | Firmware.Mac_deferred -> incr mac);
        ignore (Worm.write store ~witness ~policy ~blocks:[ "r" ])
      done;
      let overdue_after = List.length (Worm.deferred_overdue store ~now:(Clock.now env.clk)) in
      (* inter-phase quiet spell: drain the debt *)
      Clock.advance env.clk (Clock.ns_of_min 5.);
      Worm.idle_tick store;
      { phase = label; writes = n; strong = !strong; weak = !weak; mac = !mac; overdue_after })
    phases

type table2_row = { operation : string; scpu : string; host : string }

let table2 ?(profile = Cost_model.ibm_4764) ?(host = Cost_model.host_p4) () =
  let sig_row bits =
    {
      operation = Printf.sprintf "RSA sig, %d bits" bits;
      scpu = Printf.sprintf "%.0f/s" (Cost_model.rsa_sign_per_sec profile ~bits);
      host = Printf.sprintf "%.0f/s" (Cost_model.rsa_sign_per_sec host ~bits);
    }
  in
  let hash_row block label =
    {
      operation = Printf.sprintf "SHA-1, %s blocks" label;
      scpu = Printf.sprintf "%.2f MB/s" (Cost_model.hash_mb_per_sec profile ~block_bytes:block);
      host = Printf.sprintf "%.1f MB/s" (Cost_model.hash_mb_per_sec host ~block_bytes:block);
    }
  in
  [
    sig_row 512;
    sig_row 1024;
    sig_row 2048;
    hash_row 1024 "1 KB";
    hash_row 65536 "64 KB";
    {
      operation = "DMA transfer, end-to-end";
      scpu = Printf.sprintf "%.1f MB/s" (profile.Cost_model.dma_bytes_per_sec /. 1e6);
      host = Printf.sprintf "%.0f MB/s" (host.Cost_model.dma_bytes_per_sec /. 1e6);
    };
  ]

type audit_row = {
  slice_budget_ms : float;
  audit_records : int;
  audit_slices : int;
  scanned_per_slice : float;
  scrub_host_s : float;
  audit_baseline_rps : float;
  with_scrub_rps : float;
  audit_overhead_pct : float;
  audit_findings : int;
}

(* Steady-state cost of continuous compliance scrubbing: write a corpus,
   then complete one full audit pass in budgeted slices and compare the
   sustainable ingest rate with and without amortizing one verification
   pass per record lifetime. *)
let audit_overhead env ?(records = 150) ?(record_bytes = 1024) ?(budgets_ms = [ 0.5; 2.0; 10.0 ]) () =
  List.map
    (fun budget_ms ->
      let disk = Disk.create ~latency:Disk.fast_latency () in
      let store = Worm.create ~disk ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
      let policy = Policy.of_regulation Policy.Sec17a4 in
      let payloads = List.init records (fun _ -> Worm_workload.Workload.record env.rng ~bytes:record_bytes) in
      Device.reset_busy env.dev;
      Worm.reset_host_busy store;
      Disk.reset_busy disk;
      List.iter (fun blocks -> ignore (Worm.write store ~policy ~blocks)) payloads;
      let write_scpu_s = sec (Device.busy_ns env.dev) in
      let write_host_s = sec (Worm.host_busy_ns store) in
      let write_disk_s = sec (Disk.busy_ns disk) in
      let write_slowest = Float.max write_scpu_s (Float.max write_host_s write_disk_s) in
      let client = Client.for_store ~ca:(Rsa.public_of env.ca) ~clock:env.clk store in
      let config =
        {
          Worm_audit.Scrubber.default_config with
          slice_budget_ns = Clock.ns_of_ms budget_ms;
        }
      in
      let scrubber = Worm_audit.Scrubber.create ~config ~store ~client () in
      Worm.reset_host_busy store;
      let report = Worm_audit.Scrubber.run_pass scrubber in
      let scrub_host_s = sec (Worm.host_busy_ns store) in
      let baseline_rps = if write_slowest <= 0. then infinity else float_of_int records /. write_slowest in
      (* Steady state: every record written is also scrubbed once per
         pass, so the ingest pipeline carries both costs. *)
      let with_scrub_slowest = Float.max (write_host_s +. scrub_host_s) (Float.max write_scpu_s write_disk_s) in
      let with_scrub_rps =
        if with_scrub_slowest <= 0. then infinity else float_of_int records /. with_scrub_slowest
      in
      {
        slice_budget_ms = budget_ms;
        audit_records = report.Worm_audit.Report.records_scanned;
        audit_slices = report.Worm_audit.Report.slices;
        scanned_per_slice =
          float_of_int report.Worm_audit.Report.records_scanned
          /. float_of_int (max 1 report.Worm_audit.Report.slices);
        scrub_host_s;
        audit_baseline_rps = baseline_rps;
        with_scrub_rps;
        audit_overhead_pct =
          (if baseline_rps > 0. && baseline_rps <> infinity then
             100. *. (baseline_rps -. with_scrub_rps) /. baseline_rps
           else 0.);
        audit_findings = List.length report.Worm_audit.Report.findings;
      })
    budgets_ms

type erasure_row = {
  tenant_records : int;
  erase_scpu_us : float;
  erase_host_us : float;
  shred_disk_us : float;
}

(* The right to be forgotten: destroying one per-tenant key inside the
   SCPU erases every record the tenant ever wrote, in time independent
   of how many there are. Sweep the tenant's volume across three or
   more orders of magnitude; the shred baseline (overwrite every block
   through the disk, as a key-less design must) grows linearly while
   the crypto-erasure columns stay flat. Each row is gated: the
   SCPU-signed erasure certificate must verify against the CA-rooted
   deletion certificate, every erased read must come back
   properly-erased, and a bystander tenant's end-to-end verdicts must
   be identical before and after the neighbour's erasure. *)
let tenant_erasure env ?(volumes = [ 10; 100; 1_000; 10_000 ]) ?(record_bytes = 256) () =
  let policy = Policy.of_regulation Policy.Sec17a4 in
  List.map
    (fun volume ->
      let disk = Disk.create ~latency:Disk.fast_latency () in
      let store = Worm.create ~disk ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
      let client = Client.for_store ~ca:(Rsa.public_of env.ca) ~clock:env.clk store in
      let write tenant =
        Worm.write store ~tenant ~policy ~blocks:(Worm_workload.Workload.record env.rng ~bytes:record_bytes)
      in
      let control = List.init 8 (fun _ -> write "control") in
      let subject = List.init volume (fun _ -> write "subject") in
      let fingerprint () =
        List.map (fun sn -> Client.verdict_name (Client.verify_read client ~sn (Worm.read store sn))) control
      in
      let pre = fingerprint () in
      (* The linear baseline first: walk the tenant's records and
         overwrite each block on the platter. This destroys ciphertext
         the erased read path never touches again, so measuring it on
         the same store is safe. *)
      Disk.reset_busy disk;
      List.iter
        (fun sn ->
          match Vrdt.find (Worm.vrdt store) sn with
          | Some (Vrdt.Active vrd) -> List.iter (fun rd -> ignore (Disk.shred disk ~passes:1 rd)) vrd.Vrd.rdl
          | _ -> failwith "tenant-erasure: subject record missing from the VRDT")
        subject;
      let shred_disk_us = sec (Disk.busy_ns disk) *. 1e6 in
      Device.reset_busy env.dev;
      Worm.reset_host_busy store;
      let cert = Worm.erase_tenant store ~tenant:"subject" in
      let erase_scpu_us = sec (Device.busy_ns env.dev) *. 1e6 in
      let erase_host_us = sec (Worm.host_busy_ns store) *. 1e6 in
      (match Client.verify_erasure_cert client cert with
      | Ok () -> ()
      | Error e -> failwith ("tenant-erasure: certificate rejected: " ^ e));
      List.iter
        (fun sn ->
          match Client.verdict_name (Client.verify_read client ~sn (Worm.read store sn)) with
          | "properly-erased" -> ()
          | v -> failwith (Printf.sprintf "tenant-erasure: erased read came back %s" v))
        subject;
      if not (List.equal String.equal pre (fingerprint ())) then
        failwith "tenant-erasure: bystander tenant's verdicts changed across the erasure";
      { tenant_records = volume; erase_scpu_us; erase_host_us; shred_disk_us })
    volumes

(* ------------------------------------------------------------------ *)
(* Remote audits over a misbehaving wire: how much retry traffic and
   virtual wire time each fault regime costs, and whether the verdicts
   stay identical to a clean run (they must — §3's argument needs every
   transport misbehavior to degrade to a verdict, never to a crash or a
   false accusation). *)

module Netsim = Worm_proto.Netsim
module Faulty = Worm_proto.Faulty
module Server = Worm_proto.Server
module Remote_client = Worm_proto.Remote_client

type fault_row = {
  fault_label : string;  (** fault kind, ["clean"] for the baseline *)
  injected_rate : float;
  fault_attempts : int;  (** physical transport calls for the full audit *)
  fault_retries : int;
  fault_resumes : int;  (** extra runs needed to cover the SN space *)
  fault_reverifications : int;
  wire_ms : float;  (** virtual wire + wait time, Netsim ledger *)
  wire_overhead : float;  (** wire_ms relative to the clean run *)
  fault_verdicts_match : bool;  (** violations/coverage identical to clean *)
}

let fault_fixture ~seed ~records =
  let rng = Drbg.create ~seed:("fault-sim|" ^ seed) in
  let ca = Rsa.generate rng ~bits:1024 in
  let clk = Clock.create () in
  let dev = Device.provision ~seed:("fault-scpu|" ^ seed) ~clock:clk ~ca ~name:"sim-fault-scpu" () in
  let store = Worm.create ~device:dev ~ca:(Rsa.public_of ca) () in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 10.) ~shred_passes:1 in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_sec 3600.) ~shred_passes:1 in
  (* Mixed proof shapes: a deleted bottom region the base bound absorbs,
     a collapsed window behind a live anchor, live records on top. *)
  let quarter = Stdlib.max 1 (records / 4) in
  for i = 1 to quarter do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "below-%d" i ])
  done;
  ignore (Worm.write store ~policy:long ~blocks:[ "anchor" ]);
  for i = 1 to quarter do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "window-%d" i ])
  done;
  for i = 1 to Stdlib.max 1 (records - (2 * quarter) - 1) do
    ignore (Worm.write store ~policy:long ~blocks:[ Printf.sprintf "live-%d" i ])
  done;
  Clock.advance clk (Clock.ns_of_sec 11.);
  ignore (Worm.expire_due store);
  Worm.idle_tick store;
  ignore (Worm.compact_windows store);
  Worm.heartbeat store;
  (Rsa.public_of ca, clk, store)

let remote_fault_tolerance ?(records = 24) ?(batch = 8) ?(rates = [ 0.05; 0.15; 0.3 ]) ~seed () =
  let ca, clk, store = fault_fixture ~seed ~records in
  let server = Server.create store in
  let honest = Server.handle_bytes server in
  let audit_under ~label faults =
    let net = Netsim.create () in
    let transport =
      match faults with
      | [] -> Netsim.wrap net honest
      | faults ->
          let faulty =
            Faulty.create ~seed:("fault-sim|" ^ seed ^ "|" ^ label) ~charge_delay:(Netsim.charge_ns net)
              ~faults honest
          in
          Netsim.wrap net (Faulty.transport faulty)
    in
    match Remote_client.connect ~ca ~clock:clk ~netsim:net transport with
    | Error e -> failwith ("remote_fault_tolerance: handshake failed under " ^ label ^ ": " ^ e)
    | Ok rc ->
        let audit = Remote_client.run_remote_audit_to_completion ~batch rc in
        (audit, Remote_client.transport_stats rc, Netsim.elapsed_ns net)
  in
  let fingerprint (a : Remote_client.remote_audit) =
    ( a.Remote_client.scanned,
      a.Remote_client.skipped_below_base,
      List.map (fun (sn, v) -> (sn, Client.verdict_name v)) a.Remote_client.violations,
      a.Remote_client.resume = None )
  in
  let clean_audit, clean_stats, clean_elapsed = audit_under ~label:"clean" [] in
  let clean_fp = fingerprint clean_audit in
  let ms ns = Int64.to_float ns /. 1e6 in
  let row ~label ~rate faults =
    let audit, stats, elapsed = audit_under ~label faults in
    {
      fault_label = label;
      injected_rate = rate;
      fault_attempts = stats.Remote_client.attempts;
      fault_retries = stats.Remote_client.retries;
      fault_resumes = Stdlib.max 0 (audit.Remote_client.round_trips - clean_audit.Remote_client.round_trips);
      fault_reverifications = stats.Remote_client.reverifications;
      wire_ms = ms elapsed;
      wire_overhead = (if Int64.compare clean_elapsed 0L > 0 then Int64.to_float elapsed /. Int64.to_float clean_elapsed else 1.);
      fault_verdicts_match = fingerprint audit = clean_fp;
    }
  in
  let clean_row =
    {
      fault_label = "clean";
      injected_rate = 0.;
      fault_attempts = clean_stats.Remote_client.attempts;
      fault_retries = clean_stats.Remote_client.retries;
      fault_resumes = 0;
      fault_reverifications = clean_stats.Remote_client.reverifications;
      wire_ms = ms clean_elapsed;
      wire_overhead = 1.;
      fault_verdicts_match = true;
    }
  in
  let per_rate rate =
    [
      row ~label:(Printf.sprintf "drop@%.2f" rate) ~rate [ Faulty.Drop rate ];
      row ~label:(Printf.sprintf "garble@%.2f" rate) ~rate [ Faulty.Garble rate ];
      row ~label:(Printf.sprintf "truncate@%.2f" rate) ~rate [ Faulty.Truncate rate ];
      row ~label:(Printf.sprintf "duplicate@%.2f" rate) ~rate [ Faulty.Duplicate rate ];
      row
        ~label:(Printf.sprintf "delay@%.2f" rate)
        ~rate
        [ Faulty.Delay { p = rate; ns = Clock.ns_of_ms 2. } ];
    ]
  in
  (clean_row :: List.concat_map per_rate rates)
  @ [ row ~label:"crash@4+2" ~rate:0. [ Faulty.Crash { after = 4; down_for = 2 } ] ]

(* ------------------------------------------------------------------ *)
(* Multi-client event serving: thousands of writers multiplexed over
   one store through the event server, writes coalesced across
   connections into single signing flushes, reads interleaved, and a
   sequential no-fault client driving the identical workload as both
   the unbatched signing baseline and the convergence oracle. *)

module Event_server = Worm_proto.Event_server
module Message = Worm_proto.Message

type latency_summary = { p50_ms : float; p95_ms : float; p99_ms : float; mean_ms : float; max_ms : float }

let summarize_latencies ns =
  match List.sort Int64.compare ns with
  | [] -> { p50_ms = 0.; p95_ms = 0.; p99_ms = 0.; mean_ms = 0.; max_ms = 0. }
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let ms v = Int64.to_float v /. 1e6 in
      let pct q = arr.(Stdlib.min (n - 1) (Stdlib.max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))) in
      let total = List.fold_left Int64.add 0L sorted in
      {
        p50_ms = ms (pct 0.50);
        p95_ms = ms (pct 0.95);
        p99_ms = ms (pct 0.99);
        mean_ms = Int64.to_float total /. 1e6 /. float_of_int n;
        max_ms = ms arr.(n - 1);
      }

type multi_client_result = {
  mc_clients : int;
  mc_virtual_s : float;  (** event-run virtual makespan *)
  mc_writes_acked : int;
  mc_reads_ok : int;  (** read-after-write replies that verified clean *)
  mc_gave_up : int;
  mc_shed : int;  (** writes answered Busy by admission control *)
  mc_flushes : int;
  mc_strengthened_in_run : int;  (** debt repaid by shed slots during serving *)
  mc_deferred_after : int;  (** debt ledger depth when serving ended *)
  mc_sign_calls : int;  (** SCPU signing invocations, batched event run *)
  mc_baseline_sign_calls : int;  (** same workload, sequential per-request serving *)
  mc_write_latency : latency_summary;
  mc_read_latency : latency_summary;
  mc_fingerprint_match : bool;  (** faulty batched run converged to the sequential store *)
  mc_fault_stats : Faulty.stats option;
  mc_requests : int;  (** completions the event run delivered (or gave up) *)
  mc_minor_words_per_req : float;  (** wire-path minor-heap words per request *)
  mc_host_rps : float;  (** requests per second of real host CPU in the event run *)
}

(* Arrival times for a demand shape: each phase contributes
   rate * duration writes at fixed inter-arrival gaps. *)
let arrivals_of_phases phases =
  let t = ref 0L in
  List.concat_map
    (fun { rate_per_sec; duration_s; _ } ->
      let n = Stdlib.max 1 (int_of_float (rate_per_sec *. duration_s)) in
      let gap = Int64.of_float (1e9 /. rate_per_sec) in
      List.init n (fun _ ->
          t := Int64.add !t gap;
          !t))
    phases

(* Serving-phase fingerprint: after draining the deferred ledger (so
   witness strength no longer depends on which mode the burst chose),
   read every client's record back and verify it end-to-end with the
   real client verifier. Two runs that converged to the same store
   agree on every verdict name. *)
let mc_fingerprint ~ca ~clk store acks =
  let verifier = Client.for_store ~ca ~clock:clk store in
  Array.to_list
    (Array.mapi
       (fun i ack ->
         match ack with
         | None -> (i, "no-ack")
         | Some sn -> (i, Client.verdict_name (Client.verify_read verifier ~sn (Worm.read store sn))))
       acks)

let mc_drain store =
  let rec go total =
    let n = Worm.strengthen_pending store ~max:256 () in
    if n > 0 then go (total + n) else total
  in
  go 0

let multi_client ?(phases = default_day) ?(fault_rate = 0.08) ?(batch_size = 32) ?(debt_ceiling = 4096)
    ?(record_bytes = 256) ?(strong_bits = 1024) ?(weak_bits = 512) ~seed () =
  let arrivals = arrivals_of_phases phases in
  let clients = List.length arrivals in
  let wl_rng = Drbg.create ~seed:("mc-workload|" ^ seed) in
  let payloads = List.map (fun at -> (at, Worm_workload.Workload.record wl_rng ~bytes:record_bytes)) arrivals in
  let policy = Policy.of_regulation Policy.Sec17a4 in
  let store_config = { Worm.default_config with datasig_mode = Worm.Host_hash; default_witness = Firmware.Weak_deferred } in
  let fresh_stack () =
    let env = make_env ~strong_bits ~weak_bits ~seed:("mc|" ^ seed) () in
    let store = Worm.create ~config:store_config ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
    (env, store, Server.create store)
  in

  (* --- batched event-server run, over a faulty ingress path --- *)
  let env, store, server = fresh_stack () in
  let net = Netsim.create () in
  let faulty =
    if fault_rate <= 0. then None
    else
      Some
        (Faulty.create
           ~seed:("mc-faults|" ^ seed)
           ~charge_delay:(Netsim.charge_ns net)
           ~faults:
             [
               Faulty.Drop fault_rate;
               Faulty.Garble fault_rate;
               Faulty.Truncate fault_rate;
               Faulty.Delay { p = fault_rate; ns = Clock.ns_of_ms 2. };
             ]
           Fun.id)
  in
  let controller = Worm_core.Adaptive.create ~profile:(Device.config env.dev).Device.profile ~device_config:(Device.config env.dev) () in
  let es_config =
    {
      Event_server.default_config with
      batch_size;
      debt_ceiling;
      max_attempts = 10;
      witness = Event_server.Adaptive controller;
    }
  in
  let es = Event_server.create ~config:es_config ?ingress:(Option.map Faulty.transport faulty) ~clock:env.clk ~net server in
  let verifier = Client.for_store ~ca:(Rsa.public_of env.ca) ~clock:env.clk store in
  let acks = Array.make clients None in
  let write_lat = ref [] and read_lat = ref [] and reads_ok = ref 0 in
  List.iteri
    (fun i (at, payload) ->
      Event_server.submit es ~client:i ~at
        (Message.Write { policy; tenant = ""; blocks = payload })
        ~on_reply:(fun (c : Event_server.completion) ->
          match c.Event_server.outcome with
          | Event_server.Replied (Message.Write_ack { sn }) ->
              acks.(i) <- Some sn;
              write_lat := Int64.sub c.Event_server.delivered_ns c.Event_server.submitted_ns :: !write_lat;
              (* read-after-write: fetch the record just acked and
                 verify it like a remote client would *)
              Event_server.submit es ~client:i ~at:c.Event_server.delivered_ns (Message.Read sn)
                ~on_reply:(fun (rc : Event_server.completion) ->
                  match rc.Event_server.outcome with
                  | Event_server.Replied (Message.Read_reply { sn; response }) ->
                      read_lat := Int64.sub rc.Event_server.delivered_ns rc.Event_server.submitted_ns :: !read_lat;
                      (match Client.verify_read verifier ~sn response with
                      | Client.Violation _ -> ()
                      | _ -> incr reads_ok)
                  | _ -> ())
          | _ -> ()))
    payloads;
  (* Real-machine cost columns: the event server meters its own wire
     path (request encode, frame decode, response encode/framing —
     store dispatch and client callbacks excluded), and host CPU is
     wall time of the whole event run. Virtual-time columns are
     untouched — these measure the implementation, not the simulated
     hardware. *)
  let cpu0 = Sys.time () in
  Event_server.run es;
  let host_cpu_s = Sys.time () -. cpu0 in
  let requests = List.length (Event_server.completions es) in
  let wire_words = Event_server.wire_minor_words es in
  let stats = Event_server.stats es in
  let sign_calls = (Device.stats env.dev).Device.sign_calls in
  let deferred_after = Worm.deferred_length store in
  let virtual_s = sec (Clock.now env.clk) in
  ignore (mc_drain store);
  let fp_event = mc_fingerprint ~ca:(Rsa.public_of env.ca) ~clk:env.clk store acks in

  (* --- sequential no-fault baseline: identical workload, one
     request/response at a time through the same wire stack --- *)
  let benv, bstore, bserver = fresh_stack () in
  let backs = Array.make clients None in
  List.iteri
    (fun i (at, payload) ->
      Clock.advance_to benv.clk at;
      let reply = Server.handle_bytes bserver (Message.encode_request (Message.Write { policy; tenant = ""; blocks = payload })) in
      match Message.decode_response reply with
      | Ok (Message.Write_ack { sn }) ->
          backs.(i) <- Some sn;
          ignore (Server.handle_bytes bserver (Message.encode_request (Message.Read sn)))
      | _ -> ())
    payloads;
  let baseline_sign_calls = (Device.stats benv.dev).Device.sign_calls in
  ignore (mc_drain bstore);
  let fp_baseline = mc_fingerprint ~ca:(Rsa.public_of benv.ca) ~clk:benv.clk bstore backs in

  {
    mc_clients = clients;
    mc_virtual_s = virtual_s;
    mc_writes_acked = Array.fold_left (fun acc a -> if a = None then acc else acc + 1) 0 acks;
    mc_reads_ok = !reads_ok;
    mc_gave_up = stats.Event_server.gave_up;
    mc_shed = stats.Event_server.shed;
    mc_flushes = stats.Event_server.flushes;
    mc_strengthened_in_run = stats.Event_server.strengthened;
    mc_deferred_after = deferred_after;
    mc_sign_calls = sign_calls;
    mc_baseline_sign_calls = baseline_sign_calls;
    mc_write_latency = summarize_latencies !write_lat;
    mc_read_latency = summarize_latencies !read_lat;
    mc_fingerprint_match = fp_event = fp_baseline;
    mc_fault_stats = Option.map Faulty.stats faulty;
    mc_requests = requests;
    mc_minor_words_per_req = wire_words /. float_of_int (Stdlib.max 1 requests);
    mc_host_rps = (if host_cpu_s <= 0. then 0. else float_of_int requests /. host_cpu_s);
  }

let pp_latency fmt l =
  Format.fprintf fmt "p50 %.2f / p95 %.2f / p99 %.2f ms (mean %.2f, max %.2f)" l.p50_ms l.p95_ms l.p99_ms l.mean_ms
    l.max_ms

let pp_multi_client fmt r =
  Format.fprintf fmt
    "%d clients in %.2fs virtual: %d acked (%d shed, %d gave up), %d flushes, sign calls %d vs %d sequential \
     (x%.1f), write %a, read %a, verdicts %s"
    r.mc_clients r.mc_virtual_s r.mc_writes_acked r.mc_shed r.mc_gave_up r.mc_flushes r.mc_sign_calls
    r.mc_baseline_sign_calls
    (float_of_int r.mc_baseline_sign_calls /. float_of_int (Stdlib.max 1 r.mc_sign_calls))
    pp_latency r.mc_write_latency pp_latency r.mc_read_latency
    (if r.mc_fingerprint_match then "identical" else "DIVERGED")

let pp_fault_row fmt r =
  Format.fprintf fmt "%-16s %5d calls  %4d retries  %3d reverify  %8.2f ms wire (x%.2f)  verdicts %s"
    r.fault_label r.fault_attempts r.fault_retries r.fault_reverifications r.wire_ms r.wire_overhead
    (if r.fault_verdicts_match then "identical" else "DIVERGED")

let pp_measurement fmt (m : measurement) =
  Format.fprintf fmt "%-24s %7d B  %8.1f rec/s  (scpu %.4fs, host %.4fs, disk %.4fs; bottleneck %s; idle %.4fs)"
    m.label m.record_bytes m.throughput_rps m.scpu_s m.host_s m.disk_s m.bottleneck m.idle_scpu_s


(* ---------- measured cluster scaling ---------- *)
module Cluster_server = Worm_proto.Cluster_server

type cluster_shard_row = {
  cs_shard : int;
  cs_records : int;
  cs_scpu_s : float;
  cs_host_s : float;
  cs_disk_s : float;
  cs_rps : float;
  cs_bottleneck : string;
}

type cluster_row = {
  cl_shards : int;
  cl_records : int;
  cl_aggregate_rps : float;
  cl_speedup : float;
  cl_bottleneck_shard : int;
  cl_bottleneck : string;
  cl_makespan_s : float;
  cl_flushes : int;
  cl_proof_ok : bool;
  cl_global_current_ok : bool;
  cl_fingerprint_match : bool;
  cl_shard_rows : cluster_shard_row list;
  cl_minor_words_per_req : float;  (** wire-path minor-heap words per request, all shard loops *)
  cl_host_rps : float;  (** requests per second of real host CPU across the shard loops *)
}

module Shard_router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof

(* Verdict plus content digest, the same shape Replicator's divergence
   audit compares: two runs that converged to the same records agree on
   every element. *)
let cluster_fp_of_verdict = function
  | Client.Valid_data { blocks; _ } ->
      let rec sep = function [] -> [] | [ b ] -> [ b ] | b :: rest -> b :: "\x00" :: sep rest in
      "valid:" ^ Worm_util.Hex.encode (Worm_crypto.Sha256.digest_parts (sep blocks))
  | v -> Client.verdict_name v

let cluster_scaling ?(record_bytes = 1024) ?(records = 48) ?(strong_bits = 1024) ?(weak_bits = 512) ~seed
    ~shards_list () =
  let policy = Policy.of_regulation Policy.Sec17a4 in
  let store_config =
    { Worm.default_config with datasig_mode = Worm.Host_hash; default_witness = Firmware.Strong_now }
  in
  (* one payload sequence shared by the sequential oracle and every
     cluster size: global record i+1 is the same bytes everywhere *)
  let payloads =
    let rng = Drbg.create ~seed:("cluster-workload|" ^ seed) in
    Array.init records (fun _ -> Worm_workload.Workload.record rng ~bytes:record_bytes)
  in

  (* --- sequential single-store oracle: same records, one synchronous
     request at a time through the ordinary wire stack --- *)
  let seq_fp =
    let env = make_env ~strong_bits ~weak_bits ~seed:("cluster-seq|" ^ seed) () in
    let store = Worm.create ~config:store_config ~device:env.dev ~ca:(Rsa.public_of env.ca) () in
    let server = Server.create store in
    Array.iter
      (fun blocks ->
        ignore (Server.handle_bytes server (Message.encode_request (Message.Write { policy; tenant = ""; blocks }))))
      payloads;
    Clock.advance env.clk (Clock.ns_of_sec 1.);
    Worm.idle_tick store;
    let verifier = Client.for_store ~ca:(Rsa.public_of env.ca) ~clock:env.clk store in
    List.init records (fun i ->
        let sn = Serial.of_int (i + 1) in
        cluster_fp_of_verdict (Client.verify_read verifier ~sn (Worm.read store sn)))
  in

  let run n =
    let rng = Drbg.create ~seed:(Printf.sprintf "cluster-ca|%s|%d" seed n) in
    let ca = Rsa.generate rng ~bits:1024 in
    let clk = Clock.create () in
    let router_config =
      {
        Shard_router.default_config with
        Shard_router.shards = n;
        mirrored = false;
        store_config;
        device_config = { Device.default_config with Device.strong_bits; weak_bits };
        disk_latency = Disk.fast_latency;
      }
    in
    let router =
      Shard_router.create ~config:router_config ~seed:(Printf.sprintf "cluster|%s|%d" seed n) ~ca ~clock:clk ()
    in
    let front = Cluster_server.create router in
    let net = Netsim.create () in
    let es_config =
      { Event_server.default_config with batch_size = 8; witness = Event_server.Fixed Firmware.Strong_now }
    in
    Shard_router.reset_busy router;
    let acks = Array.make records None in
    let flushes = ref 0 in
    let makespans = Array.make n 0. in
    let shard_records = Array.make n 0 in
    (* One event loop per shard over the shared virtual clock. The loops
       run one after another — virtual time needs no interleaving to be
       honest — with each shard's submissions offset to its loop's start,
       so every per-shard ledger and makespan is the duration that shard
       alone would have taken; the cluster runs them in parallel, which
       is exactly what the max() aggregation below models. *)
    let wire_words = ref 0. and requests = ref 0 in
    let cpu0 = Sys.time () in
    for s = 0 to n - 1 do
      let shard_srv =
        match Cluster_server.shard_server front s with
        | Some srv -> srv
        | None -> failwith (Printf.sprintf "scaling workload: shard %d unexpectedly fenced" s)
      in
      let es = Event_server.create ~config:es_config ~clock:clk ~net shard_srv in
      let t0 = Clock.now clk in
      let gap = Clock.ns_of_us 100. in
      for i = 0 to records - 1 do
        if i mod n = s then begin
          let at = Int64.add t0 (Int64.mul (Int64.of_int shard_records.(s)) gap) in
          shard_records.(s) <- shard_records.(s) + 1;
          Event_server.submit es ~client:i ~at
            (Message.Write { policy; tenant = ""; blocks = payloads.(i) })
            ~on_reply:(fun (c : Event_server.completion) ->
              match c.Event_server.outcome with
              | Event_server.Replied (Message.Write_ack { sn }) ->
                  acks.(i) <- Some (Shard_router.register_ack router ~shard:s ~local:sn)
              | _ -> ())
        end
      done;
      Event_server.run es;
      makespans.(s) <- sec (Int64.sub (Clock.now clk) t0);
      wire_words := !wire_words +. Event_server.wire_minor_words es;
      requests := !requests + List.length (Event_server.completions es);
      flushes := !flushes + (Event_server.stats es).Event_server.flushes
    done;
    let host_cpu_s = Sys.time () -. cpu0 in
    (* burst ledgers, before idle maintenance muddies them *)
    let mets = Shard_router.metrics router in
    Clock.advance clk (Clock.ns_of_sec 1.);
    Shard_router.idle_tick router;
    let shard_rows =
      List.map
        (fun (m : Shard_router.shard_metrics) ->
          let scpu_s = sec m.Shard_router.sm_scpu_busy_ns in
          let host_s = sec m.Shard_router.sm_host_busy_ns in
          let disk_s = sec m.Shard_router.sm_disk_busy_ns in
          let slowest = max scpu_s (max host_s disk_s) in
          {
            cs_shard = m.Shard_router.sm_shard;
            cs_records = shard_records.(m.Shard_router.sm_shard);
            cs_scpu_s = scpu_s;
            cs_host_s = host_s;
            cs_disk_s = disk_s;
            cs_rps =
              (if slowest <= 0. then infinity
               else float_of_int shard_records.(m.Shard_router.sm_shard) /. slowest);
            cs_bottleneck =
              (if slowest = scpu_s then "scpu" else if slowest = host_s then "host" else "disk");
          })
        mets
    in
    let slowest_of r = max r.cs_scpu_s (max r.cs_host_s r.cs_disk_s) in
    let bottleneck_row =
      List.fold_left (fun acc r -> if slowest_of r > slowest_of acc then r else acc)
        (List.hd shard_rows) shard_rows
    in
    let cluster_slowest = slowest_of bottleneck_row in
    let proof_ok, global_ok =
      match Shard_router.freshness_proof router with
      | Error _ -> (false, false)
      | Ok proof -> (
          let ok =
            Cluster_proof.verify ~ca:(Rsa.public_of ca) ~now:(Clock.now clk) proof = Ok ()
          in
          match Cluster_proof.global_current proof with
          | Ok g -> (ok, Serial.to_int g = records)
          | Error _ -> (ok, false))
    in
    let verifiers = Shard_router.verifiers router in
    let fp =
      List.init records (fun i ->
          let g = Serial.of_int (i + 1) in
          match acks.(i) with
          | Some acked when Serial.equal acked g ->
              cluster_fp_of_verdict (Shard_router.verify_read router verifiers g (Shard_router.read router g))
          | Some _ -> "misrouted-ack"
          | None -> "no-ack")
    in
    {
      cl_shards = n;
      cl_records = records;
      cl_aggregate_rps = (if cluster_slowest <= 0. then infinity else float_of_int records /. cluster_slowest);
      cl_speedup = 1.0;
      cl_bottleneck_shard = bottleneck_row.cs_shard;
      cl_bottleneck = bottleneck_row.cs_bottleneck;
      cl_makespan_s = Array.fold_left max 0. makespans;
      cl_flushes = !flushes;
      cl_proof_ok = proof_ok;
      cl_global_current_ok = global_ok;
      cl_fingerprint_match = fp = seq_fp;
      cl_shard_rows = shard_rows;
      cl_minor_words_per_req = !wire_words /. float_of_int (Stdlib.max 1 !requests);
      cl_host_rps = (if host_cpu_s <= 0. then 0. else float_of_int !requests /. host_cpu_s);
    }
  in
  let single_rps = ref None in
  List.map
    (fun n ->
      let row = run n in
      let base =
        match !single_rps with
        | Some r -> r
        | None ->
            let r = if n = 1 then row.cl_aggregate_rps else (run 1).cl_aggregate_rps in
            single_rps := Some r;
            r
      in
      { row with cl_speedup = row.cl_aggregate_rps /. base })
    shards_list
