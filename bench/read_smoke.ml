(* CI smoke for the parallel verified-read path: build a tiny store
   exercising every proof shape — live records, an expired run collapsed
   into a deletion window, a below-base region, above-current serials —
   then verify the whole read set three ways: sequential with the verify
   cache disabled (the reference), cached at 1 domain, and cached fanned
   across a 2-domain pool. The three verdict lists must be identical and
   violation-free, and a quick rate for each configuration is printed.
   `dune build @read-smoke`; wired into `dune runtest`. *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Pool = Worm_util.Pool

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("read-smoke: " ^ s); exit 1) fmt

let time_per_op f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < 0.05 || !n < 2 do
    ignore (f ());
    incr n;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !n

let () =
  let rng = Drbg.create ~seed:"read-smoke" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"read-smoke-scpu" ~clock ~ca ~name:"scpu-read-smoke" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 10.) ~shred_passes:1 in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_sec 3600.) ~shred_passes:1 in
  let below = List.init 6 (fun i -> Worm.write store ~policy:short ~blocks:[ Printf.sprintf "b%d" i ]) in
  let anchor = Worm.write store ~policy:long ~blocks:[ "anchor" ] in
  let windowed = List.init 6 (fun i -> Worm.write store ~policy:short ~blocks:[ Printf.sprintf "w%d" i ]) in
  let keepers = List.init 3 (fun i -> Worm.write store ~policy:long ~blocks:[ Printf.sprintf "k%d" i ]) in
  Clock.advance clock (Clock.ns_of_sec 11.);
  ignore (Worm.expire_due store);
  Worm.idle_tick store;
  ignore (Worm.compact_windows store);
  Worm.heartbeat store;
  let top = List.fold_left (fun _ sn -> sn) anchor keepers in
  let above = [ Serial.next top; Serial.next (Serial.next top) ] in
  let sns = (anchor :: keepers) @ below @ windowed @ above in
  let items = List.map (fun sn -> (sn, Worm.read store sn)) sns in

  let ca_pub = Rsa.public_of ca in
  let reference_client = Client.for_store ~ca:ca_pub ~clock ~verify_cache:0 store in
  let reference = Client.verify_read_many reference_client items in
  List.iter
    (fun (sn, verdict) ->
      match verdict with
      | Client.Violation vs ->
          fail "violation on honest store at %s: %s" (Serial.to_string sn)
            (String.concat "," (List.map Client.violation_to_string vs))
      | _ -> ())
    reference;

  let run label ?pool client =
    let verdicts = Client.verify_read_many ?pool client items in
    if verdicts <> reference then fail "%s verdicts differ from the sequential uncached reference" label;
    let rps = float_of_int (List.length items) /. time_per_op (fun () -> Client.verify_read_many ?pool client items) in
    Printf.printf "read-smoke: %-18s %8.0f reads/s\n" label rps;
    rps
  in
  let baseline_rps =
    float_of_int (List.length items)
    /. time_per_op (fun () -> Client.verify_read_many reference_client items)
  in
  Printf.printf "read-smoke: %-18s %8.0f reads/s (%d reads)\n" "uncached" baseline_rps (List.length items);
  let c1 = Client.for_store ~ca:ca_pub ~clock store in
  ignore (run "cached/1-domain" c1);
  (match Client.verify_cache_stats c1 with
  | Some s when s.Client.cache_hits > 0 -> ()
  | Some _ -> fail "verify cache saw no hits over an absence-heavy read set"
  | None -> fail "verify cache unexpectedly disabled");
  let pool = Pool.create ~domains:2 () in
  let c2 = Client.for_store ~ca:ca_pub ~clock store in
  ignore (run "cached/2-domains" ~pool c2);
  Pool.shutdown pool;
  print_endline "read-smoke: parallel and cached verification identical to the sequential reference -- OK"
