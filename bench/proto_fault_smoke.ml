(* CI smoke for the fault-tolerant proto layer: drive remote reads,
   audit sweeps, and the resumable full audit through every Faulty
   transport mode and fail loudly unless (a) verdicts stay identical to
   a clean transport once retries ride the fault out, (b) exhausted
   retries degrade to an unproven-absence verdict — never an escaped
   exception — and (c) a crash outage resumes from the last good cursor
   instead of restarting at Serial.first. `dune build @proto-fault-smoke`. *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Message = Worm_proto.Message
module Server = Worm_proto.Server
module Faulty = Worm_proto.Faulty
module Netsim = Worm_proto.Netsim
module Remote_client = Worm_proto.Remote_client

let failures = ref 0

let check name ok =
  if ok then Printf.printf "proto-fault-smoke: %-52s ok\n" name
  else begin
    incr failures;
    Printf.printf "proto-fault-smoke: %-52s FAILED\n" name
  end

let () =
  let rng = Drbg.create ~seed:"proto-fault-smoke" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"proto-fault-smoke-scpu" ~clock ~ca ~name:"scpu-fault-smoke" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 10.) ~shred_passes:1 in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_sec 3600.) ~shred_passes:1 in
  for i = 1 to 4 do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "below-%d" i ])
  done;
  let anchor = Worm.write store ~policy:long ~blocks:[ "anchor" ] in
  for i = 1 to 4 do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "window-%d" i ])
  done;
  let live = List.init 4 (fun i -> Worm.write store ~policy:long ~blocks:[ Printf.sprintf "live-%d" i ]) in
  Clock.advance clock (Clock.ns_of_sec 11.);
  ignore (Worm.expire_due store);
  Worm.idle_tick store;
  ignore (Worm.compact_windows store);
  Worm.heartbeat store;
  let server = Server.create store in
  let honest = Server.handle_bytes server in
  let ca = Rsa.public_of ca in
  let connect_exn ?retry transport =
    match Remote_client.connect ~ca ~clock ?retry transport with
    | Ok rc -> rc
    | Error e -> failwith ("proto-fault-smoke: handshake failed: " ^ e)
  in
  let hi = List.nth live 3 in
  let lo = Serial.first in
  let verdicts rc = List.map (fun (sn, v) -> (sn, Client.verdict_name v)) (Remote_client.audit_sweep rc ~lo ~hi) in
  let audit_fp rc =
    let a = Remote_client.run_remote_audit_to_completion ~batch:4 rc in
    ( a.Remote_client.scanned,
      a.Remote_client.skipped_below_base,
      List.map (fun (sn, v) -> (sn, Client.verdict_name v)) a.Remote_client.violations,
      a.Remote_client.resume )
  in
  let clean_rc = connect_exn honest in
  let clean_read = Client.verdict_name (Remote_client.read clean_rc anchor) in
  let clean_sweep = verdicts clean_rc in
  let clean_audit = audit_fp clean_rc in
  (* (a) the matrix: every fault mode, verdict-identical once retries succeed *)
  let modes =
    [
      ("drop", [ Faulty.Drop 0.25 ]);
      ("garble", [ Faulty.Garble 0.25 ]);
      ("truncate", [ Faulty.Truncate 0.25 ]);
      ("duplicate", [ Faulty.Duplicate 0.25 ]);
      ("delay", [ Faulty.Delay { p = 0.25; ns = Clock.ns_of_ms 2. } ]);
      ("raise", [ Faulty.Raise 0.25 ]);
      ("crash", [ Faulty.Crash { after = 6; down_for = 2 } ]);
      ("storm", [ Faulty.Drop 0.1; Faulty.Garble 0.1; Faulty.Truncate 0.1; Faulty.Duplicate 0.1 ]);
    ]
  in
  let generous = { Remote_client.default_retry with attempts = 8; verify_retries = 6 } in
  List.iter
    (fun (name, faults) ->
      let faulty = Faulty.create ~seed:("smoke|" ^ name) ~faults honest in
      match connect_exn ~retry:generous (Faulty.transport faulty) with
      | rc ->
          check (name ^ ": read verdict identical") (Client.verdict_name (Remote_client.read rc anchor) = clean_read);
          check (name ^ ": sweep verdicts identical") (verdicts rc = clean_sweep);
          check (name ^ ": full audit identical") (audit_fp rc = clean_audit);
          let s = Faulty.stats faulty in
          Printf.printf "proto-fault-smoke:   %-10s %s\n" name (Format.asprintf "%a" Faulty.pp_stats s)
      | exception exn ->
          incr failures;
          Printf.printf "proto-fault-smoke: %s ESCAPED EXCEPTION %s\n" name (Printexc.to_string exn))
    modes;
  (* (b) retries exhausted: a verdict, never an exception *)
  let dead = Faulty.create ~seed:"smoke|dead" ~faults:[ Faulty.Drop 1.0 ] honest in
  let dead_rc = connect_exn honest in
  ignore dead_rc;
  (match Remote_client.connect ~ca ~clock (Faulty.transport dead) with
  | Error _ -> check "dead transport: connect returns Error" true
  | Ok _ -> check "dead transport: connect returns Error" false
  | exception _ -> check "dead transport: connect returns Error" false);
  let half_dead =
    (* handshake passes, then the wire dies for good *)
    let calls = ref 0 in
    fun req ->
      incr calls;
      if !calls <= 1 then honest req else raise (Faulty.Injected "wire gone")
  in
  (match connect_exn half_dead with
  | rc -> begin
      (match Remote_client.read rc anchor with
      | Client.Violation [ Client.Absence_unproven ] -> check "dead wire: read = Absence_unproven" true
      | _ -> check "dead wire: read = Absence_unproven" false
      | exception _ -> check "dead wire: read = Absence_unproven" false);
      let a = Remote_client.run_remote_audit rc in
      check "dead wire: audit resumable, nothing flagged"
        (a.Remote_client.resume = Some Serial.first && a.Remote_client.violations = [])
    end
  | exception exn ->
      incr failures;
      Printf.printf "proto-fault-smoke: half-dead ESCAPED %s\n" (Printexc.to_string exn));
  (* (c) a long outage: the first run hands back a mid-sweep cursor, the
     resumed run completes from there — never from Serial.first *)
  let outage = Faulty.create ~seed:"smoke|outage" ~faults:[ Faulty.Crash { after = 3; down_for = 12 } ] honest in
  let rc = connect_exn ~retry:{ Remote_client.default_retry with attempts = 2 } (Faulty.transport outage) in
  let first_run = Remote_client.run_remote_audit ~batch:4 rc in
  (match first_run.Remote_client.resume with
  | Some c when Serial.( > ) c Serial.first ->
      check "outage: mid-sweep cursor handed back" true;
      let rec resume cursor acc_scanned =
        let r = Remote_client.run_remote_audit ~batch:4 ~cursor rc in
        let acc_scanned = acc_scanned + r.Remote_client.scanned in
        match r.Remote_client.resume with
        | Some c' -> resume c' acc_scanned
        | None -> (acc_scanned, r)
      in
      let resumed_scanned, last = resume c first_run.Remote_client.scanned in
      let clean_scanned, _, clean_viol, _ = clean_audit in
      check "outage: resumed audit covers the space, no false flags"
        (resumed_scanned = clean_scanned
        && last.Remote_client.violations = []
        && clean_viol = []
        && first_run.Remote_client.violations = [])
  | _ -> check "outage: mid-sweep cursor handed back" false);
  if !failures > 0 then begin
    Printf.printf "proto-fault-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "proto-fault-smoke: all clear"
