(* CI smoke for the sharded cluster: a 2-shard mirrored router must
   (a) stripe writes across both SCPUs and hand back dense global
   serials, (b) verify every routed read end-to-end under the owning
   shard's certificates, (c) assemble an aggregated freshness proof
   that verifies against the CA with a coherent global bound, (d) pass
   a clean cluster scrub, (e) survive a shard SCPU zeroization —
   fenced reads stay verdict-identical off the lockstep mirror, the
   failover promotes and rebuilds, ingest resumes, and a re-scrub is
   clean — and (f) the measured scaling harness must agree with the
   sequential single-store oracle. `dune build @shard-smoke`. *)

module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Clock = Worm_simclock.Clock
module Device = Worm_scpu.Device
module Disk = Worm_simdisk.Disk
module Router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof
module Cluster_scrub = Worm_cluster.Cluster_scrub
module Report = Worm_audit.Report
module Sim = Worm_sim.Sim
open Worm_core

let failures = ref 0

let check name ok =
  if ok then Printf.printf "shard-smoke: %-52s ok\n" name
  else begin
    incr failures;
    Printf.printf "shard-smoke: %-52s FAILED\n" name
  end

(* verdict plus content: two reads agree iff they verified the same bytes *)
let fp = function
  | Client.Valid_data { blocks; _ } -> "valid:" ^ String.concat "\x00" blocks
  | v -> Client.verdict_name v

let () =
  let rng = Drbg.create ~seed:"shard-smoke" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let config =
    {
      Router.default_config with
      Router.shards = 2;
      mirrored = true;
      device_config = Device.test_config;
      disk_latency = Disk.fast_latency;
    }
  in
  let router = Router.create ~config ~seed:"shard-smoke" ~ca ~clock () in
  let policy = Policy.of_regulation Policy.Sec17a4 in
  let records = 10 in

  (* --- stripe ingest --- *)
  let sns =
    List.init records (fun i ->
        match Router.write router ~policy ~blocks:[ Printf.sprintf "rec-%d" i; "tail" ] with
        | Ok sn -> sn
        | Error e -> failwith ("write " ^ string_of_int i ^ ": " ^ e))
  in
  check "global serials are dense" (List.mapi (fun i sn -> Serial.to_int sn = i + 1) sns |> List.for_all Fun.id);

  (* --- routed reads verify under the owning shard --- *)
  let verifiers = Router.verifiers router in
  let read_fp g = fp (Router.verify_read router verifiers g (Router.read router g)) in
  let before = List.init records (fun i -> read_fp (Serial.of_int (i + 1))) in
  check "every routed read verifies"
    (List.for_all (fun s -> String.length s > 6 && String.sub s 0 6 = "valid:") before);

  (* --- aggregated freshness proof --- *)
  let proof_checks label expect =
    match Router.freshness_proof router with
    | Error e ->
        check (label ^ ": proof assembled") false;
        prerr_endline e
    | Ok proof ->
        check (label ^ ": proof assembled") true;
        check
          (label ^ ": proof verifies against CA")
          (Cluster_proof.verify ~ca:(Rsa.public_of ca) ~now:(Clock.now clock) proof = Ok ());
        check
          (label ^ ": coherent global bound")
          (match Cluster_proof.global_current proof with Ok g -> Serial.to_int g = expect | Error _ -> false)
  in
  proof_checks "pre-failover" records;

  (* --- clean cluster scrub --- *)
  let outcome = Cluster_scrub.run router in
  check "cluster scrub covers every shard" (outcome.Cluster_scrub.skipped = []);
  check "cluster scrub pass completes" outcome.Cluster_scrub.merged.Report.pass_complete;
  check "cluster scrub finds nothing on an honest cluster" (outcome.Cluster_scrub.merged.Report.findings = []);
  check "cluster scrub scanned the global space"
    (outcome.Cluster_scrub.merged.Report.records_scanned >= records);

  (* --- shard 0 zeroizes: fence, serve off the mirror, fail over --- *)
  Router.kill router 0;
  check "probe detects the zeroized shard" (Router.probe router = [ 0 ]);
  check "fence succeeds" (Router.fence router 0 = Ok ());
  check "fenced stripe refuses ingest"
    (match Router.write router ~policy ~blocks:[ "refused" ] with Ok _ -> false | Error _ -> true);
  let fenced_verifiers = Router.verifiers router in
  let fenced =
    List.init records (fun i ->
        let g = Serial.of_int (i + 1) in
        fp (Router.verify_read router fenced_verifiers g (Router.read router g)))
  in
  check "fenced reads stay verdict-identical (mirror serving)" (fenced = before);

  (match Router.recover router 0 with
  | Error e ->
      check "failover recovers the shard" false;
      prerr_endline e
  | Ok r ->
      check "failover recovers the shard" true;
      check "resync rebuilt the full stripe" (r.Router.resynced = records / 2);
      check "replacement mirror is a fresh SCPU" (r.Router.new_mirror_id <> ""));
  check "shard is active again" (Router.shard_state router 0 = Router.Active);

  (* --- post-failover: ingest resumes, proof and scrub still clean --- *)
  (match Router.write router ~policy ~blocks:[ "post-failover" ] with
  | Ok sn -> check "ingest resumes on the promoted store" (Serial.to_int sn = records + 1)
  | Error e ->
      check "ingest resumes on the promoted store" false;
      prerr_endline e);
  let after_verifiers = Router.verifiers router in
  let after =
    List.init records (fun i ->
        let g = Serial.of_int (i + 1) in
        fp (Router.verify_read router after_verifiers g (Router.read router g)))
  in
  check "post-failover reads match pre-failover" (after = before);
  proof_checks "post-failover" (records + 1);
  let outcome2 = Cluster_scrub.run router in
  check "post-failover scrub is clean"
    (outcome2.Cluster_scrub.skipped = []
    && outcome2.Cluster_scrub.merged.Report.pass_complete
    && outcome2.Cluster_scrub.merged.Report.findings = []);

  (* --- measured scaling harness agrees with the sequential oracle --- *)
  let rows =
    Sim.cluster_scaling ~records:8 ~strong_bits:512 ~weak_bits:512 ~seed:"shard-smoke" ~shards_list:[ 1; 2 ] ()
  in
  check "scaling rows measured for N=1,2" (List.map (fun r -> r.Sim.cl_shards) rows = [ 1; 2 ]);
  check "scaling proofs verify"
    (List.for_all (fun r -> r.Sim.cl_proof_ok && r.Sim.cl_global_current_ok) rows);
  check "scaling verdicts match the sequential oracle" (List.for_all (fun r -> r.Sim.cl_fingerprint_match) rows);

  if !failures > 0 then begin
    Printf.eprintf "shard-smoke: %d check(s) failed\n" !failures;
    exit 1
  end
