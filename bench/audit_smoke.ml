(* CI smoke for the compliance scrubber: build a tiny store exercising
   every proof shape — live records, per-SN deletion proofs, a collapsed
   deletion window, a litigation hold — run one full scrub pass, and
   fail loudly unless the report is clean. `dune build @audit-smoke`. *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let () =
  let rng = Drbg.create ~seed:"audit-smoke" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"audit-smoke-scpu" ~clock ~ca ~name:"scpu-smoke" () in
  let config = { Worm.default_config with Worm.journal = true } in
  let store = Worm.create ~config ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 10.) ~shred_passes:1 in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_sec 3600.) ~shred_passes:1 in
  (* A live record below the run keeps the base bound from absorbing the
     deletions, so the 8 short-lived records collapse into a window. *)
  let anchor_sn = Worm.write store ~policy:long ~blocks:[ "keeper-0" ] in
  for i = 1 to 8 do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "ephemeral-%d" i ])
  done;
  let keepers = anchor_sn :: List.init 2 (fun i -> Worm.write store ~policy:long ~blocks:[ Printf.sprintf "keeper-%d" (i + 1) ]) in
  let authority = Authority.create ~ca ~clock ~rng ~name:"audit-smoke-authority" in
  (match
     Authority.place_hold authority ~store ~sn:(List.hd keepers) ~lit_id:"case-1"
       ~timeout:(Int64.add (Clock.now clock) (Clock.ns_of_sec 7200.))
   with
  | Ok () -> ()
  | Error e -> failwith ("audit-smoke: hold failed: " ^ Firmware.error_to_string e));
  Clock.advance clock (Clock.ns_of_sec 11.);
  ignore (Worm.expire_due store);
  Worm.idle_tick store;
  ignore (Worm.compact_windows store);
  let scrubber = Worm_audit.Scrubber.create ~store ~client () in
  let report = Worm_audit.Scrubber.run_pass scrubber in
  print_endline (Worm_audit.Report.to_json report);
  if not (Worm_audit.Report.clean report) then begin
    prerr_endline "audit-smoke: scrub reported findings on an honest store";
    exit 1
  end;
  if List.length (Worm.deletion_windows store) < 1 then begin
    prerr_endline "audit-smoke: expected at least one deletion window in the fixture";
    exit 1
  end;
  Printf.printf "audit-smoke: clean (%d records, %d slices)\n" report.Worm_audit.Report.records_scanned
    report.Worm_audit.Report.slices
