(* CI smoke for the async event server: a small faulty multi-client day
   through the real Message/Server stack must (a) ack every write with
   no client giving up, (b) verify every read-after-write, (c) coalesce
   cross-client writes into fewer SCPU signing calls than the
   sequential per-request baseline, and (d) read back — after both
   stores drain their deferred debt — verdict-for-verdict identical to
   that sequential clean run. `dune build @serve-smoke`. *)

module Sim = Worm_sim.Sim

let failures = ref 0

let check name ok =
  if ok then Printf.printf "serve-smoke: %-52s ok\n" name
  else begin
    incr failures;
    Printf.printf "serve-smoke: %-52s FAILED\n" name
  end

let () =
  let phases =
    [
      { Sim.label = "burst"; rate_per_sec = 2000.; duration_s = 0.03 };
      { Sim.label = "steady"; rate_per_sec = 300.; duration_s = 0.1 };
    ]
  in
  let r = Sim.multi_client ~phases ~fault_rate:0.1 ~batch_size:8 ~strong_bits:512 ~seed:"serve-smoke" () in
  Format.printf "serve-smoke: %a@." Sim.pp_multi_client r;
  check "every write acked" (r.Sim.mc_writes_acked = r.Sim.mc_clients);
  check "no client gave up" (r.Sim.mc_gave_up = 0);
  check "every read-after-write verified" (r.Sim.mc_reads_ok = r.Sim.mc_clients);
  check "cross-client batching reduced sign calls" (r.Sim.mc_sign_calls < r.Sim.mc_baseline_sign_calls);
  check "faulty batched run converged to sequential" r.Sim.mc_fingerprint_match;
  check "virtual tail latency is populated" (r.Sim.mc_write_latency.Sim.p99_ms > 0.);
  if !failures > 0 then begin
    Printf.eprintf "serve-smoke: %d check(s) failed\n" !failures;
    exit 1
  end
