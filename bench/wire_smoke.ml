(* CI smoke for the zero-copy wire path: the pooled unsafe codec must be
   byte-identical to the retained seed implementation
   (test/support/ref_codec.ml) across the primitive vocabulary and whole
   protocol messages, the encode-once memo must re-serve identical bytes
   and never a stale bound, and a remote audit of a seeded store through
   the new path must come back clean. `dune build @wire-smoke`. *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Codec = Worm_util.Codec
module Ref = Worm_testkit.Ref_codec
module Message = Worm_proto.Message
module Server = Worm_proto.Server

let failures = ref 0

let check name ok =
  if not ok then begin
    Printf.eprintf "wire-smoke FAIL: %s\n" name;
    incr failures
  end

let () =
  (* Primitive byte identity: every write the new encoder can make must
     equal the seed encoder's bytes, and the new decoder must read the
     seed's bytes back. *)
  let rng = Drbg.create ~seed:"wire-smoke-prim" in
  for round = 1 to 200 do
    let v8 = Drbg.int_below rng 256 in
    let v16 = Drbg.int_below rng 65536 in
    let v32 = (Drbg.int_below rng 65536 * 65536) + Drbg.int_below rng 65536 in
    let v64 =
      Int64.logor
        (Int64.shift_left (Int64.of_int v32) 32)
        (Int64.of_int (Drbg.int_below rng 65536))
    in
    let blob = Drbg.generate rng (Drbg.int_below rng 700) in
    let xs = List.init (Drbg.int_below rng 9) (fun i -> (i * 7919) land 0xffff) in
    let opt = if Drbg.int_below rng 2 = 0 then None else Some v16 in
    let write_ref () =
      let e = Ref.encoder () in
      Ref.u8 e v8;
      Ref.u16 e v16;
      Ref.u32 e v32;
      Ref.u64 e v64;
      Ref.int_as_u64 e v32;
      Ref.bool e (v8 land 1 = 1);
      Ref.bytes e blob;
      Ref.list Ref.u16 e xs;
      Ref.option Ref.u16 e opt;
      Ref.to_string e
    in
    let write_new () =
      Codec.with_encoder (fun e ->
          Codec.u8 e v8;
          Codec.u16 e v16;
          Codec.u32 e v32;
          Codec.u64 e v64;
          Codec.int_as_u64 e v32;
          Codec.bool e (v8 land 1 = 1);
          Codec.bytes e blob;
          Codec.list Codec.u16 e xs;
          Codec.option Codec.u16 e opt;
          Codec.to_string e)
    in
    let bytes_ref = write_ref () in
    check (Printf.sprintf "primitive bytes #%d" round) (write_new () = bytes_ref);
    let read_back d =
      let r8 = Codec.read_u8 d in
      let r16 = Codec.read_u16 d in
      let r32 = Codec.read_u32 d in
      let r64 = Codec.read_u64 d in
      let ri = Codec.read_int_as_u64 d in
      let rb = Codec.read_bool d in
      let rblob = Codec.read_bytes d in
      let rxs = Codec.read_list Codec.read_u16 d in
      let ropt = Codec.read_option Codec.read_u16 d in
      r8 = v8 && r16 = v16 && r32 = v32 && r64 = v64 && ri = v32
      && rb = (v8 land 1 = 1)
      && rblob = blob && rxs = xs && ropt = opt
    in
    check
      (Printf.sprintf "primitive decode #%d" round)
      (Codec.decode read_back bytes_ref = Ok true);
    (* Slices must see the same field without copying the input apart. *)
    let d = Codec.decoder bytes_ref in
    ignore (Codec.read_u8 d);
    ignore (Codec.read_u16 d);
    ignore (Codec.read_u32 d);
    ignore (Codec.read_u64 d);
    ignore (Codec.read_int_as_u64 d);
    ignore (Codec.read_bool d);
    let s = Codec.read_bytes_slice d in
    check (Printf.sprintf "slice view #%d" round) (Codec.slice_string s = blob)
  done;

  (* Seeded store: every proof shape, served through the wire. *)
  let ca = Rsa.generate (Drbg.create ~seed:"wire-smoke") ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"wire-smoke-scpu" ~clock ~ca ~name:"scpu-wire-smoke" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_sec 3600.) ~shred_passes:1 in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 10.) ~shred_passes:1 in
  ignore (Worm.write store ~policy:long ~blocks:[ "keeper-0" ]);
  for i = 1 to 6 do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "ephemeral-%d" i ])
  done;
  Clock.advance clock (Clock.ns_of_sec 11.);
  ignore (Worm.expire_due store);
  Worm.idle_tick store;
  let server = Server.create store in
  Server.refresh server;
  let current = Worm.peek_current_bound store in
  let beyond = Serial.next current.Firmware.sn in
  let requests =
    [
      ("hello", Message.Hello);
      ("read-found", Message.Read (Serial.of_int 1));
      ("read-deleted", Message.Read (Serial.of_int 3));
      ("read-unallocated", Message.Read beyond);
      ("read-many", Message.Read_many (List.init 7 (fun i -> Serial.of_int (i + 1))));
      ("audit-slice", Message.Audit_slice { cursor = Serial.of_int 1; max = 64 });
      ("write", Message.Write { policy = long; tenant = ""; blocks = [ "wire-smoke-payload" ] });
    ]
  in
  List.iter
    (fun (name, request) ->
      let bytes = Message.encode_request request in
      check (name ^ " request re-encode") (Message.encode_request request = bytes);
      check (name ^ " request length") (Message.request_wire_length request = String.length bytes);
      match Message.decode_request bytes with
      | Error e -> check (name ^ " request decode: " ^ e) false
      | Ok request' -> check (name ^ " request roundtrip") (Message.encode_request request' = bytes))
    requests;
  List.iter
    (fun (name, request) ->
      let response = Server.handle server request in
      let plain = Message.encode_response response in
      (* memo cold, then warm: both must equal the memo-free encoding *)
      check (name ^ " memo cold") (Server.encode_response server response = plain);
      check (name ^ " memo warm") (Server.encode_response server response = plain);
      check (name ^ " memo length") (Server.response_wire_length server response = String.length plain);
      match Message.decode_response plain with
      | Error e -> check (name ^ " response decode: " ^ e) false
      | Ok response' -> check (name ^ " response roundtrip") (Message.encode_response response' = plain))
    (List.filter (fun (n, _) -> n <> "write") requests);

  (* Memo invalidation: after new writes advance the bound, a read above
     the old bound must be served with the fresh bound, not the cached
     encoding of the stale one. *)
  let stale = Server.handle server (Message.Read beyond) in
  ignore (Server.encode_response server stale : string) (* populate the memo *);
  ignore (Worm.write store ~policy:long ~blocks:[ "bound-mover" ]);
  Server.refresh server;
  let fresh_bytes = Server.encode_response server (Server.handle server (Message.Read beyond)) in
  (match Message.decode_response fresh_bytes with
  | Ok (Message.Read_reply { response = Proof.Found _; _ }) ->
      (* [beyond] was allocated by the new write: served as data now *)
      ()
  | Ok (Message.Read_reply { response = Proof.Proof_unallocated b; _ }) ->
      check "memo invalidation (fresh bound)" (Serial.equal b.Firmware.sn (Worm.peek_current_bound store).Firmware.sn)
  | _ -> check "memo invalidation (reply shape)" false);

  (* Remote audit of the seeded store through the new wire path. *)
  let module Proto = Worm_proto in
  let net = Proto.Netsim.create () in
  let transport = Proto.Netsim.wrap net (Server.handle_bytes server) in
  (match Proto.Remote_client.connect ~ca:(Rsa.public_of ca) ~clock ~netsim:net transport with
  | Error e -> check ("remote connect: " ^ e) false
  | Ok rc ->
      let a = Proto.Remote_client.run_remote_audit_to_completion rc in
      check "remote audit complete" (a.Proto.Remote_client.resume = None);
      check "remote audit clean" (a.Proto.Remote_client.violations = []));

  if !failures > 0 then begin
    Printf.eprintf "wire-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  let p = Codec.pool_stats () in
  let m = Server.global_memo_stats () in
  Printf.printf "wire-smoke: clean (200 primitive rounds, %d message classes, pool %d/%d reused, memo %d/%d hits)\n"
    (List.length requests) p.Codec.pool_reused
    (p.Codec.pool_reused + p.Codec.pool_fresh)
    m.Server.memo_hits
    (m.Server.memo_hits + m.Server.memo_misses)
