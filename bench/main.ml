(* Benchmark harness: regenerates every table and figure in the paper's
   evaluation (§5), plus wall-clock microbenchmarks of this library's own
   primitives via Bechamel.

   Sections (run all, or a subset via --only):
     table2     primitive rates from the calibrated cost models
     figure1    throughput vs record size, all witnessing modes
     hmac       the bus-limited HMAC-witnessing claim (§4.3)
     iobound    the I/O-bottleneck observation (§5 disk-latency sweep)
     ablation   window scheme vs Merkle tree update costs (§2.3/§4.1)
     readmix    SCPU-free read path (§4.1)
     storage    VRDT storage reduction via deletion windows (§4.2.1)
     erasure    O(1) per-tenant crypto-erasure vs per-record shredding
     burst      maximum safe burst length per arrival rate (§4.3)
     adaptive   adaptive witness strength across a day of load (§4.3)
     scaling    multi-SCPU scaling (§5)
     wire       message encode/decode rates and per-op allocation
     local      Figure 1 re-projected onto THIS host's measured rates
     readthroughput  verified reads/s: domain pool x verify cache, + projection
     bechamel   real wall-clock rates of the pure-OCaml primitives

   Flags:
     --json <path>    also write machine-readable results (BENCH_RESULTS.json)
     --quick          reduced record counts and Bechamel quotas (CI smoke)
     --only <section> run just this section; repeatable *)

open Bechamel
open Toolkit
module Sim = Worm_sim.Sim
module Cost_model = Worm_scpu.Cost_model
open Worm_crypto

let hr title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 76 '=') title (String.make 76 '=')

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter (the sealed build ships no JSON library).
   Floats that are nan/inf have no JSON spelling and become null. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec json_to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf (Str k);
          Buffer.add_char buf ':';
          json_to_buf buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 4096 in
  json_to_buf buf j;
  Buffer.contents buf

(* Sections append their machine-readable payloads here. *)
let json_sections : (string * json) list ref = ref []
let add_json name payload = json_sections := (name, payload) :: !json_sections

let json_of_measurement (m : Sim.measurement) =
  Obj
    [
      ("label", Str m.Sim.label);
      ("record_bytes", Int m.Sim.record_bytes);
      ("records", Int m.Sim.records);
      ("rps", Float m.Sim.throughput_rps);
      ("bottleneck", Str m.Sim.bottleneck);
      ("scpu_s", Float m.Sim.scpu_s);
      ("host_s", Float m.Sim.host_s);
      ("disk_s", Float m.Sim.disk_s);
      ("idle_scpu_s", Float m.Sim.idle_scpu_s);
      ("deferred_after_idle", Int m.Sim.deferred_after_idle);
    ]

(* ------------------------------------------------------------------ *)

let print_table2 ~quick:_ ~env:_ =
  hr "TABLE 2 -- primitive rates (calibrated cost models vs the paper's anchors)";
  let rows = Sim.table2 () in
  Printf.printf "%-28s %14s %14s\n" "Function" "IBM 4764" "P4 @ 3.4GHz";
  List.iter (fun r -> Printf.printf "%-28s %14s %14s\n" r.Sim.operation r.Sim.scpu r.Sim.host) rows;
  Printf.printf
    "\n(paper: 4200/848/316-470 sig/s; 1.42/18.6 MB/s; 75-90 MB/s DMA on the 4764\n\
    \        1315/261/43 sig/s; 80/120+ MB/s; 1+ GB/s on the P4)\n";
  add_json "table2"
    (Arr
       (List.map
          (fun r -> Obj [ ("operation", Str r.Sim.operation); ("scpu", Str r.Sim.scpu); ("host", Str r.Sim.host) ])
          rows))

let print_figure1 ~quick ~env =
  hr "FIGURE 1 -- throughput vs record size (records/s, fast disk)";
  let records = if quick then 8 else 24 in
  let measurements = Sim.figure1 (Lazy.force env) ~records () in
  let sizes = Worm_workload.Workload.figure1_sizes in
  let mode_labels = List.map (fun (m : Sim.mode) -> m.Sim.label) Sim.all_modes in
  Printf.printf "%-10s" "size";
  List.iter (Printf.printf "%23s") mode_labels;
  Printf.printf "\n";
  List.iter
    (fun size ->
      Printf.printf "%7d KB" (size / 1024);
      List.iter
        (fun label ->
          match
            List.find_opt
              (fun (m : Sim.measurement) -> m.Sim.record_bytes = size && String.equal m.Sim.label label)
              measurements
          with
          | Some m -> Printf.printf "%23.0f" m.Sim.throughput_rps
          | None -> Printf.printf "%23s" "-")
        mode_labels;
      Printf.printf "\n")
    sizes;
  Printf.printf
    "\n(paper: 450-500 rec/s sustained without deferring; 2000-2500 rec/s with\n\
    \ deferred 512-bit constructs, in bursts of at most the security lifetime)\n";
  add_json "figure1" (Arr (List.map json_of_measurement measurements))

let print_hmac ~quick ~env =
  hr "SECTION 4.3 -- HMAC witnessing removes the signature bottleneck";
  let records = if quick then 8 else 24 in
  Printf.printf "%-26s %12s %12s %16s\n" "mode (1 KB records)" "rec/s" "bottleneck" "idle SCPU (ms)";
  let rows =
    List.map
      (fun mode -> Sim.run_write_burst (Lazy.force env) ~mode ~record_bytes:1024 ~records ())
      [ Sim.mode_strong_host_hash; Sim.mode_weak_host_hash; Sim.mode_mac_host_hash ]
  in
  List.iter
    (fun (m : Sim.measurement) ->
      Printf.printf "%-26s %12.0f %12s %16.2f\n" m.Sim.label m.Sim.throughput_rps m.Sim.bottleneck
        (m.Sim.idle_scpu_s *. 1e3))
    rows;
  add_json "hmac" (Arr (List.map json_of_measurement rows))

let print_iobound ~quick ~env =
  hr "SECTION 5 -- I/O seek latency becomes the dominant bottleneck";
  let records = if quick then 8 else 24 in
  let rows = Sim.io_bottleneck (Lazy.force env) ~records ~record_bytes:1024 () in
  Printf.printf "%-12s %12s %12s\n" "seek (ms)" "rec/s" "bottleneck";
  List.iter
    (fun (seek_ms, m) -> Printf.printf "%-12.1f %12.0f %12s\n" seek_ms m.Sim.throughput_rps m.Sim.bottleneck)
    rows;
  Printf.printf "\n(paper: 3-4ms enterprise-disk latencies are ~2x the projected SCPU overhead)\n";
  add_json "iobound"
    (Arr (List.map (fun (seek_ms, m) -> Obj [ ("seek_ms", Float seek_ms); ("row", json_of_measurement m) ]) rows))

let print_ablation ~quick ~env =
  hr "ABLATION -- O(1) window authentication vs O(log n) Merkle maintenance";
  let ns = if quick then [ 256; 4096; 65536 ] else [ 256; 1024; 4096; 16384; 65536 ] in
  let rows = Sim.window_vs_merkle (Lazy.force env) ~ns in
  Printf.printf "%-12s %18s %18s %18s\n" "records" "window us/update" "merkle us/update" "merkle hashes/up";
  List.iter
    (fun r ->
      Printf.printf "%-12d %18.1f %18.1f %18.1f\n" r.Sim.n r.Sim.window_scpu_us_per_update
        r.Sim.merkle_scpu_us_per_update r.Sim.merkle_hashes_per_update)
    rows;
  add_json "ablation"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("records", Int r.Sim.n);
                ("window_us_per_update", Float r.Sim.window_scpu_us_per_update);
                ("merkle_us_per_update", Float r.Sim.merkle_scpu_us_per_update);
                ("merkle_hashes_per_update", Float r.Sim.merkle_hashes_per_update);
              ])
          rows))

let print_read_mix ~quick ~env =
  hr "SECTION 4.1 -- the SCPU witnesses updates only; reads are free of it";
  let ops = if quick then 60 else 200 in
  let rows = Sim.read_mix (Lazy.force env) ~ops ~record_bytes:1024 () in
  Printf.printf "%-16s %14s %18s %12s\n" "write fraction" "ops/s" "SCPU us/op" "bottleneck";
  List.iter
    (fun r ->
      Printf.printf "%-16.2f %14.0f %18.1f %12s\n" r.Sim.write_fraction r.Sim.ops_per_sec r.Sim.scpu_us_per_op
        r.Sim.mix_bottleneck)
    rows;
  add_json "readmix"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("write_fraction", Float r.Sim.write_fraction);
                ("ops_per_sec", Float r.Sim.ops_per_sec);
                ("scpu_us_per_op", Float r.Sim.scpu_us_per_op);
                ("bottleneck", Str r.Sim.mix_bottleneck);
              ])
          rows))

let print_storage ~quick ~env =
  hr "SECTION 4.2.1 -- VRDT storage reduction via deletion windows";
  let records = if quick then 120 else 400 in
  let rows = Sim.storage_reduction (Lazy.force env) ~records () in
  Printf.printf "%-32s %14s %10s %10s\n" "stage" "VRDT bytes" "entries" "windows";
  List.iter
    (fun r -> Printf.printf "%-32s %14d %10d %10d\n" r.Sim.stage r.Sim.vrdt_bytes r.Sim.entries r.Sim.windows)
    rows;
  add_json "storage"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("stage", Str r.Sim.stage);
                ("vrdt_bytes", Int r.Sim.vrdt_bytes);
                ("entries", Int r.Sim.entries);
                ("windows", Int r.Sim.windows);
              ])
          rows))

let print_erasure ~quick ~env =
  hr "ERASURE -- O(1) crypto-erasure vs per-record shredding";
  let volumes = if quick then [ 5; 50; 500 ] else [ 10; 100; 1_000; 10_000 ] in
  (* the workload gates cert verification, erased verdicts, and the
     bystander fingerprint internally; a gate failure raises *)
  let rows = Sim.tenant_erasure (Lazy.force env) ~volumes () in
  Printf.printf "%-10s %16s %16s %16s %14s\n" "records" "erase scpu (us)" "erase host (us)" "shred disk (us)"
    "shred/erase";
  List.iter
    (fun (r : Sim.erasure_row) ->
      let erase_us = r.Sim.erase_scpu_us +. r.Sim.erase_host_us in
      Printf.printf "%-10d %16.1f %16.1f %16.1f %13.1fx\n" r.Sim.tenant_records r.Sim.erase_scpu_us
        r.Sim.erase_host_us r.Sim.shred_disk_us
        (if erase_us > 0. then r.Sim.shred_disk_us /. erase_us else infinity))
    rows;
  let erase_of (r : Sim.erasure_row) = r.Sim.erase_scpu_us +. r.Sim.erase_host_us in
  let lo = List.fold_left (fun acc r -> Float.min acc (erase_of r)) infinity rows in
  let hi = List.fold_left (fun acc r -> Float.max acc (erase_of r)) 0. rows in
  Printf.printf "\n(erasure spread across the sweep: %.2fx; per-record shredding grows with the data,\n\
                \ one key destruction does not. every row was gated on a CA-verified erasure\n\
                \ certificate and an unchanged bystander-tenant fingerprint)\n"
    (if lo > 0. then hi /. lo else infinity);
  if hi > 2. *. lo then begin
    prerr_endline "erasure: latency is not flat across the volume sweep -- O(1) claim violated";
    exit 1
  end;
  add_json "erasure"
    (Arr
       (List.map
          (fun (r : Sim.erasure_row) ->
            Obj
              [
                ("tenant_records", Int r.Sim.tenant_records);
                ("erase_scpu_us", Float r.Sim.erase_scpu_us);
                ("erase_host_us", Float r.Sim.erase_host_us);
                ("shred_disk_us", Float r.Sim.shred_disk_us);
              ])
          rows))

let print_burst_sustainability ~quick:_ ~env:_ =
  hr "SECTION 4.3 -- maximum safe burst length per arrival rate (2h weak lifetime)";
  let rows = Sim.burst_sustainability () in
  Printf.printf "%-16s %20s %20s\n" "arrivals (rec/s)" "debt (sigs/s)" "max burst (min)";
  List.iter
    (fun r -> Printf.printf "%-16.0f %20.0f %20.1f\n" r.Sim.arrival_rps r.Sim.debt_per_sec r.Sim.max_burst_min)
    rows;
  Printf.printf
    "\n(paper: 2000-2500 rec/s \"in bursts of no more than 60-180 minutes\";\n\
    \ at 2096 rec/s the FIFO repayment bound is the binding one)\n";
  add_json "burst"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("arrival_rps", Float r.Sim.arrival_rps);
                ("debt_per_sec", Float r.Sim.debt_per_sec);
                ("max_burst_min", Float r.Sim.max_burst_min);
              ])
          rows))

let print_adaptive_day ~quick:_ ~env =
  hr "SECTION 4.3 -- adaptive witness strength across a day of load phases";
  let rows = Sim.adaptive_day (Lazy.force env) () in
  Printf.printf "%-18s %8s %8s %8s %8s %14s\n" "phase" "writes" "strong" "weak" "mac" "overdue after";
  List.iter
    (fun r ->
      Printf.printf "%-18s %8d %8d %8d %8d %14d\n" r.Sim.phase r.Sim.writes r.Sim.strong r.Sim.weak r.Sim.mac
        r.Sim.overdue_after)
    rows;
  add_json "adaptive"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("phase", Str r.Sim.phase);
                ("writes", Int r.Sim.writes);
                ("strong", Int r.Sim.strong);
                ("weak", Int r.Sim.weak);
                ("mac", Int r.Sim.mac);
                ("overdue_after", Int r.Sim.overdue_after);
              ])
          rows))

let print_audit ~quick ~env =
  hr "CONTINUOUS AUDIT -- scrub overhead vs ingest throughput per slice budget";
  let records = if quick then 60 else 150 in
  let rows = Sim.audit_overhead (Lazy.force env) ~records () in
  Printf.printf "%-12s %10s %10s %12s %14s %14s %10s %9s\n" "budget (ms)" "scanned" "slices" "recs/slice"
    "baseline r/s" "w/ scrub r/s" "overhead" "findings";
  List.iter
    (fun r ->
      Printf.printf "%-12.1f %10d %10d %12.1f %14.1f %14.1f %9.1f%% %9d\n" r.Sim.slice_budget_ms r.Sim.audit_records
        r.Sim.audit_slices r.Sim.scanned_per_slice r.Sim.audit_baseline_rps r.Sim.with_scrub_rps
        r.Sim.audit_overhead_pct r.Sim.audit_findings)
    rows;
  Printf.printf "\n(budget trades audit latency against per-tick jitter; total scrub work is constant.\n\
                \ findings must be 0 on an honest store)\n";
  add_json "audit"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("slice_budget_ms", Float r.Sim.slice_budget_ms);
                ("records_scanned", Int r.Sim.audit_records);
                ("slices", Int r.Sim.audit_slices);
                ("scanned_per_slice", Float r.Sim.scanned_per_slice);
                ("scrub_host_s", Float r.Sim.scrub_host_s);
                ("baseline_rps", Float r.Sim.audit_baseline_rps);
                ("with_scrub_rps", Float r.Sim.with_scrub_rps);
                ("overhead_pct", Float r.Sim.audit_overhead_pct);
                ("findings", Int r.Sim.audit_findings);
              ])
          rows))

let print_protofault ~quick ~env:_ =
  hr "PROTO FAULTS -- remote audit under an injected-fault transport (retry/backoff cost)";
  let records = if quick then 12 else 24 in
  let rates = if quick then [ 0.15 ] else [ 0.05; 0.15; 0.3 ] in
  let rows = Sim.remote_fault_tolerance ~records ~rates ~seed:"bench-protofault" () in
  Printf.printf "%-16s %8s %8s %10s %10s %12s %10s %10s\n" "fault" "rate" "calls" "retries" "reverify"
    "wire (ms)" "overhead" "verdicts";
  List.iter
    (fun r ->
      Printf.printf "%-16s %8.2f %8d %10d %10d %12.2f %9.2fx %10s\n" r.Sim.fault_label r.Sim.injected_rate
        r.Sim.fault_attempts r.Sim.fault_retries r.Sim.fault_reverifications r.Sim.wire_ms r.Sim.wire_overhead
        (if r.Sim.fault_verdicts_match then "identical" else "DIVERGED"))
    rows;
  Printf.printf "\n(faults may only cost wire time and retries; a DIVERGED row is a bug.\n\
                \ retry waits are virtual, charged to the Netsim ledger, never slept)\n";
  if List.exists (fun r -> not r.Sim.fault_verdicts_match) rows then begin
    prerr_endline "protofault: verdicts diverged under an injected fault";
    exit 1
  end;
  add_json "protofault"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("fault", Str r.Sim.fault_label);
                ("rate", Float r.Sim.injected_rate);
                ("attempts", Int r.Sim.fault_attempts);
                ("retries", Int r.Sim.fault_retries);
                ("resumes", Int r.Sim.fault_resumes);
                ("reverifications", Int r.Sim.fault_reverifications);
                ("wire_ms", Float r.Sim.wire_ms);
                ("wire_overhead", Float r.Sim.wire_overhead);
                ("verdicts_match", Bool r.Sim.fault_verdicts_match);
              ])
          rows))

(* Async event server: thousands of concurrent writers multiplexed over
   one store, writes coalesced across connections into single signing
   batches. The sequential per-request run over the same workload is
   both the sign_calls baseline and the convergence oracle. *)
let print_serve ~quick ~env:_ =
  hr "SERVE -- async multi-client event server with cross-client batch witnessing";
  let phases =
    if quick then
      [
        { Sim.label = "burst"; rate_per_sec = 2000.; duration_s = 0.04 };
        { Sim.label = "steady"; rate_per_sec = 400.; duration_s = 0.1 };
      ]
    else
      [
        { Sim.label = "burst"; rate_per_sec = 2400.; duration_s = 0.25 };
        { Sim.label = "steady"; rate_per_sec = 200.; duration_s = 1.0 };
        { Sim.label = "lull"; rate_per_sec = 40.; duration_s = 1.0 };
        { Sim.label = "spike"; rate_per_sec = 4000.; duration_s = 0.1 };
      ]
  in
  let r = Sim.multi_client ~phases ~seed:"bench-serve" () in
  Format.printf "%a@." Sim.pp_multi_client r;
  Printf.printf "wire path: %d requests, %.1f minor words/request, %.0f req/s of host CPU\n" r.Sim.mc_requests
    r.Sim.mc_minor_words_per_req r.Sim.mc_host_rps;
  if not r.Sim.mc_fingerprint_match then begin
    prerr_endline "serve: batched faulty run diverged from the sequential oracle";
    exit 1
  end;
  let json_latency (l : Sim.latency_summary) =
    Obj
      [
        ("p50_ms", Float l.Sim.p50_ms);
        ("p95_ms", Float l.Sim.p95_ms);
        ("p99_ms", Float l.Sim.p99_ms);
        ("mean_ms", Float l.Sim.mean_ms);
        ("max_ms", Float l.Sim.max_ms);
      ]
  in
  add_json "serve"
    (Obj
       [
         ("clients", Int r.Sim.mc_clients);
         ("virtual_s", Float r.Sim.mc_virtual_s);
         ("writes_acked", Int r.Sim.mc_writes_acked);
         ("reads_ok", Int r.Sim.mc_reads_ok);
         ("throughput_rps", Float (float_of_int r.Sim.mc_writes_acked /. r.Sim.mc_virtual_s));
         ("gave_up", Int r.Sim.mc_gave_up);
         ("shed", Int r.Sim.mc_shed);
         ("flushes", Int r.Sim.mc_flushes);
         ("strengthened_in_run", Int r.Sim.mc_strengthened_in_run);
         ("deferred_after", Int r.Sim.mc_deferred_after);
         ("sign_calls", Int r.Sim.mc_sign_calls);
         ("baseline_sign_calls", Int r.Sim.mc_baseline_sign_calls);
         ( "sign_call_reduction",
           Float (float_of_int r.Sim.mc_baseline_sign_calls /. float_of_int (max 1 r.Sim.mc_sign_calls)) );
         ("write_latency", json_latency r.Sim.mc_write_latency);
         ("read_latency", json_latency r.Sim.mc_read_latency);
         ("fingerprint_match", Bool r.Sim.mc_fingerprint_match);
         ("requests", Int r.Sim.mc_requests);
         ("minor_words_per_req", Float r.Sim.mc_minor_words_per_req);
         ("host_rps", Float r.Sim.mc_host_rps);
       ])

let print_scaling ~quick ~env:_ =
  hr "SECTION 5 -- \"results naturally scale if multiple SCPUs are available\" (measured)";
  let records = if quick then 12 else 48 in
  let shards_list = [ 1; 2; 4; 8 ] in
  let rows = Sim.cluster_scaling ~records ~seed:"bench-scaling" ~shards_list () in
  Printf.printf "Measured: N-shard Shard_router, one batching event loop per shard, per-shard ledgers.\n";
  Printf.printf "%-8s %16s %10s %18s %10s %10s %10s %10s %10s\n" "shards" "aggregate rec/s" "speedup" "bottleneck"
    "flushes" "proof" "verdicts" "words/req" "host rps";
  List.iter
    (fun (r : Sim.cluster_row) ->
      Printf.printf "%-8d %16.0f %9.2fx %11s@shard%d %10d %10s %10s %10.0f %10.0f\n" r.Sim.cl_shards
        r.Sim.cl_aggregate_rps r.Sim.cl_speedup r.Sim.cl_bottleneck r.Sim.cl_bottleneck_shard r.Sim.cl_flushes
        (if r.Sim.cl_proof_ok && r.Sim.cl_global_current_ok then "verified" else "FAILED")
        (if r.Sim.cl_fingerprint_match then "identical" else "DIVERGED")
        r.Sim.cl_minor_words_per_req r.Sim.cl_host_rps;
      List.iter
        (fun (s : Sim.cluster_shard_row) ->
          Printf.printf "          shard %d: %3d rec  scpu %.4fs  host %.4fs  disk %.4fs  %8.0f rec/s  (%s-bound)\n"
            s.Sim.cs_shard s.Sim.cs_records s.Sim.cs_scpu_s s.Sim.cs_host_s s.Sim.cs_disk_s s.Sim.cs_rps
            s.Sim.cs_bottleneck)
        r.Sim.cl_shard_rows)
    rows;
  (* the old k-SCPUs-in-one-host projection, disk-corrected, for contrast *)
  let projected = Sim.multi_scpu_scaling ~records ~seed:"bench-scaling" ~scpus_list:shards_list () in
  Printf.printf "\nProjection (k SCPUs, one shared host, per-SCPU disks -- no router, no event loops):\n";
  List.iter
    (fun r ->
      Printf.printf "%-8d %16.0f %9.2fx %18s\n" r.Sim.scpus r.Sim.aggregate_rps r.Sim.speedup
        r.Sim.scaling_bottleneck)
    projected;
  Printf.printf "\n(every measured row is gated: the aggregated freshness proof must verify and every\n\
                \ global serial read back through the router must match the sequential single-store run)\n";
  if
    List.exists
      (fun r -> not (r.Sim.cl_proof_ok && r.Sim.cl_global_current_ok && r.Sim.cl_fingerprint_match))
      rows
  then begin
    prerr_endline "scaling: cluster run failed its proof or diverged from the sequential oracle";
    exit 1
  end;
  add_json "scaling"
    (Obj
       [
         ( "measured",
           Arr
             (List.map
                (fun (r : Sim.cluster_row) ->
                  Obj
                    [
                      ("shards", Int r.Sim.cl_shards);
                      ("records", Int r.Sim.cl_records);
                      ("aggregate_rps", Float r.Sim.cl_aggregate_rps);
                      ("speedup", Float r.Sim.cl_speedup);
                      ("bottleneck_shard", Int r.Sim.cl_bottleneck_shard);
                      ("bottleneck", Str r.Sim.cl_bottleneck);
                      ("makespan_s", Float r.Sim.cl_makespan_s);
                      ("flushes", Int r.Sim.cl_flushes);
                      ("proof_ok", Bool r.Sim.cl_proof_ok);
                      ("global_current_ok", Bool r.Sim.cl_global_current_ok);
                      ("fingerprint_match", Bool r.Sim.cl_fingerprint_match);
                      ("minor_words_per_req", Float r.Sim.cl_minor_words_per_req);
                      ("host_rps", Float r.Sim.cl_host_rps);
                      ( "shards_detail",
                        Arr
                          (List.map
                             (fun (s : Sim.cluster_shard_row) ->
                               Obj
                                 [
                                   ("shard", Int s.Sim.cs_shard);
                                   ("records", Int s.Sim.cs_records);
                                   ("scpu_s", Float s.Sim.cs_scpu_s);
                                   ("host_s", Float s.Sim.cs_host_s);
                                   ("disk_s", Float s.Sim.cs_disk_s);
                                   ("rps", Float s.Sim.cs_rps);
                                   ("bottleneck", Str s.Sim.cs_bottleneck);
                                 ])
                             r.Sim.cl_shard_rows) );
                    ])
                rows) );
         ( "projected",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [
                      ("scpus", Int r.Sim.scpus);
                      ("aggregate_rps", Float r.Sim.aggregate_rps);
                      ("speedup", Float r.Sim.speedup);
                      ("bottleneck", Str r.Sim.scaling_bottleneck);
                    ])
                projected) );
       ])

(* ------------------------------------------------------------------ *)

let rng = Drbg.create ~seed:"bench"
let key512 = lazy (Rsa.generate rng ~bits:512)
let key1024 = lazy (Rsa.generate rng ~bits:1024)
let block_1k = lazy (Drbg.generate rng 1024)
let block_64k = lazy (Drbg.generate rng 65536)
let sig1024 = lazy (Rsa.sign (Lazy.force key1024) "msg")

let tests =
  [
    Test.make ~name:"rsa-512-sign" (Staged.stage (fun () -> Rsa.sign (Lazy.force key512) "msg"));
    Test.make ~name:"rsa-1024-sign" (Staged.stage (fun () -> Rsa.sign (Lazy.force key1024) "msg"));
    Test.make ~name:"rsa-1024-sign-batch8"
      (Staged.stage (fun () -> Rsa.sign_batch (Lazy.force key1024) [ "m1"; "m2"; "m3"; "m4"; "m5"; "m6"; "m7"; "m8" ]));
    Test.make ~name:"rsa-1024-verify"
      (Staged.stage (fun () ->
           Rsa.verify (Rsa.public_of (Lazy.force key1024)) ~msg:"msg" ~signature:(Lazy.force sig1024)));
    Test.make ~name:"sha1-1KB" (Staged.stage (fun () -> Sha1.digest (Lazy.force block_1k)));
    Test.make ~name:"sha1-64KB" (Staged.stage (fun () -> Sha1.digest (Lazy.force block_64k)));
    Test.make ~name:"sha256-1KB" (Staged.stage (fun () -> Sha256.digest (Lazy.force block_1k)));
    Test.make ~name:"sha256-64KB" (Staged.stage (fun () -> Sha256.digest (Lazy.force block_64k)));
    Test.make ~name:"hmac-sha256-1KB"
      (Staged.stage (fun () -> Hmac.sha256 ~key:"0123456789abcdef" (Lazy.force block_1k)));
    Test.make ~name:"chained-hash-64KB"
      (Staged.stage (fun () -> Chained_hash.add Chained_hash.empty (Lazy.force block_64k)));
  ]

let run_bechamel ~quick ~env:_ =
  hr "BECHAMEL -- wall-clock rates of the pure-OCaml primitives on this host";
  (* force the lazies outside the measured region *)
  ignore (Lazy.force sig1024);
  ignore (Lazy.force block_1k);
  ignore (Lazy.force block_64k);
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.08) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"prims" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (ns :: _) -> (name, ns) :: acc
        | Some [] | None -> (name, nan) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Printf.printf "%-28s %16s %16s\n" "primitive" "ns/op" "ops/s";
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-28s %16s %16s\n" name "-" "-"
      else Printf.printf "%-28s %16.0f %16.0f\n" name ns (1e9 /. ns))
    rows;
  add_json "primitives"
    (Arr
       (List.map
          (fun (name, ns) ->
            Obj
              [
                ("name", Str name);
                ("ns_per_op", Float ns);
                ("ops_per_sec", (if Float.is_nan ns || ns <= 0. then Null else Float (1e9 /. ns)));
              ])
          rows))

(* ------------------------------------------------------------------ *)
(* Project Figure 1 onto the running host: measure this machine's actual
   signing and hashing rates with plain wall-clock loops, calibrate a
   Cost_model profile from them, and run the sweep. *)

let time_per_op ~min_time_s ~min_iters f =
  ignore (f ());
  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < min_time_s || !n < min_iters do
    ignore (f ());
    incr n;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !n

(* ------------------------------------------------------------------ *)
(* Host hash hot path: MB/s per size class for every digest the WORM
   layer leans on. The committed pre/post baselines under bench/results/
   gate the hot-path overhaul: sha256/oneshot/64KB is the headline row. *)

let hash_size_classes = [ 1024; 4096; 16384; 65536; 262144 ]

let print_hash ~quick ~env:_ =
  hr "HASH -- host hash hot path (MB/s per size class)";
  let budget = if quick then 0.04 else 0.25 in
  let blocks =
    List.map (fun size -> (size, Drbg.generate (Drbg.create ~seed:"bench-hash") size)) hash_size_classes
  in
  (* Best-of-k: each row is the fastest of k short trials, which makes
     the committed baselines robust to transient load on a shared host. *)
  let trials = if quick then 1 else 3 in
  let mb_per_sec bytes f =
    let best = ref 0. in
    for _ = 1 to trials do
      let rate = float_of_int bytes /. time_per_op ~min_time_s:budget ~min_iters:8 f /. 1e6 in
      if rate > !best then best := rate
    done;
    !best
  in
  let rows = ref [] in
  let row ~algo ~mode ~bytes rate = rows := (algo, mode, bytes, rate) :: !rows in
  List.iter
    (fun (size, block) ->
      row ~algo:"sha256" ~mode:"oneshot" ~bytes:size (mb_per_sec size (fun () -> Sha256.digest block));
      row ~algo:"sha1" ~mode:"oneshot" ~bytes:size (mb_per_sec size (fun () -> Sha1.digest block));
      row ~algo:"hmac-sha256" ~mode:"oneshot" ~bytes:size
        (mb_per_sec size (fun () -> Hmac.sha256 ~key:"0123456789abcdef" block));
      row ~algo:"chained-sha256" ~mode:"oneshot" ~bytes:size
        (mb_per_sec size (fun () -> Chained_hash.add Chained_hash.empty block)))
    blocks;
  (* Zero-copy streaming: the same bytes fed through feed_sub in odd
     4091-byte slices, as the blockdev/fs framing paths do. *)
  List.iter
    (fun (size, block) ->
      row ~algo:"sha256" ~mode:"stream-sub" ~bytes:size
        (mb_per_sec size (fun () ->
             let ctx = Sha256.init () in
             let pos = ref 0 in
             while !pos < size do
               let len = min 4091 (size - !pos) in
               Sha256.feed_sub ctx block ~pos:!pos ~len;
               pos := !pos + len
             done;
             Sha256.get ctx)))
    blocks;
  (* Multi-buffer hashing over the domain pool: 16 independent blocks
     per call, sequential vs. pooled. *)
  let domains = Worm_util.Pool.recommended_domains () in
  let pool = Worm_util.Pool.create ~domains () in
  List.iter
    (fun size ->
      let block = List.assoc size blocks in
      let inputs = Array.make 16 block in
      let total = 16 * size in
      row ~algo:"sha256" ~mode:"multibuf-seq" ~bytes:size
        (mb_per_sec total (fun () -> Sha256.digest_many inputs));
      row ~algo:"sha256"
        ~mode:(Printf.sprintf "multibuf-pool%d" domains)
        ~bytes:size
        (mb_per_sec total (fun () -> Sha256.digest_many ~pool inputs)))
    [ 16384; 65536 ];
  Worm_util.Pool.shutdown pool;
  let rows = List.rev !rows in
  Printf.printf "%-18s %-12s %12s %12s\n" "algorithm" "mode" "block" "MB/s";
  List.iter
    (fun (algo, mode, bytes, rate) ->
      Printf.printf "%-18s %-12s %9d KB %12.1f\n" algo mode (bytes / 1024) rate)
    rows;
  add_json "hash"
    (Arr
       (List.map
          (fun (algo, mode, bytes, rate) ->
            Obj
              [ ("algo", Str algo); ("mode", Str mode); ("block_bytes", Int bytes); ("mb_per_sec", Float rate) ])
          rows))

let print_local ~quick ~env:_ =
  hr "LOCAL -- Figure 1 projected onto this host's measured primitive rates";
  let budget = if quick then 0.05 else 0.25 in
  let sign_rate key = 1. /. time_per_op ~min_time_s:budget ~min_iters:4 (fun () -> Rsa.sign (Lazy.force key) "msg") in
  let hash_rate block bytes =
    float_of_int bytes /. time_per_op ~min_time_s:budget ~min_iters:16 (fun () -> Sha256.digest (Lazy.force block))
  in
  let r512 = sign_rate key512 in
  let r1024 = sign_rate key1024 in
  let h1k = hash_rate block_1k 1024 in
  let h64k = hash_rate block_64k 65536 in
  Printf.printf "measured: rsa-512 %.0f sig/s, rsa-1024 %.0f sig/s, sha256 %.1f / %.1f MB/s\n" r512 r1024
    (h1k /. 1e6) (h64k /. 1e6);
  let profile =
    Cost_model.of_measurements ~name:"this host"
      ~rsa_sign_anchors:[ (512, r512); (1024, r1024) ]
      ~hash_small:(1024, h1k) ~hash_large:(65536, h64k) ()
  in
  let records = if quick then 6 else 16 in
  let sizes = [ 1024; 4096; 16384; 65536 ] in
  let rows = Sim.local_figure1 ~profile ~records ~sizes ~seed:"bench-local" () in
  Printf.printf "%-26s %12s %12s %12s\n" "mode" "size" "rec/s" "bottleneck";
  List.iter
    (fun (m : Sim.measurement) ->
      Printf.printf "%-26s %9d KB %12.0f %12s\n" m.Sim.label (m.Sim.record_bytes / 1024) m.Sim.throughput_rps
        m.Sim.bottleneck)
    rows;
  add_json "local_sim"
    (Obj
       [
         ( "measured",
           Obj
             [
               ("rsa_512_sign_per_sec", Float r512);
               ("rsa_1024_sign_per_sec", Float r1024);
               ("sha256_1k_bytes_per_sec", Float h1k);
               ("sha256_64k_bytes_per_sec", Float h64k);
             ] );
         ("rows", Arr (List.map json_of_measurement rows));
       ])

(* ------------------------------------------------------------------ *)
(* Verified-read throughput: the §4.2.2 host-side-only read path,
   end-to-end through Client.verify_read_many over a store exercising
   every proof shape. The baseline is the sequential verifier with the
   verified-signature memo disabled; the curve adds the memo and fans
   verification across a domain pool at 1/2/4/N domains. Absence-proof
   signatures (bounds, windows, deletion proofs) are epoch-stable, so
   the memo pays each public-key verification once per epoch — that,
   not core count, is the main lever on a small host. *)

module Core = Worm_core
module SimClock = Worm_simclock.Clock
module Device = Worm_scpu.Device
module Pool = Worm_util.Pool

let read_workload ~quick () =
  let rng = Drbg.create ~seed:"bench-read" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = SimClock.create () in
  let device = Device.provision ~seed:"bench-read-scpu" ~clock ~ca ~name:"scpu-bench-read" () in
  let store = Core.Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let short = Core.Policy.custom ~name:"short" ~retention_ns:(SimClock.ns_of_sec 10.) ~shred_passes:1 in
  let long = Core.Policy.custom ~name:"long" ~retention_ns:(SimClock.ns_of_sec 3600.) ~shred_passes:1 in
  (* Short-lived records at the very bottom expire and the advancing
     base bound absorbs them: the below-base region. *)
  let n_base = if quick then 8 else 24 in
  let below = List.init n_base (fun i -> Core.Worm.write store ~policy:short ~blocks:[ Printf.sprintf "b%d" i ]) in
  (* A live anchor keeps the next run of deletions out of the base
     bound, so they surface as deletion proofs / a deletion window. *)
  let anchor = Core.Worm.write store ~policy:long ~blocks:[ "anchor" ] in
  let n_win = if quick then 8 else 24 in
  let windowed = List.init n_win (fun i -> Core.Worm.write store ~policy:short ~blocks:[ Printf.sprintf "w%d" i ]) in
  let n_keep = if quick then 4 else 8 in
  let keepers =
    List.init n_keep (fun i -> Core.Worm.write store ~policy:long ~blocks:[ Drbg.generate rng 1024; Printf.sprintf "k%d" i ])
  in
  SimClock.advance clock (SimClock.ns_of_sec 11.);
  ignore (Core.Worm.expire_due store);
  Core.Worm.idle_tick store;
  ignore (Core.Worm.compact_windows store);
  Core.Worm.heartbeat store;
  let top = List.fold_left (fun _ sn -> sn) anchor keepers in
  let n_above = if quick then 6 else 16 in
  let above =
    let rec go sn k acc = if k = 0 then List.rev acc else go (Core.Serial.next sn) (k - 1) (sn :: acc) in
    go (Core.Serial.next top) n_above []
  in
  let found = anchor :: keepers in
  let absences = below @ windowed @ above in
  let items = List.map (fun sn -> (sn, Core.Worm.read store sn)) (found @ absences) in
  (clock, Rsa.public_of ca, store, items, List.length found, List.length absences)

let measure_read_rps ~budget ~client ?pool items =
  let t =
    time_per_op ~min_time_s:budget ~min_iters:2 (fun () -> Core.Client.verify_read_many ?pool client items)
  in
  float_of_int (List.length items) /. t

let print_readthroughput ~quick ~env:_ =
  hr "READ THROUGHPUT -- verified reads/s on this host (domain pool + verify cache)";
  let budget = if quick then 0.05 else 0.3 in
  let clock, ca, store, items, n_found, n_absence = read_workload ~quick () in
  Printf.printf "workload: %d reads (%d found, %d absence proofs)\n\n" (List.length items) n_found n_absence;
  let baseline_client = Core.Client.for_store ~ca ~clock ~verify_cache:0 store in
  let baseline_verdicts = Core.Client.verify_read_many baseline_client items in
  let violations =
    List.length (List.filter (fun (_, v) -> match v with Core.Client.Violation _ -> true | _ -> false) baseline_verdicts)
  in
  let baseline_rps = measure_read_rps ~budget ~client:baseline_client items in
  let domains_list =
    let n = Pool.recommended_domains () in
    let base = [ 1; 2; 4 ] in
    if List.mem n base then base else base @ [ n ]
  in
  let curve =
    List.map
      (fun domains ->
        let client = Core.Client.for_store ~ca ~clock store in
        let pool = if domains > 1 then Some (Pool.create ~domains ()) else None in
        let verdicts = Core.Client.verify_read_many ?pool client items in
        let identical = verdicts = baseline_verdicts in
        let rps = measure_read_rps ~budget ~client ?pool items in
        let stats = Core.Client.verify_cache_stats client in
        Option.iter Pool.shutdown pool;
        (domains, rps, identical, stats))
      domains_list
  in
  Printf.printf "%-28s %14s %10s %12s %12s\n" "configuration" "reads/s" "speedup" "cache h/m" "identical";
  Printf.printf "%-28s %14.0f %9.2fx %12s %12s\n" "sequential, no cache" baseline_rps 1.0 "-"
    (if violations = 0 then "yes" else "VIOLATIONS");
  List.iter
    (fun (domains, rps, identical, stats) ->
      let hm =
        match stats with
        | Some s -> Printf.sprintf "%d/%d" s.Core.Client.cache_hits s.Core.Client.cache_misses
        | None -> "-"
      in
      Printf.printf "%-28s %14.0f %9.2fx %12s %12s\n"
        (Printf.sprintf "cached, %d domain%s" domains (if domains = 1 then "" else "s"))
        rps (rps /. baseline_rps) hm
        (if identical then "yes" else "DIFFERS"))
    curve;
  let speedup_at d =
    match List.find_opt (fun (domains, _, _, _) -> domains = d) curve with
    | Some (_, rps, _, _) -> rps /. baseline_rps
    | None -> nan
  in
  Printf.printf "\n(speedup at 4 domains vs the uncached sequential baseline: %.2fx;\n\
                \ epoch-stable signatures verify once per epoch, per-record witnesses never cache)\n"
    (speedup_at 4);
  (* Project the read path onto this host's measured primitive rates,
     local_figure1-style. *)
  ignore (Lazy.force sig1024);
  let vps =
    1.
    /. time_per_op ~min_time_s:budget ~min_iters:8 (fun () ->
           Rsa.verify (Rsa.public_of (Lazy.force key1024)) ~msg:"msg" ~signature:(Lazy.force sig1024))
  in
  let h1k =
    1024. /. time_per_op ~min_time_s:budget ~min_iters:16 (fun () -> Sha256.digest (Lazy.force block_1k))
  in
  let proj = Sim.read_projection ~verify_per_sec:vps ~hash_bytes_per_sec:h1k ~sizes:[ 1024; 16384; 65536 ] () in
  Printf.printf "\nprojection from measured rates (rsa-1024 verify %.0f/s, sha256 %.1f MB/s):\n" vps (h1k /. 1e6);
  Printf.printf "%-20s %12s %16s %16s\n" "read kind" "verifies" "uncached r/s" "cached r/s";
  List.iter
    (fun (r : Sim.read_row) ->
      Printf.printf "%-20s %12.0f %16.0f %16.0f\n" r.Sim.read_kind r.Sim.sig_verifies r.Sim.uncached_rps
        r.Sim.cached_rps)
    proj;
  add_json "readthroughput"
    (Obj
       [
         ("items", Int (List.length items));
         ("found", Int n_found);
         ("absences", Int n_absence);
         ("baseline_violations", Int violations);
         ("baseline_nocache_rps", Float baseline_rps);
         ( "rows",
           Arr
             (List.map
                (fun (domains, rps, identical, stats) ->
                  Obj
                    ([
                       ("domains", Int domains);
                       ("rps", Float rps);
                       ("speedup_vs_baseline", Float (rps /. baseline_rps));
                       ("identical_to_sequential", Bool identical);
                     ]
                    @
                    match stats with
                    | Some s ->
                        [
                          ("cache_hits", Int s.Core.Client.cache_hits);
                          ("cache_misses", Int s.Core.Client.cache_misses);
                          ("cache_entries", Int s.Core.Client.cache_entries);
                        ]
                    | None -> []))
                curve) );
         ("speedup_at_4_domains", Float (speedup_at 4));
         ( "measured",
           Obj [ ("rsa_1024_verify_per_sec", Float vps); ("sha256_1k_bytes_per_sec", Float h1k) ] );
         ( "projection",
           Arr
             (List.map
                (fun (r : Sim.read_row) ->
                  Obj
                    [
                      ("kind", Str r.Sim.read_kind);
                      ("record_bytes", Int r.Sim.read_record_bytes);
                      ("sig_verifies", Float r.Sim.sig_verifies);
                      ("uncached_rps", Float r.Sim.uncached_rps);
                      ("cached_rps", Float r.Sim.cached_rps);
                    ])
                proj) );
       ])

(* ------------------------------------------------------------------ *)
(* Wire path: encode/decode rates and per-op minor-heap allocation for
   each message class the serving stack touches. Identity-gated:
   encodings are canonical and signed, so encoding must be repeatable
   and re-encoding a decoded value must reproduce the bytes exactly.
   (Byte-identity against the retained seed codec is enforced separately
   by bench/wire_smoke.ml and the QCheck oracle properties.) *)

module Message = Worm_proto.Message
module Proto_server = Worm_proto.Server

type wire_row = {
  wr_class : string;
  wr_dir : string;  (** "request" or "response" *)
  wr_bytes : int;
  wr_enc_ops : float;
  wr_dec_ops : float;
  wr_enc_words : float;  (** minor words per encode *)
  wr_dec_words : float;  (** minor words per decode *)
  wr_identity : bool;
}

let print_wire ~quick ~env:_ =
  hr "WIRE -- message encode/decode rates and per-op allocation";
  let budget = if quick then 0.02 else 0.15 in
  let alloc_ops = if quick then 256 else 4096 in
  let clock, _ca, store, items, _, _ = read_workload ~quick () in
  ignore clock;
  let server = Proto_server.create store in
  Proto_server.refresh server;
  let shape p = List.find_opt (fun (_, r) -> p r) items in
  let found_sn =
    match shape (function Core.Proof.Found _ -> true | _ -> false) with
    | Some (sn, _) -> sn
    | None -> Core.Serial.first
  in
  let absent_sn =
    match shape (function Core.Proof.Proof_unallocated _ -> true | _ -> false) with
    | Some (sn, _) -> sn
    | None -> found_sn
  in
  let policy = Core.Policy.of_regulation Core.Policy.Sec17a4 in
  let payload = Drbg.generate (Drbg.create ~seed:"bench-wire") 1024 in
  let many_sns =
    let all = List.map fst items in
    List.filteri (fun i _ -> i < 64) (all @ all @ all)
  in
  let requests =
    [
      ("hello", Message.Hello);
      ("read", Message.Read found_sn);
      (Printf.sprintf "read-many-%d" (List.length many_sns), Message.Read_many many_sns);
      ("audit-slice-req", Message.Audit_slice { cursor = Core.Serial.first; max = 64 });
      ("write-1KB", Message.Write { policy; tenant = ""; blocks = [ payload ] });
    ]
  in
  let responses =
    [
      ("write-ack", Message.Write_ack { sn = found_sn });
      ("busy", Message.Busy { retry_after_ns = 5_000_000L });
      ("hello-ack", Proto_server.handle server Message.Hello);
      ("read-reply-found", Proto_server.handle server (Message.Read found_sn));
      ("read-reply-absence", Proto_server.handle server (Message.Read absent_sn));
      ("audit-slice-reply", Proto_server.handle server (Message.Audit_slice { cursor = Core.Serial.first; max = 64 }));
    ]
  in
  let measure ~dir ~encode ~decode (name, value) =
    let bytes = encode value in
    let enc_t = time_per_op ~min_time_s:budget ~min_iters:32 (fun () -> ignore (encode value)) in
    let dec_t = time_per_op ~min_time_s:budget ~min_iters:32 (fun () -> ignore (decode bytes)) in
    let enc_w = Worm_util.Allocmeter.per_op ~ops:alloc_ops (fun () -> ignore (encode value)) in
    let dec_w = Worm_util.Allocmeter.per_op ~ops:alloc_ops (fun () -> ignore (decode bytes)) in
    let identity =
      String.equal bytes (encode value)
      && (match decode bytes with Ok v -> String.equal bytes (encode v) | Error _ -> false)
    in
    {
      wr_class = name;
      wr_dir = dir;
      wr_bytes = String.length bytes;
      wr_enc_ops = 1. /. enc_t;
      wr_dec_ops = 1. /. dec_t;
      wr_enc_words = enc_w;
      wr_dec_words = dec_w;
      wr_identity = identity;
    }
  in
  let rows =
    List.map (measure ~dir:"request" ~encode:Message.encode_request ~decode:Message.decode_request) requests
    @ List.map (measure ~dir:"response" ~encode:Message.encode_response ~decode:Message.decode_response) responses
  in
  Printf.printf "%-20s %-9s %8s %12s %12s %10s %10s %10s\n" "class" "dir" "bytes" "enc/s" "dec/s" "enc words"
    "dec words" "identity";
  List.iter
    (fun r ->
      Printf.printf "%-20s %-9s %8d %12.0f %12.0f %10.1f %10.1f %10s\n" r.wr_class r.wr_dir r.wr_bytes
        r.wr_enc_ops r.wr_dec_ops r.wr_enc_words r.wr_dec_words
        (if r.wr_identity then "ok" else "DRIFTED"))
    rows;
  if List.exists (fun r -> not r.wr_identity) rows then begin
    prerr_endline "wire: canonical encoding drifted (encode not repeatable or re-encode differs)";
    exit 1
  end;
  add_json "wire"
    (Arr
       (List.map
          (fun r ->
            Obj
              [
                ("class", Str r.wr_class);
                ("dir", Str r.wr_dir);
                ("wire_bytes", Int r.wr_bytes);
                ("encode_ops_per_sec", Float r.wr_enc_ops);
                ("decode_ops_per_sec", Float r.wr_dec_ops);
                ("encode_minor_words_per_op", Float r.wr_enc_words);
                ("decode_minor_words_per_op", Float r.wr_dec_words);
                ("identity", Bool r.wr_identity);
              ])
          rows))

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table2", print_table2);
    ("figure1", print_figure1);
    ("hmac", print_hmac);
    ("iobound", print_iobound);
    ("ablation", print_ablation);
    ("readmix", print_read_mix);
    ("storage", print_storage);
    ("erasure", print_erasure);
    ("burst", print_burst_sustainability);
    ("adaptive", print_adaptive_day);
    ("audit", print_audit);
    ("protofault", print_protofault);
    ("serve", print_serve);
    ("scaling", print_scaling);
    ("hash", print_hash);
    ("wire", print_wire);
    ("local", print_local);
    ("readthroughput", print_readthroughput);
    ("bechamel", run_bechamel);
  ]

let () =
  let json_path = ref None in
  let quick = ref false in
  let only = ref [] in
  let speclist =
    [
      ("--json", Arg.String (fun p -> json_path := Some p), "<path>  also write machine-readable results");
      ("--quick", Arg.Set quick, "  reduced record counts and Bechamel quotas (CI smoke)");
      ("--only", Arg.String (fun s -> only := s :: !only), "<section>  run just this section; repeatable");
    ]
  in
  let usage = "bench/main.exe [--quick] [--json <path>] [--only <section>]*\nsections: "
              ^ String.concat ", " (List.map fst sections) in
  Arg.parse speclist
    (fun anon ->
      Printf.eprintf "unexpected argument %S\n%s\n" anon usage;
      exit 2)
    usage;
  let selected =
    match !only with
    | [] -> sections
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n sections) then begin
              Printf.eprintf "unknown section %S\nsections: %s\n" n (String.concat ", " (List.map fst sections));
              exit 2
            end)
          names;
        List.filter (fun (n, _) -> List.mem n names) sections
  in
  let env = lazy (Sim.make_env ~seed:"bench-harness" ()) in
  List.iter (fun (_, run) -> run ~quick:!quick ~env) selected;
  (match !json_path with
  | None -> ()
  | Some path ->
      let doc =
        Obj
          [
            ("schema", Str "worm-bench/1");
            ("quick", Bool !quick);
            ("sections", Obj (List.rev !json_sections));
          ]
      in
      let oc = open_out path in
      output_string oc (json_to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s\n" path);
  Printf.printf "\nAll benchmark sections completed.\n"
