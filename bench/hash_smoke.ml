(* CI smoke for the hash hot path: the unsafe unrolled SHA-256/SHA-1
   cores must be byte-identical to the retained reference implementation
   (test/support/ref_hash.ml) across NIST vectors, random odd-offset
   streaming splits, multi-buffer hashing over the domain pool, and a
   scrub-report fingerprint on a seeded store. `dune build @hash-smoke`. *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Sha256 = Worm_crypto.Sha256
module Sha1 = Worm_crypto.Sha1
module Hex = Worm_util.Hex
module Pool = Worm_util.Pool
module Ref256 = Worm_testkit.Ref_hash.Sha256
module Ref1 = Worm_testkit.Ref_hash.Sha1

let failures = ref 0

let check name ok =
  if not ok then begin
    Printf.eprintf "hash-smoke FAIL: %s\n" name;
    incr failures
  end

let () =
  (* NIST FIPS 180-4 vectors. *)
  check "sha256 empty"
    (Hex.encode (Sha256.digest "") = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  check "sha256 abc"
    (Hex.encode (Sha256.digest "abc") = "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  check "sha256 two-block"
    (Hex.encode (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
    = "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  check "sha256 million-a"
    (Hex.encode (Sha256.digest (String.make 1_000_000 'a'))
    = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
  check "sha1 abc" (Hex.encode (Sha1.digest "abc") = "a9993e364706816aba3e25717850c26c9cd0d89d");
  check "sha1 two-block"
    (Hex.encode (Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
    = "84983e441c3bd26ebaae4aa1f95129e5e54670f1");

  (* Random odd-offset streaming splits vs. the reference one-shot. *)
  let rng = Drbg.create ~seed:"hash-smoke-stream" in
  for round = 1 to 100 do
    let len = Drbg.int_below rng 1500 in
    let s = Drbg.generate rng len in
    let ctx256 = Sha256.init () in
    let ctx1 = Sha1.init () in
    let pos = ref 0 in
    while !pos < len do
      let n = min (1 + Drbg.int_below rng 131) (len - !pos) in
      Sha256.feed_sub ctx256 s ~pos:!pos ~len:n;
      Sha1.feed_sub ctx1 s ~pos:!pos ~len:n;
      pos := !pos + n
    done;
    check (Printf.sprintf "stream split sha256 #%d" round) (Sha256.get ctx256 = Ref256.digest s);
    check (Printf.sprintf "stream split sha1 #%d" round) (Sha1.get ctx1 = Ref1.digest s);
    let pos = if len = 0 then 0 else Drbg.int_below rng len in
    let sub_len = len - pos in
    check
      (Printf.sprintf "digest_sub #%d" round)
      (Sha256.digest_sub s ~pos ~len:sub_len = Ref256.digest (String.sub s pos sub_len))
  done;

  (* Multi-buffer hashing over the pool == sequential == reference. *)
  let inputs = Array.init 64 (fun i -> Drbg.generate rng (i * 37)) in
  let expected = Array.map Ref256.digest inputs in
  check "digest_many sequential" (Sha256.digest_many inputs = expected);
  let pool = Pool.create ~domains:(max 2 (Pool.recommended_domains ())) () in
  check "digest_many pooled" (Sha256.digest_many ~pool inputs = expected);
  Pool.shutdown pool;

  (* Scrub-report fingerprint on a seeded store: the report must be
     clean and every record's content fingerprint must agree between the
     production digest (fed part-by-part) and the reference core. *)
  let ca = Rsa.generate (Drbg.create ~seed:"hash-smoke") ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"hash-smoke-scpu" ~clock ~ca ~name:"scpu-hash-smoke" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let long = Policy.custom ~name:"long" ~retention_ns:(Clock.ns_of_sec 3600.) ~shred_passes:1 in
  let short = Policy.custom ~name:"short" ~retention_ns:(Clock.ns_of_sec 10.) ~shred_passes:1 in
  ignore (Worm.write store ~policy:long ~blocks:[ "keeper-0" ]);
  for i = 1 to 6 do
    ignore (Worm.write store ~policy:short ~blocks:[ Printf.sprintf "ephemeral-%d" i ])
  done;
  let data_rng = Drbg.create ~seed:"hash-smoke-data" in
  let keepers =
    List.init 4 (fun i ->
        Worm.write store ~policy:long ~blocks:[ Drbg.generate data_rng 4096; Printf.sprintf "k%d" i ])
  in
  Clock.advance clock (Clock.ns_of_sec 11.);
  ignore (Worm.expire_due store);
  Worm.idle_tick store;
  ignore (Worm.compact_windows store);
  let scrubber = Worm_audit.Scrubber.create ~store ~client () in
  let report = Worm_audit.Scrubber.run_pass scrubber in
  check "scrub report clean" (Worm_audit.Report.clean report);
  let rec sep_parts = function
    | [] -> []
    | [ b ] -> [ b ]
    | b :: rest -> b :: "\x00" :: sep_parts rest
  in
  List.iter
    (fun sn ->
      match Client.verify_read client ~sn (Worm.read store sn) with
      | Client.Valid_data { blocks; _ } ->
          let prod = Hex.encode (Sha256.digest_parts (sep_parts blocks)) in
          let refr = Hex.encode (Ref256.digest (String.concat "\x00" blocks)) in
          check (Printf.sprintf "record fingerprint sn=%Ld" (Serial.to_int64 sn)) (prod = refr)
      | _ -> check "keeper readable" false)
    keepers;
  let report_json = Worm_audit.Report.to_json report in
  check "report fingerprint" (Sha256.digest report_json = Ref256.digest report_json);

  if !failures > 0 then begin
    Printf.eprintf "hash-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "hash-smoke: clean (vectors, %d stream splits, multibuf, scrub fingerprint)\n" 100
