(* Trusted firmware entry points, exercised directly: serial issuance,
   witnessing modes, deletion enforcement, bounds, deletion windows,
   litigation holds, host-hash audits, VEXP interplay. *)

open Worm_core
open Worm_testkit.Testkit
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Cert = Worm_crypto.Cert
module Chained_hash = Worm_crypto.Chained_hash

let fw env = Worm.firmware env.store

let fw_write ?(mode = Firmware.Strong_now) env blocks =
  let attr = Attr.make ~created_at:0L ~policy:(short_policy ()) () in
  Firmware.write (fw env) ~attr ~rdl:[] ~data:(Firmware.Blocks blocks) ~mode

let test_serial_issuance_consecutive () =
  let env = fresh_env () in
  Alcotest.(check int64) "starts at zero" 0L (Serial.to_int64 (Firmware.sn_current (fw env)));
  let r1 = fw_write env [ "a" ] in
  let r2 = fw_write env [ "b" ] in
  let r3 = fw_write env [ "c" ] in
  Alcotest.(check (list int64)) "consecutive" [ 1L; 2L; 3L ]
    (List.map (fun r -> Serial.to_int64 r.Firmware.vrd.Vrd.sn) [ r1; r2; r3 ]);
  Alcotest.(check int64) "base stays at first" 1L (Serial.to_int64 (Firmware.sn_base (fw env)))

let test_created_at_stamped_by_firmware () =
  let env = fresh_env () in
  Clock.advance env.clock 123456L;
  let attr = Attr.make ~created_at:999_999_999L (* lying host *) ~policy:(short_policy ()) () in
  let r = Firmware.write (fw env) ~attr ~rdl:[] ~data:(Firmware.Blocks [ "x" ]) ~mode:Firmware.Strong_now in
  Alcotest.(check int64) "firmware clock wins" 123456L r.Firmware.vrd.Vrd.attr.Attr.created_at

let test_witness_modes_shape () =
  let env = fresh_env () in
  let strong = (fw_write ~mode:Firmware.Strong_now env [ "a" ]).Firmware.vrd in
  let weak = (fw_write ~mode:Firmware.Weak_deferred env [ "b" ]).Firmware.vrd in
  let mac = (fw_write ~mode:Firmware.Mac_deferred env [ "c" ]).Firmware.vrd in
  Alcotest.(check string) "strong" "strong" (Witness.strength_name (Vrd.weakest_strength strong));
  Alcotest.(check string) "weak" "weak" (Witness.strength_name (Vrd.weakest_strength weak));
  Alcotest.(check string) "mac" "mac" (Witness.strength_name (Vrd.weakest_strength mac))

let test_delete_before_expiry_refused () =
  let env = fresh_env () in
  let r = fw_write env [ "keep" ] in
  match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) with
  | Error (Firmware.Not_expired t) ->
      Alcotest.(check int64) "reports real expiry" (Attr.expiry r.Firmware.vrd.Vrd.attr) t
  | Ok _ -> Alcotest.fail "premature delete allowed"
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_delete_after_expiry_produces_proof () =
  let env = fresh_env () in
  let r = fw_write env [ "old" ] in
  Clock.advance env.clock (Clock.ns_of_sec 101.);
  match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) with
  | Ok proof ->
      let dcert = Firmware.deletion_cert (fw env) in
      let msg = Wire.deletion_msg ~store_id:(Firmware.store_id (fw env)) ~sn:r.Firmware.vrd.Vrd.sn in
      Alcotest.(check bool) "proof verifies under d" true (Rsa.verify dcert.Cert.key ~msg ~signature:proof);
      Alcotest.(check int64) "base advanced" 2L (Serial.to_int64 (Firmware.sn_base (fw env)));
      (* double delete refused *)
      (match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) with
      | Error Firmware.Already_deleted -> ()
      | _ -> Alcotest.fail "double delete not refused")
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_delete_rejects_forged_vrd () =
  let env = fresh_env () in
  let r = fw_write env [ "target" ] in
  Clock.advance env.clock (Clock.ns_of_sec 101.);
  (* host shortens the retention inside the VRD it presents *)
  let vrd = r.Firmware.vrd in
  let forged_attr =
    { vrd.Vrd.attr with Attr.policy = Policy.custom ~name:"fake" ~retention_ns:1L ~shred_passes:1 }
  in
  let forged = { vrd with Vrd.attr = forged_attr } in
  (match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes forged) with
  | Error Firmware.Bad_witness -> ()
  | _ -> Alcotest.fail "forged attr accepted");
  (* garbage VRD *)
  match Firmware.delete (fw env) ~vrd_bytes:"garbage" with
  | Error Firmware.Malformed_vrd -> ()
  | _ -> Alcotest.fail "garbage accepted"

let test_base_advance_skips_gaps () =
  let env = fresh_env () in
  let rs = List.map (fun i -> (fw_write env [ string_of_int i ]).Firmware.vrd) [ 1; 2; 3; 4 ] in
  Clock.advance env.clock (Clock.ns_of_sec 101.);
  let del i = Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes (List.nth rs i)) in
  (* delete sn2 first: base must not move *)
  (match del 1 with Ok _ -> () | Error e -> Alcotest.fail (Firmware.error_to_string e));
  Alcotest.(check int64) "base unmoved" 1L (Serial.to_int64 (Firmware.sn_base (fw env)));
  Alcotest.(check int) "deleted-set holds the gap" 1 (Firmware.deleted_set_size (fw env));
  (* delete sn1: base jumps over the already-deleted sn2 to sn3 *)
  (match del 0 with Ok _ -> () | Error e -> Alcotest.fail (Firmware.error_to_string e));
  Alcotest.(check int64) "base jumps to 3" 3L (Serial.to_int64 (Firmware.sn_base (fw env)));
  Alcotest.(check int) "gap absorbed" 0 (Firmware.deleted_set_size (fw env))

let test_bounds_verify () =
  let env = fresh_env () in
  ignore (fw_write env [ "a" ]);
  let scert = Firmware.signing_cert (fw env) in
  let store_id = Firmware.store_id (fw env) in
  let cb = Firmware.current_bound (fw env) in
  Alcotest.(check int64) "current = 1" 1L (Serial.to_int64 cb.Firmware.sn);
  let cmsg = Wire.current_bound_msg ~store_id ~sn:cb.Firmware.sn ~timestamp:cb.Firmware.timestamp in
  Alcotest.(check bool) "current bound verifies" true
    (Rsa.verify scert.Cert.key ~msg:cmsg ~signature:cb.Firmware.signature);
  let bb = Firmware.base_bound (fw env) in
  let bmsg = Wire.base_bound_msg ~store_id ~sn:bb.Firmware.sn ~expires_at:bb.Firmware.expires_at in
  Alcotest.(check bool) "base bound verifies" true
    (Rsa.verify scert.Cert.key ~msg:bmsg ~signature:bb.Firmware.signature);
  Alcotest.(check bool) "base bound has future expiry" true
    (bb.Firmware.expires_at > Device.now env.device)

let delete_range env rs los his =
  List.iter
    (fun i ->
      match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes (List.nth rs i)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "delete %d: %s" i (Firmware.error_to_string e))
    (List.init (his - los + 1) (fun k -> los + k))

let test_deletion_window_requires_fully_deleted_run () =
  let env = fresh_env () in
  let rs = List.map (fun i -> (fw_write env [ string_of_int i ]).Firmware.vrd) [ 1; 2; 3; 4; 5; 6 ] in
  Clock.advance env.clock (Clock.ns_of_sec 101.);
  (* delete sn2..sn4 but keep sn5 live; sn1 kept live so base stays *)
  delete_range env rs 1 3;
  (* too small *)
  (match Firmware.collapse_window (fw env) ~lo:(Serial.of_int 2) ~hi:(Serial.of_int 3) with
  | Error Firmware.Window_too_small -> ()
  | _ -> Alcotest.fail "2-record window accepted");
  (* contains live record *)
  (match Firmware.collapse_window (fw env) ~lo:(Serial.of_int 2) ~hi:(Serial.of_int 5) with
  | Error (Firmware.Not_fully_deleted live) -> Alcotest.(check int64) "names the live sn" 5L (Serial.to_int64 live)
  | _ -> Alcotest.fail "window over live record accepted");
  (* correct window *)
  match Firmware.collapse_window (fw env) ~lo:(Serial.of_int 2) ~hi:(Serial.of_int 4) with
  | Ok w ->
      let scert = Firmware.signing_cert (fw env) in
      let store_id = Firmware.store_id (fw env) in
      Alcotest.(check bool) "lo sig verifies" true
        (Rsa.verify scert.Cert.key
           ~msg:(Wire.deletion_window_lo_msg ~store_id ~window_id:w.Firmware.window_id ~sn:w.Firmware.lo)
           ~signature:w.Firmware.sig_lo);
      Alcotest.(check bool) "hi sig verifies" true
        (Rsa.verify scert.Cert.key
           ~msg:(Wire.deletion_window_hi_msg ~store_id ~window_id:w.Firmware.window_id ~sn:w.Firmware.hi)
           ~signature:w.Firmware.sig_hi);
      Alcotest.(check int) "window id is 16 bytes" 16 (String.length w.Firmware.window_id)
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_window_ids_unique () =
  let env = fresh_env () in
  let rs = List.map (fun i -> (fw_write env [ string_of_int i ]).Firmware.vrd) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Clock.advance env.clock (Clock.ns_of_sec 101.);
  delete_range env rs 1 6;
  let w1 =
    match Firmware.collapse_window (fw env) ~lo:(Serial.of_int 2) ~hi:(Serial.of_int 4) with
    | Ok w -> w
    | Error e -> Alcotest.fail (Firmware.error_to_string e)
  in
  let w2 =
    match Firmware.collapse_window (fw env) ~lo:(Serial.of_int 5) ~hi:(Serial.of_int 7) with
    | Ok w -> w
    | Error e -> Alcotest.fail (Firmware.error_to_string e)
  in
  Alcotest.(check bool) "window ids differ" false (String.equal w1.Firmware.window_id w2.Firmware.window_id)

let test_strengthen_upgrades_and_respects_lifetime () =
  let env = fresh_env () in
  let r = fw_write ~mode:Firmware.Weak_deferred env [ "burst" ] in
  (* within lifetime: upgrade works *)
  (match Firmware.strengthen (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~data:(Firmware.Blocks [ "burst" ]) with
  | Ok vrd' -> Alcotest.(check string) "now strong" "strong" (Witness.strength_name (Vrd.weakest_strength vrd'))
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  (* past lifetime: weak witnesses are no longer honored *)
  let r2 = fw_write ~mode:Firmware.Weak_deferred env [ "late" ] in
  Clock.advance env.clock (Int64.add (Device.config env.device).Device.weak_lifetime_ns (Clock.ns_of_sec 1.));
  match Firmware.strengthen (fw env) ~vrd_bytes:(Vrd.to_bytes r2.Firmware.vrd) ~data:(Firmware.Blocks [ "late" ]) with
  | Error Firmware.Bad_witness -> ()
  | Ok _ -> Alcotest.fail "lapsed weak witness honored"
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_mac_strengthen () =
  let env = fresh_env () in
  let r = fw_write ~mode:Firmware.Mac_deferred env [ "mac" ] in
  match Firmware.strengthen (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~data:(Firmware.Blocks [ "mac" ]) with
  | Ok vrd' -> Alcotest.(check string) "strong" "strong" (Witness.strength_name (Vrd.weakest_strength vrd'))
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_host_hash_audit () =
  let env = fresh_env () in
  let blocks = [ "block-one"; "block-two" ] in
  let honest_hash = Chained_hash.value (Chained_hash.of_blocks blocks) in
  let attr = Attr.make ~created_at:0L ~policy:(short_policy ()) () in
  let r =
    Firmware.write (fw env) ~attr ~rdl:[] ~data:(Firmware.Claimed_hash (honest_hash, 18)) ~mode:Firmware.Strong_now
  in
  Alcotest.(check (list int64)) "pending audit recorded" [ Serial.to_int64 r.Firmware.vrd.Vrd.sn ]
    (List.map Serial.to_int64 (Firmware.pending_audit (fw env)));
  (* audit with wrong data: mismatch *)
  (match Firmware.audit (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~blocks:[ "forged" ] with
  | Error Firmware.Audit_mismatch -> ()
  | _ -> Alcotest.fail "forged data passed audit");
  Alcotest.(check int) "still pending after failed audit" 1 (List.length (Firmware.pending_audit (fw env)));
  (* honest audit clears *)
  (match Firmware.audit (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~blocks with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  Alcotest.(check int) "cleared" 0 (List.length (Firmware.pending_audit (fw env)))

let test_host_hash_lie_caught_at_strengthen () =
  let env = fresh_env () in
  let lie = String.make 32 'L' in
  let attr = Attr.make ~created_at:0L ~policy:(short_policy ()) () in
  let r =
    Firmware.write (fw env) ~attr ~rdl:[] ~data:(Firmware.Claimed_hash (lie, 4)) ~mode:Firmware.Weak_deferred
  in
  (* strengthening demands the data when an audit is pending *)
  (match
     Firmware.strengthen (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~data:(Firmware.Claimed_hash (lie, 4))
   with
  | Error Firmware.Data_required -> ()
  | _ -> Alcotest.fail "audit skipped at strengthen");
  match Firmware.strengthen (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~data:(Firmware.Blocks [ "real" ]) with
  | Error Firmware.Audit_mismatch -> ()
  | _ -> Alcotest.fail "hash lie survived strengthening"

let test_lit_hold_and_release () =
  let env = fresh_env () in
  let authority = fresh_authority env in
  let r = fw_write env [ "sued" ] in
  let sn = r.Firmware.vrd.Vrd.sn in
  let store_id = Firmware.store_id (fw env) in
  let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_days 30.) in
  let cred = Authority.hold_credential authority ~store_id ~sn ~lit_id:"case-9" in
  let held =
    match
      Firmware.lit_hold (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) ~authority:(Authority.cert authority)
        ~credential:cred ~lit_id:"case-9" ~timestamp:(Authority.now authority) ~timeout
    with
    | Ok vrd -> vrd
    | Error e -> Alcotest.fail (Firmware.error_to_string e)
  in
  Alcotest.(check bool) "attr carries hold" true (Attr.on_hold held.Vrd.attr ~now:(Clock.now env.clock));
  (* expired but held: delete refused *)
  Clock.advance env.clock (Clock.ns_of_sec 200.);
  (match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes held) with
  | Error (Firmware.On_litigation_hold "case-9") -> ()
  | _ -> Alcotest.fail "hold not enforced");
  (* replaying the PRE-hold VRD must not unlock deletion *)
  (match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) with
  | Error (Firmware.On_litigation_hold _) -> ()
  | _ -> Alcotest.fail "pre-hold VRD replay unlocked deletion");
  (* release, then delete works *)
  let rcred = Authority.release_credential authority ~store_id ~sn ~lit_id:"case-9" in
  let released =
    match
      Firmware.lit_release (fw env) ~vrd_bytes:(Vrd.to_bytes held) ~authority:(Authority.cert authority)
        ~credential:rcred ~timestamp:(Authority.now authority)
    with
    | Ok vrd -> vrd
    | Error e -> Alcotest.fail (Firmware.error_to_string e)
  in
  match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes released) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_lit_hold_bad_credentials () =
  let env = fresh_env () in
  let authority = fresh_authority env in
  let imposter = fresh_authority env in
  let r = fw_write env [ "sued" ] in
  let sn = r.Firmware.vrd.Vrd.sn in
  let store_id = Firmware.store_id (fw env) in
  let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_days 30.) in
  let vrd_bytes = Vrd.to_bytes r.Firmware.vrd in
  (* credential signed by a different authority than the presented cert *)
  let cred = Authority.hold_credential imposter ~store_id ~sn ~lit_id:"case-9" in
  (match
     Firmware.lit_hold (fw env) ~vrd_bytes ~authority:(Authority.cert authority) ~credential:cred
       ~lit_id:"case-9" ~timestamp:(Authority.now authority) ~timeout
   with
  | Error Firmware.Bad_credential -> ()
  | _ -> Alcotest.fail "mismatched credential accepted");
  (* stale credential *)
  let old_cred = Authority.hold_credential authority ~store_id ~sn ~lit_id:"case-9" in
  let old_now = Authority.now authority in
  Clock.advance env.clock (Clock.ns_of_min 30.);
  (match
     Firmware.lit_hold (fw env) ~vrd_bytes ~authority:(Authority.cert authority) ~credential:old_cred
       ~lit_id:"case-9" ~timestamp:old_now ~timeout
   with
  | Error Firmware.Bad_credential -> ()
  | _ -> Alcotest.fail "stale credential accepted");
  (* release by a different authority than the holder *)
  let cred = Authority.hold_credential authority ~store_id ~sn ~lit_id:"case-9" in
  (match
     Firmware.lit_hold (fw env) ~vrd_bytes ~authority:(Authority.cert authority) ~credential:cred
       ~lit_id:"case-9" ~timestamp:(Authority.now authority) ~timeout
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  let rogue_release = Authority.release_credential imposter ~store_id ~sn ~lit_id:"case-9" in
  match
    Firmware.lit_release (fw env) ~vrd_bytes ~authority:(Authority.cert imposter) ~credential:rogue_release
      ~timestamp:(Authority.now imposter)
  with
  | Error Firmware.Bad_credential -> ()
  | _ -> Alcotest.fail "foreign authority released the hold"

let test_rm_scheduling () =
  let env = fresh_env () in
  let attr retention = Attr.make ~created_at:0L ~policy:(short_policy ~retention_s:retention ()) () in
  let w retention =
    (Firmware.write (fw env) ~attr:(attr retention) ~rdl:[] ~data:(Firmware.Blocks [ "x" ])
       ~mode:Firmware.Strong_now)
      .Firmware.vrd
  in
  let _r300 = w 300. in
  let r100 = w 100. in
  (* the RM alarm targets the EARLIEST expiry even though it was written later *)
  (match Firmware.next_rm_wakeup (fw env) with
  | Some t -> Alcotest.(check int64) "alarm at 100s" (Clock.ns_of_sec 100.) t
  | None -> Alcotest.fail "no alarm");
  Clock.advance env.clock (Clock.ns_of_sec 150.);
  let due = Firmware.rm_pop_due (fw env) in
  Alcotest.(check (list int64)) "only the earlier record due" [ Serial.to_int64 r100.Vrd.sn ]
    (List.map (fun (_, s) -> Serial.to_int64 s) due);
  match Firmware.next_rm_wakeup (fw env) with
  | Some t -> Alcotest.(check int64) "next alarm at 300s" (Clock.ns_of_sec 300.) t
  | None -> Alcotest.fail "second alarm missing"

let test_vexp_feed_rejects_deleted () =
  let env = fresh_env () in
  let r = fw_write env [ "x" ] in
  Clock.advance env.clock (Clock.ns_of_sec 101.);
  (match Firmware.delete (fw env) ~vrd_bytes:(Vrd.to_bytes r.Firmware.vrd) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  let shed = Firmware.vexp_feed (fw env) [ (0L, r.Firmware.vrd.Vrd.sn) ] in
  Alcotest.(check int) "no shed" 0 (List.length shed);
  (* deleted SN is simply dropped, not rescheduled *)
  Alcotest.(check int) "vexp still empty of it" 0 (Firmware.vexp_length (fw env))

let test_import_rejects_weak_and_cross_store_replay () =
  let env1 = fresh_env () in
  let env2 = fresh_env () in
  let weak = (fw_write ~mode:Firmware.Weak_deferred env1 [ "w" ]).Firmware.vrd in
  let cert1 = Firmware.signing_cert (fw env1) in
  (match
     Firmware.import (fw env2) ~source_signing_cert:cert1 ~source_store_id:(Firmware.store_id (fw env1))
       ~vrd_bytes:(Vrd.to_bytes weak) ~blocks:[ "w" ]
   with
  | Error Firmware.Bad_witness -> ()
  | _ -> Alcotest.fail "weak-witnessed import accepted");
  let strong = (fw_write ~mode:Firmware.Strong_now env1 [ "s" ]).Firmware.vrd in
  (* wrong source store id: the witnesses bind the true store *)
  (match
     Firmware.import (fw env2) ~source_signing_cert:cert1 ~source_store_id:"some-other-store"
       ~vrd_bytes:(Vrd.to_bytes strong) ~blocks:[ "s" ]
   with
  | Error Firmware.Bad_witness -> ()
  | _ -> Alcotest.fail "cross-store replay accepted");
  (* data substitution during migration *)
  (match
     Firmware.import (fw env2) ~source_signing_cert:cert1 ~source_store_id:(Firmware.store_id (fw env1))
       ~vrd_bytes:(Vrd.to_bytes strong) ~blocks:[ "forged" ]
   with
  | Error Firmware.Audit_mismatch -> ()
  | _ -> Alcotest.fail "substituted data accepted");
  (* honest import works and preserves attributes *)
  match
    Firmware.import (fw env2) ~source_signing_cert:cert1 ~source_store_id:(Firmware.store_id (fw env1))
      ~vrd_bytes:(Vrd.to_bytes strong) ~blocks:[ "s" ]
  with
  | Ok { Firmware.vrd; _ } ->
      Alcotest.(check int64) "created_at preserved" strong.Vrd.attr.Attr.created_at vrd.Vrd.attr.Attr.created_at
  | Error e -> Alcotest.fail (Firmware.error_to_string e)

let test_read_path_touches_no_scpu () =
  let env = fresh_env () in
  let sns = write_n env 5 in
  Worm.heartbeat env.store;
  Device.reset_busy env.device;
  let before = Device.stats env.device in
  List.iter (fun sn -> ignore (Worm.read env.store sn)) sns;
  let after = Device.stats env.device in
  Alcotest.(check int64) "no SCPU time on reads" 0L (Device.busy_ns env.device);
  Alcotest.(check int) "no signatures on reads" before.Device.strong_signs after.Device.strong_signs

(* Total robustness: every firmware entry point must reject arbitrary
   host-supplied bytes with a typed error, never an exception — a
   crashing SCPU is a denial-of-service lever for Mallory. *)
let fuzz_env = lazy (fresh_env ())

let prop_firmware_total_on_garbage =
  QCheck.Test.make ~name:"firmware total on garbage vrd bytes" ~count:150 QCheck.string (fun junk ->
      let env = Lazy.force fuzz_env in
      let f = fw env in
      let ok = function
        | Ok _ | Error _ -> true
      in
      ok (Firmware.delete f ~vrd_bytes:junk)
      && ok (Firmware.strengthen f ~vrd_bytes:junk ~data:(Firmware.Blocks [ junk ]))
      && ok (Firmware.audit f ~vrd_bytes:junk ~blocks:[ junk ])
      && ok (Firmware.extend_retention f ~vrd_bytes:junk ~new_retention_ns:1L)
      && ok
           (Firmware.import f
              ~source_signing_cert:(Firmware.signing_cert f)
              ~source_store_id:junk ~vrd_bytes:junk ~blocks:[ junk ]))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_firmware_total_on_garbage;
    ("serials consecutive", `Quick, test_serial_issuance_consecutive);
    ("created_at stamped by firmware", `Quick, test_created_at_stamped_by_firmware);
    ("witness modes", `Quick, test_witness_modes_shape);
    ("premature delete refused", `Quick, test_delete_before_expiry_refused);
    ("expiry delete yields proof", `Quick, test_delete_after_expiry_produces_proof);
    ("forged VRD rejected", `Quick, test_delete_rejects_forged_vrd);
    ("base advance skips gaps", `Quick, test_base_advance_skips_gaps);
    ("bounds verify", `Quick, test_bounds_verify);
    ("deletion window rules", `Quick, test_deletion_window_requires_fully_deleted_run);
    ("window ids unique", `Quick, test_window_ids_unique);
    ("strengthen within lifetime", `Quick, test_strengthen_upgrades_and_respects_lifetime);
    ("mac strengthen", `Quick, test_mac_strengthen);
    ("host-hash audit", `Quick, test_host_hash_audit);
    ("hash lie caught at strengthen", `Quick, test_host_hash_lie_caught_at_strengthen);
    ("litigation hold/release", `Quick, test_lit_hold_and_release);
    ("litigation bad credentials", `Quick, test_lit_hold_bad_credentials);
    ("RM scheduling", `Quick, test_rm_scheduling);
    ("vexp feed drops deleted", `Quick, test_vexp_feed_rejects_deleted);
    ("migration import checks", `Quick, test_import_rejects_weak_and_cross_store_replay);
    ("reads touch no SCPU", `Quick, test_read_path_touches_no_scpu);
  ]

let () = Alcotest.run "worm_firmware" [ ("firmware", suite) ]
