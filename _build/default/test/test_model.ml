(* Model-based testing: random operation sequences against a trivially
   correct reference model. After every step, every serial number ever
   issued (plus a margin of unallocated ones) is read through the store
   and client-verified; the verdict must match the model's prediction.
   No sequence of legitimate operations may ever produce a Violation. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Drbg = Worm_crypto.Drbg

type model_record = {
  mutable deleted : bool;
  expiry : int64;
  mutable held_until : int64 option;
  witness : Firmware.witness_mode;
  mutable strengthened : bool;
}

type model = { records : (int64, model_record) Hashtbl.t; mutable issued : int64 }

let expected_verdict model sn_i64 ~now:_ =
  match Hashtbl.find_opt model.records sn_i64 with
  | None -> if sn_i64 > model.issued then "never-written" else "unknown"
  | Some r ->
      if r.deleted then "properly-deleted"
      else if r.witness = Firmware.Mac_deferred && not r.strengthened then "committed-unverifiable"
      else "valid-data"

let check_against_model env model =
  let now = Clock.now env.clock in
  let upto = Int64.add model.issued 3L in
  let rec go sn_i64 =
    if sn_i64 > upto then ()
    else begin
      let sn = Serial.of_int64 sn_i64 in
      let expected = expected_verdict model sn_i64 ~now in
      let actual = Client.verdict_name (verdict env sn) in
      if expected <> "unknown" && expected <> actual then
        Alcotest.failf "sn %Ld at t=%Ld: model says %s, store says %s" sn_i64 now expected actual;
      (match verdict env sn with
      | Client.Violation vs ->
          Alcotest.failf "sn %Ld: spurious violation: %s" sn_i64
            (String.concat ";" (List.map Client.violation_to_string vs))
      | _ -> ());
      go (Int64.add sn_i64 1L)
    end
  in
  go 1L

let witness_of_int = function
  | 0 -> Firmware.Strong_now
  | 1 -> Firmware.Weak_deferred
  | _ -> Firmware.Mac_deferred

let run_scenario ?(reboots = false) ~seed ~steps () =
  let env_ref = ref (fresh_env ()) in
  let rng = Drbg.create ~seed in
  let model = { records = Hashtbl.create 64; issued = 0L } in
  let authority = fresh_authority !env_ref in
  for _step = 1 to steps do
    let env = !env_ref in
    (match Drbg.int_below rng 100 with
    | n when n < 35 ->
        (* write with a random retention and witness *)
        let retention_s = 10. +. float_of_int (Drbg.int_below rng 300) in
        let witness = witness_of_int (Drbg.int_below rng 3) in
        let sn = write env ~witness ~policy:(short_policy ~retention_s ()) () in
        model.issued <- Serial.to_int64 sn;
        Hashtbl.replace model.records (Serial.to_int64 sn)
          {
            deleted = false;
            expiry = Int64.add (Clock.now env.clock) (Clock.ns_of_sec retention_s);
            held_until = None;
            witness;
            strengthened = witness = Firmware.Strong_now;
          }
    | n when n < 55 ->
        (* time passes *)
        Clock.advance env.clock (Clock.ns_of_sec (float_of_int (1 + Drbg.int_below rng 120)))
    | n when n < 70 ->
        (* the retention monitor runs *)
        let now = Clock.now env.clock in
        let outcomes = Worm.expire_due env.store in
        List.iter
          (fun (sn, result) ->
            match (result, Hashtbl.find_opt model.records (Serial.to_int64 sn)) with
            | Ok (), Some r ->
                if now <= r.expiry then Alcotest.failf "premature deletion of %s" (Serial.to_string sn);
                (match r.held_until with
                | Some t when now <= t -> Alcotest.failf "deletion under hold of %s" (Serial.to_string sn)
                | Some _ | None -> ());
                r.deleted <- true
            | Ok (), None -> Alcotest.fail "deleted a record the model never saw"
            | Error _, _ -> ())
          outcomes
    | n when n < 85 ->
        (* idle maintenance strengthens everything *)
        Worm.idle_tick env.store;
        Hashtbl.iter (fun _ r -> if not r.deleted then r.strengthened <- true) model.records
    | n when n < 92 ->
        (* compaction must be invisible to verdicts *)
        ignore (Worm.compact_windows env.store)
    | n when reboots && n < 96 -> ()
    | _ ->
        (* litigation hold on a random live record *)
        let live =
          Hashtbl.fold (fun sn r acc -> if r.deleted then acc else (sn, r) :: acc) model.records []
        in
        if live <> [] then begin
          let sn_i64, r = List.nth live (Drbg.int_below rng (List.length live)) in
          let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_sec 150.) in
          match
            Authority.place_hold authority ~store:env.store ~sn:(Serial.of_int64 sn_i64) ~lit_id:"model-case"
              ~timeout
          with
          | Ok () ->
              (* metasig is re-signed strongly, but datasig keeps its
                 original strength, so a MAC record stays unverifiable *)
              r.held_until <- Some timeout
          | Error e -> Alcotest.failf "hold failed: %s" (Firmware.error_to_string e)
        end);
    (* host reboot: save the blob, reattach a fresh host to the same SCPU
       and disk — verdicts must be indistinguishable *)
    (if reboots && Drbg.int_below rng 10 = 0 then begin
       let blob = Worm.save_host_state env.store in
       match Worm.restore ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:blob () with
       | Ok store' ->
           let client' = Client.for_store ~ca:(ca_pub ()) ~clock:env.clock store' in
           env_ref := { env with store = store'; client = client' }
       | Error e -> Alcotest.failf "reboot failed: %s" e
     end);
    check_against_model !env_ref model
  done;
  let env = !env_ref in
  (* closing sweep: strengthen everything and re-verify *)
  Worm.idle_tick env.store;
  Hashtbl.iter (fun _ r -> if not r.deleted then r.strengthened <- true) model.records;
  check_against_model env model

let test_scenario_1 () = run_scenario ~seed:"model-1" ~steps:60 ()
let test_scenario_2 () = run_scenario ~seed:"model-2" ~steps:60 ()
let test_scenario_3 () = run_scenario ~seed:"model-3" ~steps:60 ()
let test_scenario_reboots () = run_scenario ~reboots:true ~seed:"model-4" ~steps:60 ()

let suite =
  [
    ("random ops scenario 1", `Slow, test_scenario_1);
    ("random ops scenario 2", `Slow, test_scenario_2);
    ("random ops scenario 3", `Slow, test_scenario_3);
    ("random ops with host reboots", `Slow, test_scenario_reboots);
  ]

let () = Alcotest.run "worm_model" [ ("model", suite) ]
