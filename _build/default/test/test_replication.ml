(* Duplicate-copy replication (SEC 17a-4(f)) and mirror-assisted
   healing, plus retention extension. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Disk = Worm_simdisk.Disk

let replicated_env () =
  let p = fresh_env () in
  let m_device =
    Worm_scpu.Device.provision
      ~seed:(Printf.sprintf "mirror-%d" (incr counter; !counter))
      ~clock:p.clock ~ca:(Lazy.force ca) ~config:Worm_scpu.Device.test_config ~name:"scpu-mirror" ()
  in
  let m_disk = Disk.create ~latency:Disk.zero_latency () in
  let m_store = Worm.create ~disk:m_disk ~device:m_device ~ca:(ca_pub ()) () in
  let m_client = Client.for_store ~ca:(ca_pub ()) ~clock:p.clock m_store in
  let m = { clock = p.clock; device = m_device; store = m_store; client = m_client; disk = m_disk } in
  (p, m, Replicator.create ~primary:p.store ~mirror:m.store)

let test_mirrored_writes () =
  let p, m, r = replicated_env () in
  let psn, msn = Replicator.write r ~policy:(short_policy ()) ~blocks:[ "duplicate me" ] in
  check_verdict "primary copy" "valid-data" p psn;
  check_verdict "mirror copy" "valid-data" m msn;
  Alcotest.(check (option int64)) "pairing recorded" (Some (Serial.to_int64 msn))
    (Option.map Serial.to_int64 (Replicator.mirror_sn r psn))

let test_divergence_audit_clean () =
  let p, m, r = replicated_env () in
  for _ = 1 to 4 do
    ignore (Replicator.write r ~policy:(short_policy ()) ~blocks:[ "same" ])
  done;
  Alcotest.(check int) "no divergence" 0
    (List.length (Replicator.divergence_audit r ~primary_client:p.client ~mirror_client:m.client))

let test_divergence_audit_detects_tamper () =
  let p, m, r = replicated_env () in
  let psn, _ = Replicator.write r ~policy:(short_policy ()) ~blocks:[ "original" ] in
  ignore (Replicator.write r ~policy:(short_policy ()) ~blocks:[ "untouched" ]);
  let mallory = Adversary.create p.store in
  ignore (Adversary.tamper_record_data mallory psn);
  match Replicator.divergence_audit r ~primary_client:p.client ~mirror_client:m.client with
  | [ d ] ->
      Alcotest.(check int64) "names the damaged pair" (Serial.to_int64 psn) (Serial.to_int64 d.Replicator.primary_sn);
      Alcotest.(check bool) "primary flagged" true
        (String.length d.Replicator.primary_verdict > 0 && d.Replicator.primary_verdict <> "valid-data")
  | ds -> Alcotest.failf "expected 1 divergence, got %d" (List.length ds)

let test_heal_data_after_corruption () =
  let p, m, r = replicated_env () in
  ignore m;
  let psn, _ = Replicator.write r ~policy:(short_policy ()) ~blocks:[ "block-a"; "block-b" ] in
  let mallory = Adversary.create p.store in
  ignore (Adversary.tamper_record_data mallory psn);
  (match verdict p psn with
  | Client.Violation _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v));
  (match Replicator.heal_data r ~sn:psn with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_verdict "healed and verifying" "valid-data" p psn

let test_heal_data_after_destruction () =
  let p, _, r = replicated_env () in
  let psn, _ = Replicator.write r ~policy:(short_policy ()) ~blocks:[ "precious" ] in
  let mallory = Adversary.create p.store in
  ignore (Adversary.premature_destroy mallory psn);
  (match Replicator.heal_data r ~sn:psn with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_verdict "resurrected from mirror" "valid-data" p psn

let test_heal_data_refuses_bad_mirror () =
  (* both copies damaged: the primary's datasig stops a bad heal *)
  let p, m, r = replicated_env () in
  let psn, msn = Replicator.write r ~policy:(short_policy ()) ~blocks:[ "fragile" ] in
  let mallory_p = Adversary.create p.store in
  let mallory_m = Adversary.create m.store in
  ignore (Adversary.tamper_record_data mallory_p psn);
  ignore (Adversary.substitute_record_data mallory_m msn "forged replacement");
  match Replicator.heal_data r ~sn:psn with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "healed from a forged mirror"

let test_heal_missing () =
  let p, _, r = replicated_env () in
  let psn, _ = Replicator.write r ~policy:(short_policy ()) ~blocks:[ "vanished" ] in
  let mallory = Adversary.create p.store in
  ignore (Adversary.hide_record mallory psn);
  match Replicator.heal_missing r ~sn:psn with
  | Ok new_sn ->
      check_verdict "re-ingested" "valid-data" p new_sn;
      Alcotest.(check bool) "new serial" false (Serial.equal new_sn psn)
  | Error e -> Alcotest.fail e

let test_replicated_expiry () =
  let p, m, r = replicated_env () in
  ignore (Replicator.write r ~policy:(short_policy ~retention_s:10. ()) ~blocks:[ "short" ]);
  ignore (Replicator.write r ~policy:(short_policy ~retention_s:10_000. ()) ~blocks:[ "long" ]);
  Clock.advance p.clock (Clock.ns_of_sec 20.);
  let dp, dm = Replicator.expire_due r in
  Alcotest.(check (pair int int)) "one deletion each side" (1, 1) (dp, dm);
  Alcotest.(check int) "copies agree afterwards" 0
    (List.length (Replicator.divergence_audit r ~primary_client:p.client ~mirror_client:m.client))

(* ---------- retention extension ---------- *)

let test_extend_retention () =
  let env = fresh_env () in
  let sn = write env ~policy:(short_policy ~retention_s:100. ()) () in
  let fw = Worm.firmware env.store in
  let vrd_bytes =
    match Vrdt.find (Worm.vrdt env.store) sn with
    | Some (Vrdt.Active vrd) -> Vrd.to_bytes vrd
    | _ -> Alcotest.fail "missing"
  in
  (* shortening refused *)
  (match Firmware.extend_retention fw ~vrd_bytes ~new_retention_ns:(Clock.ns_of_sec 50.) with
  | Error Firmware.Retention_shortening -> ()
  | _ -> Alcotest.fail "shortening accepted");
  (* extension re-signed and rescheduled *)
  (match Firmware.extend_retention fw ~vrd_bytes ~new_retention_ns:(Clock.ns_of_sec 500.) with
  | Ok vrd' ->
      Vrdt.set_active (Worm.vrdt env.store) vrd';
      Alcotest.(check int64) "new retention" (Clock.ns_of_sec 500.)
        vrd'.Vrd.attr.Attr.policy.Policy.retention_ns
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  (* the record now survives its original expiry... *)
  ignore (expire_all env ~after_s:150.);
  check_verdict "survives old expiry" "valid-data" env sn;
  (* ...and still expires at the extended time *)
  ignore (expire_all env ~after_s:400.);
  check_verdict "expires at extension" "properly-deleted" env sn

let test_extend_retention_rejects_forgery () =
  let env = fresh_env () in
  let sn = write env ~policy:(short_policy ~retention_s:100. ()) () in
  let fw = Worm.firmware env.store in
  match Vrdt.find (Worm.vrdt env.store) sn with
  | Some (Vrdt.Active vrd) -> begin
      let forged = { vrd with Vrd.attr = { vrd.Vrd.attr with Attr.f_flag = true } } in
      match
        Firmware.extend_retention fw ~vrd_bytes:(Vrd.to_bytes forged) ~new_retention_ns:(Clock.ns_of_sec 500.)
      with
      | Error Firmware.Bad_witness -> ()
      | _ -> Alcotest.fail "forged VRD accepted"
    end
  | _ -> Alcotest.fail "missing"

let suite =
  [
    ("mirrored writes", `Quick, test_mirrored_writes);
    ("divergence audit clean", `Quick, test_divergence_audit_clean);
    ("divergence audit detects tamper", `Quick, test_divergence_audit_detects_tamper);
    ("heal corrupted data", `Quick, test_heal_data_after_corruption);
    ("heal destroyed data", `Quick, test_heal_data_after_destruction);
    ("heal refuses forged mirror", `Quick, test_heal_data_refuses_bad_mirror);
    ("heal missing record", `Quick, test_heal_missing);
    ("replicated expiry", `Quick, test_replicated_expiry);
    ("extend retention", `Quick, test_extend_retention);
    ("extend retention rejects forgery", `Quick, test_extend_retention_rejects_forgery);
  ]

let () = Alcotest.run "worm_replication" [ ("replication", suite) ]
