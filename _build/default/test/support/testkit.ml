(* Shared fixtures for the test suites: one lazily generated CA, cheap
   deterministic device/store provisioning with 512-bit keys (same code
   paths as production sizes, ~10x faster key generation). *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Disk = Worm_simdisk.Disk
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let rng = Drbg.create ~seed:"testkit-rng"
let ca = lazy (Rsa.generate rng ~bits:1024)
let ca_pub () = Rsa.public_of (Lazy.force ca)

let counter = ref 0

type env = {
  clock : Clock.t;
  device : Device.t;
  store : Worm.t;
  client : Client.t;
  disk : Disk.t;
}

let fresh_env ?(config = Worm.default_config) ?(device_config = Device.test_config) ?(disk_latency = Disk.zero_latency) () =
  incr counter;
  let clock = Clock.create () in
  let device =
    Device.provision
      ~seed:(Printf.sprintf "env-%d" !counter)
      ~clock ~ca:(Lazy.force ca) ~config:device_config
      ~name:(Printf.sprintf "scpu-%d" !counter)
      ()
  in
  let disk = Disk.create ~latency:disk_latency () in
  let store = Worm.create ~config ~disk ~device ~ca:(ca_pub ()) () in
  let client = Client.for_store ~ca:(ca_pub ()) ~clock store in
  { clock; device; store; client; disk }

let short_policy ?(retention_s = 100.) () =
  Policy.custom ~name:"test-short" ~retention_ns:(Clock.ns_of_sec retention_s) ~shred_passes:1

let write env ?witness ?(blocks = [ "payload" ]) ?policy () =
  let policy =
    match policy with
    | Some p -> p
    | None -> short_policy ()
  in
  Worm.write ?witness env.store ~policy ~blocks

(* Write n records with the given retention seconds, returning their SNs. *)
let write_n env ?witness ?(retention_s = 100.) n =
  List.init n (fun i ->
      write env ?witness ~blocks:[ Printf.sprintf "record-%d" i ] ~policy:(short_policy ~retention_s ()) ())

let expire_all env ~after_s =
  Clock.advance env.clock (Clock.ns_of_sec after_s);
  Worm.expire_due env.store

let verdict env sn = Client.verify_read env.client ~sn (Worm.read env.store sn)

let check_verdict name expected env sn =
  Alcotest.(check string) name expected (Client.verdict_name (verdict env sn))

let fresh_authority env =
  incr counter;
  Authority.create ~ca:(Lazy.force ca) ~clock:env.clock ~rng ~name:(Printf.sprintf "authority-%d" !counter)
