test/support/testkit.ml: Alcotest Authority Client Lazy List Policy Printf Worm Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_simdisk
