(* Compliant migration: full-store transfer, attribute preservation,
   attestation, and refusal paths. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock

let two_stores () =
  let a = fresh_env () in
  (* share the clock so "now" agrees across stores *)
  let b =
    let device =
      Worm_scpu.Device.provision ~seed:"migration-target" ~clock:a.clock ~ca:(Lazy.force ca)
        ~config:Worm_scpu.Device.test_config ~name:"scpu-target" ()
    in
    let disk = Worm_simdisk.Disk.create ~latency:Worm_simdisk.Disk.zero_latency () in
    let store = Worm.create ~disk ~device ~ca:(ca_pub ()) () in
    let client = Client.for_store ~ca:(ca_pub ()) ~clock:a.clock store in
    { clock = a.clock; device; store; client; disk }
  in
  (a, b)

let test_full_migration () =
  let src, dst = two_stores () in
  let live = write_n src ~retention_s:10_000. 5 in
  let doomed = write_n src ~retention_s:10. 3 in
  ignore (expire_all src ~after_s:20.);
  match Migration.migrate ~source:src.store ~target:dst.store with
  | Error e -> Alcotest.fail e
  | Ok report ->
      Alcotest.(check int) "five migrated" 5 (List.length report.Migration.mapping);
      Alcotest.(check int) "three skipped as deleted" 3 report.Migration.skipped_deleted;
      (* every migrated record verifies on the target *)
      List.iter
        (fun src_sn ->
          let dst_sn = List.assoc src_sn report.Migration.mapping in
          check_verdict "migrated verifies" "valid-data" dst dst_sn)
        live;
      ignore doomed;
      (* the source attestation checks out for an auditor *)
      Alcotest.(check bool) "manifest verifies" true
        (Migration.verify_report ~source_client:src.client ~target_store_id:(Worm.store_id dst.store) report);
      Alcotest.(check bool) "manifest bound to target" false
        (Migration.verify_report ~source_client:src.client ~target_store_id:"elsewhere" report)

let test_migration_preserves_retention_clock () =
  let src, dst = two_stores () in
  (* a record 60 s from expiry must stay 60 s from expiry after migration *)
  let sn = write src ~policy:(short_policy ~retention_s:100. ()) () in
  Clock.advance src.clock (Clock.ns_of_sec 40.);
  (match Migration.migrate ~source:src.store ~target:dst.store with
  | Error e -> Alcotest.fail e
  | Ok report ->
      let dst_sn = List.assoc sn report.Migration.mapping in
      (* 50 s later (total 90 s of age): still retained on the target *)
      Clock.advance src.clock (Clock.ns_of_sec 50.);
      ignore (Worm.expire_due dst.store);
      check_verdict "still retained" "valid-data" dst dst_sn;
      (* 20 s more (110 s total): past the original retention *)
      Clock.advance src.clock (Clock.ns_of_sec 20.);
      ignore (Worm.expire_due dst.store);
      check_verdict "expires on the original schedule" "properly-deleted" dst dst_sn)

let test_migration_requires_strengthened_source () =
  let src, dst = two_stores () in
  ignore (write src ~witness:Firmware.Weak_deferred ());
  (match Migration.migrate ~source:src.store ~target:dst.store with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "weak-witnessed store migrated");
  (* after idle maintenance it goes through *)
  Worm.idle_tick src.store;
  match Migration.migrate ~source:src.store ~target:dst.store with
  | Ok report -> Alcotest.(check int) "migrated" 1 (List.length report.Migration.mapping)
  | Error e -> Alcotest.fail e

let test_migration_refuses_tampered_source () =
  let src, dst = two_stores () in
  let sn = write src ~blocks:[ "good" ] () in
  ignore (write src ~blocks:[ "fine" ] ());
  let mallory = Adversary.create src.store in
  ignore (Adversary.tamper_record_data mallory sn);
  match Migration.migrate ~source:src.store ~target:dst.store with
  | Error _ -> () (* the target SCPU refuses the corrupted record *)
  | Ok _ -> Alcotest.fail "tampered record migrated"

let test_migrated_store_resists_same_attacks () =
  let src, dst = two_stores () in
  let sn = write src ~blocks:[ "valuable" ] () in
  match Migration.migrate ~source:src.store ~target:dst.store with
  | Error e -> Alcotest.fail e
  | Ok report ->
      let dst_sn = List.assoc sn report.Migration.mapping in
      let mallory = Adversary.create dst.store in
      Alcotest.(check bool) "tampered on target" true (Adversary.tamper_record_data mallory dst_sn);
      (match verdict dst dst_sn with
      | Client.Violation _ -> ()
      | v -> Alcotest.fail (Client.verdict_name v))

let test_empty_store_migration () =
  let src, dst = two_stores () in
  match Migration.migrate ~source:src.store ~target:dst.store with
  | Ok report ->
      Alcotest.(check int) "nothing to move" 0 (List.length report.Migration.mapping);
      Alcotest.(check bool) "manifest still verifies" true
        (Migration.verify_report ~source_client:src.client ~target_store_id:(Worm.store_id dst.store) report)
  | Error e -> Alcotest.fail e

let suite =
  [
    ("full migration", `Quick, test_full_migration);
    ("retention clock preserved", `Quick, test_migration_preserves_retention_clock);
    ("requires strengthened source", `Quick, test_migration_requires_strengthened_source);
    ("refuses tampered source", `Quick, test_migration_refuses_tampered_source);
    ("target resists the same attacks", `Quick, test_migrated_store_resists_same_attacks);
    ("empty store migration", `Quick, test_empty_store_migration);
  ]

let () = Alcotest.run "worm_migration" [ ("migration", suite) ]
