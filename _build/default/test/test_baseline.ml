(* Baselines: the same insider attacks that Strong WORM detects SUCCEED
   against the soft-WORM comparator (§3), and the Merkle-authenticated
   store is sound but pays O(log n) SCPU work per update (§2.3). *)

open Worm_testkit.Testkit
module Soft_worm = Worm_baseline.Soft_worm
module Merkle_store = Worm_baseline.Merkle_store
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock

let soft_env () =
  let clock = Clock.create () in
  (Soft_worm.create ~clock (), clock)

(* ---------- soft-WORM honest operation ---------- *)

let test_soft_worm_honest_path () =
  let store, clock = soft_env () in
  let id = Soft_worm.write store ~policy:(short_policy ()) ~blocks:[ "data" ] in
  (match Soft_worm.read store id with
  | Soft_worm.Ok_data [ "data" ] -> ()
  | _ -> Alcotest.fail "read failed");
  (match Soft_worm.read store 999 with
  | Soft_worm.Never_written -> ()
  | _ -> Alcotest.fail "phantom record");
  (* the software switch does refuse premature deletion... *)
  (match Soft_worm.delete store id with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "premature delete allowed");
  Clock.advance clock (Clock.ns_of_sec 101.);
  match Soft_worm.delete store id with
  | Ok () -> begin
      match Soft_worm.read store id with
      | Soft_worm.Deleted -> ()
      | _ -> Alcotest.fail "not deleted"
    end
  | Error e -> Alcotest.fail e

let test_soft_worm_detects_casual_corruption () =
  (* checksums do catch accidents — that was never the question *)
  let store, _ = soft_env () in
  let id = Soft_worm.write store ~policy:(short_policy ()) ~blocks:[ "data" ] in
  let disk_tamper_without_checksum_fix () =
    (* flip data via a fresh handle on the same disk: no checksum fix *)
    ignore (Soft_worm.Raw.tamper_and_fix_checksum store id [ "data" ]) (* no-op change *);
    ()
  in
  disk_tamper_without_checksum_fix ();
  match Soft_worm.read store id with
  | Soft_worm.Ok_data _ -> ()
  | _ -> Alcotest.fail "baseline broken on honest path"

(* ---------- the attacks (cf. test_attacks.ml, where all are DETECTED) ---------- *)

let test_insider_substitution_succeeds () =
  let store, _ = soft_env () in
  let id = Soft_worm.write store ~policy:(short_policy ()) ~blocks:[ "incriminating ledger" ] in
  Alcotest.(check bool) "tamper+refresh checksum" true
    (Soft_worm.Raw.tamper_and_fix_checksum store id [ "sanitized ledger" ]);
  (* the forged record passes every check the system has *)
  match Soft_worm.read store id with
  | Soft_worm.Ok_data [ "sanitized ledger" ] -> () (* attack SUCCEEDED, undetected *)
  | Soft_worm.Ok_data _ -> Alcotest.fail "wrong data"
  | _ -> Alcotest.fail "attack was detected (it should not be, in soft-WORM)"

let test_insider_hiding_succeeds () =
  let store, _ = soft_env () in
  let id = Soft_worm.write store ~policy:(short_policy ()) ~blocks:[ "hide me" ] in
  Alcotest.(check bool) "hidden" true (Soft_worm.Raw.hide store id);
  match Soft_worm.read store id with
  | Soft_worm.Never_written -> () (* indistinguishable from never-stored: attack SUCCEEDED *)
  | _ -> Alcotest.fail "hiding failed"

let test_insider_premature_delete_succeeds () =
  let store, _ = soft_env () in
  let id = Soft_worm.write store ~policy:(short_policy ~retention_s:1e6 ()) ~blocks:[ "evidence" ] in
  Alcotest.(check bool) "force-deleted" true (Soft_worm.Raw.force_delete store id);
  match Soft_worm.read store id with
  | Soft_worm.Deleted -> () (* looks like a lawful deletion: attack SUCCEEDED *)
  | _ -> Alcotest.fail "force delete failed"

(* ---------- optical WORM (§3) ---------- *)

module Optical = Worm_baseline.Optical_worm

let test_optical_genuinely_write_once () =
  let jukebox = Optical.create ~disc_capacity:4 () in
  let addr = Optical.burn jukebox "record one" in
  Alcotest.(check (option string)) "read back" (Some "record one") (Optical.read jukebox addr);
  (match Optical.try_overwrite jukebox addr "rewritten" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "optical medium rewritten");
  Alcotest.(check (option string)) "unchanged" (Some "record one") (Optical.read jukebox addr)

let test_optical_no_secure_deletion_granularity () =
  (* the paper: "inability to fine-tune secure deletion granularity" *)
  let jukebox = Optical.create ~disc_capacity:4 () in
  let expired = Optical.burn jukebox "expired record" in
  ignore (Optical.burn jukebox "must be retained!") (* same disc *);
  (match Optical.try_erase_record jukebox expired with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "per-record erase on optical media");
  (* the only deletion is the whole disc — taking live records with it *)
  let disc = fst expired in
  let lost = Optical.destroy_disc jukebox disc in
  Alcotest.(check int) "collateral loss" 2 lost

let test_optical_fixed_retention_wastes_discs () =
  (* variable retention forces grouping by expiry date or destroying
     nothing; Strong WORM handles per-record retention on one medium *)
  let jukebox = Optical.create ~disc_capacity:8 () in
  for i = 1 to 8 do
    ignore (Optical.burn jukebox (Printf.sprintf "retention-%d-years" i))
  done;
  Alcotest.(check int) "all on one disc" 1 (Optical.disc_count jukebox)
(* ... so nothing can be disposed of until the 8-year record lapses. *)

let test_optical_replication_attack_succeeds () =
  let jukebox = Optical.create ~disc_capacity:4 () in
  let addr = Optical.burn jukebox "incriminating ledger" in
  ignore (Optical.burn jukebox "other record");
  Alcotest.(check bool) "disc swapped" true
    (Optical.swap_disc jukebox (fst addr) [ "sanitized ledger"; "other record" ]);
  (* the forged disc reads back without any detectable difference *)
  Alcotest.(check (option string)) "forged content served" (Some "sanitized ledger")
    (Optical.read jukebox addr)

(* ---------- Merkle store ---------- *)

let merkle_env capacity =
  incr counter;
  let clock = Clock.create () in
  let device =
    Device.provision
      ~seed:(Printf.sprintf "merkle-%d" !counter)
      ~clock ~ca:(Lazy.force ca) ~config:Device.test_config ~name:"merkle-scpu" ()
  in
  (Merkle_store.create ~device ~capacity, device)

let test_merkle_store_sound () =
  let store, device = merkle_env 16 in
  let idx = Merkle_store.append store "record-a" in
  ignore (Merkle_store.append store "record-b");
  let proof =
    match Merkle_store.prove store idx with
    | Some p -> p
    | None -> Alcotest.fail "no proof"
  in
  let signing_key = (Device.signing_cert device).Worm_crypto.Cert.key in
  Alcotest.(check bool) "proof verifies" true
    (Merkle_store.verify ~signing_key ~capacity:(Merkle_store.capacity store) ~data:"record-a" proof);
  Alcotest.(check bool) "wrong data rejected" false
    (Merkle_store.verify ~signing_key ~capacity:(Merkle_store.capacity store) ~data:"record-x" proof)

let test_merkle_stale_proof_rejected () =
  let store, device = merkle_env 16 in
  let idx = Merkle_store.append store "record-a" in
  let stale =
    match Merkle_store.prove store idx with
    | Some p -> p
    | None -> Alcotest.fail "no proof"
  in
  ignore (Merkle_store.append store "record-b");
  let fresh =
    match Merkle_store.prove store idx with
    | Some p -> p
    | None -> Alcotest.fail "no proof"
  in
  let signing_key = (Device.signing_cert device).Worm_crypto.Cert.key in
  Alcotest.(check bool) "fresh ok" true
    (Merkle_store.verify ~signing_key ~capacity:16 ~data:"record-a" fresh);
  (* the stale root is still SCPU-signed, so the signature holds, but the
     root no longer matches the live tree; a client pinning the latest
     root rejects it *)
  Alcotest.(check bool) "roots differ" false (String.equal stale.Merkle_store.root fresh.Merkle_store.root)

let test_merkle_update_cost_grows () =
  (* The paper's complaint: O(log n) SCPU hashing per update. *)
  let cost capacity =
    let store, device = merkle_env capacity in
    Device.reset_busy device;
    let h0 = (Device.stats device).Device.hash_ops in
    ignore (Merkle_store.append store "x");
    (Device.stats device).Device.hash_ops - h0
  in
  let c16 = cost 16 and c1024 = cost 1024 and c65536 = cost 65536 in
  Alcotest.(check bool) "grows with n" true (c16 < c1024 && c1024 < c65536);
  Alcotest.(check int) "log2(65536)+1 hashes" 17 c65536

let test_window_cost_flat_vs_merkle () =
  (* Strong WORM's per-update SCPU cost does not depend on store size. *)
  let env = fresh_env () in
  let device = env.device in
  let cost_of_next_write () =
    Device.reset_busy device;
    ignore (write env ());
    Device.busy_ns device
  in
  let first = cost_of_next_write () in
  ignore (write_n env 50);
  let later = cost_of_next_write () in
  let ratio = Int64.to_float later /. Int64.to_float first in
  Alcotest.(check bool) "flat cost" true (ratio > 0.9 && ratio < 1.1)

let suite =
  [
    ("soft-WORM honest path", `Quick, test_soft_worm_honest_path);
    ("soft-WORM catches accidents", `Quick, test_soft_worm_detects_casual_corruption);
    ("ATTACK SUCCEEDS: substitution", `Quick, test_insider_substitution_succeeds);
    ("ATTACK SUCCEEDS: hiding", `Quick, test_insider_hiding_succeeds);
    ("ATTACK SUCCEEDS: premature delete", `Quick, test_insider_premature_delete_succeeds);
    ("optical: genuinely write-once", `Quick, test_optical_genuinely_write_once);
    ("optical: no deletion granularity", `Quick, test_optical_no_secure_deletion_granularity);
    ("optical: fixed retention", `Quick, test_optical_fixed_retention_wastes_discs);
    ("optical: ATTACK SUCCEEDS: disc swap", `Quick, test_optical_replication_attack_succeeds);
    ("merkle store sound", `Quick, test_merkle_store_sound);
    ("merkle stale proof", `Quick, test_merkle_stale_proof_rejected);
    ("merkle update cost grows", `Quick, test_merkle_update_cost_grows);
    ("window update cost flat", `Quick, test_window_cost_flat_vs_merkle);
  ]

let () = Alcotest.run "worm_baseline" [ ("baseline", suite) ]
