(* The SCPU-anchored operation journal: chaining, anchoring, and the
   history-rewriting attacks the anchors defeat. *)

open Worm_core
open Worm_testkit.Testkit
module Rsa = Worm_crypto.Rsa
module Cert = Worm_crypto.Cert
module Clock = Worm_simclock.Clock

let journal_env () =
  let env = fresh_env ~config:{ Worm.default_config with Worm.journal = true } () in
  let j =
    match Worm.journal env.store with
    | Some j -> j
    | None -> Alcotest.fail "journal not enabled"
  in
  (env, j)

let signing env = (Firmware.signing_cert (Worm.firmware env.store)).Cert.key

let test_append_and_chain () =
  let env, j = journal_env () in
  ignore env;
  let e1 = Journal.append j (Journal.Op_custom "one") in
  let e2 = Journal.append j (Journal.Op_custom "two") in
  Alcotest.(check (pair int int)) "sequential" (1, 2) (e1.Journal.seq, e2.Journal.seq);
  Alcotest.(check bool) "chain moves" false (String.equal e1.Journal.chain e2.Journal.chain);
  Alcotest.(check bool) "chain verifies" true (Journal.verify_chain ~entries:(Journal.entries j));
  Alcotest.(check int) "length" 2 (Journal.length j)

let test_store_ops_journaled () =
  let env, j = journal_env () in
  let sn = write env ~policy:(short_policy ~retention_s:10. ()) () in
  ignore (expire_all env ~after_s:20.);
  let ops = List.map (fun e -> Journal.op_to_string e.Journal.op) (Journal.entries j) in
  Alcotest.(check (list string)) "write then delete"
    [ "write " ^ Serial.to_string sn; "delete " ^ Serial.to_string sn ]
    ops

let test_litigation_journaled () =
  let env, j = journal_env () in
  let authority = fresh_authority env in
  let sn = write env () in
  let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_days 10.) in
  (match Authority.place_hold authority ~store:env.store ~sn ~lit_id:"case-7" ~timeout with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  (match Authority.release_hold authority ~store:env.store ~sn with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  let ops = List.map (fun e -> Journal.op_to_string e.Journal.op) (Journal.entries j) in
  Alcotest.(check bool) "hold journaled" true
    (List.mem (Printf.sprintf "hold %s (case-7)" (Serial.to_string sn)) ops);
  Alcotest.(check bool) "release journaled" true
    (List.mem (Printf.sprintf "release %s (case-7)" (Serial.to_string sn)) ops)

let test_anchor_verifies () =
  let env, j = journal_env () in
  ignore (write_n env 3);
  let a = Journal.anchor j in
  Alcotest.(check int) "covers all entries" 3 a.Journal.upto_seq;
  Alcotest.(check bool) "anchor verifies" true
    (Journal.verify_anchor ~signing:(signing env) ~store_id:(Worm.store_id env.store)
       ~entries:(Journal.entries j) a);
  (* entries after the anchor do not disturb it *)
  ignore (write env ());
  Alcotest.(check bool) "anchor still verifies" true
    (Journal.verify_anchor ~signing:(signing env) ~store_id:(Worm.store_id env.store)
       ~entries:(Journal.entries j) a)

let test_heartbeat_anchors () =
  let env, j = journal_env () in
  ignore (write env ());
  Worm.heartbeat env.store;
  Alcotest.(check int) "one anchor" 1 (List.length (Journal.anchors j))

let test_rewrite_detected_by_anchor () =
  let env, j = journal_env () in
  let sns = write_n env 3 in
  let a = Journal.anchor j in
  (* Mallory rewrites history: entry 2 becomes a different operation,
     chains recomputed so the journal remains self-consistent... *)
  Alcotest.(check bool) "rewrite" true
    (Journal.Raw.rewrite_entry j ~seq:2 ~op:(Journal.Op_custom "nothing happened"));
  Alcotest.(check bool) "chain still self-consistent" true
    (Journal.verify_chain ~entries:(Journal.entries j));
  (* ...but the anchor catches it *)
  Alcotest.(check bool) "anchor rejects rewritten history" false
    (Journal.verify_anchor ~signing:(signing env) ~store_id:(Worm.store_id env.store)
       ~entries:(Journal.entries j) a);
  ignore sns

let test_truncation_detected_by_anchor () =
  let env, j = journal_env () in
  ignore (write_n env 4);
  let a = Journal.anchor j in
  Journal.Raw.truncate j ~keep:2;
  Alcotest.(check bool) "anchor rejects truncation" false
    (Journal.verify_anchor ~signing:(signing env) ~store_id:(Worm.store_id env.store)
       ~entries:(Journal.entries j) a)

let test_forged_anchor_rejected () =
  let env, j = journal_env () in
  ignore (write env ());
  let a = Journal.anchor j in
  let forged = { a with Journal.upto_seq = 99 } in
  Alcotest.(check bool) "forged anchor rejected" false
    (Journal.verify_anchor ~signing:(signing env) ~store_id:(Worm.store_id env.store)
       ~entries:(Journal.entries j) forged);
  (* a foreign store's key cannot anchor this journal *)
  let env2 = fresh_env () in
  Alcotest.(check bool) "foreign key rejected" false
    (Journal.verify_anchor ~signing:(signing env2) ~store_id:(Worm.store_id env.store)
       ~entries:(Journal.entries j) a)

let prop_chain_total_order =
  QCheck.Test.make ~name:"any op sequence chains and verifies" ~count:25
    QCheck.(small_list (int_bound 6))
    (fun opcodes ->
      let env, j = journal_env () in
      ignore env;
      List.iter
        (fun c ->
          let op =
            match c with
            | 0 -> Journal.Op_write (Serial.of_int c)
            | 1 -> Journal.Op_delete (Serial.of_int c)
            | 2 -> Journal.Op_hold (Serial.of_int c, "x")
            | 3 -> Journal.Op_release (Serial.of_int c, "x")
            | 4 -> Journal.Op_strengthen (Serial.of_int c)
            | 5 -> Journal.Op_window (Serial.of_int c, Serial.of_int (c + 3))
            | _ -> Journal.Op_custom "op"
          in
          ignore (Journal.append j op))
        opcodes;
      Journal.verify_chain ~entries:(Journal.entries j))

let suite =
  [
    ("append and chain", `Quick, test_append_and_chain);
    ("store ops journaled", `Quick, test_store_ops_journaled);
    ("litigation journaled", `Quick, test_litigation_journaled);
    ("anchor verifies", `Quick, test_anchor_verifies);
    ("heartbeat anchors", `Quick, test_heartbeat_anchors);
    ("rewrite detected by anchor", `Quick, test_rewrite_detected_by_anchor);
    ("truncation detected by anchor", `Quick, test_truncation_detected_by_anchor);
    ("forged anchors rejected", `Quick, test_forged_anchor_rejected);
    QCheck_alcotest.to_alcotest prop_chain_total_order;
  ]

let () = Alcotest.run "worm_journal" [ ("journal", suite) ]
