(* The WORM filesystem layer: versioned write-once files over the
   record-level store. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock

let fs_env () =
  let env = fresh_env () in
  (env, Worm_fs.create env.store)

let policy = short_policy ~retention_s:10_000. ()

let test_write_read_roundtrip () =
  let env, fs = fs_env () in
  let info = Worm_fs.write_file fs ~policy ~path:"/ledger/2026-q2.csv" "date,amount\n2026-07-01,100\n" in
  Alcotest.(check int) "first version" 1 info.Worm_fs.version;
  (match Worm_fs.read_file fs "/ledger/2026-q2.csv" with
  | Ok (i, data) ->
      Alcotest.(check int) "version" 1 i.Worm_fs.version;
      Alcotest.(check string) "content" "date,amount\n2026-07-01,100\n" data
  | Error _ -> Alcotest.fail "read failed");
  ignore env

let test_versioning () =
  let env, fs = fs_env () in
  ignore env;
  let v1 = Worm_fs.write_file fs ~policy ~path:"/report.txt" "draft" in
  let v2 = Worm_fs.write_file fs ~policy ~path:"/report.txt" "final" in
  Alcotest.(check (pair int int)) "versions 1,2" (1, 2) (v1.Worm_fs.version, v2.Worm_fs.version);
  Alcotest.(check bool) "distinct records" false (Serial.equal v1.Worm_fs.sn v2.Worm_fs.sn);
  (* latest by default *)
  (match Worm_fs.read_file fs "/report.txt" with
  | Ok (_, data) -> Alcotest.(check string) "latest" "final" data
  | Error _ -> Alcotest.fail "read failed");
  (* the old version is still there: write-once, never overwritten *)
  (match Worm_fs.read_file fs ~version:1 "/report.txt" with
  | Ok (_, data) -> Alcotest.(check string) "v1 intact" "draft" data
  | Error _ -> Alcotest.fail "v1 read failed");
  Alcotest.(check int) "two versions listed" 2 (List.length (Worm_fs.versions fs ~path:"/report.txt"));
  match Worm_fs.stat fs ~path:"/report.txt" with
  | Some info -> Alcotest.(check int) "stat shows latest" 2 info.Worm_fs.version
  | None -> Alcotest.fail "stat failed"

let test_large_file_chunking () =
  let env, fs = fs_env () in
  ignore env;
  let content = String.init 200_000 (fun i -> Char.chr (i mod 256)) in
  ignore (Worm_fs.write_file fs ~policy ~path:"/big.bin" content);
  match Worm_fs.read_file fs "/big.bin" with
  | Ok (info, data) ->
      Alcotest.(check int) "length" 200_000 info.Worm_fs.length;
      Alcotest.(check bool) "content preserved" true (String.equal data content)
  | Error _ -> Alcotest.fail "read failed"

let test_errors () =
  let env, fs = fs_env () in
  ignore env;
  (match Worm_fs.read_file fs "/missing" with
  | Error Worm_fs.No_such_file -> ()
  | _ -> Alcotest.fail "phantom file");
  ignore (Worm_fs.write_file fs ~policy ~path:"/f" "x");
  (match Worm_fs.read_file fs ~version:9 "/f" with
  | Error Worm_fs.No_such_version -> ()
  | _ -> Alcotest.fail "phantom version");
  Alcotest.check_raises "empty path" (Invalid_argument "Worm_fs: empty path") (fun () ->
      ignore (Worm_fs.write_file fs ~policy ~path:"" "x"))

let test_list_files () =
  let env, fs = fs_env () in
  ignore env;
  List.iter
    (fun p -> ignore (Worm_fs.write_file fs ~policy ~path:p "data"))
    [ "/b"; "/a"; "/c/d"; "/c/e"; "/ca" ];
  Alcotest.(check (list string)) "sorted" [ "/a"; "/b"; "/c/d"; "/c/e"; "/ca" ] (Worm_fs.list_files fs);
  Alcotest.(check (list string)) "prefix listing" [ "/c/d"; "/c/e" ] (Worm_fs.list_under fs ~prefix:"/c/");
  Alcotest.(check int) "total bytes" 20 (Worm_fs.total_bytes fs)

let test_verified_read () =
  let env, fs = fs_env () in
  ignore (Worm_fs.write_file fs ~policy ~path:"/audited.log" "entry-1");
  match Worm_fs.verified_read fs ~client:env.client "/audited.log" with
  | Ok (_, data) -> Alcotest.(check string) "verified content" "entry-1" data
  | Error e -> Alcotest.fail e

let test_verified_read_catches_path_substitution () =
  (* Mallory rebinds the index so /salary.txt points at /memo.txt's
     (validly witnessed!) record; the signed header exposes her. *)
  let env, fs = fs_env () in
  let memo = Worm_fs.write_file fs ~policy ~path:"/memo.txt" "all hands friday" in
  ignore (Worm_fs.write_file fs ~policy ~path:"/salary.txt" "CEO: $9,400,000");
  (* host-side index swap: the fs index is plumbing, like the VRDT *)
  let fs' = Worm_fs.create env.store in
  ignore fs';
  (* simulate the swap through a fresh index naming memo's record as salary *)
  let forged_info = { memo with Worm_fs.version = 1 } in
  ignore forged_info;
  (* direct approach: read through a client against the substituted sn *)
  (match Worm_fs.verified_read fs ~client:env.client "/memo.txt" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* forge: point /salary.txt at memo's sn via a rebuilt index *)
  let fs_forged = Worm_fs.create env.store in
  ignore (Worm_fs.write_file fs_forged ~policy ~path:"/decoy" "x");
  (* we cannot reach into the abstract index, so emulate the attack at the
     verification layer: ask for salary but serve memo's record *)
  match Client.verify_read env.client ~sn:memo.Worm_fs.sn (Worm.read env.store memo.Worm_fs.sn) with
  | Client.Valid_data { blocks = header_block :: _; _ } -> begin
      match Worm_fs.decode_header header_block with
      | Ok h ->
          Alcotest.(check string) "signed header pins the true path" "/memo.txt" h.Worm_fs.h_path
          (* a verifier requesting /salary.txt compares and rejects *)
      | Error e -> Alcotest.fail e
    end
  | _ -> Alcotest.fail "record unreadable"

let test_fs_retention_and_sync () =
  let env, fs = fs_env () in
  ignore (Worm_fs.write_file fs ~policy:(short_policy ~retention_s:10. ()) ~path:"/temp.log" "old");
  ignore (Worm_fs.write_file fs ~policy ~path:"/keep.log" "keep");
  ignore (expire_all env ~after_s:20.);
  (* before sync the index still names the expired version *)
  (match Worm_fs.read_file fs "/temp.log" with
  | Error Worm_fs.Version_deleted -> ()
  | _ -> Alcotest.fail "deleted version still readable");
  let pruned = Worm_fs.sync_index fs in
  Alcotest.(check int) "one version pruned" 1 pruned;
  (match Worm_fs.read_file fs "/temp.log" with
  | Error Worm_fs.No_such_file -> ()
  | _ -> Alcotest.fail "pruned file still indexed");
  Alcotest.(check (list string)) "survivor listed" [ "/keep.log" ] (Worm_fs.list_files fs)

let test_fs_version_expiry_independent () =
  let env, fs = fs_env () in
  ignore (Worm_fs.write_file fs ~policy:(short_policy ~retention_s:10. ()) ~path:"/doc" "v1 short");
  ignore (Worm_fs.write_file fs ~policy:(short_policy ~retention_s:10_000. ()) ~path:"/doc" "v2 long");
  ignore (expire_all env ~after_s:20.);
  ignore (Worm_fs.sync_index fs);
  (* v1 expired; v2 remains and is the only version *)
  (match Worm_fs.read_file fs "/doc" with
  | Ok (info, data) ->
      Alcotest.(check int) "v2 survives" 2 info.Worm_fs.version;
      Alcotest.(check string) "v2 content" "v2 long" data
  | Error _ -> Alcotest.fail "read failed");
  Alcotest.(check int) "one version left" 1 (List.length (Worm_fs.versions fs ~path:"/doc"))

let test_fs_hold_via_store () =
  let env, fs = fs_env () in
  let authority = fresh_authority env in
  let info = Worm_fs.write_file fs ~policy:(short_policy ~retention_s:10. ()) ~path:"/exhibit" "evidence" in
  let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_sec 10_000.) in
  (match Authority.place_hold authority ~store:env.store ~sn:info.Worm_fs.sn ~lit_id:"fs-case" ~timeout with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  ignore (expire_all env ~after_s:20.);
  ignore (Worm_fs.sync_index fs);
  match Worm_fs.read_file fs "/exhibit" with
  | Ok (_, data) -> Alcotest.(check string) "held file survives expiry" "evidence" data
  | Error _ -> Alcotest.fail "held file lost"

let test_index_save_restore () =
  let env, fs = fs_env () in
  ignore (Worm_fs.write_file fs ~policy ~path:"/a" "alpha");
  ignore (Worm_fs.write_file fs ~policy ~path:"/a" "alpha v2");
  ignore (Worm_fs.write_file fs ~policy ~path:"/b" "bravo");
  let blob = Worm_fs.save_index fs in
  (match Worm_fs.restore_index env.store ~index:blob with
  | Error e -> Alcotest.fail e
  | Ok fs' ->
      Alcotest.(check (list string)) "paths back" [ "/a"; "/b" ] (Worm_fs.list_files fs');
      (match Worm_fs.read_file fs' "/a" with
      | Ok (info, data) ->
          Alcotest.(check int) "latest version" 2 info.Worm_fs.version;
          Alcotest.(check string) "content" "alpha v2" data
      | Error _ -> Alcotest.fail "read after restore");
      (match Worm_fs.verified_read fs' ~client:env.client "/b" with
      | Ok (_, data) -> Alcotest.(check string) "verified after restore" "bravo" data
      | Error e -> Alcotest.fail e));
  (* garbage rejected *)
  match Worm_fs.restore_index env.store ~index:"junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage index accepted"

let test_forged_index_caught_by_header () =
  (* Mallory rebinds a path in a restored index: /salary resolves to
     /memo's (validly witnessed) record. The SCPU-signed header inside
     the record names the true path, so a verified read refuses. *)
  let env, fs = fs_env () in
  let memo = Worm_fs.write_file fs ~policy ~path:"/memo" "all hands friday" in
  ignore (Worm_fs.write_file fs ~policy ~path:"/salary" "CEO: $9,400,000");
  (* craft a forged index blob in the (public) wire format: the path
     "/salary" bound to memo's record *)
  let forged_blob =
    Worm_util.Codec.encode
      (fun enc () ->
        Worm_util.Codec.bytes enc "wormfs-index:v1";
        Worm_util.Codec.list
          (fun enc (path, (info : Worm_fs.version_info)) ->
            Worm_util.Codec.bytes enc path;
            Worm_util.Codec.list
              (fun enc (i : Worm_fs.version_info) ->
                Worm_util.Codec.u32 enc i.Worm_fs.version;
                Serial.encode enc i.Worm_fs.sn;
                Worm_util.Codec.int_as_u64 enc i.Worm_fs.length)
              enc [ info ])
          enc
          [ ("/salary", memo) ])
      ()
  in
  match Worm_fs.restore_index env.store ~index:forged_blob with
  | Error e -> Alcotest.fail e
  | Ok rebound -> begin
      (* the unverified read is fooled (it trusts the index)... *)
      (match Worm_fs.read_file rebound "/salary" with
      | Ok (_, data) -> Alcotest.(check string) "host-side read fooled" "all hands friday" data
      | Error _ -> Alcotest.fail "forged index did not resolve");
      (* ...the verified read is not: the signed header pins the path *)
      match Worm_fs.verified_read rebound ~client:env.client "/salary" with
      | Error msg -> Alcotest.(check bool) "substitution named" true (String.length msg > 0)
      | Ok _ -> Alcotest.fail "verified read accepted a rebound path"
    end

let test_header_codec_rejects_garbage () =
  (match Worm_fs.decode_header "not a header" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage header decoded");
  match Worm_fs.decode_header "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty header decoded"

let prop_fs_roundtrip =
  QCheck.Test.make ~name:"fs write/read roundtrip" ~count:15
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 50)) (string_of_size (QCheck.Gen.int_bound 5000)))
    (fun (name, content) ->
      QCheck.assume (String.length name > 0 && not (String.contains name '\n'));
      let _, fs = fs_env () in
      ignore (Worm_fs.write_file fs ~policy ~path:name content);
      match Worm_fs.read_file fs name with
      | Ok (_, data) -> String.equal data content
      | Error _ -> false)

let suite =
  [
    ("write/read roundtrip", `Quick, test_write_read_roundtrip);
    ("versioning", `Quick, test_versioning);
    ("large file chunking", `Quick, test_large_file_chunking);
    ("errors", `Quick, test_errors);
    ("list files", `Quick, test_list_files);
    ("verified read", `Quick, test_verified_read);
    ("path substitution caught", `Quick, test_verified_read_catches_path_substitution);
    ("retention + index sync", `Quick, test_fs_retention_and_sync);
    ("per-version expiry", `Quick, test_fs_version_expiry_independent);
    ("litigation hold on a file", `Quick, test_fs_hold_via_store);
    ("index save/restore", `Quick, test_index_save_restore);
    ("forged index caught by header", `Quick, test_forged_index_caught_by_header);
    ("header codec strict", `Quick, test_header_codec_rejects_garbage);
    QCheck_alcotest.to_alcotest prop_fs_roundtrip;
  ]

let () = Alcotest.run "worm_fs" [ ("fs", suite) ]
