(* The block-level WORM device (§4.1's embedded deployment point). *)

open Worm_core
open Worm_testkit.Testkit
module Blockdev = Worm_blockdev
module Clock = Worm_simclock.Clock

let dev_env ?policy () =
  let env = fresh_env () in
  let dev = Blockdev.create ?policy ~block_size:256 ~store:env.store ~client:env.client () in
  (env, dev)

let test_append_read_roundtrip () =
  let _, dev = dev_env () in
  let lba0 = Blockdev.append dev "first block" in
  let lba1 = Blockdev.append dev "second block" in
  Alcotest.(check int64) "lba 0" 0L lba0;
  Alcotest.(check int64) "lba 1" 1L lba1;
  Alcotest.(check int64) "capacity" 2L (Blockdev.capacity_used dev);
  (match Blockdev.read dev 0L with
  | Blockdev.Data d -> Alcotest.(check string) "exact contents" "first block" d
  | _ -> Alcotest.fail "read 0");
  match Blockdev.read dev 1L with
  | Blockdev.Data d -> Alcotest.(check string) "exact contents" "second block" d
  | _ -> Alcotest.fail "read 1"

let test_payload_edge_sizes () =
  let _, dev = dev_env () in
  let empty = Blockdev.append dev "" in
  let full = Blockdev.append dev (String.make 252 'x') in
  (match Blockdev.read dev empty with
  | Blockdev.Data "" -> ()
  | _ -> Alcotest.fail "empty payload");
  (match Blockdev.read dev full with
  | Blockdev.Data d -> Alcotest.(check int) "252 bytes" 252 (String.length d)
  | _ -> Alcotest.fail "full payload");
  Alcotest.check_raises "oversize" (Invalid_argument "Worm_blockdev.append: payload exceeds block size")
    (fun () -> ignore (Blockdev.append dev (String.make 253 'x')))

let test_unwritten_lbas_proven () =
  let _, dev = dev_env () in
  ignore (Blockdev.append dev "one");
  (match Blockdev.read dev 7L with
  | Blockdev.Unwritten -> ()
  | _ -> Alcotest.fail "phantom lba");
  match Blockdev.read dev (-1L) with
  | Blockdev.Unwritten -> ()
  | _ -> Alcotest.fail "negative lba"

let test_expiry_surfaces_as_expired () =
  let policy = short_policy ~retention_s:10. () in
  let env, dev = dev_env ~policy () in
  let lba = Blockdev.append dev "ephemeral" in
  Clock.advance env.clock (Clock.ns_of_sec 20.);
  Alcotest.(check int) "one block expired" 1 (Blockdev.expire dev);
  match Blockdev.read dev lba with
  | Blockdev.Expired -> ()
  | _ -> Alcotest.fail "expired block still served"

let test_tamper_surfaces_as_compromised () =
  let env, dev = dev_env () in
  let lba = Blockdev.append dev "target" in
  let mallory = Adversary.create env.store in
  ignore (Adversary.tamper_record_data mallory (Serial.of_int64 (Int64.add lba 1L)));
  match Blockdev.read dev lba with
  | Blockdev.Compromised _ -> ()
  | _ -> Alcotest.fail "tampered block accepted"

let test_blocks_uniform_on_media () =
  (* every block on the platter is exactly block_size bytes: no length
     side-channel in embedded deployments *)
  let env, dev = dev_env () in
  ignore (Blockdev.append dev "ab");
  ignore (Blockdev.append dev (String.make 100 'z'));
  Worm_simdisk.Disk.Raw.snapshot env.disk
  |> List.iter (fun (_, content) -> Alcotest.(check int) "uniform size" 256 (String.length content))

let prop_roundtrip =
  QCheck.Test.make ~name:"blockdev roundtrip" ~count:10
    QCheck.(small_list (string_of_size (QCheck.Gen.int_bound 200)))
    (fun payloads ->
      let _, dev = dev_env () in
      let lbas = List.map (Blockdev.append dev) payloads in
      List.for_all2
        (fun lba payload ->
          match Blockdev.read dev lba with
          | Blockdev.Data d -> String.equal d payload
          | _ -> false)
        lbas payloads)

let suite =
  [
    ("append/read roundtrip", `Quick, test_append_read_roundtrip);
    ("payload edge sizes", `Quick, test_payload_edge_sizes);
    ("unwritten LBAs proven", `Quick, test_unwritten_lbas_proven);
    ("expiry surfaces as Expired", `Quick, test_expiry_surfaces_as_expired);
    ("tamper surfaces as Compromised", `Quick, test_tamper_surfaces_as_compromised);
    ("blocks uniform on media", `Quick, test_blocks_uniform_on_media);
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]

let () = Alcotest.run "worm_blockdev" [ ("blockdev", suite) ]
