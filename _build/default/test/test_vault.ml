(* AES and the at-rest encryption vault. *)

open Worm_core
open Worm_testkit.Testkit
module Aes = Worm_crypto.Aes
module Hex = Worm_util.Hex
module Disk = Worm_simdisk.Disk

(* ---------- AES primitives ---------- *)

let test_fips197_vector () =
  let key = Aes.key_of_string (Hex.decode "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes.encrypt_block key (Hex.decode "00112233445566778899aabbccddeeff") in
  Alcotest.(check string) "FIPS 197 appendix C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Hex.encode ct)

let test_aes_arg_validation () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.key_of_string: need 16 bytes") (fun () ->
      ignore (Aes.key_of_string "short"));
  let key = Aes.key_of_string (String.make 16 'k') in
  Alcotest.check_raises "short block" (Invalid_argument "Aes.encrypt_block: need 16 bytes") (fun () ->
      ignore (Aes.encrypt_block key "short"));
  Alcotest.check_raises "bad nonce" (Invalid_argument "Aes.ctr: nonce must be 8 bytes") (fun () ->
      ignore (Aes.ctr key ~nonce:"xx" "data"))

let prop_ctr_involution =
  QCheck.Test.make ~name:"ctr is its own inverse" ~count:100
    QCheck.(pair string (string_of_size (QCheck.Gen.return 8)))
    (fun (data, nonce) ->
      let key = Aes.key_of_string "0123456789abcdef" in
      String.equal (Aes.ctr key ~nonce (Aes.ctr key ~nonce data)) data)

let prop_ctr_nonce_separates =
  QCheck.Test.make ~name:"different nonces, different streams" ~count:50
    QCheck.(string_of_size (QCheck.Gen.int_range 16 200))
    (fun data ->
      let key = Aes.key_of_string "0123456789abcdef" in
      not (String.equal (Aes.ctr key ~nonce:"nonce-01" data) (Aes.ctr key ~nonce:"nonce-02" data)))

let test_ctr_lengths () =
  let key = Aes.key_of_string "0123456789abcdef" in
  List.iter
    (fun n ->
      let data = String.make n 'x' in
      let enc = Aes.ctr key ~nonce:"12345678" data in
      Alcotest.(check int) "length preserved" n (String.length enc);
      Alcotest.(check string) "roundtrip" data (Aes.ctr key ~nonce:"12345678" enc))
    [ 0; 1; 15; 16; 17; 31; 32; 1000 ]

(* ---------- the vault ---------- *)

let vault_env () = fresh_env ~config:{ Worm.default_config with Worm.encrypt_at_rest = true } ()

let test_vault_key_stable () =
  let env = vault_env () in
  let fw = Worm.firmware env.store in
  let v1 = Vault.create fw and v2 = Vault.create fw in
  Alcotest.(check string) "same device+store, same key" (Vault.key_fingerprint v1) (Vault.key_fingerprint v2);
  let sealed = Vault.seal v1 ~sn:(Serial.of_int 7) ~index:0 "plaintext" in
  Alcotest.(check string) "cross-instance unseal" "plaintext"
    (Vault.unseal v2 ~sn:(Serial.of_int 7) ~index:0 sealed)

let test_vault_nonce_separation () =
  let env = vault_env () in
  let v =
    match Worm.vault env.store with
    | Some v -> v
    | None -> Alcotest.fail "vault missing"
  in
  let s1 = Vault.seal v ~sn:(Serial.of_int 1) ~index:0 "same plaintext" in
  let s2 = Vault.seal v ~sn:(Serial.of_int 2) ~index:0 "same plaintext" in
  let s3 = Vault.seal v ~sn:(Serial.of_int 1) ~index:1 "same plaintext" in
  Alcotest.(check bool) "sn separates" false (String.equal s1 s2);
  Alcotest.(check bool) "index separates" false (String.equal s1 s3)

let test_platters_hold_ciphertext () =
  let env = vault_env () in
  let secret = "the merger closes friday at $12/share" in
  let sn = write env ~blocks:[ secret ] () in
  (* normal reads still serve and verify plaintext *)
  check_verdict "read verifies" "valid-data" env sn;
  (match Worm.read env.store sn with
  | Proof.Found { blocks; _ } -> Alcotest.(check (list string)) "plaintext served" [ secret ] blocks
  | r -> Alcotest.fail (Proof.describe r));
  (* but an imaged platter shows only ciphertext *)
  let rd =
    match Vrdt.find (Worm.vrdt env.store) sn with
    | Some (Vrdt.Active vrd) -> List.hd vrd.Vrd.rdl
    | _ -> Alcotest.fail "missing"
  in
  match Disk.Raw.residue env.disk rd with
  | Some on_platter ->
      Alcotest.(check bool) "no plaintext on media" false (String.equal on_platter secret);
      Alcotest.(check int) "same length (CTR)" (String.length secret) (String.length on_platter)
  | None -> Alcotest.fail "block unreadable"

let test_vault_with_host_hash_and_maintenance () =
  let config =
    { Worm.default_config with Worm.encrypt_at_rest = true; datasig_mode = Worm.Host_hash }
  in
  let env = fresh_env ~config () in
  let sn = write env ~witness:Firmware.Weak_deferred ~blocks:[ "burst secret" ] () in
  (* strengthening + audit must unseal before handing data to the SCPU *)
  Worm.idle_tick env.store;
  Alcotest.(check int) "audit cleared" 0 (List.length (Worm.audit_backlog env.store));
  check_verdict "verifies after maintenance" "valid-data" env sn

let test_vault_expiry_shreds_ciphertext () =
  let env = vault_env () in
  let sn = write env ~policy:(short_policy ~retention_s:10. ()) ~blocks:[ "ephemeral" ] () in
  ignore (expire_all env ~after_s:20.);
  check_verdict "deleted with proof" "properly-deleted" env sn

let test_vault_tamper_still_detected () =
  (* encryption must not weaken integrity: flipping ciphertext bytes is
     caught exactly like plaintext tampering *)
  let env = vault_env () in
  let sn = write env ~blocks:[ "protected" ] () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "tampered" true (Adversary.tamper_record_data mallory sn);
  match verdict env sn with
  | Client.Violation _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_vault_survives_restart () =
  let config = { Worm.default_config with Worm.encrypt_at_rest = true } in
  let env = fresh_env ~config () in
  let sn = write env ~blocks:[ "survives reboots" ] () in
  let blob = Worm.save_host_state env.store in
  match Worm.restore ~config ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:blob () with
  | Error e -> Alcotest.fail e
  | Ok store' -> begin
      match Worm.read store' sn with
      | Proof.Found { blocks; _ } ->
          Alcotest.(check (list string)) "key re-derived, plaintext back" [ "survives reboots" ] blocks
      | r -> Alcotest.fail (Proof.describe r)
    end

let test_vault_dedup_rejected () =
  let config = { Worm.default_config with Worm.encrypt_at_rest = true; dedup = true } in
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Worm.create: dedup and encrypt_at_rest cannot be combined") (fun () ->
      ignore (fresh_env ~config ()))

let prop_vault_roundtrip =
  QCheck.Test.make ~name:"vault store roundtrip" ~count:10
    QCheck.(small_list (string_of_size (QCheck.Gen.int_bound 300)))
    (fun payloads ->
      QCheck.assume (payloads <> []);
      let env = vault_env () in
      let sn = write env ~blocks:payloads () in
      match Worm.read env.store sn with
      | Proof.Found { blocks; _ } -> blocks = payloads
      | _ -> false)

let suite =
  [
    ("FIPS 197 vector", `Quick, test_fips197_vector);
    ("AES argument validation", `Quick, test_aes_arg_validation);
    ("CTR lengths", `Quick, test_ctr_lengths);
    ("vault key stable", `Quick, test_vault_key_stable);
    ("vault nonce separation", `Quick, test_vault_nonce_separation);
    ("platters hold ciphertext", `Quick, test_platters_hold_ciphertext);
    ("vault + host-hash maintenance", `Quick, test_vault_with_host_hash_and_maintenance);
    ("vault expiry", `Quick, test_vault_expiry_shreds_ciphertext);
    ("tamper still detected", `Quick, test_vault_tamper_still_detected);
    ("vault survives restart", `Quick, test_vault_survives_restart);
    ("vault + dedup rejected", `Quick, test_vault_dedup_rejected);
    QCheck_alcotest.to_alcotest prop_ctr_involution;
    QCheck_alcotest.to_alcotest prop_ctr_nonce_separates;
    QCheck_alcotest.to_alcotest prop_vault_roundtrip;
  ]

let () = Alcotest.run "worm_vault" [ ("vault", suite) ]
