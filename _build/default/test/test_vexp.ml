(* VEXP (bounded expiration schedule) and the deferred-strengthening
   queue: ordering, capacity shedding, and deadline bookkeeping. *)

open Worm_core

let sn = Serial.of_int

let test_vexp_ordering () =
  let v = Vexp.create ~capacity:10 in
  Alcotest.(check (option (pair int64 int64))) "empty" None
    (Option.map (fun (e, s) -> (e, Serial.to_int64 s)) (Vexp.next_due v));
  ignore (Vexp.insert v ~expiry:300L (sn 3));
  ignore (Vexp.insert v ~expiry:100L (sn 1));
  ignore (Vexp.insert v ~expiry:200L (sn 2));
  (match Vexp.next_due v with
  | Some (100L, s) -> Alcotest.(check int64) "earliest first" 1L (Serial.to_int64 s)
  | _ -> Alcotest.fail "wrong head");
  let due = Vexp.pop_due v ~now:250L in
  Alcotest.(check (list int64)) "due in order" [ 1L; 2L ] (List.map (fun (_, s) -> Serial.to_int64 s) due);
  Alcotest.(check int) "one left" 1 (Vexp.length v);
  Alcotest.(check (list int64)) "nothing more due" [] (List.map fst (Vexp.pop_due v ~now:250L))

let test_vexp_duplicate_replaces () =
  let v = Vexp.create ~capacity:10 in
  ignore (Vexp.insert v ~expiry:100L (sn 1));
  ignore (Vexp.insert v ~expiry:500L (sn 1));
  Alcotest.(check int) "one entry" 1 (Vexp.length v);
  Alcotest.(check (list int64)) "old schedule gone" [] (List.map fst (Vexp.pop_due v ~now:200L));
  Alcotest.(check int) "new schedule fires" 1 (List.length (Vexp.pop_due v ~now:500L))

let test_vexp_remove () =
  let v = Vexp.create ~capacity:10 in
  ignore (Vexp.insert v ~expiry:100L (sn 1));
  Alcotest.(check bool) "mem" true (Vexp.mem v (sn 1));
  Alcotest.(check bool) "removed" true (Vexp.remove v (sn 1));
  Alcotest.(check bool) "gone" false (Vexp.mem v (sn 1));
  Alcotest.(check bool) "second remove false" false (Vexp.remove v (sn 1));
  Alcotest.(check int) "empty" 0 (Vexp.length v)

let test_vexp_capacity_shedding () =
  let v = Vexp.create ~capacity:3 in
  ignore (Vexp.insert v ~expiry:100L (sn 1));
  ignore (Vexp.insert v ~expiry:200L (sn 2));
  ignore (Vexp.insert v ~expiry:300L (sn 3));
  Alcotest.(check bool) "full" true (Vexp.is_full v);
  (* Later than everything held: rejected, timeliness preserved. *)
  (match Vexp.insert v ~expiry:400L (sn 4) with
  | Vexp.Rejected_full -> ()
  | _ -> Alcotest.fail "late entry accepted into full store");
  (* Earlier than the max: accepted, max shed. *)
  (match Vexp.insert v ~expiry:50L (sn 5) with
  | Vexp.Inserted_evicting (300L, shed) -> Alcotest.(check int64) "sheds the latest" 3L (Serial.to_int64 shed)
  | _ -> Alcotest.fail "early entry not accepted");
  (* The soonest deletions are exactly the ones retained. *)
  Alcotest.(check (list int64)) "soonest retained" [ 5L; 1L; 2L ]
    (List.map (fun (_, s) -> Serial.to_int64 s) (Vexp.to_list v))

let prop_vexp_pop_sorted =
  QCheck.Test.make ~name:"pop_due returns ascending expiries" ~count:200
    QCheck.(small_list (pair (int_bound 1000) (int_bound 100)))
    (fun entries ->
      let v = Vexp.create ~capacity:1000 in
      List.iter (fun (e, s) -> ignore (Vexp.insert v ~expiry:(Int64.of_int e) (sn s))) entries;
      let due = Vexp.pop_due v ~now:500L in
      let expiries = List.map fst due in
      List.sort compare expiries = expiries && List.for_all (fun e -> e <= 500L) expiries)

let prop_vexp_never_over_capacity =
  QCheck.Test.make ~name:"never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (pair (int_bound 1000) (int_bound 1000))))
    (fun (cap, entries) ->
      let v = Vexp.create ~capacity:cap in
      List.iter (fun (e, s) -> ignore (Vexp.insert v ~expiry:(Int64.of_int e) (sn s))) entries;
      Vexp.length v <= cap)

(* ---------- Deferred queue ---------- *)

let test_deferred_ordering () =
  let q = Deferred.create () in
  Deferred.push q ~sn:(sn 1) ~deadline:300L;
  Deferred.push q ~sn:(sn 2) ~deadline:100L;
  Deferred.push q ~sn:(sn 3) ~deadline:200L;
  (match Deferred.peek q with
  | Some { Deferred.sn = s; deadline = 100L } -> Alcotest.(check int64) "earliest deadline" 2L (Serial.to_int64 s)
  | _ -> Alcotest.fail "wrong head");
  let batch = Deferred.take_batch q ~max:2 in
  Alcotest.(check (list int64)) "batch order" [ 2L; 3L ]
    (List.map (fun e -> Serial.to_int64 e.Deferred.sn) batch);
  Alcotest.(check int) "one left" 1 (Deferred.length q)

let test_deferred_overdue () =
  let q = Deferred.create () in
  Deferred.push q ~sn:(sn 1) ~deadline:100L;
  Deferred.push q ~sn:(sn 2) ~deadline:900L;
  Alcotest.(check int) "one overdue" 1 (List.length (Deferred.overdue q ~now:500L));
  Alcotest.(check int) "overdue does not remove" 2 (Deferred.length q);
  Alcotest.(check int) "none before deadlines" 0 (List.length (Deferred.overdue q ~now:50L))

let test_deferred_replace_and_remove () =
  let q = Deferred.create () in
  Deferred.push q ~sn:(sn 7) ~deadline:100L;
  Deferred.push q ~sn:(sn 7) ~deadline:700L;
  Alcotest.(check int) "re-push replaces" 1 (Deferred.length q);
  (match Deferred.peek q with
  | Some { Deferred.deadline = 700L; _ } -> ()
  | _ -> Alcotest.fail "deadline not replaced");
  Alcotest.(check bool) "remove" true (Deferred.remove q (sn 7));
  Alcotest.(check bool) "empty" true (Deferred.is_empty q)

let suite =
  [
    ("vexp ordering", `Quick, test_vexp_ordering);
    ("vexp duplicate replaces", `Quick, test_vexp_duplicate_replaces);
    ("vexp remove", `Quick, test_vexp_remove);
    ("vexp capacity shedding", `Quick, test_vexp_capacity_shedding);
    ("deferred ordering", `Quick, test_deferred_ordering);
    ("deferred overdue", `Quick, test_deferred_overdue);
    ("deferred replace/remove", `Quick, test_deferred_replace_and_remove);
    QCheck_alcotest.to_alcotest prop_vexp_pop_sorted;
    QCheck_alcotest.to_alcotest prop_vexp_never_over_capacity;
  ]

let () = Alcotest.run "worm_vexp" [ ("vexp", suite) ]
