test/test_vault.mli:
