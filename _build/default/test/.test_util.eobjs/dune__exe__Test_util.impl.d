test/test_util.ml: Alcotest Codec Ct Hex QCheck QCheck_alcotest String Worm_util
