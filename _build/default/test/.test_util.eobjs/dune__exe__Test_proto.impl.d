test/test_proto.ml: Alcotest Bytes Char Client List Proof QCheck QCheck_alcotest Serial String Worm Worm_core Worm_crypto Worm_proto Worm_simclock Worm_testkit Worm_util
