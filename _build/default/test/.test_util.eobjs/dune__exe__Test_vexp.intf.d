test/test_vexp.mli:
