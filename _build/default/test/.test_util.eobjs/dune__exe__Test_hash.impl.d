test/test_hash.ml: Alcotest Chained_hash Drbg Hmac List Nat QCheck QCheck_alcotest Sha1 Sha256 String Worm_crypto Worm_util
