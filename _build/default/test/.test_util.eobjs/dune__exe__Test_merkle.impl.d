test/test_merkle.ml: Alcotest List Merkle Printf QCheck QCheck_alcotest String Worm_crypto
