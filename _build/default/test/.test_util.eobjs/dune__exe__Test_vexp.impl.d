test/test_vexp.ml: Alcotest Deferred Int64 List Option QCheck QCheck_alcotest Serial Vexp Worm_core
