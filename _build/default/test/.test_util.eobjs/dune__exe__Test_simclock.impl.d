test/test_simclock.ml: Alcotest Format Int64 List QCheck QCheck_alcotest Worm_simclock
