test/test_dedup.ml: Adversary Alcotest Client List Proof QCheck QCheck_alcotest Serial String Vrd Vrdt Worm Worm_core Worm_simclock Worm_simdisk Worm_testkit
