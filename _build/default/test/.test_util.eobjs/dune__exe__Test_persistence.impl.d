test/test_persistence.ml: Alcotest Client Dedup_store Int64 List QCheck QCheck_alcotest Serial String Worm Worm_core Worm_simclock Worm_simdisk Worm_testkit
