test/test_core_types.ml: Alcotest Attr List Policy QCheck QCheck_alcotest Serial String Vrd Vrdt Wire Witness Worm_core Worm_simclock Worm_util
