test/test_nat.ml: Alcotest Drbg Fmt List Nat QCheck QCheck_alcotest String Worm_crypto
