test/test_journal.ml: Alcotest Authority Firmware Int64 Journal List Printf QCheck QCheck_alcotest Serial String Worm Worm_core Worm_crypto Worm_simclock Worm_testkit
