test/test_rsa.ml: Alcotest Bytes Cert Char Drbg Int64 Lazy List Nat Prime QCheck QCheck_alcotest Rsa String Worm_crypto Worm_simclock Worm_util
