test/test_simdisk.ml: Alcotest Fun List QCheck QCheck_alcotest String Worm_simclock Worm_simdisk
