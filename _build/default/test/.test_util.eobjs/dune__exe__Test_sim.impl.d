test/test_sim.ml: Alcotest Lazy List Policy String Worm_core Worm_crypto Worm_sim Worm_simdisk Worm_workload
