test/test_replication.ml: Adversary Alcotest Attr Client Firmware Lazy List Option Policy Printf Replicator Serial String Vrd Vrdt Worm Worm_core Worm_scpu Worm_simclock Worm_simdisk Worm_testkit
