test/test_baseline.ml: Alcotest Int64 Lazy Printf String Worm_baseline Worm_crypto Worm_scpu Worm_simclock Worm_testkit
