test/test_attacks.ml: Adversary Alcotest Client Firmware List Proof Serial String Vrd Vrdt Worm Worm_core Worm_scpu Worm_simclock Worm_simdisk Worm_testkit
