test/test_model.ml: Alcotest Authority Client Firmware Hashtbl Int64 List Serial String Worm Worm_core Worm_crypto Worm_simclock Worm_testkit
