test/test_blockdev.ml: Adversary Alcotest Int64 List QCheck QCheck_alcotest Serial String Worm_blockdev Worm_core Worm_simclock Worm_simdisk Worm_testkit
