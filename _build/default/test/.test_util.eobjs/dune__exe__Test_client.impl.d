test/test_client.ml: Alcotest Client Firmware Int64 List Proof Serial String Worm Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_testkit
