test/test_firmware.ml: Alcotest Attr Authority Firmware Int64 Lazy List Policy QCheck QCheck_alcotest Serial String Vrd Wire Witness Worm Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_testkit
