test/test_blockdev.mli:
