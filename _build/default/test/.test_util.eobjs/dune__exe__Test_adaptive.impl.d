test/test_adaptive.ml: Adaptive Alcotest Firmware Int64 List String Worm Worm_core Worm_scpu Worm_simclock Worm_testkit
