test/test_simdisk.mli:
