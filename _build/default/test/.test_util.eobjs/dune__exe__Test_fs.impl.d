test/test_fs.ml: Alcotest Authority Char Client Firmware Int64 List QCheck QCheck_alcotest Serial String Worm Worm_core Worm_fs Worm_simclock Worm_testkit Worm_util
