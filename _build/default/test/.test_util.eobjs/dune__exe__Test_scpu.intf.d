test/test_scpu.mli:
