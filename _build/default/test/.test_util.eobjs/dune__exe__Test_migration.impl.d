test/test_migration.ml: Adversary Alcotest Client Firmware Lazy List Migration Worm Worm_core Worm_scpu Worm_simclock Worm_simdisk Worm_testkit
