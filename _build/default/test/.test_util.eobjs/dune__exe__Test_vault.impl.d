test/test_vault.ml: Adversary Alcotest Client Firmware List Proof QCheck QCheck_alcotest Serial String Vault Vrd Vrdt Worm Worm_core Worm_crypto Worm_simdisk Worm_testkit Worm_util
