test/test_worm.ml: Alcotest Attr Authority Firmware Format Int64 List Proof Serial String Vrd Vrdt Witness Worm Worm_core Worm_scpu Worm_simclock Worm_simdisk Worm_testkit
