test/test_scpu.ml: Alcotest Cert Drbg Int64 Lazy Printf Rsa String Worm_crypto Worm_scpu Worm_simclock
