(* Client-side verification: connect-time certificate validation,
   verdict mapping, bound freshness, and migration attestation. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Cert = Worm_crypto.Cert
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let test_connect_validates_certs () =
  let env = fresh_env () in
  let fw = Worm.firmware env.store in
  let signing_cert = Firmware.signing_cert fw in
  let deletion_cert = Firmware.deletion_cert fw in
  let store_id = Worm.store_id env.store in
  (* happy path *)
  (match Client.connect ~ca:(ca_pub ()) ~clock:env.clock ~signing_cert ~deletion_cert ~store_id () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* wrong CA *)
  let bogus_ca = Rsa.public_of (Rsa.generate rng ~bits:512) in
  (match Client.connect ~ca:bogus_ca ~clock:env.clock ~signing_cert ~deletion_cert ~store_id () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign CA accepted");
  (* swapped roles *)
  (match
     Client.connect ~ca:(ca_pub ()) ~clock:env.clock ~signing_cert:deletion_cert ~deletion_cert:signing_cert
       ~store_id ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "role swap accepted");
  (* tampered cert *)
  let forged = { signing_cert with Cert.subject = "evil" } in
  match Client.connect ~ca:(ca_pub ()) ~clock:env.clock ~signing_cert:forged ~deletion_cert ~store_id () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered cert accepted"

let test_verdicts_happy_paths () =
  let env = fresh_env () in
  let sn = write env () in
  check_verdict "valid data" "valid-data" env sn;
  check_verdict "never written" "never-written" env (Serial.of_int 999);
  ignore (expire_all env ~after_s:101.);
  check_verdict "properly deleted" "properly-deleted" env sn

let test_refusal_is_violation () =
  let env = fresh_env () in
  let sn = write env () in
  match Client.verify_read env.client ~sn (Proof.Refused "disk on fire") with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_wrong_serial_detected () =
  let env = fresh_env () in
  let sn1 = write env () in
  let sn2 = write env () in
  (* host answers the sn2 query with sn1's perfectly valid record *)
  let response = Worm.read env.store sn1 in
  match Client.verify_read env.client ~sn:sn2 response with
  | Client.Violation vs -> Alcotest.(check bool) "wrong serial flagged" true (List.mem Client.Wrong_serial vs)
  | v -> Alcotest.fail (Client.verdict_name v)

let test_deletion_proof_for_other_record_rejected () =
  let env = fresh_env () in
  let sn1 = write env ~policy:(short_policy ~retention_s:10. ()) () in
  let sn2 = write env ~policy:(short_policy ~retention_s:10_000. ()) () in
  ignore (expire_all env ~after_s:20.);
  (* serve sn1's genuine deletion proof for live sn2 *)
  match Worm.read env.store sn1 with
  | Proof.Proof_deleted { proof; _ } -> begin
      match Client.verify_read env.client ~sn:sn2 (Proof.Proof_deleted { sn = sn2; proof }) with
      | Client.Violation [ Client.Deletion_proof_invalid ] -> ()
      | v -> Alcotest.fail (Client.verdict_name v)
    end
  | r -> Alcotest.fail (Proof.describe r)

let test_stale_current_bound_rejected () =
  let env = fresh_env () in
  ignore (write env ());
  Worm.heartbeat env.store;
  let stale = Worm.cached_current_bound env.store in
  Clock.advance env.clock (Clock.ns_of_min 6.) (* past the 5 min default *);
  match Client.verify_read env.client ~sn:(Serial.of_int 50) (Proof.Proof_unallocated stale) with
  | Client.Violation [ Client.Stale_current_bound ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_unallocated_claim_for_allocated_sn () =
  let env = fresh_env () in
  let sn = write env () in
  Worm.heartbeat env.store;
  let fresh = Worm.cached_current_bound env.store in
  (* bound is genuine and fresh, but sn <= bound: the claim proves nothing *)
  match Client.verify_read env.client ~sn (Proof.Proof_unallocated fresh) with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_expired_base_bound_rejected () =
  let env = fresh_env () in
  let sn = write env ~policy:(short_policy ~retention_s:10. ()) () in
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  let bound = Worm.cached_base_bound env.store in
  Clock.advance env.clock (Clock.ns_of_hours 2.) (* base bounds carry 1h expiry *);
  match Client.verify_read env.client ~sn (Proof.Proof_below_base bound) with
  | Client.Violation [ Client.Base_bound_expired ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_base_bound_not_covering_rejected () =
  let env = fresh_env () in
  let sn1 = write env ~policy:(short_policy ~retention_s:10. ()) () in
  let sn2 = write env () in
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  let bound = Worm.cached_base_bound env.store in
  Alcotest.(check int64) "base is sn2" (Serial.to_int64 sn2) (Serial.to_int64 bound.Firmware.sn);
  ignore sn1;
  (* claiming the still-live sn2 is below base *)
  match Client.verify_read env.client ~sn:sn2 (Proof.Proof_below_base bound) with
  | Client.Violation [ Client.Base_does_not_cover ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_window_not_covering_rejected () =
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "keep" ]);
  ignore (write_n env ~retention_s:10. 3);
  let victim = Worm.write env.store ~policy:long ~blocks:[ "victim" ] in
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  let w = List.hd (Worm.deletion_windows env.store) in
  (* genuine window [2,4] presented for live sn5 *)
  match Client.verify_read env.client ~sn:victim (Proof.Proof_in_window w) with
  | Client.Violation [ Client.Window_does_not_cover ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_lapsed_weak_witness_rejected () =
  (* a dishonest host never strengthened a burst record; once the weak
     key's lifetime passes, clients refuse the witness *)
  let env = fresh_env () in
  let sn = write env ~witness:Firmware.Weak_deferred () in
  check_verdict "weak verifies within lifetime" "valid-data" env sn;
  let lifetime = (Worm_scpu.Device.config env.device).Worm_scpu.Device.weak_lifetime_ns in
  Clock.advance env.clock (Int64.add lifetime (Clock.ns_of_sec 1.));
  match verdict env sn with
  | Client.Violation vs ->
      Alcotest.(check bool) "meta witness flagged" true (List.mem Client.Meta_witness_invalid vs)
  | v -> Alcotest.fail (Client.verdict_name v)

let test_direct_scpu_freshness_ignores_timestamps () =
  (* under option (i) even an ancient served bound is fine — the client
     substitutes its own direct query *)
  let env = fresh_env () in
  ignore (write env ());
  Worm.heartbeat env.store;
  let old_bound = Worm.cached_current_bound env.store in
  Clock.advance env.clock (Clock.ns_of_hours 3.);
  let fw = Worm.firmware env.store in
  let client_i =
    Client.for_store ~ca:(ca_pub ()) ~clock:env.clock
      ~freshness:(Client.Direct_scpu (fun () -> Firmware.current_bound fw))
      env.store
  in
  match Client.verify_read client_i ~sn:(Serial.of_int 50) (Proof.Proof_unallocated old_bound) with
  | Client.Never_written -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_migration_attestation_check () =
  let env = fresh_env () in
  ignore (write env ());
  let fake_hash = String.make 32 'h' in
  let manifest =
    Firmware.attest_migration (Worm.firmware env.store) ~target_store_id:"target-1" ~content_hash:fake_hash
  in
  Alcotest.(check bool) "genuine manifest verifies" true
    (Client.verify_migration env.client ~target_store_id:"target-1"
       ~base:(Firmware.sn_base (Worm.firmware env.store))
       ~current:(Firmware.sn_current (Worm.firmware env.store))
       ~content_hash:fake_hash ~manifest_sig:manifest);
  Alcotest.(check bool) "different target rejected" false
    (Client.verify_migration env.client ~target_store_id:"target-2"
       ~base:(Firmware.sn_base (Worm.firmware env.store))
       ~current:(Firmware.sn_current (Worm.firmware env.store))
       ~content_hash:fake_hash ~manifest_sig:manifest);
  Alcotest.(check bool) "different window rejected" false
    (Client.verify_migration env.client ~target_store_id:"target-1" ~base:(Serial.of_int 0)
       ~current:(Firmware.sn_current (Worm.firmware env.store))
       ~content_hash:fake_hash ~manifest_sig:manifest)

let test_client_of_other_store_rejects () =
  (* statements are bound to the store identity: a verdict formed against
     store A's responses cannot be validated by store B's client *)
  let env_a = fresh_env () in
  let env_b = fresh_env () in
  let sn = write env_a () in
  let response = Worm.read env_a.store sn in
  match Client.verify_read env_b.client ~sn response with
  | Client.Violation _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let suite =
  [
    ("connect validates certs", `Quick, test_connect_validates_certs);
    ("happy-path verdicts", `Quick, test_verdicts_happy_paths);
    ("refusal is violation", `Quick, test_refusal_is_violation);
    ("wrong serial detected", `Quick, test_wrong_serial_detected);
    ("replayed deletion proof rejected", `Quick, test_deletion_proof_for_other_record_rejected);
    ("stale current bound rejected", `Quick, test_stale_current_bound_rejected);
    ("unallocated claim for live sn", `Quick, test_unallocated_claim_for_allocated_sn);
    ("expired base bound rejected", `Quick, test_expired_base_bound_rejected);
    ("base not covering rejected", `Quick, test_base_bound_not_covering_rejected);
    ("window not covering rejected", `Quick, test_window_not_covering_rejected);
    ("lapsed weak witness rejected", `Quick, test_lapsed_weak_witness_rejected);
    ("direct-SCPU freshness (option i)", `Quick, test_direct_scpu_freshness_ignores_timestamps);
    ("migration attestation", `Quick, test_migration_attestation_check);
    ("cross-store responses rejected", `Quick, test_client_of_other_store_rejects);
  ]

let () = Alcotest.run "worm_client" [ ("client", suite) ]
