(* Adaptive witness-strength controller (§4.3) and the cost model's
   strength-for-rate sizing. *)

open Worm_core
open Worm_testkit.Testkit
module Cost_model = Worm_scpu.Cost_model
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock

let profile = Cost_model.ibm_4764

let mk ?(config = Adaptive.default_config) () =
  Adaptive.create ~config ~profile ~device_config:Device.default_config ()

let test_max_bits_for_rate () =
  (* the 4764 signs 848/s at 1024 bits: that rate must admit >= 1024 *)
  Alcotest.(check bool) "848/s admits 1024 bits" true
    (Cost_model.max_sign_bits_for_rate profile ~signatures_per_sec:848. >= 1024);
  (* an extreme rate falls back to the 512-bit floor *)
  Alcotest.(check int) "10k/s floors at 512" 512
    (Cost_model.max_sign_bits_for_rate profile ~signatures_per_sec:10_000.);
  (* leisurely rates afford very strong keys *)
  Alcotest.(check bool) "10/s affords 2048+" true
    (Cost_model.max_sign_bits_for_rate profile ~signatures_per_sec:10. >= 2048);
  (* monotone: higher rate, weaker max strength *)
  let b100 = Cost_model.max_sign_bits_for_rate profile ~signatures_per_sec:100. in
  let b1000 = Cost_model.max_sign_bits_for_rate profile ~signatures_per_sec:1000. in
  Alcotest.(check bool) "monotone" true (b100 >= b1000)

let test_budgets () =
  let a = mk () in
  (* 848 sigs/s / 2 sigs/record * 0.8 headroom = ~339 rec/s *)
  Alcotest.(check bool) "strong budget near 339" true
    (abs_float (Adaptive.sustainable_strong_rate a -. 339.2) < 1.);
  Alcotest.(check bool) "weak budget near 1680" true
    (abs_float (Adaptive.sustainable_weak_rate a -. 1680.) < 1.);
  Alcotest.(check bool) "weak > strong" true
    (Adaptive.sustainable_weak_rate a > Adaptive.sustainable_strong_rate a)

let drive a ~rate ~seconds =
  (* feed a synthetic arrival stream at [rate]/s ending at t=[seconds] *)
  let n = int_of_float (rate *. seconds) in
  for i = 1 to n do
    Adaptive.note_write a ~now:(Int64.of_float (float_of_int i /. rate *. 1e9))
  done;
  Int64.of_float (seconds *. 1e9)

let test_recommendations_by_load () =
  (* trickle: strong *)
  let a = mk () in
  let now = drive a ~rate:50. ~seconds:1. in
  Alcotest.(check bool) "trickle -> strong" true
    (Adaptive.recommend a ~now ~deferred_backlog:0 = Firmware.Strong_now);
  (* moderate burst: weak *)
  let a = mk () in
  let now = drive a ~rate:800. ~seconds:1. in
  Alcotest.(check bool) "burst -> weak" true
    (Adaptive.recommend a ~now ~deferred_backlog:0 = Firmware.Weak_deferred);
  (* flood: mac *)
  let a = mk () in
  let now = drive a ~rate:5000. ~seconds:1. in
  Alcotest.(check bool) "flood -> mac" true
    (Adaptive.recommend a ~now ~deferred_backlog:0 = Firmware.Mac_deferred)

let test_backlog_forces_strong () =
  let a = mk () in
  let now = drive a ~rate:800. ~seconds:1. in
  (* burst rate alone says Weak, but an unserviceable backlog (more than
     half the 120-min lifetime of strengthening work) forces Strong *)
  let huge_backlog = int_of_float (848. /. 2. *. 3600.1) in
  Alcotest.(check bool) "debt at risk -> strong" true
    (Adaptive.recommend a ~now ~deferred_backlog:huge_backlog = Firmware.Strong_now);
  Alcotest.(check bool) "small debt -> weak still" true
    (Adaptive.recommend a ~now ~deferred_backlog:100 = Firmware.Weak_deferred)

let test_window_slides () =
  let a = mk () in
  let _ = drive a ~rate:5000. ~seconds:1. in
  (* ten quiet seconds later the old burst has left the window *)
  let later = Clock.ns_of_sec 11. in
  Alcotest.(check (float 1.)) "rate decays to zero" 0. (Adaptive.arrival_rate a ~now:later);
  Alcotest.(check bool) "back to strong" true
    (Adaptive.recommend a ~now:later ~deferred_backlog:0 = Firmware.Strong_now)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_describe_renders () =
  let a = mk () in
  let now = drive a ~rate:800. ~seconds:1. in
  let line = Adaptive.describe a ~now ~deferred_backlog:5 in
  Alcotest.(check bool) "mentions the mode" true (contains ~needle:"weak" line)

let test_bad_config_rejected () =
  Alcotest.check_raises "headroom > 1" (Invalid_argument "Adaptive.create: headroom in (0,1]") (fun () ->
      ignore
        (Adaptive.create
           ~config:{ Adaptive.default_config with Adaptive.headroom = 1.5 }
           ~profile ~device_config:Device.default_config ()))

(* End-to-end: drive a store with the controller choosing per-write modes
   under a bursty trace; the deferred queue must always stay serviceable
   and every record must end up client-verifiable after idle time. *)
let test_end_to_end_adaptive_store () =
  let env = fresh_env () in
  let dc = Worm_scpu.Device.config env.device in
  let a = Adaptive.create ~profile ~device_config:dc () in
  let policy = short_policy ~retention_s:100_000. () in
  let sns = ref [] in
  let write_at rate seconds =
    let n = max 1 (int_of_float (rate *. seconds)) in
    for _ = 1 to n do
      Clock.advance env.clock (Int64.of_float (1e9 /. rate));
      let now = Clock.now env.clock in
      Adaptive.note_write a ~now;
      let witness = Adaptive.recommend a ~now ~deferred_backlog:(List.length (Worm.deferred_backlog env.store)) in
      sns := Worm.write env.store ~witness ~policy ~blocks:[ "r" ] :: !sns
    done
  in
  write_at 10. 0.5 (* trickle *);
  write_at 2000. 0.05 (* burst *);
  write_at 10. 0.5 (* trickle again *);
  (* never an overdue deferred entry *)
  Alcotest.(check int) "no overdue deferrals" 0
    (List.length (Worm.deferred_overdue env.store ~now:(Clock.now env.clock)));
  Worm.idle_tick env.store;
  List.iter (fun sn -> check_verdict "verifiable after idle" "valid-data" env sn) !sns

let suite =
  [
    ("max bits for rate", `Quick, test_max_bits_for_rate);
    ("budgets from cost model", `Quick, test_budgets);
    ("recommendations by load", `Quick, test_recommendations_by_load);
    ("backlog forces strong", `Quick, test_backlog_forces_strong);
    ("window slides", `Quick, test_window_slides);
    ("describe renders", `Quick, test_describe_renders);
    ("bad config rejected", `Quick, test_bad_config_rejected);
    ("end-to-end adaptive store", `Quick, test_end_to_end_adaptive_store);
  ]

let () = Alcotest.run "worm_adaptive" [ ("adaptive", suite) ]
