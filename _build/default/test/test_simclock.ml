(* Virtual clock semantics. *)

module Clock = Worm_simclock.Clock

let test_monotonic_advance () =
  let c = Clock.create () in
  Alcotest.(check int64) "starts at zero" 0L (Clock.now c);
  Clock.advance c 100L;
  Alcotest.(check int64) "advanced" 100L (Clock.now c);
  Clock.advance c 0L;
  Alcotest.(check int64) "zero advance ok" 100L (Clock.now c);
  Alcotest.check_raises "negative advance" (Invalid_argument "Clock.advance: negative delta") (fun () ->
      Clock.advance c (-1L))

let test_advance_to () =
  let c = Clock.create ~start:50L () in
  Clock.advance_to c 200L;
  Alcotest.(check int64) "moved forward" 200L (Clock.now c);
  Clock.advance_to c 100L;
  Alcotest.(check int64) "earlier target ignored" 200L (Clock.now c)

let test_unit_conversions () =
  Alcotest.(check int64) "1s" 1_000_000_000L (Clock.ns_of_sec 1.);
  Alcotest.(check int64) "1ms" 1_000_000L (Clock.ns_of_ms 1.);
  Alcotest.(check int64) "1us" 1_000L (Clock.ns_of_us 1.);
  Alcotest.(check int64) "1min" 60_000_000_000L (Clock.ns_of_min 1.);
  Alcotest.(check int64) "1h" 3_600_000_000_000L (Clock.ns_of_hours 1.);
  Alcotest.(check int64) "1day" 86_400_000_000_000L (Clock.ns_of_days 1.);
  Alcotest.(check (float 1e-9)) "roundtrip" 42.5 (Clock.sec_of_ns (Clock.ns_of_sec 42.5));
  (* a 6-year SEC retention is representable with lots of headroom *)
  Alcotest.(check bool) "6 years fits" true (Clock.ns_of_years 6. < Int64.div Int64.max_int 10L)

let test_pp_duration () =
  let s v = Format.asprintf "%a" Clock.pp_duration v in
  Alcotest.(check string) "ns" "500ns" (s 500L);
  Alcotest.(check string) "sec" "2.00s" (s (Clock.ns_of_sec 2.));
  Alcotest.(check string) "min" "5.0min" (s (Clock.ns_of_min 5.));
  Alcotest.(check string) "days" "3.0days" (s (Clock.ns_of_days 3.))

let prop_advance_accumulates =
  QCheck.Test.make ~name:"advances accumulate" ~count:200
    QCheck.(small_list (int_bound 1_000_000))
    (fun deltas ->
      let c = Clock.create () in
      List.iter (fun d -> Clock.advance c (Int64.of_int d)) deltas;
      Clock.now c = Int64.of_int (List.fold_left ( + ) 0 deltas))

let suite =
  [
    ("monotonic advance", `Quick, test_monotonic_advance);
    ("advance_to", `Quick, test_advance_to);
    ("unit conversions", `Quick, test_unit_conversions);
    ("duration printing", `Quick, test_pp_duration);
    QCheck_alcotest.to_alcotest prop_advance_accumulates;
  ]

let () = Alcotest.run "worm_simclock" [ ("clock", suite) ]
