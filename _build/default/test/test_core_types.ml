(* Core data types: serial numbers, policies, attributes, VRDs, the
   VRDT, witnesses, and the wire statement formats. *)

open Worm_core
module Codec = Worm_util.Codec
module Clock = Worm_simclock.Clock

(* ---------- Serial ---------- *)

let test_serial_basics () =
  let s = Serial.of_int 41 in
  Alcotest.(check int) "next" 42 (Serial.to_int (Serial.next s));
  Alcotest.(check int) "prev" 40 (Serial.to_int (Serial.prev s));
  Alcotest.(check bool) "lt" true Serial.(of_int 1 < of_int 2);
  Alcotest.(check bool) "le refl" true Serial.(s <= s);
  Alcotest.(check bool) "gt" true Serial.(of_int 2 > of_int 1);
  Alcotest.(check int64) "distance" 5L (Serial.distance (Serial.of_int 10) (Serial.of_int 15));
  Alcotest.(check int64) "negative distance" (-5L) (Serial.distance (Serial.of_int 15) (Serial.of_int 10));
  Alcotest.check_raises "prev zero" (Invalid_argument "Serial.prev: zero") (fun () ->
      ignore (Serial.prev Serial.zero));
  Alcotest.check_raises "negative" (Invalid_argument "Serial.of_int64: negative") (fun () ->
      ignore (Serial.of_int64 (-1L)))

let test_serial_range () =
  let to_ints l = List.map Serial.to_int l in
  Alcotest.(check (list int)) "3..6" [ 3; 4; 5; 6 ] (to_ints (Serial.range (Serial.of_int 3) (Serial.of_int 6)));
  Alcotest.(check (list int)) "singleton" [ 4 ] (to_ints (Serial.range (Serial.of_int 4) (Serial.of_int 4)));
  Alcotest.(check (list int)) "empty" [] (to_ints (Serial.range (Serial.of_int 6) (Serial.of_int 3)))

let prop_serial_codec =
  QCheck.Test.make ~name:"serial codec roundtrip" ~count:200 QCheck.(map abs int) (fun n ->
      let s = Serial.of_int n in
      match Codec.decode Serial.decode (Codec.encode Serial.encode s) with
      | Ok s' -> Serial.equal s s'
      | Error _ -> false)

(* ---------- Policy ---------- *)

let test_policy_profiles () =
  let p = Policy.of_regulation Policy.Sec17a4 in
  Alcotest.(check bool) "six years" true (p.Policy.retention_ns = Clock.ns_of_years 6.);
  Alcotest.(check int) "shred passes" 3 p.Policy.shred_passes;
  let d = Policy.of_regulation Policy.Dod5015_2 in
  Alcotest.(check bool) "DOD longest retention" true (d.Policy.retention_ns > p.Policy.retention_ns);
  Alcotest.(check int) "DOD 7 passes" 7 d.Policy.shred_passes

let test_policy_custom_validation () =
  Alcotest.check_raises "negative retention" (Invalid_argument "Policy.custom: negative retention") (fun () ->
      ignore (Policy.custom ~name:"x" ~retention_ns:(-1L) ~shred_passes:1));
  Alcotest.check_raises "zero passes" (Invalid_argument "Policy.custom: need at least one shred pass")
    (fun () -> ignore (Policy.custom ~name:"x" ~retention_ns:1L ~shred_passes:0))

let all_policies =
  Policy.
    [
      of_regulation Sec17a4;
      of_regulation Hipaa;
      of_regulation Sox;
      of_regulation Dod5015_2;
      of_regulation Ferpa;
      of_regulation Glba;
      of_regulation Fda21cfr11;
      custom ~name:"my-policy" ~retention_ns:123456789L ~shred_passes:2;
    ]

let test_policy_codec () =
  List.iter
    (fun p ->
      match Codec.decode Policy.decode (Codec.encode Policy.encode p) with
      | Ok p' -> Alcotest.(check bool) (Policy.regulation_name p.Policy.regulation) true (Policy.equal p p')
      | Error e -> Alcotest.fail e)
    all_policies

(* ---------- Attr ---------- *)

let mk_attr ?(created_at = 1000L) () =
  Attr.make ~created_at ~policy:(Policy.custom ~name:"t" ~retention_ns:500L ~shred_passes:1) ()

let test_attr_expiry () =
  let a = mk_attr () in
  Alcotest.(check int64) "expiry" 1500L (Attr.expiry a);
  Alcotest.(check bool) "not expired at expiry" false (Attr.is_expired a ~now:1500L);
  Alcotest.(check bool) "expired after" true (Attr.is_expired a ~now:1501L);
  Alcotest.(check bool) "deletable" true (Attr.deletable a ~now:1501L)

let test_attr_hold_blocks_deletion () =
  let hold = { Attr.lit_id = "case-1"; authority = "court"; credential = "sig"; held_at = 1400L; timeout = 9000L } in
  let a = Attr.with_hold (mk_attr ()) hold in
  Alcotest.(check bool) "on hold" true (Attr.on_hold a ~now:2000L);
  Alcotest.(check bool) "not deletable while held" false (Attr.deletable a ~now:2000L);
  Alcotest.(check bool) "hold times out" false (Attr.on_hold a ~now:9001L);
  Alcotest.(check bool) "deletable after timeout" true (Attr.deletable a ~now:9001L);
  let released = Attr.without_hold a in
  Alcotest.(check bool) "deletable after release" true (Attr.deletable released ~now:2000L)

let test_attr_codec () =
  let plain = mk_attr () in
  let held =
    Attr.with_hold
      (Attr.make ~f_flag:true ~mac_label:"secret" ~dac_label:"rwx" ~created_at:7L
         ~policy:(Policy.of_regulation Policy.Hipaa) ())
      { Attr.lit_id = "c"; authority = "a"; credential = "sig-bytes"; held_at = 1L; timeout = 2L }
  in
  List.iter
    (fun a ->
      match Codec.decode Attr.decode (Codec.encode Attr.encode a) with
      | Ok a' -> Alcotest.(check bool) "roundtrip" true (Attr.equal a a')
      | Error e -> Alcotest.fail e)
    [ plain; held ]

let test_attr_canonical_bytes_change_on_mutation () =
  let a = mk_attr () in
  let b = { a with Attr.f_flag = true } in
  Alcotest.(check bool) "f_flag changes signing input" false (String.equal (Attr.to_bytes a) (Attr.to_bytes b));
  let c = Attr.with_hold a { Attr.lit_id = "x"; authority = "y"; credential = "z"; held_at = 0L; timeout = 1L } in
  Alcotest.(check bool) "hold changes signing input" false (String.equal (Attr.to_bytes a) (Attr.to_bytes c))

(* ---------- Witness / VRD ---------- *)

let dummy_vrd ?(sn = Serial.of_int 5) ?(meta = Witness.Strong "ms") ?(data = Witness.Mac "tag") () =
  { Vrd.sn; attr = mk_attr (); rdl = [ 1; 2; 3 ]; data_hash = String.make 32 'h'; metasig = meta; datasig = data }

let test_witness_strength () =
  Alcotest.(check string) "strong" "strong" (Witness.strength_name (Witness.strength (Witness.Strong "s")));
  Alcotest.(check string) "mac" "mac" (Witness.strength_name (Witness.strength (Witness.Mac "t")));
  Alcotest.(check bool) "mac not client-verifiable" false (Witness.verifiable_by_client (Witness.Mac "t"));
  Alcotest.(check bool) "strong client-verifiable" true (Witness.verifiable_by_client (Witness.Strong "s"))

let test_vrd_weakest () =
  Alcotest.(check string) "strong+mac = mac" "mac"
    (Witness.strength_name (Vrd.weakest_strength (dummy_vrd ())));
  Alcotest.(check string) "strong+strong = strong" "strong"
    (Witness.strength_name (Vrd.weakest_strength (dummy_vrd ~data:(Witness.Strong "d") ())))

let test_vrd_codec () =
  let vrd = dummy_vrd () in
  match Vrd.of_bytes (Vrd.to_bytes vrd) with
  | Ok vrd' ->
      Alcotest.(check bool) "sn" true (Serial.equal vrd.Vrd.sn vrd'.Vrd.sn);
      Alcotest.(check (list int)) "rdl" vrd.Vrd.rdl vrd'.Vrd.rdl;
      Alcotest.(check string) "hash" vrd.Vrd.data_hash vrd'.Vrd.data_hash
  | Error e -> Alcotest.fail e

let test_vrd_of_bytes_rejects_garbage () =
  match Vrd.of_bytes "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

(* ---------- Vrdt ---------- *)

let test_vrdt_basics () =
  let t = Vrdt.create () in
  Alcotest.(check int) "empty" 0 (Vrdt.entry_count t);
  let vrd = dummy_vrd () in
  Vrdt.set_active t vrd;
  Alcotest.(check int) "one" 1 (Vrdt.entry_count t);
  Alcotest.(check int) "active" 1 (Vrdt.active_count t);
  (match Vrdt.find t vrd.Vrd.sn with
  | Some (Vrdt.Active v) -> Alcotest.(check bool) "found" true (Serial.equal v.Vrd.sn vrd.Vrd.sn)
  | _ -> Alcotest.fail "not found");
  Vrdt.set_deleted t vrd.Vrd.sn ~proof:"proof-bytes";
  Alcotest.(check int) "still one entry" 1 (Vrdt.entry_count t);
  Alcotest.(check int) "no active" 0 (Vrdt.active_count t);
  Alcotest.(check int) "one deleted" 1 (Vrdt.deleted_count t);
  Vrdt.drop t vrd.Vrd.sn;
  Alcotest.(check int) "dropped" 0 (Vrdt.entry_count t)

let test_vrdt_active_sns_sorted () =
  let t = Vrdt.create () in
  List.iter (fun i -> Vrdt.set_active t (dummy_vrd ~sn:(Serial.of_int i) ())) [ 5; 1; 9; 3 ];
  Vrdt.set_deleted t (Serial.of_int 7) ~proof:"p";
  Alcotest.(check (list int)) "ascending actives" [ 1; 3; 5; 9 ] (List.map Serial.to_int (Vrdt.active_sns t))

let test_vrdt_snapshot_restore () =
  let t = Vrdt.create () in
  Vrdt.set_active t (dummy_vrd ~sn:(Serial.of_int 1) ());
  let image = Vrdt.Raw.snapshot t in
  Vrdt.set_active t (dummy_vrd ~sn:(Serial.of_int 2) ());
  Vrdt.Raw.restore t image;
  Alcotest.(check int) "restored size" 1 (Vrdt.entry_count t);
  Alcotest.(check bool) "post-snapshot entry gone" true (Vrdt.find t (Serial.of_int 2) = None)

let test_vrdt_bytes_accounting () =
  let t = Vrdt.create () in
  Vrdt.set_active t (dummy_vrd ());
  let active_bytes = Vrdt.approx_bytes t in
  Vrdt.set_deleted t (dummy_vrd ()).Vrd.sn ~proof:(String.make 64 'p');
  Alcotest.(check bool) "deletion proof smaller than VRD" true (Vrdt.approx_bytes t < active_bytes)

(* ---------- Wire ---------- *)

let test_wire_statements_distinct () =
  (* Identical parameters must never yield identical statements across
     statement kinds (domain separation). *)
  let sn = Serial.of_int 9 in
  let stmts =
    [
      Wire.metasig_msg ~store_id:"s" ~sn ~attr_bytes:"a";
      Wire.datasig_msg ~store_id:"s" ~sn ~data_hash:"a";
      Wire.deletion_msg ~store_id:"s" ~sn;
      Wire.base_bound_msg ~store_id:"s" ~sn ~expires_at:0L;
      Wire.current_bound_msg ~store_id:"s" ~sn ~timestamp:0L;
      Wire.deletion_window_lo_msg ~store_id:"s" ~window_id:"w" ~sn;
      Wire.deletion_window_hi_msg ~store_id:"s" ~window_id:"w" ~sn;
      Wire.hold_credential_msg ~store_id:"s" ~sn ~timestamp:0L ~lit_id:"w";
      Wire.release_credential_msg ~store_id:"s" ~sn ~timestamp:0L ~lit_id:"w";
    ]
  in
  let sorted = List.sort_uniq compare stmts in
  Alcotest.(check int) "all distinct" (List.length stmts) (List.length sorted)

let test_wire_binds_store () =
  let sn = Serial.of_int 9 in
  Alcotest.(check bool) "store id bound" false
    (String.equal (Wire.deletion_msg ~store_id:"store-A" ~sn) (Wire.deletion_msg ~store_id:"store-B" ~sn))

let test_wire_binds_window_id () =
  let sn = Serial.of_int 9 in
  Alcotest.(check bool) "window id bound" false
    (String.equal
       (Wire.deletion_window_lo_msg ~store_id:"s" ~window_id:"w1" ~sn)
       (Wire.deletion_window_lo_msg ~store_id:"s" ~window_id:"w2" ~sn))

let suite =
  [
    ("serial basics", `Quick, test_serial_basics);
    ("serial range", `Quick, test_serial_range);
    ("policy profiles", `Quick, test_policy_profiles);
    ("policy validation", `Quick, test_policy_custom_validation);
    ("policy codec", `Quick, test_policy_codec);
    ("attr expiry", `Quick, test_attr_expiry);
    ("attr litigation hold", `Quick, test_attr_hold_blocks_deletion);
    ("attr codec", `Quick, test_attr_codec);
    ("attr canonical bytes", `Quick, test_attr_canonical_bytes_change_on_mutation);
    ("witness strength", `Quick, test_witness_strength);
    ("vrd weakest witness", `Quick, test_vrd_weakest);
    ("vrd codec", `Quick, test_vrd_codec);
    ("vrd rejects garbage", `Quick, test_vrd_of_bytes_rejects_garbage);
    ("vrdt basics", `Quick, test_vrdt_basics);
    ("vrdt active sns sorted", `Quick, test_vrdt_active_sns_sorted);
    ("vrdt snapshot/restore", `Quick, test_vrdt_snapshot_restore);
    ("vrdt byte accounting", `Quick, test_vrdt_bytes_accounting);
    ("wire statements distinct", `Quick, test_wire_statements_distinct);
    ("wire binds store id", `Quick, test_wire_binds_store);
    ("wire binds window id", `Quick, test_wire_binds_window_id);
    QCheck_alcotest.to_alcotest prop_serial_codec;
  ]

let () = Alcotest.run "worm_core_types" [ ("core-types", suite) ]
