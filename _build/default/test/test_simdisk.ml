(* Disk model: storage semantics, latency ledger, shredding residue, and
   the raw insider surface. *)

module Disk = Worm_simdisk.Disk
module Clock = Worm_simclock.Clock

let test_write_read () =
  let d = Disk.create ~latency:Disk.zero_latency () in
  let a1 = Disk.write d "hello" in
  let a2 = Disk.write d "world" in
  Alcotest.(check bool) "distinct addresses" true (a1 <> a2);
  Alcotest.(check (option string)) "read back 1" (Some "hello") (Disk.read d a1);
  Alcotest.(check (option string)) "read back 2" (Some "world") (Disk.read d a2);
  Alcotest.(check (option string)) "absent" None (Disk.read d 999);
  Alcotest.(check (option int)) "size" (Some 5) (Disk.size d a1);
  Alcotest.(check int) "count" 2 (Disk.record_count d);
  Alcotest.(check int) "bytes" 10 (Disk.bytes_stored d)

let test_latency_ledger () =
  let latency = { Disk.seek_ns = 1000L; bytes_per_sec = 1e9 } in
  let d = Disk.create ~latency () in
  let a = Disk.write d (String.make 1000 'x') in
  (* 1000 ns seek + 1000 bytes at 1 GB/s = 1000 ns transfer *)
  Alcotest.(check int64) "write charge" 2000L (Disk.busy_ns d);
  ignore (Disk.read d a);
  Alcotest.(check int64) "read charge" 4000L (Disk.busy_ns d);
  ignore (Disk.read d 12345);
  Alcotest.(check int64) "missing read free" 4000L (Disk.busy_ns d);
  Disk.reset_busy d;
  Alcotest.(check int64) "reset" 0L (Disk.busy_ns d)

let test_shred_semantics () =
  let d = Disk.create ~latency:Disk.zero_latency () in
  let a = Disk.write d "incriminating" in
  Alcotest.(check bool) "shred succeeds" true (Disk.shred d ~passes:3 a);
  Alcotest.(check (option string)) "gone" None (Disk.read d a);
  Alcotest.(check int) "count zero" 0 (Disk.record_count d);
  (* Secure deletion: forensic residue shows only the overwrite pattern. *)
  (match Disk.Raw.residue d a with
  | Some residue ->
      Alcotest.(check int) "residue length" 13 (String.length residue);
      Alcotest.(check bool) "no plaintext residue" false (String.equal residue "incriminating");
      String.iter (fun c -> Alcotest.(check char) "pattern byte" '\xff' c) residue
  | None -> Alcotest.fail "no residue at all");
  Alcotest.(check bool) "double shred fails" false (Disk.shred d ~passes:3 a)

let test_shred_charges_per_pass () =
  let latency = { Disk.seek_ns = 0L; bytes_per_sec = 1e9 } in
  let d = Disk.create ~latency () in
  let a = Disk.write d (String.make 1000 'x') in
  Disk.reset_busy d;
  ignore (Disk.shred d ~passes:7 a);
  Alcotest.(check int64) "7 overwrite passes" 7000L (Disk.busy_ns d)

let test_raw_delete_leaves_residue () =
  (* A plain (non-shredded) delete is forensically recoverable — this is
     why the shredding requirement exists. *)
  let d = Disk.create ~latency:Disk.zero_latency () in
  let a = Disk.write d "recoverable" in
  Alcotest.(check bool) "raw delete" true (Disk.Raw.delete d a);
  Alcotest.(check (option string)) "read fails" None (Disk.read d a);
  Alcotest.(check (option string)) "but residue is the data" (Some "recoverable") (Disk.Raw.residue d a)

let test_raw_tamper () =
  let d = Disk.create ~latency:Disk.zero_latency () in
  let a = Disk.write d "original" in
  Alcotest.(check bool) "tamper" true (Disk.Raw.tamper d a ~f:(fun _ -> "forged!"));
  Alcotest.(check (option string)) "forged content served" (Some "forged!") (Disk.read d a);
  Alcotest.(check int) "byte accounting updated" 7 (Disk.bytes_stored d);
  Alcotest.(check bool) "tamper absent addr" false (Disk.Raw.tamper d 999 ~f:Fun.id)

let test_snapshot_restore () =
  let d = Disk.create ~latency:Disk.zero_latency () in
  let a1 = Disk.write d "one" in
  let image = Disk.Raw.snapshot d in
  let a2 = Disk.write d "two" in
  ignore (Disk.Raw.tamper d a1 ~f:(fun _ -> "mutated"));
  Disk.Raw.restore d image;
  Alcotest.(check (option string)) "rollback undoes tamper" (Some "one") (Disk.read d a1);
  Alcotest.(check (option string)) "post-snapshot write vanished" None (Disk.read d a2);
  let a3 = Disk.write d "three" in
  Alcotest.(check bool) "addresses do not collide after restore" true (a3 > a2)

let prop_roundtrip_many =
  QCheck.Test.make ~name:"write/read many" ~count:100 QCheck.(small_list string) (fun contents ->
      let d = Disk.create ~latency:Disk.zero_latency () in
      let addrs = List.map (Disk.write d) contents in
      List.for_all2 (fun a c -> Disk.read d a = Some c) addrs contents)

let suite =
  [
    ("write/read", `Quick, test_write_read);
    ("latency ledger", `Quick, test_latency_ledger);
    ("shred semantics", `Quick, test_shred_semantics);
    ("shred charges per pass", `Quick, test_shred_charges_per_pass);
    ("raw delete leaves residue", `Quick, test_raw_delete_leaves_residue);
    ("raw tamper", `Quick, test_raw_tamper);
    ("snapshot/restore", `Quick, test_snapshot_restore);
    QCheck_alcotest.to_alcotest prop_roundtrip_many;
  ]

let () = Alcotest.run "worm_simdisk" [ ("disk", suite) ]
