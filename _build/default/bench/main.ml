(* Benchmark harness: regenerates every table and figure in the paper's
   evaluation (§5), plus wall-clock microbenchmarks of this library's own
   primitives via Bechamel.

   Sections:
     TABLE 2    primitive rates from the calibrated cost models
     FIGURE 1   throughput vs record size, all witnessing modes
     §4.3       the bus-limited HMAC-witnessing claim
     §5         the I/O-bottleneck observation (disk-latency sweep)
     ABLATION   window scheme vs Merkle tree update costs (§2.3/§4.1)
     BECHAMEL   real wall-clock rates of the pure-OCaml primitives
                (this machine's analogue of Table 2's columns) *)

open Bechamel
open Toolkit
module Sim = Worm_sim.Sim
open Worm_crypto

let hr title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 76 '=') title (String.make 76 '=')

(* ------------------------------------------------------------------ *)

let print_table2 () =
  hr "TABLE 2 -- primitive rates (calibrated cost models vs the paper's anchors)";
  Printf.printf "%-28s %14s %14s\n" "Function" "IBM 4764" "P4 @ 3.4GHz";
  List.iter
    (fun r -> Printf.printf "%-28s %14s %14s\n" r.Sim.operation r.Sim.scpu r.Sim.host)
    (Sim.table2 ());
  Printf.printf
    "\n(paper: 4200/848/316-470 sig/s; 1.42/18.6 MB/s; 75-90 MB/s DMA on the 4764\n\
    \        1315/261/43 sig/s; 80/120+ MB/s; 1+ GB/s on the P4)\n"

let print_figure1 env =
  hr "FIGURE 1 -- throughput vs record size (records/s, fast disk)";
  let measurements = Sim.figure1 env () in
  let sizes = Worm_workload.Workload.figure1_sizes in
  let mode_labels = List.map (fun (m : Sim.mode) -> m.Sim.label) Sim.all_modes in
  Printf.printf "%-10s" "size";
  List.iter (Printf.printf "%23s") mode_labels;
  Printf.printf "\n";
  List.iter
    (fun size ->
      Printf.printf "%7d KB" (size / 1024);
      List.iter
        (fun label ->
          match
            List.find_opt
              (fun (m : Sim.measurement) -> m.Sim.record_bytes = size && String.equal m.Sim.label label)
              measurements
          with
          | Some m -> Printf.printf "%23.0f" m.Sim.throughput_rps
          | None -> Printf.printf "%23s" "-")
        mode_labels;
      Printf.printf "\n")
    sizes;
  Printf.printf
    "\n(paper: 450-500 rec/s sustained without deferring; 2000-2500 rec/s with\n\
    \ deferred 512-bit constructs, in bursts of at most the security lifetime)\n"

let print_hmac env =
  hr "SECTION 4.3 -- HMAC witnessing removes the signature bottleneck";
  Printf.printf "%-26s %12s %12s %16s\n" "mode (1 KB records)" "rec/s" "bottleneck" "idle SCPU (ms)";
  List.iter
    (fun mode ->
      let m = Sim.run_write_burst env ~mode ~record_bytes:1024 ~records:24 () in
      Printf.printf "%-26s %12.0f %12s %16.2f\n" m.Sim.label m.Sim.throughput_rps m.Sim.bottleneck
        (m.Sim.idle_scpu_s *. 1e3))
    [ Sim.mode_strong_host_hash; Sim.mode_weak_host_hash; Sim.mode_mac_host_hash ]

let print_iobound env =
  hr "SECTION 5 -- I/O seek latency becomes the dominant bottleneck";
  Printf.printf "%-12s %12s %12s\n" "seek (ms)" "rec/s" "bottleneck";
  List.iter
    (fun (seek_ms, m) -> Printf.printf "%-12.1f %12.0f %12s\n" seek_ms m.Sim.throughput_rps m.Sim.bottleneck)
    (Sim.io_bottleneck env ~record_bytes:1024 ());
  Printf.printf "\n(paper: 3-4ms enterprise-disk latencies are ~2x the projected SCPU overhead)\n"

let print_ablation env =
  hr "ABLATION -- O(1) window authentication vs O(log n) Merkle maintenance";
  Printf.printf "%-12s %18s %18s %18s\n" "records" "window us/update" "merkle us/update" "merkle hashes/up";
  List.iter
    (fun r ->
      Printf.printf "%-12d %18.1f %18.1f %18.1f\n" r.Sim.n r.Sim.window_scpu_us_per_update
        r.Sim.merkle_scpu_us_per_update r.Sim.merkle_hashes_per_update)
    (Sim.window_vs_merkle env ~ns:[ 256; 1024; 4096; 16384; 65536 ])

let print_storage env =
  hr "SECTION 4.2.1 -- VRDT storage reduction via deletion windows";
  Printf.printf "%-32s %14s %10s %10s\n" "stage" "VRDT bytes" "entries" "windows";
  List.iter
    (fun r -> Printf.printf "%-32s %14d %10d %10d\n" r.Sim.stage r.Sim.vrdt_bytes r.Sim.entries r.Sim.windows)
    (Sim.storage_reduction env ())

let print_burst_sustainability () =
  hr "SECTION 4.3 -- maximum safe burst length per arrival rate (2h weak lifetime)";
  Printf.printf "%-16s %20s %20s\n" "arrivals (rec/s)" "debt (sigs/s)" "max burst (min)";
  List.iter
    (fun r ->
      Printf.printf "%-16.0f %20.0f %20.1f\n" r.Sim.arrival_rps r.Sim.debt_per_sec r.Sim.max_burst_min)
    (Sim.burst_sustainability ());
  Printf.printf
    "\n(paper: 2000-2500 rec/s \"in bursts of no more than 60-180 minutes\";\n\
    \ at 2096 rec/s the FIFO repayment bound is the binding one)\n"

let print_read_mix env =
  hr "SECTION 4.1 -- the SCPU witnesses updates only; reads are free of it";
  Printf.printf "%-16s %14s %18s %12s\n" "write fraction" "ops/s" "SCPU us/op" "bottleneck";
  List.iter
    (fun r ->
      Printf.printf "%-16.2f %14.0f %18.1f %12s\n" r.Sim.write_fraction r.Sim.ops_per_sec r.Sim.scpu_us_per_op
        r.Sim.mix_bottleneck)
    (Sim.read_mix env ~record_bytes:1024 ())

let print_adaptive_day env =
  hr "SECTION 4.3 -- adaptive witness strength across a day of load phases";
  Printf.printf "%-18s %8s %8s %8s %8s %14s\n" "phase" "writes" "strong" "weak" "mac" "overdue after";
  List.iter
    (fun r ->
      Printf.printf "%-18s %8d %8d %8d %8d %14d\n" r.Sim.phase r.Sim.writes r.Sim.strong r.Sim.weak r.Sim.mac
        r.Sim.overdue_after)
    (Sim.adaptive_day env ())

let print_scaling () =
  hr "SECTION 5 -- \"results naturally scale if multiple SCPUs are available\"";
  Printf.printf "%-8s %16s %10s %12s\n" "SCPUs" "aggregate rec/s" "speedup" "bottleneck";
  List.iter
    (fun r ->
      Printf.printf "%-8d %16.0f %9.2fx %12s\n" r.Sim.scpus r.Sim.aggregate_rps r.Sim.speedup
        r.Sim.scaling_bottleneck)
    (Sim.multi_scpu_scaling ~seed:"bench-scaling" ~scpus_list:[ 1; 2; 4; 8 ] ())

(* ------------------------------------------------------------------ *)

let rng = Drbg.create ~seed:"bench"
let key512 = lazy (Rsa.generate rng ~bits:512)
let key1024 = lazy (Rsa.generate rng ~bits:1024)
let block_1k = lazy (Drbg.generate rng 1024)
let block_64k = lazy (Drbg.generate rng 65536)
let sig1024 = lazy (Rsa.sign (Lazy.force key1024) "msg")

let tests =
  [
    Test.make ~name:"rsa-512-sign" (Staged.stage (fun () -> Rsa.sign (Lazy.force key512) "msg"));
    Test.make ~name:"rsa-1024-sign" (Staged.stage (fun () -> Rsa.sign (Lazy.force key1024) "msg"));
    Test.make ~name:"rsa-1024-verify"
      (Staged.stage (fun () ->
           Rsa.verify (Rsa.public_of (Lazy.force key1024)) ~msg:"msg" ~signature:(Lazy.force sig1024)));
    Test.make ~name:"sha1-1KB" (Staged.stage (fun () -> Sha1.digest (Lazy.force block_1k)));
    Test.make ~name:"sha1-64KB" (Staged.stage (fun () -> Sha1.digest (Lazy.force block_64k)));
    Test.make ~name:"sha256-1KB" (Staged.stage (fun () -> Sha256.digest (Lazy.force block_1k)));
    Test.make ~name:"sha256-64KB" (Staged.stage (fun () -> Sha256.digest (Lazy.force block_64k)));
    Test.make ~name:"hmac-sha256-1KB"
      (Staged.stage (fun () -> Hmac.sha256 ~key:"0123456789abcdef" (Lazy.force block_1k)));
    Test.make ~name:"chained-hash-64KB"
      (Staged.stage (fun () -> Chained_hash.add Chained_hash.empty (Lazy.force block_64k)));
  ]

let run_bechamel () =
  hr "BECHAMEL -- wall-clock rates of the pure-OCaml primitives on this host";
  (* force the lazies outside the measured region *)
  ignore (Lazy.force sig1024);
  ignore (Lazy.force block_1k);
  ignore (Lazy.force block_64k);
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"prims" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (ns :: _) -> (name, ns) :: acc
        | Some [] | None -> (name, nan) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Printf.printf "%-28s %16s %16s\n" "primitive" "ns/op" "ops/s";
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-28s %16s %16s\n" name "-" "-"
      else Printf.printf "%-28s %16.0f %16.0f\n" name ns (1e9 /. ns))
    rows

(* ------------------------------------------------------------------ *)

let () =
  print_table2 ();
  let env = Sim.make_env ~seed:"bench-harness" () in
  print_figure1 env;
  print_hmac env;
  print_iobound env;
  print_ablation env;
  print_read_mix env;
  print_storage env;
  print_burst_sustainability ();
  print_adaptive_day env;
  print_scaling ();
  run_bechamel ();
  Printf.printf "\nAll benchmark sections completed.\n"
