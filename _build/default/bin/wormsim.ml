(* Experiment runner: regenerate any table or figure from the paper's
   evaluation on demand.

     wormsim table2
     wormsim figure1 [--records N]
     wormsim hmac
     wormsim iobound [--size BYTES]
     wormsim ablation
     wormsim all *)

module Sim = Worm_sim.Sim
open Cmdliner

let hr title = Printf.printf "\n--- %s ---\n" title

let env = lazy (Sim.make_env ~seed:"wormsim" ())

let table2 () =
  hr "Table 2: primitive rates";
  Printf.printf "%-28s %14s %14s\n" "Function" "IBM 4764" "P4 @ 3.4GHz";
  List.iter
    (fun r -> Printf.printf "%-28s %14s %14s\n" r.Sim.operation r.Sim.scpu r.Sim.host)
    (Sim.table2 ())

let figure1 records csv =
  let measurements = Sim.figure1 (Lazy.force env) ~records () in
  if csv then begin
    Printf.printf "mode,record_bytes,records_per_sec,bottleneck\n";
    List.iter
      (fun (m : Sim.measurement) ->
        Printf.printf "%s,%d,%.1f,%s\n" m.Sim.label m.Sim.record_bytes m.Sim.throughput_rps m.Sim.bottleneck)
      measurements
  end
  else begin
    hr (Printf.sprintf "Figure 1: throughput vs record size (%d records/point)" records);
    List.iter (fun m -> Format.printf "%a@." Sim.pp_measurement m) measurements
  end

let hmac () =
  hr "HMAC witnessing (section 4.3)";
  List.iter
    (fun mode ->
      let m = Sim.run_write_burst (Lazy.force env) ~mode ~record_bytes:1024 ~records:24 () in
      Format.printf "%a@." Sim.pp_measurement m)
    [ Sim.mode_strong_host_hash; Sim.mode_weak_host_hash; Sim.mode_mac_host_hash ]

let iobound size =
  hr (Printf.sprintf "I/O bottleneck sweep (%d-byte records)" size);
  Printf.printf "%-12s %12s %12s\n" "seek (ms)" "rec/s" "bottleneck";
  List.iter
    (fun (seek_ms, m) -> Printf.printf "%-12.1f %12.0f %12s\n" seek_ms m.Sim.throughput_rps m.Sim.bottleneck)
    (Sim.io_bottleneck (Lazy.force env) ~record_bytes:size ())

let readmix size =
  hr (Printf.sprintf "Read/write mix sweep (%d-byte records)" size);
  Printf.printf "%-16s %14s %18s %12s\n" "write fraction" "ops/s" "SCPU us/op" "bottleneck";
  List.iter
    (fun r ->
      Printf.printf "%-16.2f %14.0f %18.1f %12s\n" r.Sim.write_fraction r.Sim.ops_per_sec r.Sim.scpu_us_per_op
        r.Sim.mix_bottleneck)
    (Sim.read_mix (Lazy.force env) ~record_bytes:size ())

let storage () =
  hr "VRDT storage reduction (section 4.2.1)";
  Printf.printf "%-32s %14s %10s %10s\n" "stage" "VRDT bytes" "entries" "windows";
  List.iter
    (fun r -> Printf.printf "%-32s %14d %10d %10d\n" r.Sim.stage r.Sim.vrdt_bytes r.Sim.entries r.Sim.windows)
    (Sim.storage_reduction (Lazy.force env) ())

let burst () =
  hr "Burst sustainability (section 4.3)";
  Printf.printf "%-16s %20s %20s\n" "arrivals (rec/s)" "debt (sigs/s)" "max burst (min)";
  List.iter
    (fun r -> Printf.printf "%-16.0f %20.0f %20.1f\n" r.Sim.arrival_rps r.Sim.debt_per_sec r.Sim.max_burst_min)
    (Sim.burst_sustainability ())

let adaptive () =
  hr "Adaptive witness strength across a day (section 4.3)";
  Printf.printf "%-18s %8s %8s %8s %8s %14s\n" "phase" "writes" "strong" "weak" "mac" "overdue after";
  List.iter
    (fun r ->
      Printf.printf "%-18s %8d %8d %8d %8d %14d\n" r.Sim.phase r.Sim.writes r.Sim.strong r.Sim.weak r.Sim.mac
        r.Sim.overdue_after)
    (Sim.adaptive_day (Lazy.force env) ())

let scaling () =
  hr "Multi-SCPU scaling";
  Printf.printf "%-8s %16s %10s %12s\n" "SCPUs" "aggregate rec/s" "speedup" "bottleneck";
  List.iter
    (fun r ->
      Printf.printf "%-8d %16.0f %9.2fx %12s\n" r.Sim.scpus r.Sim.aggregate_rps r.Sim.speedup
        r.Sim.scaling_bottleneck)
    (Sim.multi_scpu_scaling ~seed:"wormsim-scaling" ~scpus_list:[ 1; 2; 4; 8 ] ())

let ablation () =
  hr "Window vs Merkle update costs";
  Printf.printf "%-12s %18s %18s %18s\n" "records" "window us/update" "merkle us/update" "merkle hashes/up";
  List.iter
    (fun r ->
      Printf.printf "%-12d %18.1f %18.1f %18.1f\n" r.Sim.n r.Sim.window_scpu_us_per_update
        r.Sim.merkle_scpu_us_per_update r.Sim.merkle_hashes_per_update)
    (Sim.window_vs_merkle (Lazy.force env) ~ns:[ 256; 1024; 4096; 16384; 65536 ])

let records_arg =
  Arg.(value & opt int 24 & info [ "records" ] ~docv:"N" ~doc:"Records per data point.")

let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV (plot-ready).")

let size_arg =
  Arg.(value & opt int 1024 & info [ "size" ] ~docv:"BYTES" ~doc:"Record size in bytes.")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let all_cmd records size =
  table2 ();
  figure1 records false;
  hmac ();
  iobound size;
  ablation ();
  readmix size;
  storage ();
  burst ();
  adaptive ();
  scaling ()

let main =
  let doc = "Strong WORM experiment runner: regenerate the paper's tables and figures" in
  Cmd.group (Cmd.info "wormsim" ~doc)
    [
      cmd "table2" "Table 2: primitive rates from the calibrated cost models" Term.(const table2 $ const ());
      cmd "figure1" "Figure 1: throughput vs record size for all witnessing modes"
        Term.(const figure1 $ records_arg $ csv_arg);
      cmd "hmac" "Section 4.3: HMAC-witnessing throughput" Term.(const hmac $ const ());
      cmd "iobound" "Section 5: disk-latency sweep" Term.(const iobound $ size_arg);
      cmd "ablation" "Window scheme vs Merkle tree update costs" Term.(const ablation $ const ());
      cmd "scaling" "Multi-SCPU throughput scaling" Term.(const scaling $ const ());
      cmd "readmix" "Read-dominated query loads (section 4.1)" Term.(const readmix $ size_arg);
      cmd "storage" "VRDT storage reduction via deletion windows" Term.(const storage $ const ());
      cmd "burst" "Burst sustainability under deferred witnessing" Term.(const burst $ const ());
      cmd "adaptive" "Adaptive witness strength across a day of load phases" Term.(const adaptive $ const ());
      cmd "all" "Run every experiment" Term.(const all_cmd $ records_arg $ size_arg);
    ]

let () = exit (Cmd.eval main)
