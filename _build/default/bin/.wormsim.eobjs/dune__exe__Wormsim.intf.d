bin/wormsim.mli:
