bin/wormsim.ml: Arg Cmd Cmdliner Format Lazy List Printf Term Worm_sim
