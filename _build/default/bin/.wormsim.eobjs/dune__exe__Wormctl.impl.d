bin/wormctl.ml: Adversary Attr Authority Client Firmware Format In_channel Int64 Journal List Policy Printf Serial String Vrd Vrdt Worm Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_util
