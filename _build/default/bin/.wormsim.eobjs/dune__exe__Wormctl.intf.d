bin/wormctl.mli:
