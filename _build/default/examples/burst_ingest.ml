(* Burst ingest with deferred witnessing (§4.3): a market-open burst is
   absorbed with short-lived 512-bit signatures (and, in the fastest
   variant, HMACs), then strengthened to 1024-bit signatures during the
   idle period — all inside the weak constructs' security lifetime.

   The run prints SCPU busy time per mode under the calibrated IBM 4764
   cost model, reproducing the paper's burst-vs-sustained throughput gap.

   Run with: dune exec examples/burst_ingest.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Workload = Worm_workload.Workload

let burst_records = 40
let record_bytes = 1024

let run_mode ~ca ~clock ~rng label witness =
  let device = Device.provision ~seed:("burst-" ^ label) ~clock ~ca ~name:("scpu-" ^ label) () in
  let config = { Worm.default_config with Worm.datasig_mode = Worm.Host_hash; default_witness = witness } in
  let store = Worm.create ~config ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let policy = Policy.of_regulation Policy.Sec17a4 in
  let payloads = List.init burst_records (fun _ -> Workload.record rng ~bytes:record_bytes) in

  (* --- the burst --- *)
  Device.reset_busy device;
  let sns = List.map (fun blocks -> Worm.write store ~policy ~blocks) payloads in
  let burst_busy = Device.busy_ns device in
  let throughput = float_of_int burst_records /. (Int64.to_float burst_busy /. 1e9) in

  (* --- how clients see freshly burst-written records --- *)
  let first = List.hd sns in
  let during = Client.verdict_name (Client.verify_read client ~sn:first (Worm.read store first)) in

  (* --- the idle period: strengthen within the security lifetime --- *)
  Device.reset_busy device;
  Clock.advance clock (Clock.ns_of_min 10.);
  let overdue_before = List.length (Worm.deferred_overdue store ~now:(Clock.now clock)) in
  Worm.idle_tick store;
  let idle_busy = Device.busy_ns device in
  let after = Client.verdict_name (Client.verify_read client ~sn:first (Worm.read store first)) in

  Printf.printf "%-22s burst: %7.0f rec/s (SCPU %6.2f ms)   idle: %6.2f ms   read during burst: %s, after: %s\n"
    label throughput
    (Int64.to_float burst_busy /. 1e6)
    (Int64.to_float idle_busy /. 1e6)
    during after;
  assert (overdue_before = 0);
  assert (Worm.deferred_backlog store = []);
  ()

let () =
  Printf.printf "=== Deferred-strength burst ingest (%d records x %d B, IBM 4764 cost model) ===\n\n"
    burst_records record_bytes;
  let rng = Drbg.create ~seed:"burst-ingest" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  run_mode ~ca ~clock ~rng "strong-1024 (sustained)" Firmware.Strong_now;
  run_mode ~ca ~clock ~rng "deferred-512 (burst)" Firmware.Weak_deferred;
  run_mode ~ca ~clock ~rng "hmac (burst, fastest)" Firmware.Mac_deferred;
  Printf.printf
    "\nDeferred modes shift signature cost out of the burst window;\n\
     HMAC-witnessed records read as 'committed-unverifiable' until the\n\
     idle-period strengthening upgrades them to client-checkable\n\
     signatures — within the 512-bit constructs' security lifetime (%s).\n"
    (Format.asprintf "%a" Clock.pp_duration Device.default_config.Device.weak_lifetime_ns)
