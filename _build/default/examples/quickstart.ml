(* Quickstart: provision a Strong WORM store, write a record, read it
   back with client-side verification, watch retention expire it, and
   check the deletion proof.

   Run with: dune exec examples/quickstart.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let () =
  Printf.printf "=== Strong WORM quickstart ===\n\n";

  (* 1. Trust root: a certificate authority (in production: a regulatory
     or commercial CA; here: a key we generate). *)
  let rng = Drbg.create ~seed:"quickstart" in
  let ca = Rsa.generate rng ~bits:1024 in
  Printf.printf "CA key:       %s\n" (Format.asprintf "%a" Rsa.pp_public (Rsa.public_of ca));

  (* 2. A virtual clock shared by every component (the SCPU owns the
     trusted copy). *)
  let clock = Clock.create () in

  (* 3. Provision the secure coprocessor. The factory generates its key
     set inside the enclosure and the CA certifies the public halves. *)
  let device = Device.provision ~seed:"quickstart-device" ~clock ~ca ~name:"scpu-0" () in
  Printf.printf "SCPU:         %s (strong keys: %d bits, burst keys: %d bits)\n" (Device.name device)
    (Device.config device).Device.strong_bits
    (Device.config device).Device.weak_bits;

  (* 4. Create the WORM store around the device. *)
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  Printf.printf "Store id:     %s\n\n" (Worm_util.Hex.encode (Worm.store_id store));

  (* 5. A client trusts only the CA key and its own clock. *)
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in

  (* 6. Write a record under a (short, for demo purposes) retention
     policy. The SCPU issues the serial number and witnesses the data. *)
  let policy = Policy.custom ~name:"demo-90s" ~retention_ns:(Clock.ns_of_sec 90.) ~shred_passes:3 in
  let sn = Worm.write store ~policy ~blocks:[ "2026-07-06 wire transfer #448: $1,250,000 to ACME Corp" ] in
  Printf.printf "Wrote record  %s under %s\n" (Serial.to_string sn) (Format.asprintf "%a" Policy.pp policy);

  (* 7. Read it back and verify end-to-end. *)
  (match Client.verify_read client ~sn (Worm.read store sn) with
  | Client.Valid_data { blocks; _ } -> Printf.printf "Read+verify:  OK -> %s\n" (List.hd blocks)
  | v -> Printf.printf "Read+verify:  %s\n" (Client.verdict_name v));

  (* 8. A read of a serial number that was never issued comes with a
     signed, timestamped proof of non-existence. *)
  let ghost = Serial.of_int 42 in
  Printf.printf "Ghost read:   %s -> %s\n" (Serial.to_string ghost)
    (Client.verdict_name (Client.verify_read client ~sn:ghost (Worm.read store ghost)));

  (* 9. Time passes; the Retention Monitor wakes exactly when the record
     expires, shreds the data, and installs a deletion proof. *)
  (match Worm.next_rm_wakeup store with
  | Some t -> Printf.printf "RM alarm set for t=%s\n" (Format.asprintf "%a" Clock.pp_duration t)
  | None -> ());
  Clock.advance clock (Clock.ns_of_sec 91.);
  let outcomes = Worm.expire_due store in
  Printf.printf "RM fired:     %d record(s) expired and shredded\n" (List.length outcomes);

  (* 10. The same read now yields a verifiable proof of rightful
     deletion — not an error, not silence. *)
  (match Client.verify_read client ~sn (Worm.read store sn) with
  | Client.Properly_deleted -> Printf.printf "Read+verify:  properly deleted (SCPU-signed proof checks out)\n"
  | v -> Printf.printf "Read+verify:  %s\n" (Client.verdict_name v));

  (* 11. And the platters hold no trace of the data. *)
  Printf.printf "\nSCPU ledger:  %s busy, %d strong signatures, %d deletion proofs\n"
    (Format.asprintf "%a" Clock.pp_duration (Device.busy_ns device))
    (Device.stats device).Device.strong_signs
    (Device.stats device).Device.deletion_signs;
  Printf.printf "Done.\n"
