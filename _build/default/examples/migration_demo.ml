(* Compliant migration: a 2008-era store reaches end of life and its
   records — with their original retention clocks — move to a new store
   behind a different SCPU. The source SCPU attests the transfer; the
   target SCPU independently re-verifies every record before
   re-witnessing it.

   Run with: dune exec examples/migration_demo.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let () =
  Printf.printf "=== Compliant migration ===\n\n";
  let rng = Drbg.create ~seed:"migration-demo" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in

  (* The aging store. *)
  let old_device = Device.provision ~seed:"old-scpu" ~clock ~ca ~name:"scpu-2008" () in
  let old_store = Worm.create ~device:old_device ~ca:(Rsa.public_of ca) () in
  let old_client = Client.for_store ~ca:(Rsa.public_of ca) ~clock old_store in

  (* Populate: patient records under HIPAA (6y) and DOD files (25y). *)
  let hipaa = Policy.of_regulation Policy.Hipaa in
  let dod = Policy.of_regulation Policy.Dod5015_2 in
  let patients =
    List.map (fun i -> Worm.write old_store ~policy:hipaa ~blocks:[ Printf.sprintf "patient-chart-%03d" i ])
      [ 1; 2; 3 ]
  in
  let dossiers =
    List.map (fun i -> Worm.write old_store ~policy:dod ~blocks:[ Printf.sprintf "classified-dossier-%02d" i ])
      [ 1; 2 ]
  in
  Printf.printf "Old store holds %d HIPAA + %d DOD records\n" (List.length patients) (List.length dossiers);

  (* Four years pass: HIPAA records now have 2 years left on the clock. *)
  Clock.advance clock (Clock.ns_of_years 4.);
  Printf.printf "Four years later the hardware is obsolete; migrating...\n\n";

  (* The replacement store. *)
  let new_device = Device.provision ~seed:"new-scpu" ~clock ~ca ~name:"scpu-2030" () in
  let new_store = Worm.create ~device:new_device ~ca:(Rsa.public_of ca) () in
  let new_client = Client.for_store ~ca:(Rsa.public_of ca) ~clock new_store in

  match Migration.migrate ~source:old_store ~target:new_store with
  | Error e -> Printf.printf "migration failed: %s\n" e
  | Ok report ->
      Printf.printf "Migrated %d records (%d already-deleted skipped)\n"
        (List.length report.Migration.mapping)
        report.Migration.skipped_deleted;
      List.iter
        (fun (src, dst) -> Printf.printf "  %s -> %s\n" (Serial.to_string src) (Serial.to_string dst))
        report.Migration.mapping;

      (* The source SCPU's attestation binds window + content to the
         target store: an auditor can later prove completeness. *)
      Printf.printf "\nSource attestation verifies: %b\n"
        (Migration.verify_report ~source_client:old_client ~target_store_id:(Worm.store_id new_store) report);

      (* Records verify on the new store under the new SCPU's keys. *)
      let sample = List.assoc (List.hd patients) report.Migration.mapping in
      (match Client.verify_read new_client ~sn:sample (Worm.read new_store sample) with
      | Client.Valid_data { blocks; _ } -> Printf.printf "Target read of %s: OK -> %s\n" (Serial.to_string sample) (List.hd blocks)
      | v -> Printf.printf "Target read: %s\n" (Client.verdict_name v));

      (* Retention clocks carried over: 2 more years expire the HIPAA
         records on the target, while DOD records live on. *)
      Clock.advance clock (Clock.ns_of_years 2.1);
      let outcomes = Worm.expire_due new_store in
      let deleted = List.length (List.filter (fun (_, r) -> r = Ok ()) outcomes) in
      Printf.printf "\n2 years later on the target: %d HIPAA records expired on their ORIGINAL schedule\n" deleted;
      List.iter
        (fun src ->
          let dst = List.assoc src report.Migration.mapping in
          Printf.printf "  %s -> %s\n" (Serial.to_string dst)
            (Client.verdict_name (Client.verify_read new_client ~sn:dst (Worm.read new_store dst))))
        (patients @ dossiers);
      Printf.printf "\nDone: assurances survived the media generation change.\n"
