(* The insider, twice: every attack from the paper's threat model run
   against (a) a soft-WORM store of the kind §3 criticizes, where each
   one SUCCEEDS undetected, and (b) Strong WORM, where each one is
   DETECTED by a verifying client.

   Run with: dune exec examples/adversary_demo.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Soft_worm = Worm_baseline.Soft_worm

let line = String.make 72 '-'

let () =
  Printf.printf "=== Mallory vs. compliance storage ===\n\n";
  let rng = Drbg.create ~seed:"adversary-demo" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let policy = Policy.of_regulation Policy.Sec17a4 in

  (* ------------------------------------------------------------------ *)
  Printf.printf "%s\nPart 1: soft-WORM (software-only enforcement, cf. §3)\n%s\n" line line;
  let soft = Soft_worm.create ~clock () in
  let incriminating = "2026-07-01: CFO authorized off-book transfer of $4.2M" in
  let id = Soft_worm.write soft ~policy ~blocks:[ incriminating ] in
  Printf.printf "Stored record %d: %S\n\n" id incriminating;

  Printf.printf "Attack 1 — rewrite history (tamper + recompute checksum):\n";
  ignore (Soft_worm.Raw.tamper_and_fix_checksum soft id [ "2026-07-01: routine operating expense, $4,200" ]);
  (match Soft_worm.read soft id with
  | Soft_worm.Ok_data [ d ] -> Printf.printf "  read -> OK (checksum valid!): %S\n  >>> UNDETECTED\n" d
  | _ -> Printf.printf "  unexpected\n");

  Printf.printf "\nAttack 2 — premature destruction (bypass the software switch):\n";
  let id2 = Soft_worm.write soft ~policy ~blocks:[ "exhibit B" ] in
  ignore (Soft_worm.Raw.force_delete soft id2);
  (match Soft_worm.read soft id2 with
  | Soft_worm.Deleted -> Printf.printf "  read -> 'deleted' (looks lawful)\n  >>> UNDETECTED\n"
  | _ -> Printf.printf "  unexpected\n");

  Printf.printf "\nAttack 3 — hide the record entirely:\n";
  let id3 = Soft_worm.write soft ~policy ~blocks:[ "exhibit C" ] in
  ignore (Soft_worm.Raw.hide soft id3);
  (match Soft_worm.read soft id3 with
  | Soft_worm.Never_written -> Printf.printf "  read -> 'never written'\n  >>> UNDETECTED\n"
  | _ -> Printf.printf "  unexpected\n");

  (* ------------------------------------------------------------------ *)
  Printf.printf "\n%s\nPart 2: Strong WORM (SCPU-witnessed)\n%s\n" line line;
  let device = Device.provision ~seed:"demo-scpu" ~clock ~ca ~name:"scpu-demo" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let mallory = Adversary.create store in
  let report sn =
    match Client.verify_read client ~sn (Worm.read store sn) with
    | Client.Violation vs ->
        Printf.printf "  client verdict -> VIOLATION: %s\n  >>> DETECTED\n"
          (String.concat "; " (List.map Client.violation_to_string vs))
    | v -> Printf.printf "  client verdict -> %s\n" (Client.verdict_name v)
  in

  let sn = Worm.write store ~policy ~blocks:[ incriminating ] in
  Printf.printf "Stored record %s\n\n" (Serial.to_string sn);

  Printf.printf "Attack 1 — rewrite history (tamper data + fix cached hash):\n";
  ignore (Adversary.substitute_record_data mallory sn "2026-07-01: routine operating expense, $4,200");
  report sn;

  Printf.printf "\nAttack 2 — shorten the retention period in the VRDT:\n";
  let sn2 = Worm.write store ~policy ~blocks:[ "exhibit B" ] in
  ignore (Adversary.tamper_attr_retention mallory sn2 ~new_retention_ns:1L);
  report sn2;
  Printf.printf "  ...and the SCPU refuses to issue a deletion proof for forged attributes:\n";
  Clock.advance clock (Clock.ns_of_sec 5.);
  (match Vrdt.find (Worm.vrdt store) sn2 with
  | Some (Vrdt.Active forged) -> begin
      match Firmware.delete (Worm.firmware store) ~vrd_bytes:(Vrd.to_bytes forged) with
      | Error e -> Printf.printf "  firmware -> refused: %s\n  >>> DETECTED\n" (Firmware.error_to_string e)
      | Ok _ -> Printf.printf "  firmware deleted!?\n"
    end
  | _ -> ());

  Printf.printf "\nAttack 3 — hide the record entirely:\n";
  let sn3 = Worm.write store ~policy ~blocks:[ "exhibit C" ] in
  Worm.heartbeat store;
  ignore (Adversary.hide_record mallory sn3);
  Clock.advance clock (Clock.ns_of_min 6.);
  report sn3;

  Printf.printf "\nAttack 4 — replicate the store, roll back to the copy:\n";
  Adversary.capture mallory;
  let sn4 = Worm.write store ~policy ~blocks:[ "the regretted record" ] in
  ignore (Adversary.rollback mallory);
  Clock.advance clock (Clock.ns_of_min 6.);
  Printf.printf "  (media restored from the pre-write image; SCPU counter survived)\n";
  report sn4;

  Printf.printf "\nAttack 5 — physical attack on the SCPU itself:\n";
  Device.tamper_respond device;
  (match Worm.write store ~policy ~blocks:[ "one more" ] with
  | exception Device.Tamper_detected ->
      Printf.printf "  device zeroized its keys and halted\n  >>> store fails SAFE: no forged witnesses possible\n"
  | _ -> Printf.printf "  unexpected\n");

  Printf.printf "\n%s\nSummary: 3/3 attacks undetected on soft-WORM; 0/5 on Strong WORM.\n" line
