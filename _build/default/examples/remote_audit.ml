(* A federal investigator audits a broker-dealer's WORM store over the
   wire. The investigator trusts only the CA key and a synchronized
   clock: certificates arrive over the (untrusted) transport, every
   reply is verified locally, and the host's attempts to lie — including
   a man-in-the-middle rewriting responses — are all caught.

   Also shows the filesystem layer: the firm's documents live as
   versioned write-once files over the same store.

   Run with: dune exec examples/remote_audit.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg
module Message = Worm_proto.Message
module Server = Worm_proto.Server
module Remote_client = Worm_proto.Remote_client

let () =
  Printf.printf "=== Remote audit over the WORM protocol ===\n\n";
  let rng = Drbg.create ~seed:"remote-audit" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"firm-scpu" ~clock ~ca ~name:"scpu-firm" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in

  (* --- The firm's side: documents as versioned WORM files --- *)
  let fs = Worm_fs.create store in
  let policy = Policy.of_regulation Policy.Sox in
  ignore (Worm_fs.write_file fs ~policy ~path:"/filings/10-K-2025.pdf" "annual report, as filed");
  ignore (Worm_fs.write_file fs ~policy ~path:"/board/minutes-2026-03.txt" "approved the acquisition");
  let v1 = Worm_fs.write_file fs ~policy ~path:"/board/minutes-2026-06.txt" "discussed the writedown" in
  (* an amended version is a NEW record; the original stays *)
  let v2 = Worm_fs.write_file fs ~policy ~path:"/board/minutes-2026-06.txt" "discussed the writedown (amended)" in
  Printf.printf "Firm stored %d files (%d records); June minutes have versions %d and %d\n"
    (List.length (Worm_fs.list_files fs))
    (Serial.to_int (Firmware.sn_current (Worm.firmware store)))
    v1.Worm_fs.version v2.Worm_fs.version;

  (* --- The wire --- *)
  let server = Server.create store in
  let transport = Server.handle_bytes server in

  (* --- The investigator connects knowing only the CA --- *)
  Printf.printf "\nInvestigator connects...\n";
  let rc =
    match Remote_client.connect ~ca:(Rsa.public_of ca) ~clock transport with
    | Ok rc -> rc
    | Error e -> failwith e
  in
  Printf.printf "  certificates validated; store %s\n" (Worm_util.Hex.encode (Remote_client.store_id rc));

  (* --- Full audit sweep over every serial number ever issued --- *)
  let current = Firmware.sn_current (Worm.firmware store) in
  let results = Remote_client.audit_sweep rc ~lo:Serial.first ~hi:current in
  Printf.printf "\nAudit sweep over %s..%s:\n" (Serial.to_string Serial.first) (Serial.to_string current);
  List.iter
    (fun (sn, verdict) -> Printf.printf "  %s -> %s\n" (Serial.to_string sn) (Client.verdict_name verdict))
    results;
  Printf.printf "  (%d bytes sent, %d received)\n" (Remote_client.bytes_sent rc)
    (Remote_client.bytes_received rc);

  (* --- Both versions of the amended minutes are retrievable --- *)
  (match Remote_client.read rc v1.Worm_fs.sn with
  | Client.Valid_data { blocks = _ :: body; _ } ->
      Printf.printf "\nOriginal June minutes (v1, over the wire): %S\n" (String.concat "" body)
  | v -> Printf.printf "v1: %s\n" (Client.verdict_name v));

  (* --- A man in the middle rewrites responses --- *)
  Printf.printf "\nA middlebox starts rewriting read responses...\n";
  let mitm req =
    match Message.decode_request req with
    | Ok (Message.Read _) ->
        let reply = transport req in
        let b = Bytes.of_string reply in
        (* rewrite a byte of the record data at the tail of the reply *)
        let i = Bytes.length b - 3 in
        if i > 0 then Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        Bytes.to_string b
    | _ -> transport req
  in
  let rc_mitm =
    match Remote_client.connect ~ca:(Rsa.public_of ca) ~clock mitm with
    | Ok rc -> rc
    | Error e -> failwith e
  in
  (match Remote_client.read rc_mitm v1.Worm_fs.sn with
  | Client.Violation vs ->
      Printf.printf "  tampered reply -> VIOLATION: %s\n"
        (String.concat "; " (List.map Client.violation_to_string vs))
  | v -> Printf.printf "  unexpected: %s\n" (Client.verdict_name v));

  Printf.printf "\nThe transport added nothing to the insider's powers. Done.\n"
