(* A full trading day on one Strong WORM store, end to end:

   - order-flow bursts at the open and close, a quiet midday;
   - the §4.3 adaptive controller picks the witness strength per write
     (strong when calm, deferred 512-bit in bursts, HMAC in the flood);
   - repeated trade confirmations share disk through §4.2 dedup;
   - overnight idle maintenance strengthens everything, runs audits,
     re-feeds the VEXP, and compacts deletion windows;
   - the next morning an auditor sweeps the whole store.

   Run with: dune exec examples/market_day.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Cost_model = Worm_scpu.Cost_model
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let () =
  Printf.printf "=== One market day on Strong WORM ===\n\n";
  let rng = Drbg.create ~seed:"market-day" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"exchange-scpu" ~clock ~ca ~name:"scpu-nyse" () in
  let config = { Worm.default_config with Worm.datasig_mode = Worm.Host_hash; dedup = true } in
  let store = Worm.create ~config ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let controller =
    Adaptive.create ~profile:Cost_model.ibm_4764 ~device_config:(Device.config device) ()
  in
  let policy = Policy.of_regulation Policy.Sec17a4 in
  let boilerplate = "STANDARD CONFIRMATION TERMS: " ^ String.make 2000 't' in
  let strengths = Hashtbl.create 3 in
  let sns = ref [] in

  let ingest label ~rate ~seconds =
    let n = max 1 (int_of_float (rate *. seconds)) in
    let counts = Hashtbl.create 3 in
    for i = 1 to n do
      Clock.advance clock (Int64.of_float (1e9 /. rate));
      let now = Clock.now clock in
      Adaptive.note_write controller ~now;
      let witness =
        Adaptive.recommend controller ~now
          ~deferred_backlog:(List.length (Worm.deferred_backlog store))
      in
      let name =
        match witness with
        | Firmware.Strong_now -> "strong"
        | Firmware.Weak_deferred -> "weak"
        | Firmware.Mac_deferred -> "mac"
      in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
      Hashtbl.replace strengths name (1 + Option.value ~default:0 (Hashtbl.find_opt strengths name));
      let trade = Printf.sprintf "trade %d @ %Ld: 100 ACME @ 42.%02d" i now (i mod 100) in
      sns := Worm.write store ~witness ~policy ~blocks:[ trade; boilerplate ] :: !sns
    done;
    let dist =
      String.concat ", " (Hashtbl.fold (fun k v acc -> Printf.sprintf "%s: %d" k v :: acc) counts [])
    in
    Printf.printf "%-28s %5d records (%s)\n" label n dist
  in

  let midday_maintenance label =
    (* quiet spells strengthen the morning's deferred witnesses well
       inside their 2 h security lifetime (§4.3) *)
    assert (Worm.deferred_overdue store ~now:(Clock.now clock) = []);
    let upgraded = Worm.strengthen_pending store () in
    ignore (Worm.run_audits store ());
    Printf.printf "%-28s %5d witnesses upgraded to 1024-bit\n" label upgraded
  in

  Printf.printf "%-28s %5s\n" "phase" "writes";
  ingest "09:30 opening burst" ~rate:2000. ~seconds:0.25;
  Clock.advance clock (Clock.ns_of_min 5.);
  ingest "09:35 steady trading" ~rate:100. ~seconds:2.;
  Clock.advance clock (Clock.ns_of_min 45.);
  midday_maintenance "10:20 quiet spell";
  Clock.advance clock (Clock.ns_of_hours 2.);
  ingest "12:40 lunchtime trickle" ~rate:20. ~seconds:2.;
  Clock.advance clock (Clock.ns_of_hours 3.);
  ingest "15:59 closing flood" ~rate:6000. ~seconds:0.25;

  Printf.printf "\nEnd of day: %d records, deferred backlog %d, audit backlog %d\n"
    (List.length !sns)
    (List.length (Worm.deferred_backlog store))
    (List.length (Worm.audit_backlog store));
  (match Worm.dedup_stats store with
  | Some s ->
      Printf.printf "Dedup: %d unique blocks back %d logical (%.1fx disk savings on confirmations)\n"
        s.Dedup_store.unique_blocks s.Dedup_store.logical_blocks
        (float_of_int s.Dedup_store.logical_bytes /. float_of_int s.Dedup_store.physical_bytes)
  | None -> ());

  (* overnight maintenance, well inside the 2h security lifetime *)
  Clock.advance clock (Clock.ns_of_min 30.);
  Device.reset_busy device;
  Worm.idle_tick store;
  Printf.printf "\nOvernight idle maintenance: %s of SCPU work; backlogs now %d/%d\n"
    (Format.asprintf "%a" Clock.pp_duration (Device.busy_ns device))
    (List.length (Worm.deferred_backlog store))
    (List.length (Worm.audit_backlog store));
  assert (Worm.deferred_overdue store ~now:(Clock.now clock) = []);

  (* next morning: the auditor *)
  let bad = ref 0 and unverifiable = ref 0 in
  List.iter
    (fun sn ->
      match Client.verify_read client ~sn (Worm.read store sn) with
      | Client.Valid_data _ -> ()
      | Client.Committed_unverifiable -> incr unverifiable
      | _ -> incr bad)
    !sns;
  Printf.printf "\nMorning audit: %d records, %d violations, %d unverifiable\n" (List.length !sns) !bad
    !unverifiable;
  Printf.printf "Witness mix across the day: %s\n"
    (String.concat ", " (Hashtbl.fold (fun k v acc -> Printf.sprintf "%s: %d" k v :: acc) strengths []));
  assert (!bad = 0 && !unverifiable = 0);
  Printf.printf "\nEvery trade of the day is SCPU-witnessed and client-verifiable. Done.\n"
