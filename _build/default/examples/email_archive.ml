(* A broker-dealer email archive under SEC rule 17a-4 — the paper's
   motivating workload class. Messages are ingested with six-year
   retention; a court places a litigation hold on a thread; the CFO's
   purge order bounces off the SCPU; after release and (simulated) six
   years, records expire and the VRDT compacts into deletion windows.

   Run with: dune exec examples/email_archive.exe *)

open Worm_core
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Drbg = Worm_crypto.Drbg

let message ~from_ ~to_ ~subject ~body =
  Printf.sprintf "From: %s\nTo: %s\nSubject: %s\n\n%s" from_ to_ subject body

let () =
  Printf.printf "=== SEC 17a-4 email archive ===\n\n";
  let rng = Drbg.create ~seed:"email-archive" in
  let ca = Rsa.generate rng ~bits:1024 in
  let clock = Clock.create () in
  let device = Device.provision ~seed:"archive-scpu" ~clock ~ca ~name:"archive-scpu" () in
  let store = Worm.create ~device ~ca:(Rsa.public_of ca) () in
  let client = Client.for_store ~ca:(Rsa.public_of ca) ~clock store in
  let sec17a4 = Policy.of_regulation Policy.Sec17a4 in

  (* --- Ingest a day of mail --- *)
  let mails =
    [
      message ~from_:"cfo@firm.example" ~to_:"trader@firm.example" ~subject:"Q2 numbers"
        ~body:"Keep this between us.";
      message ~from_:"trader@firm.example" ~to_:"cfo@firm.example" ~subject:"Re: Q2 numbers"
        ~body:"Understood. Moving the position before the filing.";
      message ~from_:"compliance@firm.example" ~to_:"all@firm.example" ~subject:"Reminder"
        ~body:"All trades must be reported same-day.";
      message ~from_:"hr@firm.example" ~to_:"all@firm.example" ~subject:"Summer party"
        ~body:"Friday 6pm on the roof.";
    ]
  in
  let sns = List.map (fun m -> Worm.write store ~policy:sec17a4 ~blocks:[ m ]) mails in
  Printf.printf "Ingested %d messages under %s\n" (List.length sns)
    (Format.asprintf "%a" Policy.pp sec17a4);
  List.iter (fun sn -> Printf.printf "  %s\n" (Serial.to_string sn)) sns;

  (* --- Three years in: the SEC investigates the Q2 thread --- *)
  Clock.advance clock (Clock.ns_of_years 3.);
  let authority = Authority.create ~ca ~clock ~rng ~name:"US-District-Court-SDNY" in
  let q2_thread = [ List.nth sns 0; List.nth sns 1 ] in
  let hold_until = Int64.add (Clock.now clock) (Clock.ns_of_years 10.) in
  List.iter
    (fun sn ->
      match Authority.place_hold authority ~store ~sn ~lit_id:"SDNY-26-cv-01337" ~timeout:hold_until with
      | Ok () -> Printf.printf "Litigation hold placed on %s (SDNY-26-cv-01337)\n" (Serial.to_string sn)
      | Error e -> Printf.printf "hold failed: %s\n" (Firmware.error_to_string e))
    q2_thread;

  (* --- Four more years: ordinary retention (6y) has lapsed --- *)
  Clock.advance clock (Clock.ns_of_years 4.);
  let outcomes = Worm.expire_due store in
  Printf.printf "\nAt year 7, the Retention Monitor ran: %d candidates\n" (List.length outcomes);
  List.iter
    (fun (sn, result) ->
      match result with
      | Ok () -> Printf.printf "  %s expired and was shredded\n" (Serial.to_string sn)
      | Error (Firmware.On_litigation_hold lit) ->
          Printf.printf "  %s deletion BLOCKED by hold %s\n" (Serial.to_string sn) lit
      | Error e -> Printf.printf "  %s: %s\n" (Serial.to_string sn) (Firmware.error_to_string e))
    outcomes;

  (* the held thread is still fully readable and verifiable *)
  List.iter
    (fun sn ->
      match Client.verify_read client ~sn (Worm.read store sn) with
      | Client.Valid_data _ -> Printf.printf "  %s still readable under hold\n" (Serial.to_string sn)
      | v -> Printf.printf "  %s: %s\n" (Serial.to_string sn) (Client.verdict_name v))
    q2_thread;

  (* --- The case closes; the court releases the hold --- *)
  List.iter
    (fun sn ->
      match Authority.release_hold authority ~store ~sn with
      | Ok () -> Printf.printf "Hold released on %s\n" (Serial.to_string sn)
      | Error e -> Printf.printf "release failed: %s\n" (Firmware.error_to_string e))
    q2_thread;
  let outcomes = Worm.expire_due store in
  Printf.printf "RM re-ran: %d more records expired\n" (List.length (List.filter (fun (_, r) -> r = Ok ()) outcomes));

  (* --- Housekeeping: compact deletion proofs into windows --- *)
  Printf.printf "\nVRDT before compaction: %d entries, ~%d bytes\n"
    (Vrdt.entry_count (Worm.vrdt store))
    (Worm.vrdt_bytes store);
  let expelled = Worm.compact_windows store in
  Printf.printf "Compacted: %d entries expelled, %d deletion window(s), ~%d bytes\n" expelled
    (List.length (Worm.deletion_windows store))
    (Worm.vrdt_bytes store);

  (* --- An auditor replays history --- *)
  Printf.printf "\nAuditor sweep over all serial numbers:\n";
  List.iter
    (fun sn ->
      Printf.printf "  %s -> %s\n" (Serial.to_string sn)
        (Client.verdict_name (Client.verify_read client ~sn (Worm.read store sn))))
    sns;
  Printf.printf "\nEvery absence is proven, every record verified. Done.\n"
