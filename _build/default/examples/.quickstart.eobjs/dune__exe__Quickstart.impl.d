examples/quickstart.ml: Client Format List Policy Printf Serial Worm Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_util
