examples/adversary_demo.ml: Adversary Client Firmware List Policy Printf Serial String Vrd Vrdt Worm Worm_baseline Worm_core Worm_crypto Worm_scpu Worm_simclock
