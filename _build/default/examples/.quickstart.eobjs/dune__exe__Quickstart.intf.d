examples/quickstart.mli:
