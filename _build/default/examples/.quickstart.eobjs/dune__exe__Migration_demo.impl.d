examples/migration_demo.ml: Client List Migration Policy Printf Serial Worm Worm_core Worm_crypto Worm_scpu Worm_simclock
