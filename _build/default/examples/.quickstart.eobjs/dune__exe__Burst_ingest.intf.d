examples/burst_ingest.mli:
