examples/email_archive.ml: Authority Client Firmware Format Int64 List Policy Printf Serial Vrdt Worm Worm_core Worm_crypto Worm_scpu Worm_simclock
