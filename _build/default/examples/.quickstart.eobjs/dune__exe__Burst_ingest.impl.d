examples/burst_ingest.ml: Client Firmware Format Int64 List Policy Printf Worm Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_workload
