examples/market_day.mli:
