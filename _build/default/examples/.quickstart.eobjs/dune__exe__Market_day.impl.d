examples/market_day.ml: Adaptive Client Dedup_store Firmware Format Hashtbl Int64 List Option Policy Printf String Worm Worm_core Worm_crypto Worm_scpu Worm_simclock
