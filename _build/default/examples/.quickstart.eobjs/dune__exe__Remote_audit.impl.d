examples/remote_audit.ml: Bytes Char Client Firmware List Policy Printf Serial String Worm Worm_core Worm_crypto Worm_fs Worm_proto Worm_scpu Worm_simclock Worm_util
