examples/email_archive.mli:
