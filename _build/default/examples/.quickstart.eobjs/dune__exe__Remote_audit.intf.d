examples/remote_audit.mli:
