type addr = int

type latency_model = { seek_ns : int64; bytes_per_sec : float }

let enterprise_latency = { seek_ns = Worm_simclock.Clock.ns_of_ms 3.5; bytes_per_sec = 100e6 }
let fast_latency = { seek_ns = Worm_simclock.Clock.ns_of_ms 0.1; bytes_per_sec = 500e6 }
let zero_latency = { seek_ns = 0L; bytes_per_sec = infinity }

type t = {
  latency : latency_model;
  live : (addr, string) Hashtbl.t;
  residue : (addr, string) Hashtbl.t;
  mutable next_addr : addr;
  mutable busy_ns : int64;
  mutable bytes : int;
}

let create ?(latency = enterprise_latency) () =
  { latency; live = Hashtbl.create 256; residue = Hashtbl.create 64; next_addr = 0; busy_ns = 0L; bytes = 0 }

let charge t nbytes =
  let transfer =
    if t.latency.bytes_per_sec = infinity then 0L
    else Int64.of_float (float_of_int nbytes /. t.latency.bytes_per_sec *. 1e9)
  in
  t.busy_ns <- Int64.add t.busy_ns (Int64.add t.latency.seek_ns transfer)

let write t data =
  let addr = t.next_addr in
  t.next_addr <- addr + 1;
  Hashtbl.replace t.live addr data;
  t.bytes <- t.bytes + String.length data;
  charge t (String.length data);
  addr

let read t addr =
  match Hashtbl.find_opt t.live addr with
  | Some data ->
      charge t (String.length data);
      Some data
  | None -> None

let size t addr = Option.map String.length (Hashtbl.find_opt t.live addr)

let shred_pattern pass = if pass mod 2 = 0 then '\x00' else '\xff'

let shred t ~passes addr =
  match Hashtbl.find_opt t.live addr with
  | None -> false
  | Some data ->
      let n = String.length data in
      for pass = 1 to max 1 passes do
        charge t n;
        Hashtbl.replace t.residue addr (String.make n (shred_pattern pass))
      done;
      Hashtbl.remove t.live addr;
      t.bytes <- t.bytes - n;
      true

let record_count t = Hashtbl.length t.live
let bytes_stored t = t.bytes
let busy_ns t = t.busy_ns
let reset_busy t = t.busy_ns <- 0L

module Raw = struct
  let exists t addr = Hashtbl.mem t.live addr

  let tamper t addr ~f =
    match Hashtbl.find_opt t.live addr with
    | None -> false
    | Some data ->
        let data' = f data in
        t.bytes <- t.bytes - String.length data + String.length data';
        Hashtbl.replace t.live addr data';
        true

  let delete t addr =
    match Hashtbl.find_opt t.live addr with
    | None -> false
    | Some data ->
        Hashtbl.replace t.residue addr data;
        Hashtbl.remove t.live addr;
        t.bytes <- t.bytes - String.length data;
        true

  let residue t addr =
    match Hashtbl.find_opt t.live addr with
    | Some data -> Some data
    | None -> Hashtbl.find_opt t.residue addr

  let snapshot t = Hashtbl.fold (fun addr data acc -> (addr, data) :: acc) t.live []

  let restore t image =
    Hashtbl.reset t.live;
    t.bytes <- 0;
    List.iter
      (fun (addr, data) ->
        Hashtbl.replace t.live addr data;
        t.bytes <- t.bytes + String.length data;
        if addr >= t.next_addr then t.next_addr <- addr + 1)
      image
end
