(** Rewritable magnetic-disk model.

    Strong WORM is deliberately built on conventional rewritable disks
    (§3: "all recently-introduced WORM storage devices are built atop
    conventional rewritable magnetic disks"), so the disk model must let
    anyone with physical access rewrite anything: the {!Raw} interface
    is the insider's toolkit and bypasses every software check. WORM
    guarantees come from the layer above, never from this device.

    The disk charges seek + transfer latency for every legitimate
    operation into a busy-time ledger; the throughput simulator reads
    the ledger to reproduce the paper's I/O-bottleneck observation (§5:
    3–4 ms enterprise-disk latencies dominate the WORM layer). *)

type t

type addr = int
(** Stable record address (the paper's physical record descriptor RD). *)

type latency_model = {
  seek_ns : int64;  (** per-operation positioning cost *)
  bytes_per_sec : float;  (** sequential transfer rate *)
}

val enterprise_latency : latency_model
(** 3.5 ms seek, 100 MB/s — the paper's "typical high-speed enterprise
    disk" (§5). *)

val fast_latency : latency_model
(** 0.1 ms seek, 500 MB/s — an array-backed store where the WORM layer,
    not I/O, is the bottleneck. *)

val zero_latency : latency_model
(** Free I/O, for isolating CPU costs. *)

val create : ?latency:latency_model -> unit -> t

val write : t -> string -> addr
val read : t -> addr -> string option
val size : t -> addr -> int option

val shred : t -> passes:int -> addr -> bool
(** Multi-pass overwrite then deallocate. Charges one full write per
    pass. Returns [false] if the address is unallocated. After a shred
    the forensic residue ({!Raw.residue}) carries only the final
    overwrite pattern — the data is unrecoverable even with media
    access, matching the paper's secure-deletion requirement. *)

val record_count : t -> int
val bytes_stored : t -> int

val busy_ns : t -> int64
(** Cumulative latency charged since creation (or the last reset). *)

val reset_busy : t -> unit

(** Direct media access — the super-user insider with a screwdriver.
    Nothing here is charged, logged, or prevented. *)
module Raw : sig
  val exists : t -> addr -> bool

  val tamper : t -> addr -> f:(string -> string) -> bool
  (** Rewrite a record's bytes in place. Returns [false] if absent. *)

  val delete : t -> addr -> bool
  (** Drop a record without shredding: the old content remains as
      forensically recoverable residue. *)

  val residue : t -> addr -> string option
  (** What a forensic read of the platter at a deallocated address
      recovers: the last content for a {!delete}d record, the overwrite
      pattern for a {!shred}ded one, [None] if never allocated. *)

  val snapshot : t -> (addr * string) list
  (** Full media image (the replication attack: copy the platters). *)

  val restore : t -> (addr * string) list -> unit
  (** Replace current contents with a previously captured image. *)
end
