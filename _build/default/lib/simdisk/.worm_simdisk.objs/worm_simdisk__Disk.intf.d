lib/simdisk/disk.mli:
