lib/simdisk/disk.ml: Hashtbl Int64 List Option String Worm_simclock
