(** Optical-disc WORM baseline (§3).

    Write-once {e physically}: marks burned into the medium cannot be
    unburned, which gives genuine immutability per disc — and exactly
    the drawbacks the paper lists: retention periods are fixed by the
    medium ("unsuited for scenarios with variable retention periods"),
    secure deletion of an individual record is impossible short of
    destroying the whole disc, and nothing authenticates which disc is
    in the drive, so "simple data replication attacks" — burning a
    doctored replacement disc — go undetected.

    The test suite demonstrates each limitation next to the Strong WORM
    behavior that fixes it. *)

type t
(** A jukebox of burn-once discs. *)

type disc_id = int
type slot = int

val create : ?disc_capacity:int -> unit -> t
(** [disc_capacity] records per disc (default 8). *)

val burn : t -> string -> disc_id * slot
(** Append a record to the current disc, opening a new disc when full.
    Burned marks are permanent. *)

val read : t -> disc_id * slot -> string option

val try_overwrite : t -> disc_id * slot -> string -> (unit, string) result
(** Always fails: the physics refuse. This is the medium's one real
    guarantee. *)

val try_erase_record : t -> disc_id * slot -> (unit, string) result
(** Always fails: no per-record secure deletion on a burned disc. *)

val destroy_disc : t -> disc_id -> int
(** Physical destruction of a whole disc — the only deletion granularity
    available. Returns how many records (expired or not) were lost with
    it. *)

val records_on_disc : t -> disc_id -> int
val disc_count : t -> int

val swap_disc : t -> disc_id -> string list -> bool
(** The replication attack: replace a disc with a freshly burned one
    carrying attacker-chosen contents. Succeeds whenever the record
    count matches what a casual inventory would check — nothing
    cryptographic ties discs to the archive. *)
