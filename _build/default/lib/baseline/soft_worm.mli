(** Soft-WORM baseline: software-enforced write-once semantics.

    Models the first-generation products of §3 (EMC Centera Compliance
    Edition class): rewritable disks with WORM semantics enforced by a
    software switch, integrity "protected" by checksums stored at
    locations logically unaddressable from user-land — but physically
    addressable by any insider with a screwdriver.

    The API honestly refuses premature deletes and detects casual
    corruption; the {!Raw} interface shows why that is worthless under
    the paper's threat model: a super-user rewrites both the data and
    the checksum, and every check still passes. The attack test-suite
    runs the same attacks against this store and Strong WORM, asserting
    success here and detection there. *)

type t

type record_id = int

val create : ?disk:Worm_simdisk.Disk.t -> clock:Worm_simclock.Clock.t -> unit -> t

val write : t -> policy:Worm_core.Policy.t -> blocks:string list -> record_id

type read_result =
  | Ok_data of string list  (** checksum verified *)
  | Checksum_mismatch
  | Deleted
  | Never_written

val read : t -> record_id -> read_result

val delete : t -> record_id -> (unit, string) result
(** The software switch: refuses while retention lasts. *)

val record_count : t -> int

(** The insider, again with full physical access. *)
module Raw : sig
  val tamper_and_fix_checksum : t -> record_id -> string list -> bool
  (** Replace a record's content and recompute its checksum — the attack
      §3 says "is bound to fail" to be prevented by checksum hiding.
      Subsequent {!read}s return [Ok_data] with the forged content. *)

  val hide : t -> record_id -> bool
  (** Remove all trace of the record; {!read} reports [Never_written]. *)

  val force_delete : t -> record_id -> bool
  (** Bypass the retention check entirely. *)
end
