type disc_id = int
type slot = int

type disc = { mutable slots : string array; mutable used : int }

type t = { disc_capacity : int; mutable discs : (disc_id * disc) list; mutable next_disc : int }

let create ?(disc_capacity = 8) () =
  if disc_capacity <= 0 then invalid_arg "Optical_worm.create: non-positive capacity";
  { disc_capacity; discs = []; next_disc = 0 }

let current_disc t =
  match t.discs with
  | (id, d) :: _ when d.used < Array.length d.slots -> (id, d)
  | _ ->
      let id = t.next_disc in
      t.next_disc <- id + 1;
      let d = { slots = Array.make t.disc_capacity ""; used = 0 } in
      t.discs <- (id, d) :: t.discs;
      (id, d)

let burn t record =
  let id, d = current_disc t in
  let slot = d.used in
  d.slots.(slot) <- record;
  d.used <- slot + 1;
  (id, slot)

let find t id = List.assoc_opt id t.discs

let read t (id, slot) =
  match find t id with
  | Some d when slot >= 0 && slot < d.used -> Some d.slots.(slot)
  | Some _ | None -> None

let try_overwrite _t _addr _data = Error "burned marks are permanent: the medium cannot be rewritten"
let try_erase_record _t _addr = Error "no per-record erasure on write-once media; destroy the disc"

let destroy_disc t id =
  match find t id with
  | None -> 0
  | Some d ->
      t.discs <- List.remove_assoc id t.discs;
      d.used

let records_on_disc t id =
  match find t id with
  | Some d -> d.used
  | None -> 0

let disc_count t = List.length t.discs

let swap_disc t id contents =
  match find t id with
  | None -> false
  | Some original when List.length contents = original.used ->
      (* a freshly burned disc with the same record count passes any
         non-cryptographic inventory *)
      let d = { slots = Array.of_list contents; used = List.length contents } in
      t.discs <- (id, d) :: List.remove_assoc id t.discs;
      true
  | Some _ -> false
