(** Merkle-authenticated store baseline (the design §4.1 rejects).

    Same trust root as Strong WORM — an SCPU signs the authentication
    state — but organized as the data-outsourcing literature would have
    it: a hash tree over record digests whose root the SCPU re-signs on
    {e every} update, costing O(log n) hash recomputations per insert
    versus the window scheme's O(1) boundary signatures.

    The ablation benchmark drives both through identical insert loads
    and reports SCPU hash work and virtual busy time; reads come with
    root-signed membership proofs that clients can verify, so assurance
    is comparable — only the update cost differs. *)

type t

val create : device:Worm_scpu.Device.t -> capacity:int -> t
(** The tree (capacity rounded to a power of two) lives in SCPU-adjacent
    trusted state; each level-hash recomputation is charged to the
    device at SCPU rates. *)

val capacity : t -> int
val size : t -> int

val append : t -> string -> int
(** Insert a record's data, recompute the root path, sign the new root.
    Returns the record's index. @raise Failure when full. *)

val bulk_load : t -> string list -> unit
(** Populate many records with a single root signature at the end —
    benchmark setup only (per-update costs are not charged), so
    experiments can measure appends at a given tree size without paying
    a signature per preparatory insert. *)

type proof = { index : int; leaf_hash : string; path : string list; root : string; root_sig : string }

val prove : t -> int -> proof option

val verify :
  signing_key:Worm_crypto.Rsa.public -> capacity:int -> data:string -> proof -> bool
(** Client-side check: membership path plus SCPU signature on the root. *)

val scpu_hashes_per_update : t -> float
(** Average device hash operations per append so far. *)
