module Device = Worm_scpu.Device
module Merkle = Worm_crypto.Merkle
module Sha256 = Worm_crypto.Sha256
module Rsa = Worm_crypto.Rsa

type t = {
  device : Device.t;
  tree : Merkle.t;
  mutable size : int;
  mutable root_sig : string;
  mutable appends : int;
}

let root_msg root = "worm:baseline:merkle-root|" ^ root

let create ~device ~capacity =
  let tree = Merkle.create ~capacity in
  let root_sig = Device.sign_strong device (root_msg (Merkle.root tree)) in
  { device; tree; size = 0; root_sig; appends = 0 }

let capacity t = Merkle.capacity t.tree
let size t = t.size

let append t data =
  if t.size >= capacity t then failwith "Merkle_store.append: full";
  let index = t.size in
  let before = Merkle.hash_count t.tree in
  Merkle.set t.tree index data;
  let node_hashes = Merkle.hash_count t.tree - before in
  (* Each path recomputation is SCPU work: one leaf hash over the data
     plus [log n] 65-byte interior-node hashes. *)
  Device.charge_hash_only t.device ~bytes:(String.length data);
  for _ = 2 to node_hashes do
    Device.charge_hash_only t.device ~bytes:65
  done;
  t.root_sig <- Device.sign_strong t.device (root_msg (Merkle.root t.tree));
  t.size <- index + 1;
  t.appends <- t.appends + 1;
  index

let bulk_load t records =
  List.iter
    (fun data ->
      if t.size >= capacity t then failwith "Merkle_store.bulk_load: full";
      Merkle.set t.tree t.size data;
      t.size <- t.size + 1)
    records;
  Merkle.reset_hash_count t.tree;
  t.root_sig <- Device.sign_strong t.device (root_msg (Merkle.root t.tree))

type proof = { index : int; leaf_hash : string; path : string list; root : string; root_sig : string }

let prove t index =
  if index < 0 || index >= t.size then None
  else
    Some
      {
        index;
        leaf_hash = Sha256.digest ("\x00" ^ Option.value ~default:"" (Merkle.get t.tree index));
        path = Merkle.proof t.tree index;
        root = Merkle.root t.tree;
        root_sig = t.root_sig;
      }

let verify ~signing_key ~capacity ~data proof =
  Merkle.verify ~root:proof.root ~capacity ~index:proof.index ~leaf_data:data ~proof:proof.path
  && Rsa.verify signing_key ~msg:(root_msg proof.root) ~signature:proof.root_sig

let scpu_hashes_per_update t =
  if t.appends = 0 then 0. else float_of_int (Device.stats t.device).Device.hash_ops /. float_of_int t.appends
