lib/baseline/soft_worm.ml: Fun Hashtbl Int64 List Option Policy String Worm_core Worm_crypto Worm_simclock Worm_simdisk
