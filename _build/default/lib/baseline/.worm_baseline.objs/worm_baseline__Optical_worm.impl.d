lib/baseline/optical_worm.ml: Array List
