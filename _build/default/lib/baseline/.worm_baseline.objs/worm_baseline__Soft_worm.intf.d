lib/baseline/soft_worm.mli: Worm_core Worm_simclock Worm_simdisk
