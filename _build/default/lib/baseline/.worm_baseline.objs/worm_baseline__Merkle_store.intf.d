lib/baseline/merkle_store.mli: Worm_crypto Worm_scpu
