lib/baseline/optical_worm.mli:
