lib/baseline/merkle_store.ml: List Option String Worm_crypto Worm_scpu
