lib/sim/sim.ml: Array Firmware Float Format Fun Int64 List Policy Printf Vrdt Worm Worm_baseline Worm_core Worm_crypto Worm_scpu Worm_simclock Worm_simdisk Worm_workload
