lib/sim/sim.mli: Format Worm_core Worm_scpu Worm_simclock Worm_simdisk
