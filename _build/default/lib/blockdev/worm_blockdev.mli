(** Block-level WORM device interface.

    §4.1 names two deployment points for the record-level layer: inside
    a file system ({!Worm_fs}), or "inside a block-level storage device
    interface (e.g., in embedded scenarios without namespaces or
    indexing constraints)". This is the latter: a device of fixed-size
    write-once blocks where the logical block address {e is} the serial
    number — consecutive monotonic allocation means no mapping table at
    all, the degenerate (and cheapest) namespace.

    Every block read is client-verified; the device surfaces the WORM
    vocabulary (verified data / proven deleted / never written /
    violation) instead of a bare I/O error, which is the whole point of
    putting compliance below the namespace. *)

type t

val create :
  ?block_size:int ->
  ?policy:Worm_core.Policy.t ->
  store:Worm_core.Worm.t ->
  client:Worm_core.Client.t ->
  unit ->
  t
(** [block_size] defaults to 4096; [policy] (retention of every block)
    defaults to SEC 17a-4. *)

val block_size : t -> int

val append : t -> string -> int64
(** Write one block (padded to [block_size] with NULs; an embedded
    length header preserves exact contents). Returns the LBA.
    @raise Invalid_argument if the payload exceeds the block size. *)

val capacity_used : t -> int64
(** Number of LBAs allocated so far; the next append returns this. *)

type read_result =
  | Data of string  (** verified, exact original contents *)
  | Expired  (** proven rightfully deleted *)
  | Unwritten  (** proven never allocated *)
  | Compromised of string  (** verification failed: the violations *)

val read : t -> int64 -> read_result

val expire : t -> int
(** Run the retention monitor; returns blocks deleted. *)
