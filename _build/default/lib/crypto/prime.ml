let small_primes =
  [
    2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97;
    101; 103; 107; 109; 113; 127; 131; 137; 139; 149; 151; 157; 163; 167; 173; 179; 181; 191; 193;
    197; 199; 211; 223; 227; 229; 233; 239; 241; 251;
  ]

let divisible_by_small n =
  List.exists
    (fun p ->
      let p_nat = Nat.of_int p in
      Nat.is_zero (Nat.modulo n p_nat) && not (Nat.equal n p_nat))
    small_primes

let miller_rabin_round n ~d ~s a =
  (* n-1 = d * 2^s with d odd; witness a in [2, n-2] *)
  let x = ref (Nat.mod_pow ~base:a ~exp:d ~modulus:n) in
  let n1 = Nat.pred n in
  if Nat.is_one !x || Nat.equal !x n1 then true
  else begin
    let rec squares i =
      if i >= s - 1 then false
      else begin
        x := Nat.mod_pow ~base:!x ~exp:Nat.two ~modulus:n;
        if Nat.equal !x n1 then true else squares (i + 1)
      end
    in
    squares 0
  end

let is_probably_prime ?(rounds = 20) rng n =
  if Nat.compare n Nat.two < 0 then false
  else if Nat.equal n Nat.two then true
  else if Nat.is_even n then false
  else if List.exists (fun p -> Nat.equal n (Nat.of_int p)) small_primes then true
  else if divisible_by_small n then false
  else begin
    let n1 = Nat.pred n in
    (* factor n-1 = d * 2^s *)
    let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n1 0 in
    let n3 = Nat.sub n (Nat.of_int 3) in
    let rec rounds_loop i =
      if i >= rounds then true
      else begin
        let a = Nat.add Nat.two (Drbg.nat_below rng (Nat.succ n3)) in
        (* a in [2, n-1]; clamp n-1 (which always passes) down to n-2 *)
        let a = if Nat.equal a n1 then Nat.two else a in
        if miller_rabin_round n ~d ~s a then rounds_loop (i + 1) else false
      end
    in
    rounds_loop 0
  end

let generate rng ~bits =
  if bits < 8 then invalid_arg "Prime.generate: need at least 8 bits";
  let rec try_candidate () =
    let n = Drbg.nat_bits rng bits in
    (* Force exact bit width and oddness: set the two top bits and bit 0. *)
    let top = Nat.shift_left Nat.one (bits - 1) in
    let second = Nat.shift_left Nat.one (bits - 2) in
    let n = ref n in
    if not (Nat.test_bit !n (bits - 1)) then n := Nat.add !n top;
    if not (Nat.test_bit !n (bits - 2)) then n := Nat.add !n second;
    if Nat.is_even !n then n := Nat.succ !n;
    (* March over a window of odd candidates before redrawing. *)
    let rec march c attempts =
      if attempts = 0 || Nat.bit_length c <> bits then try_candidate ()
      else if (not (divisible_by_small c)) && is_probably_prime rng c then c
      else march (Nat.add c Nat.two) (attempts - 1)
    in
    march !n 64
  in
  try_candidate ()
