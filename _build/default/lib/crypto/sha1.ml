(* 32-bit words carried in native ints, masked after every operation. *)

let mask = 0xFFFFFFFF
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* bytes fed *)
  w : int array; (* message schedule scratch *)
  mutable finalized : bool;
}

let digest_size = 20
let block_size = 64

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    w = Array.make 80 0;
    finalized = false;
  }

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let p = off + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.get block p) lsl 24)
      lor (Char.code (Bytes.get block (p + 1)) lsl 16)
      lor (Char.code (Bytes.get block (p + 2)) lsl 8)
      lor Char.code (Bytes.get block (p + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref ctx.h0 and b = ref ctx.h1 and c = ref ctx.h2 and d = ref ctx.h3 and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then ((!b land !c) lor (lnot !b land !d) land mask, 0x5A827999)
      else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
      else if i < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b lxor !c lxor !d, 0xCA62C1D6)
    in
    let t = (rotl !a 5 + (f land mask) + !e + k + w.(i)) land mask in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := t
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b) land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask

let feed ctx s =
  if ctx.finalized then invalid_arg "Sha1.feed: context already finalized";
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* top up a partial block first *)
  if ctx.buf_len > 0 then begin
    let need = block_size - ctx.buf_len in
    let take = min need len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  let tmp = Bytes.unsafe_of_string s in
  while len - !pos >= block_size do
    compress ctx tmp !pos;
    pos := !pos + block_size
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let word_be out off v =
  Bytes.set out off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set out (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set out (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set out (off + 3) (Char.chr (v land 0xff))

let get ctx =
  if ctx.finalized then invalid_arg "Sha1.get: context already finalized";
  let total_bits = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod block_size in
    if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (pad_len + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  feed ctx (Bytes.unsafe_to_string tail);
  assert (ctx.buf_len = 0);
  ctx.finalized <- true;
  let out = Bytes.create digest_size in
  word_be out 0 ctx.h0;
  word_be out 4 ctx.h1;
  word_be out 8 ctx.h2;
  word_be out 12 ctx.h3;
  word_be out 16 ctx.h4;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  get ctx

let hex_digest s = Worm_util.Hex.encode (digest s)
