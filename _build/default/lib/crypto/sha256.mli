(** SHA-256 (FIPS 180-4). Pure OCaml.

    The default digest for all WORM signatures, deletion proofs, window
    bounds and chained record hashes. *)

type ctx

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val get : ctx -> string
(** Finalize and return the 32-byte digest. The context must not be
    reused afterwards. *)

val digest : string -> string
val hex_digest : string -> string
