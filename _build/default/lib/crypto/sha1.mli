(** SHA-1 (FIPS 180-4). Pure OCaml.

    SHA-1 is retained because the paper's SCPU (IBM 4764) benchmarks
    hashing with SHA-1 (Table 2); the WORM layer itself signs SHA-256
    digests. Do not use SHA-1 for collision resistance in new designs. *)

type ctx

val digest_size : int
(** 20 bytes. *)

val block_size : int
(** 64 bytes. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val get : ctx -> string
(** Finalize and return the 20-byte digest. The context must not be
    reused afterwards. *)

val digest : string -> string
val hex_digest : string -> string
