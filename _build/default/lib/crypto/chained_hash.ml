type t = string

let empty = Sha256.digest "worm:chained-hash:init"

let add t block =
  let ctx = Sha256.init () in
  Sha256.feed ctx t;
  let len = Bytes.create 8 in
  let n = String.length block in
  for i = 0 to 7 do
    Bytes.set len i (Char.chr ((n lsr (8 * (7 - i))) land 0xff))
  done;
  Sha256.feed ctx (Bytes.unsafe_to_string len);
  Sha256.feed ctx block;
  Sha256.get ctx

let of_blocks blocks = List.fold_left add empty blocks
let value t = t
let equal (a : t) (b : t) = Worm_util.Ct.equal a b
let pp fmt t = Format.pp_print_string fmt (Worm_util.Hex.encode t)
