(** Probabilistic primality testing and prime generation (for RSA keys). *)

val is_probably_prime : ?rounds:int -> Drbg.t -> Nat.t -> bool
(** Miller–Rabin with [rounds] random witnesses (default 20) after trial
    division by small primes. Error probability at most 4{^-rounds}. *)

val generate : Drbg.t -> bits:int -> Nat.t
(** Random probable prime of exactly [bits] bits (both top bits set so
    that the product of two such primes has exactly [2*bits] bits).
    @raise Invalid_argument if [bits < 8]. *)
