(** HMAC (RFC 2104) over any of the hashes in this library.

    HMACs back the paper's fastest deferred-witnessing mode (§4.3): during
    bursts the SCPU MACs records with an internal key instead of signing,
    then upgrades to real signatures during idle periods. *)

module type HASH = sig
  val digest_size : int
  val block_size : int
  val digest : string -> string
end

module Make (H : HASH) : sig
  val mac : key:string -> string -> string
end

val sha256 : key:string -> string -> string
(** HMAC-SHA-256; 32-byte output. *)

val sha1 : key:string -> string -> string
(** HMAC-SHA-1; 20-byte output. *)

val verify_sha256 : key:string -> msg:string -> mac:string -> bool
(** Timing-safe comparison against a freshly computed MAC. *)
