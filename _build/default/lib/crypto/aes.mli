(** AES-128 (FIPS 197) with CTR mode (SP 800-38A). Pure OCaml.

    The paper's requirements include storage {e confidentiality} (§1),
    and the IBM 4764's CCA provides symmetric encryption services; this
    is the at-rest cipher for the {!Worm_core.Vault} layer. Table-based
    implementation — not constant-time with respect to cache timing,
    which is acceptable for a simulator and called out here so nobody
    ships it against co-resident attackers. *)

type key

val key_of_string : string -> key
(** @raise Invalid_argument unless exactly 16 bytes. *)

val encrypt_block : key -> string -> string
(** One 16-byte block (the raw forward cipher).
    @raise Invalid_argument on wrong block size. *)

val ctr : key -> nonce:string -> string -> string
(** CTR-mode keystream XOR over arbitrary-length input: encryption and
    decryption are the same operation. [nonce] is 8 bytes; the block
    counter occupies the remaining 8 (big-endian, starting at 0), so a
    single nonce is good for 2{^68} bytes.
    @raise Invalid_argument on a wrong-sized nonce. *)
