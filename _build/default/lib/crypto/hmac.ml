module type HASH = sig
  val digest_size : int
  val block_size : int
  val digest : string -> string
end

module Make (H : HASH) = struct
  let xor_pad key pad =
    let b = Bytes.make H.block_size pad in
    String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor Char.code pad))) key;
    Bytes.unsafe_to_string b

  let mac ~key msg =
    let key = if String.length key > H.block_size then H.digest key else key in
    let ipad = xor_pad key '\x36' in
    let opad = xor_pad key '\x5c' in
    H.digest (opad ^ H.digest (ipad ^ msg))
end

module Hmac_sha256 = Make (struct
  let digest_size = Sha256.digest_size
  let block_size = Sha256.block_size
  let digest = Sha256.digest
end)

module Hmac_sha1 = Make (struct
  let digest_size = Sha1.digest_size
  let block_size = Sha1.block_size
  let digest = Sha1.digest
end)

let sha256 = Hmac_sha256.mac
let sha1 = Hmac_sha1.mac
let verify_sha256 ~key ~msg ~mac = Worm_util.Ct.equal (sha256 ~key msg) mac
