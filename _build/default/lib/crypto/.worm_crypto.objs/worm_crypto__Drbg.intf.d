lib/crypto/drbg.mli: Nat
