lib/crypto/hmac.mli:
