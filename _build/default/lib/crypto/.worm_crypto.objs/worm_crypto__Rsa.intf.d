lib/crypto/rsa.mli: Drbg Format Nat Worm_util
