lib/crypto/prime.mli: Drbg Nat
