lib/crypto/chained_hash.mli: Format
