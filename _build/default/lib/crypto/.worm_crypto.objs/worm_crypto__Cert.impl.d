lib/crypto/cert.ml: Format Int64 Printf Rsa Worm_util
