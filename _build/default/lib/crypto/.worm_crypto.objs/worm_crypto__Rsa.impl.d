lib/crypto/rsa.ml: Format Nat Prime Sha256 String Worm_util
