lib/crypto/sha1.ml: Array Bytes Char String Worm_util
