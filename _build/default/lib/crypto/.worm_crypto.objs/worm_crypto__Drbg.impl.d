lib/crypto/drbg.ml: Buffer Bytes Char Hmac Int64 Nat String
