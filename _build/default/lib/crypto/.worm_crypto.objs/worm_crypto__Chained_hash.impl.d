lib/crypto/chained_hash.ml: Bytes Char Format List Sha256 String Worm_util
