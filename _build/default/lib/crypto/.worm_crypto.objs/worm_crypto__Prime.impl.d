lib/crypto/prime.ml: Drbg List Nat
