lib/crypto/merkle.mli:
