lib/crypto/cert.mli: Format Rsa Worm_util
