lib/crypto/aes.mli:
