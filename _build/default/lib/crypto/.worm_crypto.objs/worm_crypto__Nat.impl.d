lib/crypto/nat.ml: Array Bytes Char Format List Printf Stdlib String
