(** Deterministic random bit generator: HMAC-DRBG with SHA-256
    (NIST SP 800-90A construction).

    The whole reproduction draws randomness from seeded DRBG instances so
    that every simulation, test, and benchmark run is reproducible. In
    the deployed system this is the SCPU's hardware RNG (CCA service);
    determinism here substitutes for it without changing any code path. *)

type t

val create : seed:string -> t
(** Instantiate from arbitrary seed bytes (personalization included). *)

val reseed : t -> string -> unit

val generate : t -> int -> string
(** [generate t n] returns [n] fresh pseudorandom bytes. *)

val byte : t -> int
(** One byte as [0, 255]. *)

val uint64 : t -> int64

val int_below : t -> int -> int
(** Uniform in [\[0, bound)] by rejection sampling.
    @raise Invalid_argument if [bound <= 0]. *)

val nat_bits : t -> int -> Nat.t
(** Uniform natural of at most [bits] bits (leading bits may be zero). *)

val nat_below : t -> Nat.t -> Nat.t
(** Uniform natural in [\[0, bound)] by rejection sampling.
    @raise Invalid_argument on a zero bound. *)

val split : t -> label:string -> t
(** Derive an independent child generator; used to give each simulation
    component its own stream without cross-contamination. *)
